"""Legacy setup shim so `pip install -e .` works without the wheel package."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'A World Wide View of Browsing the World Wide Web' "
        "(IMC 2022): synthetic Chrome-telemetry substrate plus the paper's "
        "full analysis pipeline."
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9"],
)
