"""Command-line interface: ``python -m repro <command>``.

Commands
--------
generate   Build a synthetic telemetry dataset and save it to disk.
inspect    Print the head of rank lists from a saved dataset.
analyze    Run one pipeline task over a saved dataset and print it.
report     Run the full analysis DAG into a run directory of artifacts.
crux       Produce the CrUX-style public rank-bucket export.
world      Print facts about the synthetic world (countries, taxonomy).

``analyze`` and ``report`` share the task registry in
:mod:`repro.pipeline`: the ``--analysis`` choices are exactly the
registered task names, and both commands resolve dependencies, caching
and rendering through the same :class:`~repro.pipeline.PipelineRunner`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core import Metric, Month, Platform, REFERENCE_MONTH, STUDY_MONTHS


def _parse_month(text: str) -> Month:
    try:
        year, month = text.split("-")
        return Month(int(year), int(month))
    except (ValueError, TypeError) as exc:
        raise argparse.ArgumentTypeError(
            f"month must look like 2022-02, got {text!r}"
        ) from exc


def _parse_platform(text: str) -> Platform:
    try:
        return Platform(text)
    except ValueError as exc:
        choices = ", ".join(p.value for p in Platform)
        raise argparse.ArgumentTypeError(
            f"platform must be one of {choices}, got {text!r}"
        ) from exc


def _parse_metric(text: str) -> Metric:
    try:
        return Metric(text)
    except ValueError as exc:
        choices = ", ".join(m.value for m in Metric)
        raise argparse.ArgumentTypeError(
            f"metric must be one of {choices}, got {text!r}"
        ) from exc


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A World Wide View of Browsing the "
                    "World Wide Web' (IMC 2022).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate and save a dataset")
    gen.add_argument("--out", required=True, help="output directory")
    gen.add_argument("--small", action="store_true",
                     help="use the small test-scale universe")
    gen.add_argument("--seed", type=int, default=2022)
    gen.add_argument("--countries", nargs="*", default=None,
                     help="ISO codes (default: all 45)")
    gen.add_argument("--months", nargs="*", type=_parse_month, default=None,
                     help="e.g. 2021-12 2022-02 (default: 2022-02; "
                          "'all' months via --all-months)")
    gen.add_argument("--all-months", action="store_true",
                     help="generate all six study months")
    gen.add_argument("--platforms", nargs="*", type=_parse_platform,
                     default=None,
                     help="platforms to generate (default: windows android)")
    gen.add_argument("--metrics", nargs="*", type=_parse_metric, default=None,
                     help="metrics to generate "
                          "(default: page_loads time_on_page)")
    gen.add_argument("--jobs", type=int, default=1,
                     help="parallel worker processes (default: 1 = serial; "
                          "output is byte-identical either way)")
    gen.add_argument("--cache-dir", default=None,
                     help="content-addressed slice cache directory; warm "
                          "slices skip scoring and the universe build")

    ins = sub.add_parser("inspect", help="print rank-list heads")
    ins.add_argument("--data", required=True)
    ins.add_argument("--country", default="US")
    ins.add_argument("--top", type=int, default=10)

    from .pipeline import default_registry

    ana = sub.add_parser("analyze", help="run an analysis on a saved dataset")
    ana.add_argument("--data", required=True)
    ana.add_argument(
        "--analysis", required=True,
        choices=sorted(default_registry().names()),
    )
    ana.add_argument("--small", action="store_true",
                     help="dataset was generated with --small (labels)")
    ana.add_argument("--seed", type=int, default=None,
                     help="generator seed (default: the dataset's own)")

    rep = sub.add_parser(
        "report", help="run the full analysis DAG into a run directory"
    )
    rep.add_argument("--data", required=True, help="saved dataset directory")
    rep.add_argument("--out", required=True, help="run directory to write")
    rep.add_argument("--jobs", type=int, default=1,
                     help="concurrent tasks (default: 1 = serial; artifacts "
                          "are byte-identical either way)")
    rep.add_argument("--tasks", nargs="*", default=None,
                     help="task subset (dependencies are pulled in; "
                          "default: the whole registry)")
    rep.add_argument("--artifacts", default=None,
                     help="artifact store directory "
                          "(default: <data>/.artifacts)")
    rep.add_argument("--no-artifacts", action="store_true",
                     help="recompute everything; do not read or write "
                          "the artifact store")
    rep.add_argument("--month", type=_parse_month, default=None,
                     help="reference month (default: the dataset's last)")
    rep.add_argument("--small", action="store_true",
                     help="dataset was generated with --small (labels)")
    rep.add_argument("--seed", type=int, default=None,
                     help="generator seed (default: the dataset's own)")

    crux = sub.add_parser("crux", help="CrUX-style public export")
    crux.add_argument("--data", required=True)
    crux.add_argument("--out", required=True)

    sub.add_parser("world", help="print world facts")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from .engine import GenerationEngine, ParallelExecutor, SliceCache
    from .export.io import save_dataset
    from .synth import GeneratorConfig

    config = (GeneratorConfig.small(seed=args.seed) if args.small
              else GeneratorConfig(seed=args.seed))
    months = tuple(args.months) if args.months else (
        STUDY_MONTHS if args.all_months else (REFERENCE_MONTH,)
    )
    engine = GenerationEngine(
        config,
        executor=ParallelExecutor(jobs=args.jobs) if args.jobs > 1 else None,
        cache=SliceCache(args.cache_dir) if args.cache_dir else None,
    )
    dataset = engine.generate(
        countries=tuple(args.countries) if args.countries else None,
        platforms=tuple(args.platforms) if args.platforms else Platform.studied(),
        metrics=tuple(args.metrics) if args.metrics else Metric.studied(),
        months=months,
    )
    path = save_dataset(dataset, args.out)
    print(f"wrote {len(dataset)} rank lists to {path}")
    if engine.cache is not None:
        print(f"slice cache {engine.cache.root}: {engine.cache.stats}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from .export.io import load_dataset
    from .report import render_table

    dataset = load_dataset(args.data)
    rows = []
    for platform in dataset.platforms:
        for metric in dataset.metrics:
            ranked = dataset.get_or_none(
                args.country, platform, metric, dataset.months[-1]
            )
            if ranked is None:
                continue
            rows.append((
                platform.value, metric.value,
                ", ".join(ranked.top(args.top).sites),
            ))
    print(render_table(
        ("platform", "metric", f"top {args.top}"), rows,
        title=f"{args.country}, {dataset.months[-1]}",
    ))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .export.io import load_dataset
    from .pipeline import (
        PipelineRunner,
        TaskContext,
        TaskStatus,
        canonical_json,
        default_registry,
        infer_config,
        render_task,
    )

    dataset = load_dataset(args.data)
    registry = default_registry()
    config = infer_config(dataset, small=args.small, seed=args.seed)
    runner = PipelineRunner(registry)
    report = runner.run(TaskContext(dataset, config=config), [args.analysis])
    record = report.records[args.analysis]
    if record.status is TaskStatus.FAILED:
        print(record.error, file=sys.stderr)
        return 1
    if record.status is TaskStatus.SKIPPED:
        print(record.error, file=sys.stderr)
        return 2
    rendered = render_task(registry, report, args.analysis)
    if rendered is not None:
        print(rendered)
    else:
        print(canonical_json(report.results[args.analysis]))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .export.io import load_dataset
    from .pipeline import (
        ArtifactStore,
        PipelineRunner,
        SerialTaskExecutor,
        TaskContext,
        ThreadedTaskExecutor,
        default_registry,
        infer_config,
        write_run_dir,
    )

    dataset = load_dataset(args.data)
    registry = default_registry()
    config = infer_config(dataset, small=args.small, seed=args.seed)
    if args.no_artifacts:
        store = None
    else:
        store = ArtifactStore(args.artifacts or Path(args.data) / ".artifacts")
    executor = (ThreadedTaskExecutor(args.jobs) if args.jobs > 1
                else SerialTaskExecutor())
    runner = PipelineRunner(registry, executor=executor, store=store)
    ctx = TaskContext(dataset, config=config, month=args.month)
    report = runner.run(ctx, args.tasks)
    out = write_run_dir(args.out, registry, report)

    for name in report.order:
        record = report.records[name]
        note = f"  ({record.error})" if record.error else ""
        print(f"{record.status.value:8s} {name}{note}")
    print(f"executed {report.executed}, cached {report.cached}, "
          f"failed {report.failed}, skipped {report.skipped}")
    if store is not None:
        print(f"artifact store {store.root}: {store.stats}")
    print(f"wrote run directory {out}")
    return 0 if report.ok else 1


def _cmd_crux(args: argparse.Namespace) -> int:
    import json

    from .export.crux import export_crux
    from .export.io import load_dataset

    dataset = load_dataset(args.data)
    export = export_crux(dataset, dataset.platforms[-1], dataset.months[-1])
    payload = {
        "platform": export.platform.value,
        "metric": export.metric.value,
        "month": str(export.month),
        "global": export.global_buckets,
        "countries": export.per_country,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload), encoding="utf-8")
    print(f"wrote CrUX-style export ({len(export.global_buckets)} global "
          f"sites, {len(export.per_country)} countries) to {out}")
    return 0


def _cmd_world(_: argparse.Namespace) -> int:
    from .categories.taxonomy import TABLE3
    from .report import render_table
    from .world import COUNTRIES, NAMED_SITES, by_region_group

    print(render_table(
        ("region group", "countries"),
        [(group, " ".join(c.code for c in members))
         for group, members in sorted(by_region_group().items())],
        title=f"{len(COUNTRIES)} study countries (Appendix A)",
    ))
    print(f"\nTaxonomy: {len(TABLE3)} categories in "
          f"{len(TABLE3.supercategories)} supercategories (Table 3)")
    print(f"Curated site roster: {len(NAMED_SITES)} named sites")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "inspect": _cmd_inspect,
    "analyze": _cmd_analyze,
    "report": _cmd_report,
    "crux": _cmd_crux,
    "world": _cmd_world,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
