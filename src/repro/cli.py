"""Command-line interface: ``python -m repro <command>``.

Commands
--------
generate   Build a synthetic telemetry dataset and save it to disk.
ingest     Append new months to a saved dataset, bumping its version.
convert    Re-encode a saved dataset (text <-> columnar), losslessly.
inspect    Print the head of rank lists from a saved dataset.
analyze    Run one pipeline task over a saved dataset and print it.
report     Run the full analysis DAG into a run directory.
serve      Serve a saved dataset over the JSON HTTP API.
loadtest   Replay a Zipf-shaped query mix against a running server.
trace      Summarize a JSONL span trace written by ``--trace``.
crux       Produce the CrUX-style public rank-bucket export.
world      Print facts about the synthetic world (countries, taxonomy).

Every ``_cmd_*`` handler is a thin wrapper over the stable
:mod:`repro.api` facade — the shell surface and the Python surface are
the same five verbs, and the CLI only adds argument parsing, printing
and exit codes.  ``analyze``/``report``/``serve`` share the task
registry in :mod:`repro.pipeline`, and ``serve`` exposes it at
``/v1/analyses`` over HTTP.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core import Metric, Month, Platform


def _parse_month(text: str) -> Month:
    try:
        return Month.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _parse_platform(text: str) -> Platform:
    try:
        return Platform(text)
    except ValueError as exc:
        choices = ", ".join(p.value for p in Platform)
        raise argparse.ArgumentTypeError(
            f"platform must be one of {choices}, got {text!r}"
        ) from exc


def _parse_metric(text: str) -> Metric:
    try:
        return Metric(text)
    except ValueError as exc:
        choices = ", ".join(m.value for m in Metric)
        raise argparse.ArgumentTypeError(
            f"metric must be one of {choices}, got {text!r}"
        ) from exc


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A World Wide View of Browsing the "
                    "World Wide Web' (IMC 2022).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate and save a dataset")
    gen.add_argument("--out", "--data", dest="out", required=True,
                     help="output directory (--data is accepted too, "
                          "matching ingest/analyze/serve)")
    gen.add_argument("--small", action="store_true",
                     help="use the small test-scale universe")
    gen.add_argument("--seed", type=int, default=2022)
    gen.add_argument("--countries", nargs="*", default=None,
                     help="ISO codes (default: all 45)")
    gen.add_argument("--months", nargs="*", type=_parse_month, default=None,
                     help="e.g. 2021-12 2022-02 (default: 2022-02; "
                          "'all' months via --all-months)")
    gen.add_argument("--all-months", action="store_true",
                     help="generate all six study months")
    gen.add_argument("--platforms", nargs="*", type=_parse_platform,
                     default=None,
                     help="platforms to generate (default: windows android)")
    gen.add_argument("--metrics", nargs="*", type=_parse_metric, default=None,
                     help="metrics to generate "
                          "(default: page_loads time_on_page)")
    gen.add_argument("--jobs", type=int, default=1,
                     help="parallel worker processes (default: 1 = serial; "
                          "output is byte-identical either way)")
    gen.add_argument("--cache-dir", default=None,
                     help="content-addressed slice cache directory; warm "
                          "slices skip scoring and the universe build")
    gen.add_argument("--format", default="text",
                     choices=("text", "columnar"),
                     help="storage codec for --out (default: text; "
                          "columnar loads memory-mapped in O(open))")
    gen.add_argument("--trace", default=None, metavar="PATH",
                     help="write a JSONL span trace of the run "
                          "(engine slices incl. cache hit/miss)")

    conv = sub.add_parser(
        "convert",
        help="re-encode a saved dataset between storage codecs",
    )
    conv.add_argument("src", nargs="?", default=None,
                      help="source dataset directory (codec "
                           "auto-detected); --data works too")
    conv.add_argument("dst", nargs="?", default=None,
                      help="destination directory to write; --out works too")
    conv.add_argument("--data", dest="data", default=None,
                      help="source dataset directory (same flag as "
                           "ingest/analyze/serve)")
    conv.add_argument("--out", dest="out", default=None,
                      help="destination directory (same flag as generate)")
    conv.add_argument("--format", default="columnar",
                      choices=("text", "columnar"),
                      help="destination codec (default: columnar); "
                           "round-trips are byte-identical and keep "
                           "the dataset fingerprint")

    ing = sub.add_parser(
        "ingest",
        help="append new months to a saved dataset, in place",
    )
    ing.add_argument("--data", required=True,
                     help="saved dataset directory to grow")
    ing.add_argument("--months", "--month", dest="months", nargs="+",
                     type=_parse_month, required=True,
                     help="months to append, e.g. 2022-03 (already-present "
                          "months are skipped; a fully-present set is a "
                          "byte-identical no-op)")
    ing.add_argument("--format", default=None,
                     choices=("text", "columnar"),
                     help="storage codec (default: auto-detected)")
    ing.add_argument("--jobs", type=int, default=1,
                     help="parallel worker processes for the new slices "
                          "(default: 1 = serial; byte-identical either way)")
    ing.add_argument("--cache-dir", default=None,
                     help="content-addressed slice cache directory")
    ing.add_argument("--small", action="store_true",
                     help="dataset was generated with --small")
    ing.add_argument("--seed", type=int, default=None,
                     help="generator seed (default: the dataset's own)")

    ins = sub.add_parser("inspect", help="print rank-list heads")
    ins.add_argument("--data", required=True)
    ins.add_argument("--country", default="US")
    ins.add_argument("--top", type=int, default=10)

    from .pipeline import default_registry

    ana = sub.add_parser("analyze", help="run an analysis on a saved dataset")
    ana.add_argument("--data", required=True)
    ana.add_argument(
        "--analysis", required=True,
        choices=sorted(default_registry().names()),
    )
    ana.add_argument("--small", action="store_true",
                     help="dataset was generated with --small (labels)")
    ana.add_argument("--seed", type=int, default=None,
                     help="generator seed (default: the dataset's own)")
    ana.add_argument("--as-of", type=int, default=None, metavar="VERSION",
                     help="analyse this archived dataset version "
                          "(default: latest)")

    rep = sub.add_parser(
        "report", help="run the full analysis DAG into a run directory"
    )
    rep.add_argument("--data", required=True, help="saved dataset directory")
    rep.add_argument("--out", required=True, help="run directory to write")
    rep.add_argument("--jobs", type=int, default=1,
                     help="concurrent tasks (default: 1 = serial; artifacts "
                          "are byte-identical either way)")
    rep.add_argument("--tasks", nargs="*", default=None,
                     help="task subset (dependencies are pulled in; "
                          "default: the whole registry)")
    rep.add_argument("--store", default=None,
                     help="artifact store directory "
                          "(default: <data>/.artifacts)")
    rep.add_argument("--artifacts", default=None,
                     help="deprecated alias for --store")
    rep.add_argument("--no-store", "--no-artifacts", dest="no_store",
                     action="store_true",
                     help="recompute everything; do not read or write "
                          "the artifact store")
    rep.add_argument("--month", type=_parse_month, default=None,
                     help="reference month (default: the dataset's last)")
    rep.add_argument("--small", action="store_true",
                     help="dataset was generated with --small (labels)")
    rep.add_argument("--seed", type=int, default=None,
                     help="generator seed (default: the dataset's own)")
    rep.add_argument("--as-of", type=int, default=None, metavar="VERSION",
                     help="report over this archived dataset version "
                          "(default: latest)")
    rep.add_argument("--trace", default=None, metavar="PATH",
                     help="write a JSONL span trace of the run "
                          "(every pipeline task with status + timing)")

    srv = sub.add_parser(
        "serve", help="serve a saved dataset over the JSON HTTP API"
    )
    srv.add_argument("--data", required=True, help="saved dataset directory")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8000,
                     help="listen port (0 picks a free one; default: 8000)")
    srv.add_argument("--store", default=None,
                     help="artifact store directory "
                          "(default: <data>/.artifacts)")
    srv.add_argument("--artifacts", default=None,
                     help="deprecated alias for --store")
    srv.add_argument("--no-store", "--no-artifacts", dest="no_store",
                     action="store_true",
                     help="serve analyses without reading or writing "
                          "the artifact store")
    srv.add_argument("--workers", type=int, default=1,
                     help="worker processes accept()ing on one shared "
                          "socket (default: 1 = single-process; >1 "
                          "enables the pre-forked fleet, see repro.fleet)")
    srv.add_argument("--cache-size", type=int, default=256,
                     help="LRU capacity for rendered payloads "
                          "(0 disables; default: 256)")
    srv.add_argument("--cache-bytes", type=int, default=None,
                     help="byte budget for the payload LRU (per worker); "
                          "evicts oldest entries until under budget")
    srv.add_argument("--jobs", type=int, default=1,
                     help="concurrent pipeline tasks per analysis request "
                          "(default: 1 = serial)")
    srv.add_argument("--month", type=_parse_month, default=None,
                     help="reference month (default: the dataset's last)")
    srv.add_argument("--small", action="store_true",
                     help="dataset was generated with --small (labels)")
    srv.add_argument("--seed", type=int, default=None,
                     help="generator seed (default: the dataset's own)")
    srv.add_argument("--as-of", type=int, default=None, metavar="VERSION",
                     help="pin the server to this archived dataset version "
                          "(default: serve the latest and follow ingests)")
    srv.add_argument("--trace", default=None, metavar="PATH",
                     help="write a JSONL span trace on shutdown "
                          "(one http.request span per request)")

    lt = sub.add_parser(
        "loadtest",
        help="replay a Zipf-shaped query mix against a running server",
    )
    lt.add_argument("url", help="base URL of a running `repro serve` "
                                "(e.g. http://127.0.0.1:8000)")
    lt.add_argument("--duration", type=float, default=None, metavar="SECONDS",
                    help="run for this long (default: bounded by "
                         "--requests instead)")
    lt.add_argument("--requests", type=int, default=None,
                    help="total request budget (default: 200 when "
                         "--duration is not given)")
    lt.add_argument("--concurrency", type=int, default=8,
                    help="client threads, each with a keep-alive "
                         "connection (default: 8)")
    lt.add_argument("--client-procs", type=int, default=1,
                    help="fork the load generator across this many "
                         "processes (one GIL caps near one server "
                         "process's throughput; default: 1)")
    lt.add_argument("--seed", type=int, default=2022,
                    help="RNG seed for the request schedule (default: 2022)")
    lt.add_argument("--top-sites", type=int, default=100,
                    help="how many head sites feed /v1/sites queries "
                         "(default: 100)")
    lt.add_argument("--timeout", type=float, default=10.0,
                    help="per-request timeout in seconds (default: 10)")
    lt.add_argument("--slo-p50-ms", type=float, default=None,
                    help="fail (exit 2) if overall p50 exceeds this")
    lt.add_argument("--slo-p95-ms", type=float, default=None,
                    help="fail (exit 2) if overall p95 exceeds this")
    lt.add_argument("--slo-p99-ms", type=float, default=None,
                    help="fail (exit 2) if overall p99 exceeds this")
    lt.add_argument("--slo-error-rate", type=float, default=None,
                    help="fail (exit 2) if the error fraction exceeds this")
    lt.add_argument("--slo-min-rps", type=float, default=None,
                    help="fail (exit 2) if throughput falls below this")
    lt.add_argument("--bench-out", default=None, metavar="PATH",
                    help="write the report as a BENCH_service.json")
    lt.add_argument("--baseline", default=None, metavar="PATH",
                    help="an earlier --bench-out JSON to compare "
                         "throughput against")
    lt.add_argument("--min-speedup", type=float, default=None,
                    help="fail (exit 2) unless throughput is at least "
                         "this multiple of the --baseline's")

    trc = sub.add_parser(
        "trace", help="inspect a JSONL span trace written by --trace"
    )
    trc_sub = trc.add_subparsers(dest="trace_command", required=True)
    summ = trc_sub.add_parser(
        "summarize", help="print the slowest spans and per-name totals"
    )
    summ.add_argument("path", help="JSONL trace file (from --trace)")
    summ.add_argument("--top", type=int, default=15,
                      help="how many individual spans to list (default: 15)")

    crux = sub.add_parser("crux", help="CrUX-style public export")
    crux.add_argument("--data", required=True)
    crux.add_argument("--out", required=True)
    crux.add_argument("--platform", type=_parse_platform, default=None,
                      help="platform to export "
                           "(default: the dataset's last platform)")
    crux.add_argument("--metric", type=_parse_metric, default=None,
                      help="metric to export (default: page_loads — the "
                           "only metric the public CrUX dataset carries)")
    crux.add_argument("--month", type=_parse_month, default=None,
                      help="month to export (default: the dataset's last)")

    sub.add_parser("world", help="print world facts")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from . import api
    from .engine import SliceCache

    cache = SliceCache(args.cache_dir) if args.cache_dir else None
    dataset = api.generate(
        small=args.small,
        seed=args.seed,
        countries=tuple(args.countries) if args.countries else None,
        platforms=tuple(args.platforms) if args.platforms else None,
        metrics=tuple(args.metrics) if args.metrics else None,
        months=tuple(args.months) if args.months else None,
        all_months=args.all_months,
        jobs=args.jobs,
        cache=cache,
        out=args.out,
        format=args.format,
        trace=args.trace,
    )
    print(f"wrote {len(dataset)} rank lists to {args.out} "
          f"({args.format})")
    if cache is not None:
        print(f"slice cache {cache.root}: {cache.stats}")
    if args.trace:
        print(f"wrote trace {args.trace}")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from . import api
    from .core.errors import DatasetError
    from .export.io import detect_format

    src = args.data if args.data is not None else args.src
    dst = args.out if args.out is not None else args.dst
    if src is None or dst is None:
        print("convert needs a source and a destination: either "
              "positionally (`repro convert SRC DST`) or as "
              "`--data SRC --out DST`", file=sys.stderr)
        return 2
    source_format = detect_format(src)
    if source_format is None:
        print(f"no dataset under {src} (neither manifest.bin nor "
              "manifest.json)", file=sys.stderr)
        return 2
    try:
        dst = api.convert(src, dst, format=args.format)
    except DatasetError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(f"converted {src} ({source_format}) -> {dst} ({args.format})")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from . import api
    from .core.errors import DatasetError
    from .engine import SliceCache

    cache = SliceCache(args.cache_dir) if args.cache_dir else None
    try:
        result = api.ingest(
            args.data,
            tuple(args.months),
            format=args.format,
            small=args.small,
            seed=args.seed,
            jobs=args.jobs,
            cache=cache,
        )
    except DatasetError as exc:
        print(exc, file=sys.stderr)
        return 2
    if not result.changed:
        print(f"{args.data} already has "
              f"{' '.join(str(m) for m in result.months_present)}; "
              f"nothing to ingest (still version {result.version})")
        return 0
    print(f"ingested {' '.join(str(m) for m in result.months_added)} "
          f"into {args.data} ({result.format}): "
          f"{result.slices_added} new slices in {result.seconds:.2f}s")
    print(f"dataset version {result.version_before} -> {result.version} "
          f"({len(result.months_present)} months)")
    if cache is not None:
        print(f"slice cache {cache.root}: {cache.stats}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from . import api
    from .report import render_table

    dataset = api.load(args.data)
    country = args.country.upper()
    if country not in dataset.countries:
        print(
            f"unknown country {args.country!r}; dataset has: "
            + " ".join(dataset.countries),
            file=sys.stderr,
        )
        return 2
    rows = []
    for platform in dataset.platforms:
        for metric in dataset.metrics:
            ranked = dataset.get_or_none(
                country, platform, metric, dataset.months[-1]
            )
            if ranked is None:
                continue
            rows.append((
                platform.value, metric.value,
                ", ".join(ranked.top(args.top).sites),
            ))
    print(render_table(
        ("platform", "metric", f"top {args.top}"), rows,
        title=f"{country}, {dataset.months[-1]}",
    ))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from . import api
    from .core.errors import DatasetError, PipelineError, TaskUnavailable
    from .pipeline import canonical_json, default_registry

    try:
        result = api.analyze(
            args.data, args.analysis, small=args.small, seed=args.seed,
            as_of=args.as_of,
        )
    except DatasetError as exc:
        # Covers an unknown --as-of too: the message lists the
        # available versions, mirroring unknown-country/unknown-task.
        print(exc, file=sys.stderr)
        return 2
    except TaskUnavailable as exc:
        print(exc, file=sys.stderr)
        return 2
    except PipelineError as exc:
        print(exc, file=sys.stderr)
        return 1
    render = default_registry().get(args.analysis).render
    print(render(result) if render is not None else canonical_json(result))
    return 0


def _store_path(args: argparse.Namespace, command: str):
    from ._compat import deprecated_alias

    return deprecated_alias(
        args.store, args.artifacts,
        owner=f"repro {command}", old="--artifacts", new="--store",
    )


def _cmd_report(args: argparse.Namespace) -> int:
    from . import api
    from .core.errors import DatasetError
    from .pipeline import ArtifactStore

    if args.no_store:
        store = None
    else:
        store = ArtifactStore(
            _store_path(args, "report") or Path(args.data) / ".artifacts"
        )
    try:
        report = api.report(
            args.data,
            args.out,
            tasks=args.tasks,
            jobs=args.jobs,
            store=store,
            no_store=args.no_store,
            month=args.month,
            small=args.small,
            seed=args.seed,
            as_of=args.as_of,
            trace=args.trace,
        )
    except DatasetError as exc:
        print(exc, file=sys.stderr)
        return 2
    for name in report.order:
        record = report.records[name]
        note = f"  ({record.error})" if record.error else ""
        print(f"{record.status.value:8s} {name}{note}")
    print(f"executed {report.executed}, cached {report.cached}, "
          f"failed {report.failed}, skipped {report.skipped}")
    if store is not None:
        print(f"artifact store {store.root}: {store.stats}")
    print(f"wrote run directory {args.out}")
    if args.trace:
        print(f"wrote trace {args.trace}")
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from . import api
    from .core.errors import DatasetError
    from .service import ENDPOINTS, serve_forever

    if args.workers > 1 and args.trace:
        print("--trace cannot be combined with --workers > 1 "
              "(fleet workers would race on one trace file)",
              file=sys.stderr)
        return 2
    store = _store_path(args, "serve")
    # Either branch prints `serving {data} on {url}` first — the URL is
    # the *resolved* bound address (also for --port 0), and CI smoke
    # greps exactly this line.  The served dataset version goes on its
    # own line right after, so the grep target never changes shape.
    if args.workers > 1:
        from .export.io import latest_version

        try:
            version = (args.as_of if args.as_of is not None
                       else latest_version(args.data))
            supervisor = api.serve(
                args.data,
                host=args.host,
                port=args.port,
                workers=args.workers,
                store=store,
                no_store=args.no_store,
                cache_size=args.cache_size,
                cache_bytes=args.cache_bytes,
                jobs=args.jobs,
                month=args.month,
                small=args.small,
                seed=args.seed,
                as_of=args.as_of,
                block=False,
            )
        except DatasetError as exc:
            print(exc, file=sys.stderr)
            return 2
        print(f"serving {args.data} on {supervisor.url}", flush=True)
        print(f"dataset version {version}"
              + (" (pinned)" if args.as_of is not None else ""), flush=True)
        pids = " ".join(str(pid) for pid in supervisor.worker_pids())
        print(f"fleet: {args.workers} workers (pids {pids})", flush=True)
        print("endpoints: " + " ".join(ENDPOINTS), flush=True)
        return supervisor.wait()
    try:
        server = api.serve(
            args.data,
            host=args.host,
            port=args.port,
            store=store,
            no_store=args.no_store,
            cache_size=args.cache_size,
            cache_bytes=args.cache_bytes,
            jobs=args.jobs,
            month=args.month,
            small=args.small,
            seed=args.seed,
            as_of=args.as_of,
            block=False,
            trace=args.trace,
        )
    except DatasetError as exc:
        print(exc, file=sys.stderr)
        return 2
    # server.url substitutes loopback for a wildcard bind, so the
    # printed address is always connectable (and greppable by CI).
    print(f"serving {args.data} on {server.url}", flush=True)
    print(f"dataset version {server.service.current_version()}"
          + (" (pinned)" if args.as_of is not None else ""), flush=True)
    print("endpoints: " + " ".join(ENDPOINTS), flush=True)
    if args.trace:
        print(f"tracing to {args.trace} (written on shutdown)", flush=True)
    serve_forever(server)
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import json

    from . import api
    from .fleet import SLO, LoadTestError
    from .report import render_table

    baseline = None
    if args.baseline:
        path = Path(args.baseline)
        if not path.is_file():
            print(f"no baseline bench JSON at {path}", file=sys.stderr)
            return 2
        baseline = json.loads(path.read_text())
    slo = SLO(
        p50_ms=args.slo_p50_ms,
        p95_ms=args.slo_p95_ms,
        p99_ms=args.slo_p99_ms,
        error_rate=args.slo_error_rate,
        min_rps=args.slo_min_rps,
    )
    try:
        report = api.loadtest(
            args.url,
            duration=args.duration,
            requests=args.requests,
            concurrency=args.concurrency,
            client_procs=args.client_procs,
            seed=args.seed,
            top_sites=args.top_sites,
            slo=slo,
            timeout=args.timeout,
            baseline=baseline,
            min_speedup=args.min_speedup,
            bench_out=args.bench_out,
        )
    except LoadTestError as exc:
        print(exc, file=sys.stderr)
        return 2
    rows = []
    for name in sorted(report.endpoints):
        ep = report.endpoints[name].to_payload()
        rows.append((
            name, str(ep["requests"]), str(ep["errors"]),
            f"{ep['p50_ms']:.1f}", f"{ep['p95_ms']:.1f}",
            f"{ep['p99_ms']:.1f}",
        ))
    print(render_table(
        ("endpoint", "req", "err", "p50 ms", "p95 ms", "p99 ms"),
        rows, title=f"loadtest {report.base_url}",
    ))
    print(f"{report.requests} requests in {report.duration_s:.1f}s -> "
          f"{report.throughput_rps:.1f} req/s, error rate "
          f"{report.error_rate:.4f} (zipf s={report.zipf_s:.2f})")
    if report.fleet is not None:
        print(f"fleet: {report.fleet['size']} workers, "
              f"{report.fleet['restarts_total']} restarts, "
              f"unreachable {report.fleet['unreachable']}")
    if report.baseline is not None and report.baseline.get("speedup"):
        print(f"throughput {report.baseline['speedup']:.2f}x the baseline's "
              f"{report.baseline['throughput_rps']:.1f} req/s")
    if args.bench_out:
        print(f"wrote {args.bench_out}")
    for violation in report.violations():
        print(f"SLO violation: {violation}", file=sys.stderr)
    return 0 if report.ok else 2


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import format_summary, read_trace

    path = Path(args.path)
    if not path.is_file():
        print(f"no trace file at {path}", file=sys.stderr)
        return 2
    try:
        spans = read_trace(path)
    except ValueError as exc:
        print(f"malformed trace {path}: {exc}", file=sys.stderr)
        return 1
    if not spans:
        print(f"trace {path} contains no spans", file=sys.stderr)
        return 1
    print(format_summary(spans, top=args.top))
    return 0


def _cmd_crux(args: argparse.Namespace) -> int:
    import json

    from . import api
    from .export.crux import export_crux

    dataset = api.load(args.data)
    platform = args.platform or dataset.platforms[-1]
    metric = args.metric or (
        Metric.PAGE_LOADS if Metric.PAGE_LOADS in dataset.metrics
        else dataset.metrics[-1]
    )
    month = args.month or dataset.months[-1]
    try:
        export = export_crux(dataset, platform, month, metric=metric)
    except ValueError:
        print(
            f"dataset has no ({platform.value}, {metric.value}, {month}) "
            f"slice; months: {' '.join(str(m) for m in dataset.months)}, "
            f"platforms: {' '.join(p.value for p in dataset.platforms)}, "
            f"metrics: {' '.join(m.value for m in dataset.metrics)}",
            file=sys.stderr,
        )
        return 2
    payload = {
        "platform": export.platform.value,
        "metric": export.metric.value,
        "month": str(export.month),
        "global": export.global_buckets,
        "countries": export.per_country,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload), encoding="utf-8")
    print(f"wrote CrUX-style export ({len(export.global_buckets)} global "
          f"sites, {len(export.per_country)} countries) to {out}")
    return 0


def _cmd_world(_: argparse.Namespace) -> int:
    from .categories.taxonomy import TABLE3
    from .report import render_table
    from .world import COUNTRIES, NAMED_SITES, by_region_group

    print(render_table(
        ("region group", "countries"),
        [(group, " ".join(c.code for c in members))
         for group, members in sorted(by_region_group().items())],
        title=f"{len(COUNTRIES)} study countries (Appendix A)",
    ))
    print(f"\nTaxonomy: {len(TABLE3)} categories in "
          f"{len(TABLE3.supercategories)} supercategories (Table 3)")
    print(f"Curated site roster: {len(NAMED_SITES)} named sites")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "ingest": _cmd_ingest,
    "convert": _cmd_convert,
    "inspect": _cmd_inspect,
    "analyze": _cmd_analyze,
    "report": _cmd_report,
    "serve": _cmd_serve,
    "loadtest": _cmd_loadtest,
    "trace": _cmd_trace,
    "crux": _cmd_crux,
    "world": _cmd_world,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
