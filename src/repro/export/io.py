"""Dataset persistence: the codec registry plus the text codec.

A saved dataset is a directory; *how* the directory encodes the lists
is a **codec**:

``text``      the original greppable layout — ``manifest.json`` plus
              one ``lists/<slug>.txt`` file per breakdown (one site per
              line, rank order).  Deliberately boring so exports can be
              consumed without this library; the export/debug codec.
``columnar``  the binary layout of :mod:`repro.store` — ``manifest.bin``,
              a packed vocabulary string table (``vocab.bin``) and one
              contiguous ``int32`` id array (``lists.bin``) that
              :func:`load_dataset` memory-maps, so cold start is
              O(open) and processes share pages.

:func:`save_dataset` takes ``format=``; :func:`load_dataset`
auto-detects from the files present (a ``manifest.bin`` wins over a
``manifest.json`` when both exist).  The two codecs round-trip exactly:
text → columnar → text is byte-identical, and
:func:`dataset_fingerprint` agrees across codecs, so artifact stores
and slice caches keyed by the fingerprint stay valid across a convert.

Saves are crash-safe under both codecs: every file is written to a
temp sibling and ``os.replace``\\ d into place, with the manifest
written last, so an interrupted save never leaves a manifest naming
files that are absent or torn.

The manifest's ``metadata`` object carries the generator provenance;
datasets produced by the generation engine include a ``fingerprint``
key there — the :meth:`GeneratorConfig.fingerprint` content address of
every generation knob — so an export can be matched to the exact
configuration (and slice-cache directory) that produced it.

Metadata values must be JSON-serializable; :class:`Month`,
:class:`Platform` and :class:`Metric` values are coerced to their
string forms, anything else unserializable raises :class:`DatasetError`
instead of being silently dropped.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping

from ..core.dataset import BrowsingDataset
from ..core.distribution import TrafficDistribution
from ..core.errors import DatasetError
from ..core.rankedlist import RankedList
from ..core.types import Breakdown, Metric, Month, Platform

TEXT_FORMAT_VERSION = 1


def breakdown_slug(breakdown: Breakdown) -> str:
    """The filesystem-safe name for one breakdown's list file."""
    return (
        f"{breakdown.country}_{breakdown.platform.value}"
        f"_{breakdown.metric.value}_{breakdown.month}"
    )


# Backwards-compatible alias for the pre-engine private name.
_slug = breakdown_slug


def _jsonable_metadata(metadata: Mapping[str, object]) -> dict[str, object]:
    """Coerce metadata for the manifest, or raise instead of dropping."""
    out: dict[str, object] = {}
    for key, value in metadata.items():
        if isinstance(value, Month):
            value = str(value)
        elif isinstance(value, (Platform, Metric)):
            value = value.value
        else:
            try:
                json.dumps(value)
            except (TypeError, ValueError) as exc:
                raise DatasetError(
                    f"metadata value {key!r} of type {type(value).__name__} "
                    "is not JSON-serializable; coerce it before saving"
                ) from exc
        out[key] = value
    return out


def sorted_breakdowns(dataset: BrowsingDataset) -> list[Breakdown]:
    """The canonical save order every codec writes breakdowns in."""
    return sorted(
        dataset.breakdowns(),
        key=lambda b: (b.country, b.platform.value, b.metric.value, b.month),
    )


def distribution_entries(dataset: BrowsingDataset) -> list[dict]:
    """The canonical manifest rows for the distribution curves."""
    return [
        {
            "platform": platform.value,
            "metric": metric.value,
            **dist.to_dict(),
        }
        for (platform, metric), dist in sorted(
            dataset.distributions().items(),
            key=lambda kv: (kv[0][0].value, kv[0][1].value),
        )
    ]


def parse_distribution_entries(
    entries: list[dict],
) -> dict[tuple[Platform, Metric], TrafficDistribution]:
    return {
        (Platform(entry["platform"]), Metric(entry["metric"])):
            TrafficDistribution.from_dict(entry)
        for entry in entries
    }


def parse_breakdown_entry(entry: Mapping[str, object]) -> Breakdown:
    return Breakdown(
        entry["country"],
        Platform(entry["platform"]),
        Metric(entry["metric"]),
        Month(*entry["month"]),
    )


def dataset_fingerprint(dataset: BrowsingDataset) -> str:
    """The content address identifying this dataset's exact lists.

    Datasets produced by the generation engine carry the generator's
    ``fingerprint`` in their metadata, and save/load round-trips it, so
    the recorded value is authoritative when present.  Columnar
    datasets additionally record the computed content fingerprint in
    their binary manifest
    (:attr:`~repro.store.MappedBrowsingDataset.content_fingerprint`),
    so an unprovenanced import still resolves without touching a single
    list page.  Only when neither record exists is the fingerprint a
    SHA-256 over every breakdown slug and its sites in canonical
    order — still a pure function of the content, just paid per call.
    """
    recorded = dataset.metadata.get("fingerprint")
    if isinstance(recorded, str) and recorded:
        return recorded
    recorded = getattr(dataset, "content_fingerprint", None)
    if isinstance(recorded, str) and recorded:
        return recorded
    digest = hashlib.sha256()
    for breakdown in sorted_breakdowns(dataset):
        digest.update(breakdown_slug(breakdown).encode("utf-8"))
        digest.update(b"\x00")
        for site in dataset[breakdown].sites:
            digest.update(site.encode("utf-8"))
            digest.update(b"\n")
    return digest.hexdigest()[:16]


# -- codec registry -----------------------------------------------------------------


@dataclass(frozen=True)
class DatasetCodec:
    """One on-disk dataset encoding: how to save, load and recognise it."""

    name: str
    save: Callable[[BrowsingDataset, Path], Path]
    load: Callable[[Path], BrowsingDataset]
    detect: Callable[[Path], bool]


_CODECS: dict[str, DatasetCodec] = {}

#: Detection order: binary manifests win when a directory carries both.
_DETECT_ORDER = ("columnar", "text")


def register_codec(codec: DatasetCodec) -> DatasetCodec:
    """Add (or replace) a codec under its name; returns it for chaining."""
    _CODECS[codec.name] = codec
    return codec


def _ensure_codecs() -> None:
    """Import-time registration of the built-in non-text codecs.

    The columnar codec lives in :mod:`repro.store`, which imports this
    module for the shared manifest helpers — so the registry pulls it
    in lazily rather than at import time.
    """
    if "columnar" not in _CODECS:
        from .. import store  # noqa: F401  (registers "columnar")


def codec_for(name: str) -> DatasetCodec:
    """The registered codec called ``name``; raises with valid choices."""
    _ensure_codecs()
    try:
        return _CODECS[name]
    except KeyError:
        choices = ", ".join(sorted(_CODECS))
        raise DatasetError(
            f"unknown dataset format {name!r}; choose one of: {choices}"
        ) from None


def available_formats() -> tuple[str, ...]:
    """Names of every registered codec, sorted."""
    _ensure_codecs()
    return tuple(sorted(_CODECS))


def detect_format(root: str | Path) -> str | None:
    """The codec whose files are present under ``root`` (or ``None``)."""
    _ensure_codecs()
    root = Path(root)
    for name in _DETECT_ORDER:
        codec = _CODECS.get(name)
        if codec is not None and codec.detect(root):
            return name
    for name, codec in sorted(_CODECS.items()):
        if name not in _DETECT_ORDER and codec.detect(root):
            return name
    return None


def save_dataset(
    dataset: BrowsingDataset, root: str | Path, *, format: str = "text"
) -> Path:
    """Write a dataset to ``root`` (created if needed); returns the path."""
    return codec_for(format).save(dataset, Path(root))


def load_dataset(root: str | Path, *, format: str | None = None) -> BrowsingDataset:
    """Load a dataset previously written by :func:`save_dataset`.

    With ``format=None`` (the default) the codec is auto-detected from
    the files present; pass a name to force one.
    """
    root = Path(root)
    if format is None:
        format = detect_format(root)
        if format is None:
            raise DatasetError(
                f"no dataset under {root}: neither manifest.bin (columnar) "
                "nor manifest.json (text) is present"
            )
    return codec_for(format).load(root)


def convert_dataset(
    src: str | Path, dst: str | Path, *, format: str = "columnar"
) -> Path:
    """Re-encode the dataset at ``src`` into ``dst`` under ``format``.

    Round-trips are exact: converting text → columnar → text yields
    byte-identical files, and the dataset fingerprint (hence every
    artifact-store and slice-cache address) is unchanged.
    """
    src, dst = Path(src), Path(dst)
    if dst.resolve() == src.resolve():
        raise DatasetError(
            "convert requires a destination different from the source "
            f"({src})"
        )
    return save_dataset(load_dataset(src), dst, format=format)


# -- the text codec -----------------------------------------------------------------


def _atomic_write_text(path: Path, text: str) -> None:
    """Crash-safe text write: temp sibling + ``os.replace``."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(prefix=f".{path.name}.", dir=path.parent)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _save_text(dataset: BrowsingDataset, root: Path) -> Path:
    lists_dir = root / "lists"

    breakdowns = []
    for breakdown in sorted_breakdowns(dataset):
        slug = breakdown_slug(breakdown)
        _atomic_write_text(
            lists_dir / f"{slug}.txt",
            "\n".join(dataset[breakdown].sites) + "\n",
        )
        breakdowns.append(
            {
                "country": breakdown.country,
                "platform": breakdown.platform.value,
                "metric": breakdown.metric.value,
                "month": [breakdown.month.year, breakdown.month.month],
                "file": f"lists/{slug}.txt",
            }
        )

    manifest = {
        "format_version": TEXT_FORMAT_VERSION,
        "metadata": _jsonable_metadata(dataset.metadata),
        "breakdowns": breakdowns,
        "distributions": distribution_entries(dataset),
    }
    # The manifest goes last: a torn save leaves stray list files at
    # worst, never a manifest naming files that are absent or short.
    _atomic_write_text(root / "manifest.json", json.dumps(manifest, indent=2))
    return root


def _load_text(root: Path) -> BrowsingDataset:
    manifest_path = root / "manifest.json"
    if not manifest_path.is_file():
        raise DatasetError(f"no manifest.json under {root}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("format_version") != TEXT_FORMAT_VERSION:
        raise DatasetError(
            f"unsupported format version {manifest.get('format_version')!r}"
        )

    lists: dict[Breakdown, RankedList] = {}
    for entry in manifest["breakdowns"]:
        breakdown = parse_breakdown_entry(entry)
        if breakdown in lists:
            raise DatasetError(
                f"{manifest_path}: duplicate manifest entry for {breakdown}"
            )
        path = root / entry["file"]
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise DatasetError(
                f"dataset at {root} is torn: manifest names "
                f"{entry['file']} for {breakdown}, but the file is absent"
            ) from None
        lists[breakdown] = RankedList(
            line for line in text.splitlines() if line
        )

    distributions = parse_distribution_entries(manifest["distributions"])
    return BrowsingDataset(lists, distributions, manifest.get("metadata", {}))


register_codec(
    DatasetCodec(
        name="text",
        save=_save_text,
        load=_load_text,
        detect=lambda root: (root / "manifest.json").is_file(),
    )
)


def __getattr__(name: str):  # pragma: no cover - compat shim
    if name == "_FORMAT_VERSION":
        from .._compat import warn_once

        warn_once(
            ("repro.export.io", "_FORMAT_VERSION"),
            "repro.export.io._FORMAT_VERSION is deprecated; "
            "use TEXT_FORMAT_VERSION",
        )
        return TEXT_FORMAT_VERSION
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
