"""Dataset persistence: the codec registry plus the text codec.

A saved dataset is a directory; *how* the directory encodes the lists
is a **codec**:

``text``      the original greppable layout — ``manifest.json`` plus
              one ``lists/<slug>.txt`` file per breakdown (one site per
              line, rank order).  Deliberately boring so exports can be
              consumed without this library; the export/debug codec.
``columnar``  the binary layout of :mod:`repro.store` — ``manifest.bin``,
              a packed vocabulary string table (``vocab.bin``) and one
              contiguous ``int32`` id array (``lists.bin``) that
              :func:`load_dataset` memory-maps, so cold start is
              O(open) and processes share pages.

:func:`save_dataset` takes ``format=``; :func:`load_dataset`
auto-detects from the files present (a ``manifest.bin`` wins over a
``manifest.json`` when both exist).  The two codecs round-trip exactly:
text → columnar → text is byte-identical, and
:func:`dataset_fingerprint` agrees across codecs, so artifact stores
and slice caches keyed by the fingerprint stay valid across a convert.

Saves are crash-safe under both codecs: every file is written to a
temp sibling and ``os.replace``\\ d into place, with the manifest
written last, so an interrupted save never leaves a manifest naming
files that are absent or torn.

The manifest's ``metadata`` object carries the generator provenance;
datasets produced by the generation engine include a ``fingerprint``
key there — the :meth:`GeneratorConfig.fingerprint` content address of
every generation knob — so an export can be matched to the exact
configuration (and slice-cache directory) that produced it.

Metadata values must be JSON-serializable; :class:`Month`,
:class:`Platform` and :class:`Metric` values are coerced to their
string forms, anything else unserializable raises :class:`DatasetError`
instead of being silently dropped.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping

from ..core.dataset import BrowsingDataset
from ..core.distribution import TrafficDistribution
from ..core.errors import DatasetError
from ..core.rankedlist import RankedList
from ..core.types import Breakdown, Metric, Month, Platform

TEXT_FORMAT_VERSION = 1

#: Subdirectory where superseded manifests are archived by ingest.
#: ``versions/manifest.v<N>.json`` (text) / ``.bin`` (columnar) pins
#: dataset version N; its list data stays valid because ingest is
#: append-only — old windows and old list files are never rewritten.
VERSIONS_DIR = "versions"


def dataset_version(dataset: BrowsingDataset) -> int:
    """The dataset's monotonic version (1 for pre-versioned saves)."""
    try:
        return int(getattr(dataset, "version", 1))
    except (TypeError, ValueError):
        return 1


class UnknownVersionError(DatasetError):
    """An ``as_of`` version that no manifest (live or archived) pins."""

    def __init__(self, root: Path, wanted: int, available: tuple[int, ...]):
        self.wanted = wanted
        self.available = available
        choices = ", ".join(str(v) for v in available)
        super().__init__(
            f"unknown dataset version {wanted} at {root}; "
            f"available versions: {choices}"
        )


def breakdown_slug(breakdown: Breakdown) -> str:
    """The filesystem-safe name for one breakdown's list file."""
    return (
        f"{breakdown.country}_{breakdown.platform.value}"
        f"_{breakdown.metric.value}_{breakdown.month}"
    )


# Backwards-compatible alias for the pre-engine private name.
_slug = breakdown_slug


def _jsonable_metadata(metadata: Mapping[str, object]) -> dict[str, object]:
    """Coerce metadata for the manifest, or raise instead of dropping."""
    out: dict[str, object] = {}
    for key, value in metadata.items():
        if isinstance(value, Month):
            value = str(value)
        elif isinstance(value, (Platform, Metric)):
            value = value.value
        else:
            try:
                json.dumps(value)
            except (TypeError, ValueError) as exc:
                raise DatasetError(
                    f"metadata value {key!r} of type {type(value).__name__} "
                    "is not JSON-serializable; coerce it before saving"
                ) from exc
        out[key] = value
    return out


def sorted_breakdowns(dataset: BrowsingDataset) -> list[Breakdown]:
    """The canonical save order every codec writes breakdowns in."""
    return sorted(
        dataset.breakdowns(),
        key=lambda b: (b.country, b.platform.value, b.metric.value, b.month),
    )


def distribution_entries(dataset: BrowsingDataset) -> list[dict]:
    """The canonical manifest rows for the distribution curves."""
    return [
        {
            "platform": platform.value,
            "metric": metric.value,
            **dist.to_dict(),
        }
        for (platform, metric), dist in sorted(
            dataset.distributions().items(),
            key=lambda kv: (kv[0][0].value, kv[0][1].value),
        )
    ]


def parse_distribution_entries(
    entries: list[dict],
) -> dict[tuple[Platform, Metric], TrafficDistribution]:
    return {
        (Platform(entry["platform"]), Metric(entry["metric"])):
            TrafficDistribution.from_dict(entry)
        for entry in entries
    }


def parse_breakdown_entry(entry: Mapping[str, object]) -> Breakdown:
    return Breakdown(
        entry["country"],
        Platform(entry["platform"]),
        Metric(entry["metric"]),
        Month(*entry["month"]),
    )


def dataset_fingerprint(dataset: BrowsingDataset) -> str:
    """The content address identifying this dataset's exact lists.

    Datasets produced by the generation engine carry the generator's
    ``fingerprint`` in their metadata, and save/load round-trips it, so
    the recorded value is authoritative when present.  Columnar
    datasets additionally record the computed content fingerprint in
    their binary manifest
    (:attr:`~repro.store.MappedBrowsingDataset.content_fingerprint`),
    so an unprovenanced import still resolves without touching a single
    list page.  Only when neither record exists is the fingerprint a
    SHA-256 over every breakdown slug and its sites in canonical
    order — still a pure function of the content, just paid per call.
    """
    recorded = dataset.metadata.get("fingerprint")
    if isinstance(recorded, str) and recorded:
        return recorded
    recorded = getattr(dataset, "content_fingerprint", None)
    if isinstance(recorded, str) and recorded:
        return recorded
    digest = hashlib.sha256()
    for breakdown in sorted_breakdowns(dataset):
        digest.update(breakdown_slug(breakdown).encode("utf-8"))
        digest.update(b"\x00")
        for site in dataset[breakdown].sites:
            digest.update(site.encode("utf-8"))
            digest.update(b"\n")
    return digest.hexdigest()[:16]


# -- codec registry -----------------------------------------------------------------


@dataclass(frozen=True)
class DatasetCodec:
    """One on-disk dataset encoding: how to save, load and recognise it.

    The three optional fields opt a codec into versioned (``as_of``)
    loading: ``manifest`` names the live manifest file, ``read_version``
    reads the ``dataset_version`` out of one manifest file, and
    ``load_at`` loads the dataset *as described by* an archived manifest
    under ``versions/`` (valid because ingest appends, never rewrites).
    """

    name: str
    save: Callable[[BrowsingDataset, Path], Path]
    load: Callable[[Path], BrowsingDataset]
    detect: Callable[[Path], bool]
    manifest: str | None = None
    read_version: Callable[[Path], int] | None = None
    load_at: Callable[[Path, Path], BrowsingDataset] | None = None

    def archived_manifest(self, root: Path, version: int) -> Path:
        """Where ingest archives the manifest that pinned ``version``."""
        suffix = Path(self.manifest).suffix if self.manifest else ""
        return Path(root) / VERSIONS_DIR / f"manifest.v{version}{suffix}"


_CODECS: dict[str, DatasetCodec] = {}

#: Detection order: binary manifests win when a directory carries both.
_DETECT_ORDER = ("columnar", "text")


def register_codec(codec: DatasetCodec) -> DatasetCodec:
    """Add (or replace) a codec under its name; returns it for chaining."""
    _CODECS[codec.name] = codec
    return codec


def _ensure_codecs() -> None:
    """Import-time registration of the built-in non-text codecs.

    The columnar codec lives in :mod:`repro.store`, which imports this
    module for the shared manifest helpers — so the registry pulls it
    in lazily rather than at import time.
    """
    if "columnar" not in _CODECS:
        from .. import store  # noqa: F401  (registers "columnar")


def codec_for(name: str) -> DatasetCodec:
    """The registered codec called ``name``; raises with valid choices."""
    _ensure_codecs()
    try:
        return _CODECS[name]
    except KeyError:
        choices = ", ".join(sorted(_CODECS))
        raise DatasetError(
            f"unknown dataset format {name!r}; choose one of: {choices}"
        ) from None


def available_formats() -> tuple[str, ...]:
    """Names of every registered codec, sorted."""
    _ensure_codecs()
    return tuple(sorted(_CODECS))


def detect_format(root: str | Path) -> str | None:
    """The codec whose files are present under ``root`` (or ``None``)."""
    _ensure_codecs()
    root = Path(root)
    for name in _DETECT_ORDER:
        codec = _CODECS.get(name)
        if codec is not None and codec.detect(root):
            return name
    for name, codec in sorted(_CODECS.items()):
        if name not in _DETECT_ORDER and codec.detect(root):
            return name
    return None


def save_dataset(
    dataset: BrowsingDataset, root: str | Path, *, format: str = "text"
) -> Path:
    """Write a dataset to ``root`` (created if needed); returns the path."""
    return codec_for(format).save(dataset, Path(root))


def _resolve_codec(root: Path, format: str | None) -> DatasetCodec:
    if format is None:
        format = detect_format(root)
        if format is None:
            raise DatasetError(
                f"no dataset under {root}: neither manifest.bin (columnar) "
                "nor manifest.json (text) is present"
            )
    return codec_for(format)


def dataset_versions(
    root: str | Path, *, format: str | None = None
) -> tuple[int, ...]:
    """Every loadable version at ``root``: archived ones plus the live one.

    A dataset that has never been ingested into has exactly one version
    (whatever its manifest records, 1 for pre-versioned saves); every
    ingest archives the superseded manifest under ``versions/`` and
    bumps the live one.
    """
    root = Path(root)
    codec = _resolve_codec(root, format)
    if codec.manifest is None or codec.read_version is None:
        raise DatasetError(
            f"codec {codec.name!r} does not support versioned loading"
        )
    versions = {codec.read_version(root / codec.manifest)}
    suffix = Path(codec.manifest).suffix
    for path in (root / VERSIONS_DIR).glob(f"manifest.v*{suffix}"):
        stem = path.name[len("manifest.v"):]
        stem = stem[: -len(suffix)] if suffix else stem
        try:
            versions.add(int(stem))
        except ValueError:
            continue
    return tuple(sorted(versions))


def latest_version(root: str | Path, *, format: str | None = None) -> int:
    """The version the live manifest at ``root`` records."""
    root = Path(root)
    codec = _resolve_codec(root, format)
    if codec.manifest is None or codec.read_version is None:
        raise DatasetError(
            f"codec {codec.name!r} does not support versioned loading"
        )
    return codec.read_version(root / codec.manifest)


def load_dataset(
    root: str | Path,
    *,
    format: str | None = None,
    as_of: int | None = None,
) -> BrowsingDataset:
    """Load a dataset previously written by :func:`save_dataset`.

    With ``format=None`` (the default) the codec is auto-detected from
    the files present; pass a name to force one.  ``as_of`` loads a
    specific dataset version: the live manifest when it matches, else
    the archived manifest under ``versions/`` — raising
    :class:`UnknownVersionError` (listing the available versions) when
    neither pins it.
    """
    root = Path(root)
    codec = _resolve_codec(root, format)
    if as_of is None:
        return codec.load(root)
    wanted = int(as_of)
    available = dataset_versions(root, format=codec.name)
    if wanted not in available:
        raise UnknownVersionError(root, wanted, available)
    if wanted == codec.read_version(root / codec.manifest):
        return codec.load(root)
    if codec.load_at is None:  # pragma: no cover - registry misuse
        raise DatasetError(
            f"codec {codec.name!r} cannot load archived versions"
        )
    return codec.load_at(root, codec.archived_manifest(root, wanted))


def convert_dataset(
    src: str | Path, dst: str | Path, *, format: str = "columnar"
) -> Path:
    """Re-encode the dataset at ``src`` into ``dst`` under ``format``.

    Round-trips are exact: converting text → columnar → text yields
    byte-identical files, and the dataset fingerprint (hence every
    artifact-store and slice-cache address) is unchanged.
    """
    src, dst = Path(src), Path(dst)
    if dst.resolve() == src.resolve():
        raise DatasetError(
            "convert requires a destination different from the source "
            f"({src})"
        )
    return save_dataset(load_dataset(src), dst, format=format)


# -- the text codec -----------------------------------------------------------------


def _atomic_write_text(path: Path, text: str) -> None:
    """Crash-safe text write: temp sibling + ``os.replace``."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(prefix=f".{path.name}.", dir=path.parent)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _save_text(dataset: BrowsingDataset, root: Path) -> Path:
    lists_dir = root / "lists"

    breakdowns = []
    for breakdown in sorted_breakdowns(dataset):
        slug = breakdown_slug(breakdown)
        _atomic_write_text(
            lists_dir / f"{slug}.txt",
            "\n".join(dataset[breakdown].sites) + "\n",
        )
        breakdowns.append(
            {
                "country": breakdown.country,
                "platform": breakdown.platform.value,
                "metric": breakdown.metric.value,
                "month": [breakdown.month.year, breakdown.month.month],
                "file": f"lists/{slug}.txt",
            }
        )

    manifest = {
        "format_version": TEXT_FORMAT_VERSION,
        "dataset_version": dataset_version(dataset),
        "metadata": _jsonable_metadata(dataset.metadata),
        "breakdowns": breakdowns,
        "distributions": distribution_entries(dataset),
    }
    # The manifest goes last: a torn save leaves stray list files at
    # worst, never a manifest naming files that are absent or short.
    _atomic_write_text(root / "manifest.json", json.dumps(manifest, indent=2))
    return root


def _load_text(
    root: Path, manifest_path: Path | None = None
) -> BrowsingDataset:
    if manifest_path is None:
        manifest_path = root / "manifest.json"
    if not manifest_path.is_file():
        raise DatasetError(f"no {manifest_path.name} under {root}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("format_version") != TEXT_FORMAT_VERSION:
        raise DatasetError(
            f"unsupported format version {manifest.get('format_version')!r}"
        )

    lists: dict[Breakdown, RankedList] = {}
    for entry in manifest["breakdowns"]:
        breakdown = parse_breakdown_entry(entry)
        if breakdown in lists:
            raise DatasetError(
                f"{manifest_path}: duplicate manifest entry for {breakdown}"
            )
        path = root / entry["file"]
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise DatasetError(
                f"dataset at {root} is torn: manifest names "
                f"{entry['file']} for {breakdown}, but the file is absent"
            ) from None
        lists[breakdown] = RankedList(
            line for line in text.splitlines() if line
        )

    distributions = parse_distribution_entries(manifest["distributions"])
    dataset = BrowsingDataset(
        lists, distributions, manifest.get("metadata", {})
    )
    dataset.version = int(manifest.get("dataset_version", 1))
    return dataset


def _read_text_version(manifest_path: Path) -> int:
    if not manifest_path.is_file():
        raise DatasetError(f"no {manifest_path.name} at {manifest_path}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    return int(manifest.get("dataset_version", 1))


register_codec(
    DatasetCodec(
        name="text",
        save=_save_text,
        load=_load_text,
        detect=lambda root: (root / "manifest.json").is_file(),
        manifest="manifest.json",
        read_version=_read_text_version,
        load_at=_load_text,
    )
)


def __getattr__(name: str):  # pragma: no cover - compat shim
    if name == "_FORMAT_VERSION":
        from .._compat import warn_once

        warn_once(
            ("repro.export.io", "_FORMAT_VERSION"),
            "repro.export.io._FORMAT_VERSION is deprecated; "
            "use TEXT_FORMAT_VERSION",
        )
        return TEXT_FORMAT_VERSION
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
