"""Dataset persistence: save/load a BrowsingDataset as plain files.

Layout::

    <root>/manifest.json            # breakdown index + distributions
    <root>/lists/<country>_<platform>_<metric>_<YYYY-MM>.txt
                                    # one site per line, rank order

The format is deliberately boring — greppable text files and one JSON
manifest — so exported datasets can be consumed without this library.
The manifest's ``metadata`` object carries the generator provenance;
datasets produced by the generation engine include a ``fingerprint``
key there — the :meth:`GeneratorConfig.fingerprint` content address of
every generation knob — so an export can be matched to the exact
configuration (and slice-cache directory) that produced it.

Metadata values must be JSON-serializable; :class:`Month`,
:class:`Platform` and :class:`Metric` values are coerced to their
string forms, anything else unserializable raises :class:`DatasetError`
instead of being silently dropped.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Mapping

from ..core.dataset import BrowsingDataset
from ..core.distribution import TrafficDistribution
from ..core.errors import DatasetError
from ..core.rankedlist import RankedList
from ..core.types import Breakdown, Metric, Month, Platform

_FORMAT_VERSION = 1


def breakdown_slug(breakdown: Breakdown) -> str:
    """The filesystem-safe name for one breakdown's list file."""
    return (
        f"{breakdown.country}_{breakdown.platform.value}"
        f"_{breakdown.metric.value}_{breakdown.month}"
    )


# Backwards-compatible alias for the pre-engine private name.
_slug = breakdown_slug


def _jsonable_metadata(metadata: Mapping[str, object]) -> dict[str, object]:
    """Coerce metadata for the manifest, or raise instead of dropping."""
    out: dict[str, object] = {}
    for key, value in metadata.items():
        if isinstance(value, Month):
            value = str(value)
        elif isinstance(value, (Platform, Metric)):
            value = value.value
        else:
            try:
                json.dumps(value)
            except (TypeError, ValueError) as exc:
                raise DatasetError(
                    f"metadata value {key!r} of type {type(value).__name__} "
                    "is not JSON-serializable; coerce it before saving"
                ) from exc
        out[key] = value
    return out


def dataset_fingerprint(dataset: BrowsingDataset) -> str:
    """The content address identifying this dataset's exact lists.

    Datasets produced by the generation engine carry the generator's
    ``fingerprint`` in their metadata, and save/load round-trips it, so
    the recorded value is authoritative when present.  For datasets
    from other sources (hand-built fixtures, external imports) the
    fingerprint is a SHA-256 over every breakdown slug and its sites in
    canonical order — still a pure function of the content, just paid
    per call instead of read from provenance.
    """
    recorded = dataset.metadata.get("fingerprint")
    if isinstance(recorded, str) and recorded:
        return recorded
    digest = hashlib.sha256()
    for breakdown in sorted(dataset.breakdowns()):
        digest.update(breakdown_slug(breakdown).encode("utf-8"))
        digest.update(b"\x00")
        for site in dataset[breakdown].sites:
            digest.update(site.encode("utf-8"))
            digest.update(b"\n")
    return digest.hexdigest()[:16]


def save_dataset(dataset: BrowsingDataset, root: str | Path) -> Path:
    """Write a dataset to ``root`` (created if needed); returns the path."""
    root = Path(root)
    lists_dir = root / "lists"
    lists_dir.mkdir(parents=True, exist_ok=True)

    breakdowns = []
    for breakdown in sorted(
        dataset.breakdowns(),
        key=lambda b: (b.country, b.platform.value, b.metric.value, b.month),
    ):
        slug = breakdown_slug(breakdown)
        path = lists_dir / f"{slug}.txt"
        path.write_text("\n".join(dataset[breakdown].sites) + "\n", encoding="utf-8")
        breakdowns.append(
            {
                "country": breakdown.country,
                "platform": breakdown.platform.value,
                "metric": breakdown.metric.value,
                "month": [breakdown.month.year, breakdown.month.month],
                "file": f"lists/{slug}.txt",
            }
        )

    manifest = {
        "format_version": _FORMAT_VERSION,
        "metadata": _jsonable_metadata(dataset.metadata),
        "breakdowns": breakdowns,
        "distributions": [
            {
                "platform": platform.value,
                "metric": metric.value,
                **dist.to_dict(),
            }
            for (platform, metric), dist in sorted(
                dataset.distributions().items(),
                key=lambda kv: (kv[0][0].value, kv[0][1].value),
            )
        ],
    }
    (root / "manifest.json").write_text(
        json.dumps(manifest, indent=2), encoding="utf-8"
    )
    return root


def load_dataset(root: str | Path) -> BrowsingDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    root = Path(root)
    manifest_path = root / "manifest.json"
    if not manifest_path.is_file():
        raise DatasetError(f"no manifest.json under {root}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise DatasetError(
            f"unsupported format version {manifest.get('format_version')!r}"
        )

    lists: dict[Breakdown, RankedList] = {}
    for entry in manifest["breakdowns"]:
        breakdown = Breakdown(
            entry["country"],
            Platform(entry["platform"]),
            Metric(entry["metric"]),
            Month(*entry["month"]),
        )
        path = root / entry["file"]
        sites = [
            line for line in path.read_text(encoding="utf-8").splitlines() if line
        ]
        lists[breakdown] = RankedList(sites)

    distributions = {
        (Platform(entry["platform"]), Metric(entry["metric"])):
            TrafficDistribution.from_dict(entry)
        for entry in manifest["distributions"]
    }
    return BrowsingDataset(lists, distributions, manifest.get("metadata", {}))
