"""Exports: CrUX-style public rank buckets and dataset persistence."""

from .crux import (
    CRUX_BUCKETS,
    CruxExport,
    bucket_of,
    coarsen_list,
    export_crux,
    global_ranking,
)
from .io import (
    DatasetCodec,
    available_formats,
    breakdown_slug,
    convert_dataset,
    dataset_fingerprint,
    detect_format,
    load_dataset,
    register_codec,
    save_dataset,
)

__all__ = [
    "CRUX_BUCKETS",
    "CruxExport",
    "DatasetCodec",
    "available_formats",
    "breakdown_slug",
    "bucket_of",
    "coarsen_list",
    "convert_dataset",
    "dataset_fingerprint",
    "detect_format",
    "export_crux",
    "global_ranking",
    "load_dataset",
    "register_codec",
    "save_dataset",
]
