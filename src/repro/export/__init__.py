"""Exports: CrUX-style public rank buckets and dataset persistence."""

from .crux import (
    CRUX_BUCKETS,
    CruxExport,
    bucket_of,
    coarsen_list,
    export_crux,
    global_ranking,
)
from .io import breakdown_slug, dataset_fingerprint, load_dataset, save_dataset

__all__ = [
    "CRUX_BUCKETS",
    "CruxExport",
    "breakdown_slug",
    "bucket_of",
    "coarsen_list",
    "dataset_fingerprint",
    "export_crux",
    "global_ranking",
    "load_dataset",
    "save_dataset",
]
