"""CrUX-style public export: rank-magnitude buckets (Section 3.1).

"Although the data we use for this study is not public, a
coarser-grained version is available publicly through the CrUX dataset
... rank-order magnitude buckets of websites ranked by completed page
loads and aggregated both per-country and globally."

This module produces that public view from a private dataset: each site
is coarsened to the smallest magnitude bucket containing its rank
(1K, 5K, 10K, 50K, ...), per country and globally.  The global ranking
is aggregated from the per-country lists by traffic-weighted scoring,
since no global list exists in the private data either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.dataset import BrowsingDataset
from ..core.distribution import TrafficDistribution
from ..core.rankedlist import RankedList
from ..core.types import Metric, Month, Platform
from ..world.countries import get_country

#: CrUX's published rank magnitudes.
CRUX_BUCKETS: tuple[int, ...] = (1_000, 5_000, 10_000, 50_000, 100_000,
                                 500_000, 1_000_000)


def bucket_of(rank: int, buckets: tuple[int, ...] = CRUX_BUCKETS) -> int:
    """The smallest magnitude bucket containing ``rank``."""
    if rank < 1:
        raise ValueError("rank must be >= 1")
    for bucket in buckets:
        if rank <= bucket:
            return bucket
    return buckets[-1]


@dataclass(frozen=True)
class CruxExport:
    """The public view of one (platform, metric, month) slice."""

    platform: Platform
    metric: Metric
    month: Month
    per_country: dict[str, dict[str, int]]   # country -> site -> bucket
    global_buckets: dict[str, int]           # site -> bucket

    def countries(self) -> tuple[str, ...]:
        return tuple(sorted(self.per_country))

    def sites_in_bucket(self, bucket: int, country: str | None = None) -> set[str]:
        """Sites whose coarsened rank is exactly ``bucket``."""
        source = (
            self.global_buckets if country is None else self.per_country[country]
        )
        return {site for site, b in source.items() if b == bucket}


def coarsen_list(
    ranked: RankedList, buckets: tuple[int, ...] = CRUX_BUCKETS
) -> dict[str, int]:
    """site → magnitude bucket for one ranked list."""
    return {
        site: bucket_of(position, buckets)
        for position, site in enumerate(ranked.sites, start=1)
    }


def global_ranking(
    lists_by_country: Mapping[str, RankedList],
    distribution: TrafficDistribution,
) -> RankedList:
    """Aggregate per-country lists into one global ranking.

    Each site scores the sum over countries of
    ``install-base weight × traffic share of its rank`` — the natural
    model given that only rank lists and the traffic curve exist.
    """
    if not lists_by_country:
        raise ValueError("no country lists to aggregate")
    scores: dict[str, float] = {}
    for country, ranked in lists_by_country.items():
        weight = get_country(country).web_scale
        shares = distribution.weights(len(ranked))
        for position, site in enumerate(ranked.sites):
            scores[site] = scores.get(site, 0.0) + weight * float(shares[position])
    return RankedList.from_scores(scores)


def export_crux(
    dataset: BrowsingDataset,
    platform: Platform,
    month: Month,
    metric: Metric = Metric.PAGE_LOADS,
    buckets: tuple[int, ...] = CRUX_BUCKETS,
    countries: tuple[str, ...] | None = None,
) -> CruxExport:
    """Produce the CrUX-style public view of a dataset slice.

    CrUX publishes only the completed-page-loads ranking; requesting
    another metric is allowed (for ablations) but not what the public
    dataset contains.
    """
    lists = dataset.select(platform, metric, month, countries)
    if not lists:
        raise ValueError("dataset slice is empty")
    per_country = {
        country: coarsen_list(ranked, buckets)
        for country, ranked in lists.items()
    }
    ranking = global_ranking(lists, dataset.distribution(platform, metric))
    return CruxExport(
        platform=platform,
        metric=metric,
        month=month,
        per_country=per_country,
        global_buckets=coarsen_list(ranking, buckets),
    )
