"""repro.api — the stable top-level facade.

Seven verbs cover the library's lifecycle, re-exported from
``repro/__init__.py`` so no consumer needs a deep import:

* :func:`generate` — build a dataset (optionally parallel, cached,
  lazy, and/or saved to disk in either storage format);
* :func:`load` — read a saved dataset back (codec auto-detected; a
  columnar directory opens memory-mapped in O(open)); ``as_of=``
  opens an earlier dataset version through its archived manifest;
* :func:`ingest` — append new months to a saved dataset in place,
  bumping its dataset version and archiving the previous manifest;
* :func:`convert` — re-encode a saved dataset between the text and
  columnar codecs, byte-identically;
* :func:`analyze` — run one pipeline task and return its result;
* :func:`report` — run the full analysis DAG into a run directory;
* :func:`serve` — stand up the HTTP serving layer over a dataset.

Dataset-versioned verbs (:func:`load`, :func:`analyze`, :func:`report`,
:func:`serve`) take a keyword-only ``as_of=<version>`` selecting which
dataset version to read (default: latest).  The handle :func:`load`
returns exposes ``.version``, ``.months`` and ``.fingerprint``, so
callers can record exactly what they analysed.

Every function accepts plain strings where an enum or value type would
otherwise be required (``platforms=("windows",)``,
``months=("2022-02",)``), coercing through the same value types the
deep APIs use, and every dataset-accepting function takes
``BrowsingDataset | str | Path`` interchangeably.  The CLI's ``_cmd_*``
handlers are thin wrappers over these functions — the shell and Python
surfaces cannot drift apart.

This module imports lazily: ``import repro`` stays cheap, and heavy
subsystems (the generator universe, the analysis catalogue) load only
when the corresponding verb is first used.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from .core.types import Metric, Month, Platform

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core.dataset import BrowsingDataset
    from .engine.cache import SliceCache
    from .pipeline.artifacts import ArtifactStore
    from .pipeline.runner import RunReport
    from .service.http import ReproHTTPServer
    from .synth.generator import GeneratorConfig

#: What every dataset-accepting facade function takes.
DatasetLike = "BrowsingDataset | str | Path"


def _months(values: Iterable["Month | str"] | None) -> tuple[Month, ...] | None:
    if values is None:
        return None
    return tuple(
        Month.parse(v) if isinstance(v, str) else v for v in values
    )


def _platforms(
    values: Iterable["Platform | str"] | None,
) -> tuple[Platform, ...] | None:
    if values is None:
        return None
    return tuple(Platform(v) if isinstance(v, str) else v for v in values)


def _metrics(values: Iterable["Metric | str"] | None) -> tuple[Metric, ...] | None:
    if values is None:
        return None
    return tuple(Metric(v) if isinstance(v, str) else v for v in values)


def load(
    data: "DatasetLike",
    *,
    format: str | None = None,
    as_of: int | None = None,
) -> "BrowsingDataset":
    """A :class:`BrowsingDataset` from a saved directory (or passthrough).

    The storage codec is auto-detected (``format=None``): a columnar
    directory comes back as a memory-mapped
    :class:`~repro.store.MappedBrowsingDataset` whose lists materialise
    lazily, a text directory as the eager container.  ``as_of=<version>``
    opens that archived dataset version instead of the latest (raising
    :class:`~repro.export.io.UnknownVersionError` with the available
    versions if it does not exist).  The returned handle carries
    ``.version``, ``.months`` and ``.fingerprint``.
    """
    from .core.dataset import BrowsingDataset

    if isinstance(data, BrowsingDataset):
        if as_of is not None and int(as_of) != int(data.version):
            raise ValueError(
                f"as_of={as_of} cannot re-open an in-memory dataset "
                f"(its version is {data.version}); pass the saved "
                "dataset path instead"
            )
        return data
    from .export.io import load_dataset

    return load_dataset(data, format=format, as_of=as_of)


def ingest(
    data: str | Path,
    months: Iterable["Month | str"],
    *,
    format: str | None = None,
    config: "GeneratorConfig | None" = None,
    small: bool = False,
    seed: int | None = None,
    jobs: int | None = None,
    cache: "SliceCache | str | Path | None" = None,
):
    """Append ``months`` to the saved dataset at ``data``, in place.

    Generates only the missing month slices (through the same
    :class:`~repro.engine.GenerationEngine` as :func:`generate`, so the
    grown dataset is byte-identical to one generated with all months up
    front), archives the previous manifest under ``versions/`` and bumps
    the dataset version.  Months already present are skipped; if nothing
    is missing the dataset is untouched — a byte-identical no-op.
    Returns an :class:`~repro.store.IngestReport` (``.version_before``,
    ``.version``, ``.months_added``, ``.changed``).
    """
    from .store.ingest import ingest_months

    return ingest_months(
        data,
        months,
        format=format,
        config=config,
        small=small,
        seed=seed,
        jobs=jobs,
        cache=cache,
    )


def convert(
    src: str | Path, dst: str | Path, *, format: str = "columnar"
) -> Path:
    """Re-encode the saved dataset at ``src`` into ``dst``.

    Conversion is lossless and exact: text → columnar → text files are
    byte-identical, and :func:`repro.export.io.dataset_fingerprint` is
    unchanged, so warm artifact stores and slice caches keyed by the
    fingerprint remain valid for the converted copy.
    """
    from .export.io import convert_dataset

    return convert_dataset(src, dst, format=format)


def generate(
    *,
    small: bool = False,
    seed: int = 2022,
    config: "GeneratorConfig | None" = None,
    countries: Iterable[str] | None = None,
    platforms: Iterable["Platform | str"] | None = None,
    metrics: Iterable["Metric | str"] | None = None,
    months: Iterable["Month | str"] | None = None,
    all_months: bool = False,
    jobs: int = 1,
    cache: "SliceCache | str | Path | None" = None,
    lazy: bool = False,
    out: str | Path | None = None,
    format: str = "text",
    trace: str | Path | None = None,
) -> "BrowsingDataset":
    """Build a synthetic dataset through the generation engine.

    ``config`` overrides ``small``/``seed``; ``months`` beats
    ``all_months``; ``jobs > 1`` fans per-country work units out to a
    process pool (byte-identical to serial); ``cache`` warms/reads the
    content-addressed slice cache; ``lazy=True`` returns a
    :class:`~repro.engine.LazyBrowsingDataset` whose slices materialise
    on first access (incompatible with ``out``); ``out`` saves the
    dataset before returning it, encoded by ``format`` (``"text"`` or
    ``"columnar"``); ``trace`` writes a JSONL span trace of the run
    (see :mod:`repro.obs`).
    """
    from .core.types import REFERENCE_MONTH, STUDY_MONTHS
    from .engine.engine import GenerationEngine
    from .obs import tracing
    from .synth.generator import GeneratorConfig

    if config is None:
        config = (GeneratorConfig.small(seed=seed) if small
                  else GeneratorConfig(seed=seed))
    resolved_months = _months(months) or (
        STUDY_MONTHS if all_months else (REFERENCE_MONTH,)
    )
    grid = {
        "countries": tuple(countries) if countries else None,
        "platforms": _platforms(platforms) or Platform.studied(),
        "metrics": _metrics(metrics) or Metric.studied(),
        "months": resolved_months,
    }
    engine = GenerationEngine(config, jobs=jobs, cache=cache)
    if lazy:
        if out is not None:
            raise ValueError("lazy=True cannot be combined with out= "
                             "(saving would materialise every slice)")
        if trace is not None:
            raise ValueError("trace= cannot be combined with lazy=True "
                             "(there is no bounded run to trace)")
        return engine.generate_lazy(**grid)
    with tracing(trace):
        dataset = engine.generate(**grid)
        if out is not None:
            from .export.io import save_dataset

            save_dataset(dataset, out, format=format)
    return dataset


def _context_config(
    dataset: "BrowsingDataset",
    config: "GeneratorConfig | None",
    small: bool,
    seed: int | None,
) -> "GeneratorConfig":
    if config is not None:
        return config
    from .pipeline.context import infer_config

    return infer_config(dataset, small=small, seed=seed)


def analyze(
    data: "DatasetLike",
    task: str,
    *,
    store: "ArtifactStore | str | Path | None" = None,
    config: "GeneratorConfig | None" = None,
    month: "Month | str | None" = None,
    small: bool = False,
    seed: int | None = None,
    as_of: int | None = None,
) -> object:
    """Run one registered pipeline task and return its (JSON-shaped) result.

    Dependencies are resolved and cached through the same
    :class:`~repro.pipeline.PipelineRunner` the full report uses.
    ``as_of=<version>`` analyses that archived dataset version instead
    of the latest.  Raises
    :class:`~repro.core.errors.PipelineError` if the task body
    failed and :class:`~repro.core.errors.TaskUnavailable` if this
    dataset cannot support it.
    """
    from .core.errors import PipelineError, TaskUnavailable
    from .pipeline import TaskStatus, run_pipeline

    dataset = load(data, as_of=as_of)
    report = run_pipeline(
        dataset,
        [task],
        store=store,
        config=_context_config(dataset, config, small, seed),
        month=Month.parse(month) if isinstance(month, str) else month,
    )
    record = report.records[task]
    if record.status is TaskStatus.FAILED:
        raise PipelineError(record.error or f"task {task!r} failed")
    if record.status is TaskStatus.SKIPPED:
        raise TaskUnavailable(record.error or f"task {task!r} unavailable")
    return report.results[task]


def report(
    data: "DatasetLike",
    out: str | Path,
    *,
    tasks: Iterable[str] | None = None,
    jobs: int = 1,
    store: "ArtifactStore | str | Path | None" = None,
    no_store: bool = False,
    config: "GeneratorConfig | None" = None,
    month: "Month | str | None" = None,
    small: bool = False,
    seed: int | None = None,
    as_of: int | None = None,
    trace: str | Path | None = None,
) -> "RunReport":
    """Run the analysis DAG into a run directory; returns the run report.

    The artifact store defaults to ``<data>/.artifacts`` when ``data``
    is a saved-dataset path (so identical reruns execute zero tasks);
    pass ``no_store=True`` to recompute everything.  ``as_of=<version>``
    reports over that archived dataset version instead of the latest.
    ``trace`` writes a JSONL span trace covering dataset load (incl.
    any engine work a lazy dataset triggers) and every pipeline task.
    """
    from .obs import tracing
    from .pipeline import default_registry, run_pipeline, write_run_dir

    with tracing(trace):
        dataset = load(data, as_of=as_of)
        if no_store:
            store = None
        elif store is None and isinstance(data, (str, Path)):
            store = Path(data) / ".artifacts"
        run = run_pipeline(
            dataset,
            list(tasks) if tasks is not None else None,
            jobs=jobs,
            store=store,
            config=_context_config(dataset, config, small, seed),
            month=Month.parse(month) if isinstance(month, str) else month,
        )
        write_run_dir(out, default_registry(), run)
    return run


def _build_service(
    data: "DatasetLike",
    *,
    store: "ArtifactStore | str | Path | None" = None,
    no_store: bool = False,
    cache_size: int = 256,
    cache_bytes: int | None = None,
    jobs: int = 1,
    config: "GeneratorConfig | None" = None,
    month: "Month | str | None" = None,
    small: bool = False,
    seed: int | None = None,
    as_of: int | None = None,
):
    """The :class:`~repro.service.QueryService` behind :func:`serve`.

    Shared by the single-process server and every fleet worker (which
    calls this *after* forking, so a columnar dataset mmaps in the
    worker and the page cache is the one shared copy).  ``as_of`` pins
    the service to one dataset version; the default (latest) service
    follows the live manifest and picks up ingests without a restart.
    """
    from .service.query import QueryService

    dataset = load(data, as_of=as_of)
    if no_store:
        store = None
    elif store is None and isinstance(data, (str, Path)):
        store = Path(data) / ".artifacts"
    root = data if isinstance(data, (str, Path)) else getattr(
        dataset, "root", None
    )
    return QueryService(
        dataset,
        store=store,
        config=_context_config(dataset, config, small, seed),
        month=Month.parse(month) if isinstance(month, str) else month,
        cache=cache_size,
        cache_bytes=cache_bytes,
        jobs=jobs,
        root=root,
        version=int(as_of) if as_of is not None else None,
    )


def serve(
    data: "DatasetLike",
    *,
    host: str = "127.0.0.1",
    port: int = 8000,
    workers: int = 1,
    store: "ArtifactStore | str | Path | None" = None,
    no_store: bool = False,
    cache_size: int = 256,
    cache_bytes: int | None = None,
    jobs: int = 1,
    config: "GeneratorConfig | None" = None,
    month: "Month | str | None" = None,
    small: bool = False,
    seed: int | None = None,
    as_of: int | None = None,
    block: bool = True,
    trace: str | Path | None = None,
):
    """Serve a dataset over the JSON HTTP API (see :mod:`repro.service`).

    ``as_of=<version>`` pins the whole server to one archived dataset
    version; by default it serves the latest version and follows the
    live manifest (an ``ingest`` into the same directory is picked up
    on the next request, and clients can still query older versions per
    request with ``?as_of=``).

    With ``block=True`` (the default) this serves until interrupted and
    returns ``None``.  With ``block=False`` it returns the bound
    :class:`~repro.service.ReproHTTPServer` — call ``serve_forever()``
    (e.g. on a thread) and ``shutdown()`` yourself; ``port=0`` picks a
    free port, recorded in ``server.server_address``.

    ``workers > 1`` switches to the pre-forked fleet (see
    :mod:`repro.fleet`): N processes share the listening socket and one
    mmap'd dataset, cacheable payloads are consistent-hash-routed so
    each renders once fleet-wide, and ``/v1/metrics`` reports the
    merged view.  ``block=False`` then returns the started
    :class:`~repro.fleet.FleetSupervisor` (``.url``, ``.stop()``).
    ``trace`` is single-process only — fleet workers would race on one
    trace file.

    Like :func:`report`, the artifact store defaults to
    ``<data>/.artifacts`` for saved-dataset paths, so analyses whose
    artifacts exist are served without recomputation.  ``trace``
    installs a tracer for the server's lifetime (one ``http.request``
    span per request); the JSONL file is written when
    :func:`repro.service.serve_forever` returns — embedders who drive
    ``server.serve_forever()`` directly should close
    ``server.trace_scope`` themselves.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers > 1:
        if trace is not None:
            raise ValueError(
                "trace= cannot be combined with workers > 1 "
                "(fleet workers would race on one trace file)"
            )
        if not isinstance(data, (str, Path)):
            raise ValueError(
                "fleet serving needs a saved-dataset path — each worker "
                "opens (mmaps) the dataset itself after forking"
            )
        from .fleet import FleetSupervisor

        supervisor = FleetSupervisor(
            data,
            host=host,
            port=port,
            workers=workers,
            store=store,
            no_store=no_store,
            cache_size=cache_size,
            cache_bytes=cache_bytes,
            jobs=jobs,
            month=month,
            small=small,
            seed=seed,
            as_of=as_of,
        )
        if not block:
            return supervisor.start()
        supervisor.run()
        return None
    from .obs import tracing
    from .service.http import create_server, serve_forever

    scope = tracing(trace)
    scope.__enter__()
    try:
        service = _build_service(
            data,
            store=store,
            no_store=no_store,
            cache_size=cache_size,
            cache_bytes=cache_bytes,
            jobs=jobs,
            config=config,
            month=month,
            small=small,
            seed=seed,
            as_of=as_of,
        )
        server = create_server(service, host=host, port=port)
    except BaseException:
        scope.__exit__(None, None, None)
        raise
    server.trace_scope = scope if trace is not None else None
    if not block:
        return server
    serve_forever(server)
    return None


def loadtest(
    url: str,
    *,
    duration: float | None = None,
    requests: int | None = None,
    concurrency: int = 8,
    client_procs: int = 1,
    seed: int = 2022,
    top_sites: int = 100,
    slo: "object | None" = None,
    timeout: float = 10.0,
    baseline: "dict | None" = None,
    min_speedup: float | None = None,
    bench_out: str | Path | None = None,
):
    """Replay a Zipf-shaped query mix against a running server.

    A thin facade over :func:`repro.fleet.loadtest.run_loadtest`: the
    mix is discovered from the server itself (countries from the
    rankings choices, the Zipf exponent fit to ``/v1/distributions``),
    replayed from ``concurrency`` keep-alive connections, and measured
    as per-endpoint p50/p95/p99 plus overall throughput.  Returns the
    :class:`~repro.fleet.loadtest.LoadTestReport`; check ``report.ok``
    / ``report.violations()`` against the given ``slo``.  ``bench_out``
    additionally writes the payload as ``BENCH_service.json``.
    """
    from .fleet.loadtest import run_loadtest

    report = run_loadtest(
        url,
        duration=duration,
        requests=requests,
        concurrency=concurrency,
        client_procs=client_procs,
        seed=seed,
        top_sites=top_sites,
        slo=slo,
        timeout=timeout,
        baseline=baseline,
        min_speedup=min_speedup,
    )
    if bench_out is not None:
        report.write_bench_json(bench_out)
    return report


__all__ = [
    "analyze", "convert", "generate", "ingest", "load", "loadtest",
    "report", "serve",
]
