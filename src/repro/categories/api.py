"""A simulated domain-categorisation API (stand-in for Cloudflare's).

Section 3.2 categorises websites with Cloudflare's Domain Intelligence
API, then validates it manually because the API is imperfect.  Our
simulated API wraps the universe's ground-truth labels and injects the
error structure the paper observed:

* most categories are right ~90+ % of the time;
* *Search Engines* and *Social Networks* fall below the 80 % bar
  (the paper manually curates those two instead);
* a slice of lookups returns one of the 19 junk/raw categories
  (Content Servers, Parked Domains, ...) that the accuracy analysis
  ends up dropping entirely.

Errors are deterministic per (seed, domain), so validation workflows are
reproducible.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from ..core.errors import TaxonomyError
from ..world.categories_data import DROPPED_RAW_CATEGORIES
from .taxonomy import FINAL_TAXONOMY, Taxonomy

#: Per-category API accuracy overrides (probability the label is right).
#: The two curated categories are the low-accuracy ones the paper calls
#: out; a few others are middling, as Figure 13's bars suggest.
DEFAULT_CATEGORY_ACCURACY: dict[str, float] = {
    "Search Engines": 0.55,
    "Social Networks": 0.62,
    "Entertainment": 0.84,
    "Lifestyle": 0.85,
    "Questionable Content": 0.82,
    "Redirect": 0.83,
    "Unknown": 1.00,
}

#: Plausible confusions: when the API errs on category X it usually
#: lands on a semantically adjacent label, not a uniform draw.
CONFUSION_MAP: dict[str, tuple[str, ...]] = {
    "Pornography": ("Adult Themes", "Sexuality"),
    "Adult Themes": ("Pornography", "Lifestyle"),
    "Search Engines": ("Technology", "Unknown", "Business"),
    "Social Networks": ("Forums", "Entertainment", "Chat & Messaging"),
    "Video Streaming": ("Movies & Home Video", "Entertainment", "Television"),
    "Movies & Home Video": ("Video Streaming", "Entertainment"),
    "News & Media": ("Magazines", "Entertainment", "Sports"),
    "Ecommerce": ("Auctions & Marketplaces", "Business", "Coupons"),
    "Educational Institutions": ("Education", "Science"),
    "Education": ("Educational Institutions", "Science"),
    "Economy & Finance": ("Business", "Technology"),
    "Gaming": ("Entertainment", "Technology"),
    "Chat & Messaging": ("Social Networks", "Technology"),
    "Forums": ("Social Networks", "Technology"),
    "Webmail": ("Technology", "Search Engines"),
    # Inbound flows into the curated categories: the real API overmarks
    # portal-ish and community-ish sites, which (combined with the base
    # rates — Technology alone outnumbers true search engines ~100:1) is
    # what ruins the *precision* the manual review measures.
    "Technology": ("Business", "Search Engines", "Unknown"),
    "Entertainment": ("Social Networks", "Lifestyle", "News & Media"),
    "Lifestyle": ("Social Networks", "Hobbies & Interests", "Unknown"),
    "Business": ("Technology", "Economy & Finance", "Unknown"),
}


@dataclass(frozen=True)
class APIConfig:
    """Error-model knobs for the simulated API."""

    seed: int = 7
    default_accuracy: float = 0.93
    category_accuracy: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_CATEGORY_ACCURACY)
    )
    junk_label_rate: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.default_accuracy <= 1.0:
            raise TaxonomyError("default_accuracy must be in [0, 1]")
        if not 0.0 <= self.junk_label_rate < 1.0:
            raise TaxonomyError("junk_label_rate must be in [0, 1)")
        for cat, acc in self.category_accuracy.items():
            if not 0.0 <= acc <= 1.0:
                raise TaxonomyError(f"accuracy for {cat!r} must be in [0, 1]")

    def accuracy_for(self, category: str) -> float:
        return self.category_accuracy.get(category, self.default_accuracy)


class DomainIntelligenceAPI:
    """Categorises domains with a realistic, reproducible error model.

    Parameters
    ----------
    truth:
        Ground-truth mapping domain → category (from the universe).
    config:
        Error model; defaults mirror the paper's observations.
    taxonomy:
        The label vocabulary the API draws from when it errs.
    """

    def __init__(
        self,
        truth: Mapping[str, str],
        config: APIConfig | None = None,
        taxonomy: Taxonomy = FINAL_TAXONOMY,
    ) -> None:
        self._truth = truth
        self.config = config or APIConfig()
        self._taxonomy = taxonomy
        self._vocab = taxonomy.categories

    # -- internals --------------------------------------------------------------------

    def _rng(self, domain: str) -> np.random.Generator:
        key = zlib.crc32(domain.encode("utf-8"))
        return np.random.default_rng(np.random.SeedSequence([self.config.seed, key]))

    def _wrong_label(self, truth_category: str, rng: np.random.Generator) -> str:
        confusions = CONFUSION_MAP.get(truth_category)
        if confusions and rng.random() < 0.75:
            return str(confusions[int(rng.integers(len(confusions)))])
        # Uniform over the rest of the vocabulary.
        choice = truth_category
        while choice == truth_category:
            choice = self._vocab[int(rng.integers(len(self._vocab)))]
        return choice

    # -- public API ---------------------------------------------------------------------

    def lookup(self, domain: str) -> str:
        """The API's (possibly wrong) raw label for ``domain``.

        Unknown domains return ``"Unknown"``, as the real API does for
        domains it has no intelligence on.
        """
        truth_category = self._truth.get(domain)
        if truth_category is None:
            return "Unknown"
        rng = self._rng(domain)
        if rng.random() < self.config.junk_label_rate:
            return str(
                DROPPED_RAW_CATEGORIES[int(rng.integers(len(DROPPED_RAW_CATEGORIES)))]
            )
        if rng.random() < self.config.accuracy_for(truth_category):
            return truth_category
        return self._wrong_label(truth_category, rng)

    def bulk_lookup(self, domains: Iterable[str]) -> dict[str, str]:
        """Label many domains (the paper queried every top-10K site)."""
        return {d: self.lookup(d) for d in domains}

    def ground_truth(self, domain: str) -> str | None:
        """The true category — only available to the validation oracle.

        In the real study this is what human review recovers; tests and
        the manual-review simulation use it the same way.
        """
        return self._truth.get(domain)
