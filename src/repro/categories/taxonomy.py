"""Taxonomy objects: categories, supercategories, lookup and merging.

Wraps the static Table 3 data (:mod:`repro.world.categories_data`) in a
queryable object used by every category-level analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..core.errors import TaxonomyError
from ..world.categories_data import (
    ALL_CATEGORIES,
    CURATED_CATEGORIES,
    MERGED_RAW_CATEGORIES,
    TABLE3_TAXONOMY,
    CategorySpec,
)


@dataclass(frozen=True)
class Taxonomy:
    """An immutable category taxonomy with supercategory structure."""

    specs: tuple[CategorySpec, ...]

    def __post_init__(self) -> None:
        names = [s.name for s in self.specs]
        if len(names) != len(set(names)):
            raise TaxonomyError("duplicate category names in taxonomy")

    # -- constructors -------------------------------------------------------------

    @classmethod
    def final(cls) -> "Taxonomy":
        """The paper's final working taxonomy: Table 3 + curated categories."""
        return cls(ALL_CATEGORIES)

    @classmethod
    def table3(cls) -> "Taxonomy":
        """Exactly the 22-super / 61-category taxonomy of Table 3."""
        return cls(TABLE3_TAXONOMY)

    # -- queries --------------------------------------------------------------------

    @property
    def categories(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.specs)

    @property
    def supercategories(self) -> tuple[str, ...]:
        seen: list[str] = []
        for s in self.specs:
            if s.supercategory not in seen:
                seen.append(s.supercategory)
        return tuple(seen)

    def __contains__(self, category: str) -> bool:
        return any(s.name == category for s in self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def supercategory_of(self, category: str) -> str:
        for s in self.specs:
            if s.name == category:
                return s.supercategory
        raise TaxonomyError(f"unknown category {category!r}")

    def in_supercategory(self, supercategory: str) -> tuple[str, ...]:
        out = tuple(s.name for s in self.specs if s.supercategory == supercategory)
        if not out:
            raise TaxonomyError(f"unknown supercategory {supercategory!r}")
        return out

    def is_curated(self, category: str) -> bool:
        for s in self.specs:
            if s.name == category:
                return s.curated
        raise TaxonomyError(f"unknown category {category!r}")

    @property
    def curated(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.specs if s.curated)

    # -- label normalisation --------------------------------------------------------

    def normalize(self, raw_label: str) -> str:
        """Map a raw API label into this taxonomy.

        Applies the merge table from Section 3.2 (e.g. ``Chat`` →
        ``Chat & Messaging``); labels outside the taxonomy fall back to
        ``Unknown``, mirroring "we exclude 19 categories and merge their
        websites into our Other/Unknown category".
        """
        label = MERGED_RAW_CATEGORIES.get(raw_label, raw_label)
        if label in self:
            return label
        return "Unknown"

    def rollup(self, counts: Mapping[str, float]) -> dict[str, float]:
        """Aggregate per-category values to supercategories."""
        out: dict[str, float] = {}
        for category, value in counts.items():
            out.setdefault(self.supercategory_of(category), 0.0)
            out[self.supercategory_of(category)] += value
        return out


def category_counts(
    sites: Iterable[str],
    labels: Mapping[str, str],
    taxonomy: Taxonomy | None = None,
) -> dict[str, int]:
    """Count sites per category, sending unlabeled sites to Unknown."""
    taxonomy = taxonomy or Taxonomy.final()
    counts: dict[str, int] = {}
    for site in sites:
        category = labels.get(site, "Unknown")
        if category not in taxonomy:
            category = "Unknown"
        counts[category] = counts.get(category, 0) + 1
    return counts


#: Convenience singletons.
FINAL_TAXONOMY = Taxonomy.final()
TABLE3 = Taxonomy.table3()

# Validate the paper's headline counts at import time: Table 3 has
# exactly 61 categories in 22 supercategories (Section 3.2).
if len(TABLE3) != 61:
    raise TaxonomyError(f"Table 3 must have 61 categories, found {len(TABLE3)}")
if len(TABLE3.supercategories) != 22:
    raise TaxonomyError(
        f"Table 3 must have 22 supercategories, found {len(TABLE3.supercategories)}"
    )
if CURATED_CATEGORIES and len(FINAL_TAXONOMY) != 63:
    raise TaxonomyError("final taxonomy must add exactly the 2 curated categories")
