"""The category-accuracy validation workflow (Section 3.2 / Appendix B).

The paper's pipeline, reproduced step by step:

1. label every site of interest with the API;
2. sample 10 random sites per category and manually review them,
   marking each *Yes* (definitely correct), *Maybe* (somewhat correct)
   or *No* (definitely incorrect) — Figure 13;
3. drop categories that do not reach 8/10 plausibly-correct labels or
   that have not a single definitely-correct label; their sites fold
   into Other/Unknown;
4. manually curate Search Engines and Social Networks, which fail the
   bar despite being core use cases.

Our "manual review" consults the generator's ground truth — exactly the
information a human reviewer recovers by visiting the site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from .api import DomainIntelligenceAPI
from .taxonomy import FINAL_TAXONOMY, Taxonomy


@dataclass(frozen=True)
class ReviewVerdict:
    """One manually reviewed (domain, label) pair."""

    domain: str
    api_label: str
    verdict: str  # "yes" | "maybe" | "no"


@dataclass(frozen=True)
class CategoryAccuracy:
    """Review outcome for one category (one bar of Figure 13)."""

    category: str
    yes: int
    maybe: int
    no: int

    @property
    def sampled(self) -> int:
        return self.yes + self.maybe + self.no

    @property
    def plausible_fraction(self) -> float:
        if self.sampled == 0:
            return 0.0
        return (self.yes + self.maybe) / self.sampled

    def passes(self, bar: float = 0.8) -> bool:
        """The paper's keep rule: ≥80 % plausible and ≥1 definite yes."""
        return self.plausible_fraction >= bar and self.yes >= 1


@dataclass(frozen=True)
class ValidationReport:
    """Full outcome of the accuracy analysis."""

    accuracies: tuple[CategoryAccuracy, ...]
    dropped: tuple[str, ...]
    kept: tuple[str, ...]

    def accuracy_of(self, category: str) -> CategoryAccuracy:
        for acc in self.accuracies:
            if acc.category == category:
                return acc
        raise KeyError(f"category {category!r} was not reviewed")


def review_label(api: DomainIntelligenceAPI, domain: str, api_label: str,
                 taxonomy: Taxonomy = FINAL_TAXONOMY) -> ReviewVerdict:
    """Manually review one labelled domain.

    Exact match → *yes*; same supercategory (a defensible broad call,
    e.g. Movies vs Video Streaming) → *maybe*; otherwise *no*.  Labels
    outside the taxonomy (the junk raw categories) can never match.
    """
    truth = api.ground_truth(domain)
    if truth is None or api_label not in taxonomy:
        return ReviewVerdict(domain, api_label, "no")
    if api_label == truth:
        return ReviewVerdict(domain, api_label, "yes")
    if taxonomy.supercategory_of(api_label) == taxonomy.supercategory_of(truth):
        return ReviewVerdict(domain, api_label, "maybe")
    return ReviewVerdict(domain, api_label, "no")


def validate_categories(
    api: DomainIntelligenceAPI,
    labels: Mapping[str, str],
    per_category: int = 10,
    seed: int = 13,
    taxonomy: Taxonomy = FINAL_TAXONOMY,
) -> ValidationReport:
    """Run the full Appendix B accuracy analysis on an API labelling."""
    if per_category < 1:
        raise ValueError("per_category must be positive")
    by_label: dict[str, list[str]] = {}
    for domain, label in labels.items():
        by_label.setdefault(label, []).append(domain)

    rng = np.random.default_rng(seed)
    accuracies: list[CategoryAccuracy] = []
    for label in sorted(by_label):
        if label == "Unknown":
            # Unknown is the catch-all, not a semantic claim; the paper
            # reviews real categories and folds failures *into* Unknown.
            continue
        domains = sorted(by_label[label])
        take = min(per_category, len(domains))
        sample_idx = rng.choice(len(domains), size=take, replace=False)
        yes = maybe = no = 0
        for i in sample_idx:
            verdict = review_label(api, domains[int(i)], label, taxonomy)
            if verdict.verdict == "yes":
                yes += 1
            elif verdict.verdict == "maybe":
                maybe += 1
            else:
                no += 1
        accuracies.append(CategoryAccuracy(label, yes, maybe, no))

    dropped = tuple(a.category for a in accuracies if not a.passes())
    kept = tuple(a.category for a in accuracies if a.passes())
    return ValidationReport(tuple(accuracies), dropped, kept)


def clean_labels(
    labels: Mapping[str, str],
    report: ValidationReport,
    curated_truth: Mapping[str, str] | None = None,
    taxonomy: Taxonomy = FINAL_TAXONOMY,
) -> dict[str, str]:
    """Produce the final site labelling the analyses consume.

    * labels in dropped categories fold into ``Unknown`` (Section 3.2);
    * raw labels outside the taxonomy are normalised (merge table) and
      folded if still unknown;
    * ``curated_truth`` overrides labels for the manually verified
      categories (Search Engines, Social Networks) — the paper "use[s]
      only the sets of manually verified sites for these two categories".
    """
    dropped = set(report.dropped)
    out: dict[str, str] = {}
    for domain, label in labels.items():
        normalized = taxonomy.normalize(label)
        if label in dropped or normalized in dropped:
            out[domain] = "Unknown"
        else:
            out[domain] = normalized
    if curated_truth:
        curated_categories = set(taxonomy.curated)
        # Remove API-claimed membership of curated categories...
        for domain, label in list(out.items()):
            if label in curated_categories:
                out[domain] = "Unknown"
        # ...and install the manually verified sets.
        for domain, label in curated_truth.items():
            if label in curated_categories:
                out[domain] = label
    return out
