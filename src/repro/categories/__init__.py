"""Website categorisation: taxonomy, simulated API, validation workflow."""

from .api import (
    CONFUSION_MAP,
    DEFAULT_CATEGORY_ACCURACY,
    APIConfig,
    DomainIntelligenceAPI,
)
from .taxonomy import FINAL_TAXONOMY, TABLE3, Taxonomy, category_counts
from .validation import (
    CategoryAccuracy,
    ReviewVerdict,
    ValidationReport,
    clean_labels,
    review_label,
    validate_categories,
)

__all__ = [
    "APIConfig",
    "CONFUSION_MAP",
    "CategoryAccuracy",
    "DEFAULT_CATEGORY_ACCURACY",
    "DomainIntelligenceAPI",
    "FINAL_TAXONOMY",
    "ReviewVerdict",
    "TABLE3",
    "Taxonomy",
    "ValidationReport",
    "category_counts",
    "clean_labels",
    "review_label",
    "validate_categories",
]
