"""Plain-text rendering of tables and figure shapes."""

from .figures import render_heatmap, render_series, sparkline
from .tables import comparison_row, render_comparison, render_shares, render_table

__all__ = [
    "comparison_row",
    "render_comparison",
    "render_heatmap",
    "render_series",
    "render_shares",
    "render_table",
    "sparkline",
]
