"""Plain-text table rendering for benchmarks and examples.

Benchmarks print "paper vs measured" comparisons; these helpers render
them as aligned ASCII tables without pulling in any dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table."""
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def comparison_row(
    label: str, paper: object, measured: object, note: str = ""
) -> tuple[str, str, str, str]:
    """One row of a paper-vs-measured comparison table."""
    return (label, _fmt(paper), _fmt(measured), note)


def render_comparison(
    rows: Iterable[tuple[str, object, object, str]],
    title: str,
) -> str:
    """Render a paper-vs-measured table."""
    return render_table(
        ("quantity", "paper", "measured", "note"),
        [comparison_row(*row) for row in rows],
        title=title,
    )


def render_shares(
    shares: dict[str, float],
    title: str,
    top: int = 15,
    percent: bool = True,
) -> str:
    """Render a category → share mapping, largest first."""
    ordered = sorted(shares.items(), key=lambda kv: -kv[1])[:top]
    rows = [
        (name, f"{value * 100:.1f}%" if percent else f"{value:.4f}")
        for name, value in ordered
    ]
    return render_table(("category", "share"), rows, title=title)
