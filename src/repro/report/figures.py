"""ASCII "figures": sparkline-style series and heatmaps for the terminal.

Benchmarks regenerate the paper's figures as data; these helpers make
the shapes visible in plain text so a reader can eyeball who-wins and
where crossovers fall without a plotting stack.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: float | None = None,
              hi: float | None = None) -> str:
    """A unicode sparkline of a numeric series."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    lo = float(arr.min()) if lo is None else lo
    hi = float(arr.max()) if hi is None else hi
    if hi <= lo:
        return _BLOCKS[4] * len(arr)
    scaled = (arr - lo) / (hi - lo)
    indices = np.clip((scaled * (len(_BLOCKS) - 1)).round().astype(int), 0, len(_BLOCKS) - 1)
    return "".join(_BLOCKS[i] for i in indices)


def render_series(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[object] | None = None,
    title: str | None = None,
    value_format: str = "{:.2f}",
) -> str:
    """Render named series as label + sparkline + first/last values."""
    lines: list[str] = []
    if title:
        lines.append(title)
    if x_labels is not None:
        lines.append(f"  x: {', '.join(str(x) for x in x_labels)}")
    width = max((len(name) for name in series), default=0)
    for name, values in series.items():
        values = list(values)
        if not values:
            continue
        first = value_format.format(values[0])
        last = value_format.format(values[-1])
        lines.append(f"  {name.ljust(width)}  {sparkline(values)}  {first} → {last}")
    return "\n".join(lines)


def render_heatmap(
    labels: Sequence[str],
    matrix: np.ndarray,
    title: str | None = None,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """A compact character heatmap of a square matrix (Figure 10 style)."""
    m = np.asarray(matrix, dtype=float)
    n = len(labels)
    if m.shape != (n, n):
        raise ValueError("matrix shape must match labels")
    lo = float(np.nanmin(m)) if lo is None else lo
    hi = float(np.nanmax(m)) if hi is None else hi
    span = hi - lo if hi > lo else 1.0
    lines: list[str] = []
    if title:
        lines.append(title)
    label_width = max(len(s) for s in labels)
    header = " " * (label_width + 1) + "".join(lbl[0] for lbl in labels)
    lines.append(header)
    for i, label in enumerate(labels):
        cells = []
        for j in range(n):
            scaled = (m[i, j] - lo) / span
            idx = int(np.clip(round(scaled * (len(_BLOCKS) - 1)), 0, len(_BLOCKS) - 1))
            cells.append(_BLOCKS[idx])
        lines.append(f"{label.rjust(label_width)} {''.join(cells)}")
    return "\n".join(lines)
