"""Hierarchical tracing: spans, collectors, the disabled shim.

A :class:`Span` is one timed region of work — ``engine.generate_slice``,
``pipeline.task``, ``http.request`` — with a monotonic duration, a
parent/child relationship, free-form attributes and counters.  Spans
nest through a per-thread stack kept by the :class:`Tracer`: the span
active on the current thread when a new one opens becomes its parent,
so a ``repro report --trace`` run yields one tree per root operation
(engine run, pipeline run, HTTP request) without any caller threading
IDs around.

Finished spans land in a thread-safe :class:`TraceCollector` and can be
exported as JSON Lines — one self-contained JSON object per span — via
:meth:`Tracer.write` / :func:`read_trace`.

Two properties the hot paths rely on:

* **Disabled tracing is a shim, not a branch.**  The module-level
  default tracer is :data:`NULL_TRACER`, whose ``span()`` returns one
  reusable no-op span; instrumented code is written unconditionally
  (``with get_tracer().span(...)``) and pays only an attribute lookup
  and a no-op context manager when tracing is off (measured in
  ``benchmarks/bench_obs.py``).
* **Cross-process spans are adopted, not lost.**  Process-pool workers
  (the parallel generation executor) record into a local tracer and
  ship finished spans back as dicts; the parent re-parents them under
  its active span via :meth:`Tracer.adopt`, so one trace file covers
  work wherever it ran.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceCollector",
    "Tracer",
    "get_tracer",
    "read_trace",
    "set_tracer",
    "span",
    "tracing",
]


class Span:
    """One timed, attributed region of work; used as a context manager."""

    __slots__ = (
        "name", "span_id", "parent_id", "ts", "attrs", "counters",
        "status", "error", "duration_ms", "_tracer", "_start",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: str,
        parent_id: str | None,
        attrs: dict[str, object],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.ts = time.time()
        self.attrs = attrs
        self.counters: dict[str, int] = {}
        self.status = "ok"
        self.error: str | None = None
        self.duration_ms = 0.0
        self._tracer = tracer
        self._start = 0.0

    # -- recording ----------------------------------------------------------------

    def set(self, key: str, value: object) -> "Span":
        """Attach one attribute (last write wins)."""
        self.attrs[key] = value
        return self

    def add(self, counter: str, amount: int = 1) -> "Span":
        """Bump one per-span counter (e.g. ``cache_hits``)."""
        self.counters[counter] = self.counters.get(counter, 0) + amount
        return self

    # -- context manager ----------------------------------------------------------

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        self.duration_ms = (time.perf_counter() - self._start) * 1000.0
        if exc is not None:
            self.status = "error"
            self.error = f"{exc_type.__name__}: {exc}"
        self._tracer._pop(self)
        return None  # never swallow

    def to_dict(self) -> dict[str, object]:
        """The JSONL line for this span (plain JSON data)."""
        out: dict[str, object] = {
            "trace": self._tracer.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "ts": round(self.ts, 6),
            "duration_ms": round(self.duration_ms, 3),
            "status": self.status,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.counters:
            out["counters"] = dict(self.counters)
        return out

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.duration_ms:.3f}ms)"
        )


class TraceCollector:
    """Thread-safe append-only store of finished spans (as dicts)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[dict[str, object]] = []

    def append(self, span_dict: dict[str, object]) -> None:
        with self._lock:
            self._spans.append(span_dict)

    def extend(self, span_dicts: Iterable[dict[str, object]]) -> None:
        with self._lock:
            self._spans.extend(span_dicts)

    def drain(self) -> list[dict[str, object]]:
        """Remove and return everything collected so far."""
        with self._lock:
            spans, self._spans = self._spans, []
            return spans

    def snapshot(self) -> list[dict[str, object]]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class Tracer:
    """An enabled tracer: hands out spans, keeps the per-thread stack."""

    enabled = True

    def __init__(
        self, trace_id: str | None = None, *, span_prefix: str = ""
    ) -> None:
        if trace_id is None:
            # Wall-clock based: unique enough across runs, and stable
            # within one (no randomness — see the determinism rules).
            trace_id = f"t{time.time_ns():x}"
        self.trace_id = trace_id
        self.collector = TraceCollector()
        self._prefix = span_prefix
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- span lifecycle -----------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current(self) -> Span | None:
        """The span active on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, **attrs: object) -> Span:
        """A new span, parented to this thread's active span."""
        parent = self.current
        return Span(
            self,
            name,
            f"{self._prefix}{next(self._ids)}",
            parent.span_id if parent is not None else None,
            attrs,
        )

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - mis-nested exit
            stack.remove(span)
        self.collector.append(span.to_dict())

    def record(self, name: str, seconds: float, **attrs: object) -> None:
        """A pre-measured, already-finished span (no context manager).

        Used where the duration was measured elsewhere — e.g. the
        pipeline runner settles task outcomes (with their timings) from
        the coordinating thread.  ``ts`` is back-dated by ``seconds``
        so span trees still read in start order.
        """
        parent = self.current
        span = Span(
            self,
            name,
            f"{self._prefix}{next(self._ids)}",
            parent.span_id if parent is not None else None,
            attrs,
        )
        span.ts = time.time() - seconds
        span.duration_ms = seconds * 1000.0
        self.collector.append(span.to_dict())

    def adopt(
        self,
        span_dicts: Iterable[dict[str, object]],
        *,
        parent: Span | None = None,
    ) -> int:
        """Merge spans recorded by another tracer (e.g. a pool worker).

        Spans are rewritten onto this trace id, and roots (spans with no
        parent of their own) are re-parented under ``parent`` (default:
        this thread's active span).  Returns how many were adopted.
        Worker span ids stay distinct through the worker's
        ``span_prefix``.
        """
        if parent is None:
            parent = self.current
        parent_id = parent.span_id if parent is not None else None
        adopted = []
        for item in span_dicts:
            item = dict(item)
            item["trace"] = self.trace_id
            if item.get("parent") is None:
                item["parent"] = parent_id
            adopted.append(item)
        self.collector.extend(adopted)
        return len(adopted)

    # -- export -------------------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """JSON-shaped tracer state (the ``/v1/metrics`` trace block)."""
        return {
            "enabled": True,
            "trace_id": self.trace_id,
            "spans": len(self.collector),
        }

    def write(self, path: str | Path) -> Path:
        """Export every collected span as JSON Lines; returns the path."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        spans = self.collector.snapshot()
        with path.open("w", encoding="utf-8") as fh:
            for span_dict in spans:
                fh.write(json.dumps(span_dict, sort_keys=True) + "\n")
        return path

    def __repr__(self) -> str:
        return f"Tracer(trace_id={self.trace_id}, spans={len(self.collector)})"


class _NullSpan:
    """The one no-op span every disabled-path ``with`` statement reuses."""

    __slots__ = ()

    span_id = None
    parent_id = None
    status = "ok"

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        return None

    def set(self, _key: str, _value: object) -> "_NullSpan":
        return self

    def add(self, _counter: str, _amount: int = 1) -> "_NullSpan":
        return self


class NullTracer:
    """The disabled shim: same surface as :class:`Tracer`, does nothing."""

    enabled = False
    trace_id = None
    current = None

    _SPAN = _NullSpan()

    def span(self, _name: str, **_attrs: object) -> _NullSpan:
        return self._SPAN

    def record(self, _name: str, _seconds: float, **_attrs: object) -> None:
        return None

    def adopt(self, _span_dicts, *, parent=None) -> int:
        return 0

    def snapshot(self) -> dict[str, object]:
        return {"enabled": False}

    def __repr__(self) -> str:
        return "NullTracer()"


#: The process-wide disabled tracer; also the default active tracer.
NULL_TRACER = NullTracer()

_active: Tracer | NullTracer = NULL_TRACER
_active_guard = threading.Lock()


def get_tracer() -> Tracer | NullTracer:
    """The process's active tracer (the disabled shim by default)."""
    return _active


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` as the active one; returns the previous."""
    global _active
    with _active_guard:
        previous, _active = _active, tracer
    return previous


def span(name: str, **attrs: object):
    """``get_tracer().span(...)`` — the one-liner for instrumented code."""
    return _active.span(name, **attrs)


class tracing:
    """Scope a tracer: install on enter, write + restore on exit.

    ``tracing(None)`` is a transparent no-op (the active tracer stays),
    so callers can thread an optional ``--trace PATH`` straight
    through::

        with tracing(args.trace):
            api.report(...)
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        tracer: Tracer | None = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        if tracer is None and (path is not None):
            tracer = Tracer()
        self.tracer = tracer
        self._previous: Tracer | NullTracer | None = None

    def __enter__(self) -> Tracer | NullTracer:
        if self.tracer is None:
            return get_tracer()
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *_exc) -> None:
        if self.tracer is None:
            return None
        set_tracer(self._previous if self._previous is not None else NULL_TRACER)
        if self.path is not None:
            self.tracer.write(self.path)
        return None


def read_trace(path: str | Path) -> list[dict[str, object]]:
    """Parse a JSONL trace file back into span dicts (blank-line safe)."""
    spans: list[dict[str, object]] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans
