"""Trace analysis for ``repro trace summarize``: where did time go?

Works on the plain span dicts :func:`~repro.obs.trace.read_trace`
returns, so it can digest any JSONL trace file — a ``repro report
--trace`` run, a serve session, or a worker-adopted engine trace.  Two
views:

* :func:`slowest_spans` — the top-N individual spans by duration, the
  direct answer to "what single operation cost the most";
* :func:`aggregate_spans` — per-name totals (count / total / mean /
  max), the answer to "which *kind* of operation dominates".

Both are pure functions returning table rows; the CLI renders them
through :func:`repro.report.render_table`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["aggregate_spans", "format_summary", "slowest_spans"]

#: Attributes worth showing inline in the slowest-spans table, in
#: display order; everything else is elided to keep rows terminal-width.
_DETAIL_ATTRS = (
    "country", "platform", "metric", "month", "task", "endpoint",
    "method", "path", "status_code", "cache", "store",
)


def _duration(span: Mapping[str, object]) -> float:
    value = span.get("duration_ms", 0.0)
    return float(value) if isinstance(value, (int, float)) else 0.0


def _detail(span: Mapping[str, object]) -> str:
    attrs = span.get("attrs")
    if not isinstance(attrs, Mapping):
        return ""
    parts = [
        f"{key}={attrs[key]}" for key in _DETAIL_ATTRS if key in attrs
    ]
    return " ".join(parts)


def slowest_spans(
    spans: Sequence[Mapping[str, object]], top: int = 15
) -> list[tuple[str, str, str, str]]:
    """The ``top`` slowest spans: (name, ms, status, detail) rows."""
    ranked = sorted(spans, key=_duration, reverse=True)[:top]
    return [
        (
            str(span.get("name", "?")),
            f"{_duration(span):.3f}",
            str(span.get("status", "?")),
            _detail(span),
        )
        for span in ranked
    ]


def aggregate_spans(
    spans: Sequence[Mapping[str, object]],
) -> list[tuple[str, str, str, str, str]]:
    """Per-name (name, count, total ms, mean ms, max ms), total-sorted."""
    totals: dict[str, list[float]] = {}
    for span in spans:
        totals.setdefault(str(span.get("name", "?")), []).append(
            _duration(span)
        )
    rows = sorted(
        totals.items(), key=lambda item: sum(item[1]), reverse=True
    )
    return [
        (
            name,
            str(len(durations)),
            f"{sum(durations):.3f}",
            f"{sum(durations) / len(durations):.3f}",
            f"{max(durations):.3f}",
        )
        for name, durations in rows
    ]


def format_summary(
    spans: Sequence[Mapping[str, object]], *, top: int = 15
) -> str:
    """The full ``repro trace summarize`` report as one printable string."""
    from ..report import render_table

    traces = {
        span.get("trace") for span in spans if span.get("trace") is not None
    }
    errors = sum(1 for span in spans if span.get("status") == "error")
    header = (
        f"{len(spans)} spans across {len(traces)} trace(s), "
        f"{errors} error(s)"
    )
    slow = render_table(
        ("span", "ms", "status", "detail"),
        slowest_spans(spans, top),
        title=f"top {min(top, len(spans))} slowest spans",
    )
    agg = render_table(
        ("span", "count", "total ms", "mean ms", "max ms"),
        aggregate_spans(spans),
        title="by span name",
    )
    return f"{header}\n\n{slow}\n\n{agg}"
