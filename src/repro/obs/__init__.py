"""repro.obs — hierarchical tracing for the whole stack.

One lightweight subsystem answers "where does time go" across the
three execution layers (see DESIGN.md, "Observability"):

* the **generation engine** emits one ``engine.generate_slice`` span
  per slice (cache hit or miss), including spans recorded inside
  process-pool workers and adopted back into the parent trace;
* the **pipeline runner** emits one ``pipeline.task`` span per task
  with its status and artifact-store outcome;
* the **serving layer** emits one ``http.request`` span per request
  (plus per-endpoint ``service.*`` spans), surfaced as a ``trace``
  block in ``/v1/metrics``.

Instrumented code never checks whether tracing is on: the module-level
active tracer defaults to :data:`NULL_TRACER`, a no-op shim whose cost
is one attribute lookup per span (benchmarked in
``benchmarks/bench_obs.py``).  ``repro generate|report|serve --trace
PATH`` installs a real :class:`Tracer` for the run and exports JSON
Lines; ``repro trace summarize PATH`` digests the file.

Quick start::

    from repro import obs

    with obs.tracing("run.jsonl"):
        repro.report("data/full", "runs/full")

    spans = obs.read_trace("run.jsonl")
    print(obs.format_summary(spans, top=10))
"""

from .summary import aggregate_spans, format_summary, slowest_spans
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceCollector,
    Tracer,
    get_tracer,
    read_trace,
    set_tracer,
    span,
    tracing,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceCollector",
    "Tracer",
    "aggregate_spans",
    "format_summary",
    "get_tracer",
    "read_trace",
    "set_tracer",
    "slowest_spans",
    "span",
    "tracing",
]
