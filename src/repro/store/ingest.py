"""Incremental monthly ingestion: append months to a saved dataset.

``repro ingest --month`` turns the batch reproduction into a rolling
one.  The generator's month walk is *cumulative and append-stable* —
every month's innovation is keyed ``(seed, country, "walk:<index>")``
independent of which months a run requests — so generating month N
against an existing dataset yields lists byte-identical to a fresh
N-month generation.  Ingestion therefore never rewrites history:

* **text**: new ``lists/<slug>.txt`` files are written, the manifest
  gains the new breakdown rows (canonical sort order preserved);
* **columnar**: the new id windows are *appended* to ``lists.bin`` and
  new site names to ``vocab.bin``.  Old windows keep their offsets and
  old ids keep their meaning, because both files only ever grow at the
  tail.

Every ingest bumps the manifest's monotonic ``dataset_version`` and
archives the superseded manifest under ``versions/manifest.v<N>.*``.
An archived manifest stays loadable forever (``load_dataset(root,
as_of=N)``): its windows and list files are a valid prefix view of the
grown store.  Readers holding the old manifest — or an old mmap — keep
seeing exactly the old bytes: the manifest lands via ``os.replace``,
and open maps pin the old inode.

Crash safety matches the save path: data files first, manifest last.
A crash mid-ingest leaves the old manifest live over grown-but-unread
data files; the next ingest simply appends after the orphaned tail
(old windows are resolved from the *file* header, not the manifest),
so correctness is unaffected.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from ..core.dataset import BrowsingDataset
from ..core.errors import DatasetError
from ..core.rankedlist import RankedList
from ..core.types import Breakdown, Month
from ..core.vocab import SiteVocabulary
from ..export.io import (
    TEXT_FORMAT_VERSION,
    VERSIONS_DIR,
    _atomic_write_text,
    _resolve_codec,
    breakdown_slug,
)
from .columnar import LISTS_NAME, MANIFEST_NAME, VOCAB_NAME
from .format import (
    HEADER_SIZE,
    MAGIC_LISTS,
    atomic_write_bytes,
    file_fingerprint,
    pack_header,
    pack_manifest,
    pack_string_table,
    unpack_manifest,
)


@dataclass(frozen=True)
class IngestReport:
    """What one ``ingest_months`` call did (or skipped)."""

    root: str
    format: str
    version_before: int
    version: int
    #: Months this call generated and appended (ISO strings, sorted).
    months_added: tuple[str, ...]
    #: Every month the dataset holds *after* the call, added or not.
    months_present: tuple[str, ...]
    slices_added: int
    seconds: float

    @property
    def changed(self) -> bool:
        return bool(self.months_added)

    def to_dict(self) -> dict[str, object]:
        return {
            "root": self.root,
            "format": self.format,
            "version_before": self.version_before,
            "version": self.version,
            "months_added": list(self.months_added),
            "months_present": list(self.months_present),
            "slices_added": self.slices_added,
            "seconds": self.seconds,
        }


def _entry_key(entry: Mapping[str, object]) -> tuple:
    """Canonical manifest ordering — matches ``sorted_breakdowns``."""
    return (
        entry["country"],
        entry["platform"],
        entry["metric"],
        tuple(entry["month"]),
    )


def _canonical_produced(
    produced: Mapping[Breakdown, RankedList]
) -> list[tuple[Breakdown, RankedList]]:
    return sorted(
        produced.items(),
        key=lambda kv: (
            kv[0].country,
            kv[0].platform.value,
            kv[0].metric.value,
            kv[0].month,
        ),
    )


def _coerce_months(months: Iterable[Month | str]) -> tuple[Month, ...]:
    out = []
    for month in months:
        out.append(month if isinstance(month, Month) else Month.parse(month))
    return tuple(sorted(set(out)))


def ingest_months(
    root: str | Path,
    months: Iterable[Month | str],
    *,
    format: str | None = None,
    config=None,
    small: bool = False,
    seed: int | None = None,
    jobs: int | None = None,
    cache=None,
) -> IngestReport:
    """Append the requested months to the dataset at ``root``.

    Months already present are skipped; when *every* requested month is
    present the call is a strict no-op — no file is touched, the
    version does not move, and the report says so.  Otherwise the new
    slices are generated with the same :class:`GeneratorConfig` that
    produced the dataset (inferred from the recorded provenance, or the
    ``small``/``seed`` flags for unprovenanced exports), appended under
    the dataset's codec, and the dataset version is bumped by one with
    the superseded manifest archived under ``versions/``.
    """
    start = time.perf_counter()
    root = Path(root)
    codec = _resolve_codec(root, format)
    if codec.manifest is None or codec.read_version is None:
        raise DatasetError(
            f"codec {codec.name!r} does not support incremental ingest"
        )
    dataset = codec.load(root)
    version_before = int(getattr(dataset, "version", 1))
    requested = _coerce_months(months)
    wanted = tuple(m for m in requested if m not in dataset.months)
    if not wanted:
        return IngestReport(
            root=str(root),
            format=codec.name,
            version_before=version_before,
            version=version_before,
            months_added=(),
            months_present=tuple(str(m) for m in dataset.months),
            slices_added=0,
            seconds=time.perf_counter() - start,
        )

    from ..engine.engine import GenerationEngine
    from ..engine.plan import SlicePlan
    from ..pipeline.context import infer_config

    if config is None:
        config = infer_config(dataset, small=small, seed=seed)
    recorded = dataset.metadata.get("fingerprint")
    if isinstance(recorded, str) and recorded and (
        config.fingerprint() != recorded
    ):
        raise DatasetError(
            f"config fingerprint {config.fingerprint()} does not match the "
            f"dataset's recorded provenance {recorded}; ingesting with a "
            "different configuration would splice incompatible months"
        )

    plan = SlicePlan.from_grid(
        dataset.countries, dataset.platforms, dataset.metrics, wanted
    )
    engine = GenerationEngine(config, jobs=jobs, cache=cache)
    produced = engine.run(plan)

    new_version = version_before + 1
    if codec.name == "columnar":
        _append_columnar(root, dataset, produced, version_before, new_version)
    else:
        _append_text(root, produced, version_before, new_version)

    return IngestReport(
        root=str(root),
        format=codec.name,
        version_before=version_before,
        version=new_version,
        months_added=tuple(str(m) for m in wanted),
        months_present=tuple(
            str(m) for m in sorted(tuple(dataset.months) + wanted)
        ),
        slices_added=len(produced),
        seconds=time.perf_counter() - start,
    )


# -- text append --------------------------------------------------------------------


def _append_text(
    root: Path,
    produced: Mapping[Breakdown, RankedList],
    version_before: int,
    new_version: int,
) -> None:
    manifest_path = root / "manifest.json"
    old_text = manifest_path.read_text(encoding="utf-8")
    old = json.loads(old_text)

    new_entries = []
    for breakdown, ranked in _canonical_produced(produced):
        slug = breakdown_slug(breakdown)
        _atomic_write_text(
            root / "lists" / f"{slug}.txt", "\n".join(ranked.sites) + "\n"
        )
        new_entries.append(
            {
                "country": breakdown.country,
                "platform": breakdown.platform.value,
                "metric": breakdown.metric.value,
                "month": [breakdown.month.year, breakdown.month.month],
                "file": f"lists/{slug}.txt",
            }
        )

    manifest = {
        "format_version": old.get("format_version", TEXT_FORMAT_VERSION),
        "dataset_version": new_version,
    }
    for key, value in old.items():
        if key not in manifest:
            manifest[key] = value
    manifest["breakdowns"] = sorted(
        list(old["breakdowns"]) + new_entries, key=_entry_key
    )

    # Archive the superseded manifest verbatim, then land the new one —
    # manifest last, so a crash leaves version N fully live.
    _atomic_write_text(
        root / VERSIONS_DIR / f"manifest.v{version_before}.json", old_text
    )
    _atomic_write_text(manifest_path, json.dumps(manifest, indent=2))


# -- columnar append ----------------------------------------------------------------


def _content_hash(
    entries: Iterable[tuple[str, Iterable[str]]]
) -> str:
    """The ``dataset_fingerprint`` fallback hash over (slug, sites) rows."""
    digest = hashlib.sha256()
    for slug, sites in entries:
        digest.update(slug.encode("utf-8"))
        digest.update(b"\x00")
        for site in sites:
            digest.update(site.encode("utf-8"))
            digest.update(b"\n")
    return digest.hexdigest()[:16]


def _append_columnar(
    root: Path,
    dataset: BrowsingDataset,
    produced: Mapping[Breakdown, RankedList],
    version_before: int,
    new_version: int,
) -> None:
    manifest_path = root / MANIFEST_NAME
    old_bytes = manifest_path.read_bytes()
    old = unpack_manifest(old_bytes, manifest_path)

    # Rebuild the stored id space, then intern the new lists after it.
    # Appending preserves every existing id, so old manifest windows
    # remain valid prefix views of the grown files.
    old_names = dataset._table.decode_all()
    vocab = SiteVocabulary(old_names)
    lists_bytes = (root / LISTS_NAME).read_bytes()
    old_total = (len(lists_bytes) - HEADER_SIZE) // 4
    old_body = lists_bytes[HEADER_SIZE:HEADER_SIZE + 4 * old_total]

    chunks: list[np.ndarray] = []
    new_entries: list[dict] = []
    offset = old_total
    for breakdown, ranked in _canonical_produced(produced):
        ids = vocab.intern_many(ranked.sites)
        chunks.append(ids)
        new_entries.append(
            {
                "country": breakdown.country,
                "platform": breakdown.platform.value,
                "metric": breakdown.metric.value,
                "month": [breakdown.month.year, breakdown.month.month],
                "offset": offset,
                "length": int(ids.size),
            }
        )
        offset += int(ids.size)

    new_ids = (
        np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int32)
    )
    new_ids = np.ascontiguousarray(new_ids, dtype=np.int32)
    grown_lists = (
        pack_header(MAGIC_LISTS, old_total + int(new_ids.size))
        + old_body
        + new_ids.tobytes()
    )
    grown_vocab = pack_string_table(vocab.names())

    recorded = old.get("metadata", {}).get("fingerprint")
    if isinstance(recorded, str) and recorded:
        fingerprint = recorded
    else:
        # Unprovenanced import: recompute the content hash over the
        # merged lists (old windows decode lazily through the mmap).
        merged: list[tuple[str, tuple[str, ...]]] = [
            (breakdown_slug(b), tuple(dataset[b].sites))
            for b in dataset.breakdowns()
        ]
        merged.extend(
            (breakdown_slug(b), tuple(ranked.sites))
            for b, ranked in produced.items()
        )
        fingerprint = _content_hash(sorted(merged, key=lambda kv: kv[0]))

    manifest = {
        "format_version": old["format_version"],
        "dataset_version": new_version,
    }
    for key, value in old.items():
        if key not in manifest:
            manifest[key] = value
    manifest["dataset_fingerprint"] = fingerprint
    manifest["breakdowns"] = sorted(
        list(old["breakdowns"]) + new_entries, key=_entry_key
    )
    manifest["files"] = {
        VOCAB_NAME: {
            "bytes": len(grown_vocab),
            "sha256": file_fingerprint(grown_vocab),
            "entries": len(vocab),
        },
        LISTS_NAME: {
            "bytes": len(grown_lists),
            "sha256": file_fingerprint(grown_lists),
            "entries": old_total + int(new_ids.size),
        },
    }

    # Archive first, data files next, manifest last.  Old readers hold
    # the old inodes through their mmaps; new readers see version N
    # until the final os.replace lands version N+1 atomically.
    atomic_write_bytes(
        root / VERSIONS_DIR / f"manifest.v{version_before}.bin", old_bytes
    )
    atomic_write_bytes(root / VOCAB_NAME, grown_vocab)
    atomic_write_bytes(root / LISTS_NAME, grown_lists)
    atomic_write_bytes(root / MANIFEST_NAME, pack_manifest(manifest))
