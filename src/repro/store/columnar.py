"""The columnar dataset codec: save eagerly, open memory-mapped.

Directory layout (see :mod:`repro.store.format` for byte layouts)::

    <root>/manifest.bin     # binary manifest: breakdown index, metadata,
                            # distribution vectors, content fingerprints
    <root>/vocab.bin        # packed string table: site id -> UTF-8 name
    <root>/lists.bin        # one contiguous int32 id array; each
                            # breakdown owns an (offset, length) window

Saving interns every list through one fresh
:class:`~repro.core.vocab.SiteVocabulary` (first-seen order over the
canonical breakdown sort), concatenates the id arrays, and records each
breakdown's window in the manifest together with per-file SHA-256
fingerprints and the dataset fingerprint.  Every file is written to a
temp sibling and ``os.replace``\\ d, manifest last — an interrupted
save never leaves a manifest naming torn files.

Opening is O(open): read the manifest, validate the index, and
``numpy.memmap`` the two data files.  No list page is touched until a
breakdown is actually read (:class:`repro.store.MappedBrowsingDataset`
materialises lazily).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.dataset import BrowsingDataset
from ..core.errors import DatasetError
from ..core.types import Breakdown
from ..core.vocab import SiteVocabulary
from ..export.io import (
    DatasetCodec,
    _jsonable_metadata,
    breakdown_slug,
    dataset_fingerprint,
    dataset_version,
    distribution_entries,
    parse_breakdown_entry,
    parse_distribution_entries,
    register_codec,
    sorted_breakdowns,
)
from .format import (
    COLUMNAR_VERSION,
    atomic_write_bytes,
    file_fingerprint,
    map_id_array,
    pack_id_array,
    pack_manifest,
    pack_string_table,
    unpack_manifest,
)
from .mapped import MappedBrowsingDataset, MappedStringTable

#: The file whose presence marks a columnar dataset directory.
MANIFEST_NAME = "manifest.bin"
VOCAB_NAME = "vocab.bin"
LISTS_NAME = "lists.bin"


def write_columnar(dataset: BrowsingDataset, root: str | Path) -> Path:
    """Write ``dataset`` to ``root`` in the columnar layout."""
    root = Path(root)
    vocab = SiteVocabulary()
    chunks: list[np.ndarray] = []
    entries: list[dict] = []
    offset = 0
    for breakdown in sorted_breakdowns(dataset):
        ids = vocab.intern_many(dataset[breakdown].sites)
        chunks.append(ids)
        entries.append(
            {
                "country": breakdown.country,
                "platform": breakdown.platform.value,
                "metric": breakdown.metric.value,
                "month": [breakdown.month.year, breakdown.month.month],
                "offset": offset,
                "length": int(ids.size),
            }
        )
        offset += int(ids.size)

    all_ids = (
        np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int32)
    )
    vocab_bytes = pack_string_table(vocab.names())
    lists_bytes = pack_id_array(all_ids)

    manifest = {
        "format_version": COLUMNAR_VERSION,
        "dataset_version": dataset_version(dataset),
        "metadata": _jsonable_metadata(dataset.metadata),
        "dataset_fingerprint": dataset_fingerprint(dataset),
        "breakdowns": entries,
        "distributions": distribution_entries(dataset),
        "files": {
            VOCAB_NAME: {
                "bytes": len(vocab_bytes),
                "sha256": file_fingerprint(vocab_bytes),
                "entries": len(vocab),
            },
            LISTS_NAME: {
                "bytes": len(lists_bytes),
                "sha256": file_fingerprint(lists_bytes),
                "entries": int(all_ids.size),
            },
        },
    }
    atomic_write_bytes(root / VOCAB_NAME, vocab_bytes)
    atomic_write_bytes(root / LISTS_NAME, lists_bytes)
    # Manifest last: loaders start here, so a torn save is invisible.
    atomic_write_bytes(root / MANIFEST_NAME, pack_manifest(manifest))
    return root


def open_columnar(
    root: str | Path, manifest_path: Path | None = None
) -> MappedBrowsingDataset:
    """Memory-map the columnar dataset at ``root``; O(open), no list reads.

    ``manifest_path`` overrides the live manifest — used by versioned
    (``as_of``) loading to open an archived manifest under
    ``versions/``.  Archived windows stay valid against the grown data
    files because ingest only ever appends to ``lists.bin`` and
    ``vocab.bin``.
    """
    root = Path(root)
    if manifest_path is None:
        manifest_path = root / MANIFEST_NAME
    try:
        manifest = unpack_manifest(manifest_path.read_bytes(), manifest_path)
    except FileNotFoundError:
        raise DatasetError(f"no {MANIFEST_NAME} under {root}") from None
    if manifest.get("format_version") != COLUMNAR_VERSION:
        raise DatasetError(
            f"{manifest_path}: unsupported columnar format version "
            f"{manifest.get('format_version')!r}"
        )

    lists_path = root / LISTS_NAME
    try:
        ids = map_id_array(lists_path)
    except FileNotFoundError:
        raise DatasetError(
            f"columnar dataset at {root} is torn: the manifest references "
            f"{LISTS_NAME}, but the file is absent"
        ) from None
    table = MappedStringTable(root / VOCAB_NAME)

    windows: dict[Breakdown, tuple[int, int]] = {}
    for entry in manifest.get("breakdowns", ()):
        try:
            breakdown = parse_breakdown_entry(entry)
            offset = int(entry["offset"])
            length = int(entry["length"])
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetError(
                f"{manifest_path}: malformed breakdown entry {entry!r}: {exc}"
            ) from exc
        if breakdown in windows:
            raise DatasetError(
                f"{manifest_path}: duplicate manifest entry for {breakdown}"
            )
        if offset < 0 or length < 0 or offset + length > ids.size:
            raise DatasetError(
                f"{root}: short {LISTS_NAME} — manifest window for "
                f"{breakdown_slug(breakdown)} spans ids "
                f"[{offset}, {offset + length}) but the file holds "
                f"{ids.size}"
            )
        windows[breakdown] = (offset, length)

    fingerprint = manifest.get("dataset_fingerprint")
    dataset = MappedBrowsingDataset(
        root,
        windows=windows,
        ids=ids,
        table=table,
        distributions=parse_distribution_entries(
            manifest.get("distributions", [])
        ),
        metadata=manifest.get("metadata", {}),
        content_fingerprint=(
            fingerprint if isinstance(fingerprint, str) else None
        ),
    )
    dataset.version = int(manifest.get("dataset_version", 1))
    return dataset


def _read_columnar_version(manifest_path: Path) -> int:
    try:
        manifest = unpack_manifest(manifest_path.read_bytes(), manifest_path)
    except FileNotFoundError:
        raise DatasetError(
            f"no {manifest_path.name} at {manifest_path}"
        ) from None
    return int(manifest.get("dataset_version", 1))


COLUMNAR_CODEC = register_codec(
    DatasetCodec(
        name="columnar",
        save=write_columnar,
        load=open_columnar,
        detect=lambda root: (root / MANIFEST_NAME).is_file(),
        manifest=MANIFEST_NAME,
        read_version=_read_columnar_version,
        load_at=open_columnar,
    )
)
