"""Memory-mapped views over a columnar dataset directory.

Opening a columnar dataset is O(open): the manifest (a few KB) is the
only file read eagerly; ``vocab.bin`` and ``lists.bin`` are wrapped in
``numpy.memmap`` arrays whose pages fault in on first touch.  Multiple
processes serving the same dataset therefore share one physical copy of
the id arrays and string blob — the page cache is the only copy.

Ownership and lifetime: the :class:`MappedBrowsingDataset` owns the
maps.  Materialised :class:`~repro.core.rankedlist.RankedList`\\ s hold
*views* into ``lists.bin`` (their cached id arrays), and numpy keeps
the underlying mmap alive through the view's ``base`` reference, so a
list outliving its dataset stays valid; pages unmap only when the last
view is garbage-collected.  Nothing is ever written through a map —
all maps are opened read-only (``mode="r"``).
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from ..core.dataset import DeferredBrowsingDataset
from ..core.distribution import TrafficDistribution
from ..core.errors import DatasetError
from ..core.rankedlist import RankedList
from ..core.types import Breakdown, Metric, Platform
from ..core.vocab import SiteVocabulary
from .format import HEADER_SIZE, MAGIC_VOCAB, read_header


class MappedStringTable:
    """The packed vocabulary of ``vocab.bin``, decoded name-by-name.

    Index == site id.  Names decode lazily into a per-table cache, so a
    query touching one 10K-site list decodes 10K names, not the whole
    vocabulary.
    """

    __slots__ = ("path", "_offsets", "_blob", "_names")

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        try:
            with open(self.path, "rb") as handle:
                count = read_header(
                    handle.read(HEADER_SIZE), MAGIC_VOCAB, self.path
                )
        except FileNotFoundError:
            raise DatasetError(
                f"columnar dataset is missing its vocabulary file {self.path}"
            ) from None
        offsets_end = HEADER_SIZE + 8 * (count + 1)
        size = self.path.stat().st_size
        if size < offsets_end:
            raise DatasetError(
                f"{self.path}: short vocabulary file ({size} bytes, "
                f"offsets need {offsets_end})"
            )
        self._offsets = np.memmap(
            self.path, dtype=np.int64, mode="r",
            offset=HEADER_SIZE, shape=(count + 1,),
        )
        blob_len = size - offsets_end
        self._blob = (
            np.memmap(self.path, dtype=np.uint8, mode="r",
                      offset=offsets_end, shape=(blob_len,))
            if blob_len else np.empty(0, dtype=np.uint8)
        )
        if count and int(self._offsets[-1]) > blob_len:
            raise DatasetError(
                f"{self.path}: short vocabulary blob "
                f"({blob_len} bytes, offsets promise {int(self._offsets[-1])})"
            )
        self._names: list[str | None] = [None] * count

    def __len__(self) -> int:
        return len(self._names)

    def name(self, sid: int) -> str:
        """The site name behind ``sid`` (decoded once, then cached)."""
        cached = self._names[sid]
        if cached is None:
            offsets = self._offsets
            cached = (
                self._blob[int(offsets[sid]):int(offsets[sid + 1])]
                .tobytes().decode("utf-8")
            )
            self._names[sid] = cached
        return cached

    def decode_all(self) -> tuple[str, ...]:
        """Every name in id order, bulk-decoded in one blob pass."""
        if None in self._names:
            blob = self._blob.tobytes()
            offsets = self._offsets
            self._names = [
                blob[int(offsets[i]):int(offsets[i + 1])].decode("utf-8")
                for i in range(len(self._names))
            ]
        return tuple(self._names)


class MappedBrowsingDataset(DeferredBrowsingDataset):
    """A :class:`BrowsingDataset` over memory-mapped columnar files.

    Lists materialise lazily: reading a breakdown decodes that list's
    id window through the shared string table and wraps it in a
    :class:`RankedList`.  When the dataset-wide vocabulary has been
    built (:meth:`vocabulary`), materialised lists are pre-seeded with
    their mapped id window, so kernels consume ``lists.bin`` pages
    directly — zero copies, zero re-interning.
    """

    storage = "columnar-mmap"

    def __init__(
        self,
        root: str | Path,
        *,
        windows: Mapping[Breakdown, tuple[int, int]],
        ids: np.ndarray,
        table: MappedStringTable,
        distributions: Mapping[tuple[Platform, Metric], TrafficDistribution],
        metadata: Mapping[str, object],
        content_fingerprint: str | None = None,
    ) -> None:
        self.root = Path(root)
        self._windows = dict(windows)
        self._ids = ids
        self._table = table
        #: The manifest-recorded dataset fingerprint, honoured by
        #: :func:`repro.export.io.dataset_fingerprint` so addressing an
        #: artifact store never has to hash the mapped lists.
        self.content_fingerprint = content_fingerprint
        super().__init__(self._windows, distributions, metadata)

    # -- production ----------------------------------------------------------------

    def _produce(
        self, breakdowns: set[Breakdown]
    ) -> Mapping[Breakdown, RankedList]:
        out: dict[Breakdown, RankedList] = {}
        vocab = self._vocab  # pre-seed only if already built
        for breakdown in breakdowns:
            offset, length = self._windows[breakdown]
            window = self._ids[offset:offset + length]
            if length and (int(window.min()) < 0
                           or int(window.max()) >= len(self._table)):
                raise DatasetError(
                    f"{self.root}: list for {breakdown} references site ids "
                    f"outside the {len(self._table)}-entry vocabulary"
                )
            name = self._table.name
            ranked = RankedList(name(sid) for sid in window.tolist())
            if vocab is not None:
                ranked._ids_cache = (vocab, window)
            out[breakdown] = ranked
        return out

    # -- vocabulary ----------------------------------------------------------------

    def vocabulary(self) -> SiteVocabulary:
        """The shared vocabulary, rebuilt from the mapped string table.

        Interning the table in id order reproduces the stored id space
        exactly, so every list's mapped id window is already expressed
        in this vocabulary — :meth:`RankedList.ids` on a materialised
        list returns the ``lists.bin`` view without copying.
        """
        vocab = self._vocab
        if vocab is None:
            with self._vocab_lock:
                if self._vocab is None:
                    self._vocab = SiteVocabulary(self._table.decode_all())
                vocab = self._vocab
        return vocab

    def all_sites(self) -> frozenset[str]:
        """Every site in the dataset, straight from the string table.

        The union over breakdowns that :meth:`TaskContext.sites` would
        otherwise compute list-by-list — here it is one bulk decode.
        """
        return frozenset(self._table.decode_all())
