"""repro.store — the versioned on-disk columnar dataset layout.

The store gives every layer above it a zero-copy cold path:

* :func:`write_columnar` serialises a :class:`BrowsingDataset` as a
  packed vocabulary string table, one contiguous ``int32`` id array
  holding every ranked list, and a binary manifest carrying the
  breakdown index, metadata, distribution vectors and content
  fingerprints;
* :func:`open_columnar` memory-maps those files back as a
  :class:`MappedBrowsingDataset` — cold start is O(open), lists
  materialise lazily from mapped ids plus the shared vocabulary, and
  multiple processes share one physical copy of the pages.

Importing this package registers the ``"columnar"`` codec with
:mod:`repro.export.io`, so ``save_dataset(..., format="columnar")``
and auto-detecting ``load_dataset`` work without touching this module
directly.  The text layout stays available as the export/debug codec;
round-trips between the two are byte-identical.
"""

from .columnar import (
    COLUMNAR_CODEC,
    LISTS_NAME,
    MANIFEST_NAME,
    VOCAB_NAME,
    open_columnar,
    write_columnar,
)
from .format import COLUMNAR_VERSION
from .ingest import IngestReport, ingest_months
from .mapped import MappedBrowsingDataset, MappedStringTable
from .slicefile import SLICE_SUFFIX, read_slice, write_slice

__all__ = [
    "COLUMNAR_CODEC",
    "COLUMNAR_VERSION",
    "IngestReport",
    "LISTS_NAME",
    "MANIFEST_NAME",
    "MappedBrowsingDataset",
    "MappedStringTable",
    "SLICE_SUFFIX",
    "VOCAB_NAME",
    "ingest_months",
    "open_columnar",
    "read_slice",
    "write_columnar",
    "write_slice",
]
