"""Per-slice binary files: the slice cache's columnar-backed path.

One cached slice is one ranked list; its columnar form is simply the
packed string table of :mod:`repro.store.format` under the
``RPROSLC1`` magic — names in rank order, so position == rank - 1.
Compared to the text files the cache historically wrote, the binary
form skips line splitting on read and carries an explicit count, so a
truncated file is detected instead of silently yielding a short list.
"""

from __future__ import annotations

from pathlib import Path

from ..core.rankedlist import RankedList
from .format import MAGIC_SLICE, atomic_write_bytes, pack_string_table, unpack_string_table

#: Extension of binary slice files (text slices keep ``.txt``).
SLICE_SUFFIX = ".slc"


def write_slice(path: str | Path, ranked: RankedList) -> Path:
    """Write one ranked list as a binary slice file (atomic replace)."""
    return atomic_write_bytes(
        Path(path), pack_string_table(ranked.sites, MAGIC_SLICE)
    )


def read_slice(path: str | Path) -> RankedList:
    """Read a binary slice file back into a :class:`RankedList`.

    Raises ``OSError`` when the file is absent (a cache miss for the
    caller) and :class:`~repro.core.errors.DatasetError` when present
    but malformed — corruption should surface, not regenerate silently.
    """
    path = Path(path)
    data = path.read_bytes()
    return RankedList(unpack_string_table(data, path, MAGIC_SLICE))
