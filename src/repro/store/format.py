"""Binary layout primitives for the columnar dataset store.

Every file the store writes starts with one fixed 24-byte header::

    magic      8 bytes   file kind (``RPROVOC1`` / ``RPROIDS1`` / ...)
    version    uint32    layout version of that file kind
    reserved   uint32    zero today; room for flags
    count      uint64    kind-specific element count (see each writer)

All integers are little-endian.  The three file kinds:

``vocab.bin``   packed string table — header (count = number of names),
                ``int64 offsets[count + 1]`` of byte positions into the
                blob (``offsets[0] == 0``), then the UTF-8 blob itself.
                Name *i* is ``blob[offsets[i]:offsets[i + 1]]``; the
                index into the table *is* the site id.
``lists.bin``   one contiguous ``int32`` id array — header (count =
                total ids across every ranked list), then the ids.  The
                manifest records each breakdown's ``(offset, length)``
                window into this array.
``manifest.bin`` binary manifest — header (count = payload byte
                length), then an order-preserving UTF-8 JSON payload
                carrying the breakdown index, dataset metadata,
                distribution vectors and per-file content fingerprints.

The same string-table packing, under a fourth magic, backs the slice
cache's per-slice binary files (:mod:`repro.store.slicefile`).

Writes are crash-safe: :func:`atomic_write_bytes` writes a temp sibling
and ``os.replace``\\ s it into place, so an interrupted save never
leaves a torn file under the final name.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.errors import DatasetError

#: Bump when any file layout changes incompatibly.
COLUMNAR_VERSION = 1

MAGIC_VOCAB = b"RPROVOC1"
MAGIC_LISTS = b"RPROIDS1"
MAGIC_MANIFEST = b"RPROMAN1"
MAGIC_SLICE = b"RPROSLC1"

_HEADER = struct.Struct("<8sIIQ")
#: Fixed size of every file header, in bytes.
HEADER_SIZE = _HEADER.size


def pack_header(magic: bytes, count: int, version: int = COLUMNAR_VERSION) -> bytes:
    return _HEADER.pack(magic, version, 0, count)


def read_header(data: bytes, magic: bytes, path: Path) -> int:
    """Validate a file header; returns its element count."""
    if len(data) < HEADER_SIZE:
        raise DatasetError(f"{path}: truncated header ({len(data)} bytes)")
    got_magic, version, _reserved, count = _HEADER.unpack_from(data)
    if got_magic != magic:
        raise DatasetError(
            f"{path}: bad magic {got_magic!r} (expected {magic!r})"
        )
    if version != COLUMNAR_VERSION:
        raise DatasetError(
            f"{path}: unsupported layout version {version} "
            f"(this build reads version {COLUMNAR_VERSION})"
        )
    return count


# -- string tables ------------------------------------------------------------------


def pack_string_table(names: Sequence[str], magic: bytes = MAGIC_VOCAB) -> bytes:
    """Serialise names as header + int64 offsets + UTF-8 blob."""
    encoded = [name.encode("utf-8") for name in names]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    np.cumsum([len(e) for e in encoded], out=offsets[1:])
    return b"".join(
        (pack_header(magic, len(encoded)), offsets.tobytes(), *encoded)
    )


def unpack_string_table(
    data: bytes, path: Path, magic: bytes = MAGIC_VOCAB
) -> tuple[str, ...]:
    """Decode every name of a packed string table eagerly."""
    count = read_header(data, magic, path)
    offsets_end = HEADER_SIZE + 8 * (count + 1)
    if len(data) < offsets_end:
        raise DatasetError(f"{path}: truncated string-table offsets")
    offsets = np.frombuffer(data, dtype=np.int64, count=count + 1,
                            offset=HEADER_SIZE)
    blob = data[offsets_end:]
    if count and int(offsets[-1]) > len(blob):
        raise DatasetError(f"{path}: string-table blob shorter than offsets")
    return tuple(
        blob[int(offsets[i]):int(offsets[i + 1])].decode("utf-8")
        for i in range(count)
    )


# -- id arrays ----------------------------------------------------------------------


def pack_id_array(ids: np.ndarray) -> bytes:
    """Serialise one contiguous ``int32`` id array (header + raw ids)."""
    arr = np.ascontiguousarray(ids, dtype=np.int32)
    return pack_header(MAGIC_LISTS, arr.size) + arr.tobytes()


def map_id_array(path: Path) -> np.ndarray:
    """Memory-map the id array of ``lists.bin`` — O(open), no page reads."""
    with open(path, "rb") as handle:
        count = read_header(handle.read(HEADER_SIZE), MAGIC_LISTS, path)
    expected = HEADER_SIZE + 4 * count
    actual = path.stat().st_size
    if actual < expected:
        raise DatasetError(
            f"{path}: short id file ({actual} bytes, header promises {expected})"
        )
    if count == 0:
        return np.empty(0, dtype=np.int32)
    return np.memmap(path, dtype=np.int32, mode="r",
                     offset=HEADER_SIZE, shape=(count,))


# -- manifest -----------------------------------------------------------------------


def pack_manifest(header: dict) -> bytes:
    """Serialise the manifest: binary header + order-preserving JSON.

    ``json.dumps`` without ``sort_keys`` keeps dict insertion order, so
    metadata written text → columnar → text round-trips byte-equal.
    """
    payload = json.dumps(
        header, ensure_ascii=False, separators=(",", ":")
    ).encode("utf-8")
    return pack_header(MAGIC_MANIFEST, len(payload)) + payload


def unpack_manifest(data: bytes, path: Path) -> dict:
    count = read_header(data, MAGIC_MANIFEST, path)
    payload = data[HEADER_SIZE:HEADER_SIZE + count]
    if len(payload) < count:
        raise DatasetError(f"{path}: truncated manifest payload")
    try:
        header = json.loads(payload.decode("utf-8"))
    except ValueError as exc:
        raise DatasetError(f"{path}: malformed manifest JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise DatasetError(f"{path}: manifest payload is not an object")
    return header


# -- files --------------------------------------------------------------------------


def atomic_write_bytes(path: Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` via a temp sibling + ``os.replace``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(prefix=f".{path.name}.", dir=path.parent)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def file_fingerprint(data: bytes) -> str:
    """Content fingerprint recorded in the manifest for each data file."""
    return hashlib.sha256(data).hexdigest()
