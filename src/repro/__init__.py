"""repro — reproduction of "A World Wide View of Browsing the World Wide Web".

The package is organised as:

* :mod:`repro.core` — data model (ranked lists, traffic curves, dataset);
* :mod:`repro.world` — static ground truth (countries, taxonomy, sites);
* :mod:`repro.synth` — the synthetic Chrome-telemetry substrate;
* :mod:`repro.etld` — public-suffix handling and domain merging;
* :mod:`repro.categories` — the simulated categorisation API + validation;
* :mod:`repro.stats` — from-scratch statistics (RBO, AP, Fisher, ...);
* :mod:`repro.analysis` — one module per paper analysis (Sections 4–5);
* :mod:`repro.report` — ASCII tables/series for benches and examples.

Quickstart::

    from repro.synth import GeneratorConfig, TelemetryGenerator
    from repro.core import Platform, Metric, REFERENCE_MONTH

    gen = TelemetryGenerator(GeneratorConfig.small())
    data = gen.generate()
    us = data.get("US", Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH)
    print(us.top(10).sites)
"""

from .core import (
    Breakdown,
    BrowsingDataset,
    Metric,
    Month,
    Platform,
    RankedList,
    REFERENCE_MONTH,
    STUDY_MONTHS,
    TrafficDistribution,
)

__version__ = "1.0.0"

__all__ = [
    "Breakdown",
    "BrowsingDataset",
    "Metric",
    "Month",
    "Platform",
    "REFERENCE_MONTH",
    "RankedList",
    "STUDY_MONTHS",
    "TrafficDistribution",
    "__version__",
]
