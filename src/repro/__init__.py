"""repro — reproduction of "A World Wide View of Browsing the World Wide Web".

The package is organised as:

* :mod:`repro.core` — data model (ranked lists, traffic curves, dataset);
* :mod:`repro.world` — static ground truth (countries, taxonomy, sites);
* :mod:`repro.synth` — the synthetic Chrome-telemetry substrate;
* :mod:`repro.engine` — plan/execute generation with slice caching;
* :mod:`repro.store` — columnar binary dataset layout, memory-mapped;
* :mod:`repro.etld` — public-suffix handling and domain merging;
* :mod:`repro.categories` — the simulated categorisation API + validation;
* :mod:`repro.stats` — from-scratch statistics (RBO, AP, Fisher, ...);
* :mod:`repro.analysis` — one module per paper analysis (Sections 4–5);
* :mod:`repro.pipeline` — the analysis DAG + content-addressed artifacts;
* :mod:`repro.service` — the cached QueryService + JSON HTTP API;
* :mod:`repro.report` — ASCII tables/series for benches and examples;
* :mod:`repro.api` — the stable facade re-exported below.

Quickstart (no deep imports needed)::

    import repro

    data = repro.generate(small=True, out="out/feb")   # build + save
    us = repro.load("out/feb").get(
        "US", repro.Platform.WINDOWS, repro.Metric.PAGE_LOADS,
        repro.REFERENCE_MONTH,
    )
    print(us.top(10).sites)

    result = repro.analyze("out/feb", "concentration")  # one DAG task
    repro.report("out/feb", "runs/feb")                 # the whole paper
    repro.serve("out/feb", port=8000)                   # HTTP serving layer
"""

from .core import (
    Breakdown,
    BrowsingDataset,
    Metric,
    Month,
    Platform,
    RankedList,
    REFERENCE_MONTH,
    STUDY_MONTHS,
    TrafficDistribution,
)

# Import the ``repro.report`` submodule before the facade shadows the
# name: loading it here pins ``sys.modules['repro.report']``, so
# ``from repro.report import render_table`` keeps working everywhere
# while the attribute ``repro.report`` is the facade function below.
from . import report as _report_module  # noqa: F401
from .api import (
    analyze, convert, generate, ingest, load, loadtest, report, serve,
)

__version__ = "1.1.0"

__all__ = [
    "Breakdown",
    "BrowsingDataset",
    "Metric",
    "Month",
    "Platform",
    "REFERENCE_MONTH",
    "RankedList",
    "STUDY_MONTHS",
    "TrafficDistribution",
    "__version__",
    "analyze",
    "convert",
    "generate",
    "ingest",
    "load",
    "loadtest",
    "report",
    "serve",
]
