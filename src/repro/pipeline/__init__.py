"""repro.pipeline — DAG-orchestrated paper reproduction.

The pipeline turns the analysis catalogue into an executable artifact:
every :mod:`repro.analysis` entry point is registered as a named
:class:`Task` with declared inputs, the :class:`PipelineRunner` walks
the dependency DAG in deterministic topological waves (serially or on
a thread pool), and every result lands in a content-addressed
:class:`ArtifactStore` keyed by (dataset fingerprint, task name,
parameter hash) — mirroring how :class:`repro.engine.SliceCache`
addresses generated slices.  A warm cache replays the full report with
zero task executions; a cold parallel run produces byte-identical
artifacts to a serial one.

Quick start::

    from repro.export import load_dataset
    from repro.pipeline import run_pipeline

    report = run_pipeline(load_dataset("out/feb"), jobs=4,
                          store="out/feb/.artifacts")
    report.results["concentration"]["series"][0]["top1"]

or, from the shell::

    repro report --data out/feb --out runs/feb --jobs 4
"""

from .artifacts import ArtifactStore, artifact_bytes
from .context import TaskContext, infer_config
from .registry import TaskRegistry
from .reporting import render_task, write_run_dir
from .runner import (
    PipelineRunner,
    RunReport,
    SerialTaskExecutor,
    ThreadedTaskExecutor,
    run_pipeline,
)
from .task import Task, TaskRecord, TaskStatus, canonical_json, params_hash
from .tasks import default_registry

__all__ = [
    "ArtifactStore",
    "PipelineRunner",
    "RunReport",
    "SerialTaskExecutor",
    "Task",
    "TaskContext",
    "TaskRecord",
    "TaskRegistry",
    "TaskStatus",
    "ThreadedTaskExecutor",
    "artifact_bytes",
    "canonical_json",
    "default_registry",
    "infer_config",
    "params_hash",
    "render_task",
    "run_pipeline",
    "write_run_dir",
]
