"""Content-addressed on-disk store of analysis artifacts.

Layout::

    <root>/<dataset-fingerprint>/<task>__<key>.json

The address mirrors :class:`repro.engine.SliceCache`: the directory is
the dataset fingerprint (the generator fingerprint recorded in the
manifest, or a content hash for unprovenanced datasets) and the file
name combines the task name with :meth:`Task.key` — a digest of the
task's parameters, the reference month and, for ground-truth tasks,
the generator-config fingerprint.  A hit is therefore guaranteed to be
the value the task body would recompute, and changing any knob starts
a new cache line instead of serving stale results.

Artifacts are canonical JSON (sorted keys, fixed separators), so a
file is a pure function of its address — parallel and serial runs
write byte-identical artifacts — and stays greppable/diffable with
standard tools.  Writes are atomic (tmp file + rename), matching the
slice cache's crash behaviour.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from ..engine.cache import CacheStats
from .task import canonical_json

#: Bump when the envelope layout changes; old artifacts become misses.
_ARTIFACT_VERSION = 1


def artifact_bytes(name: str, key: str, result: object) -> bytes:
    """The exact bytes stored for one artifact (shared with run dirs)."""
    envelope = {
        "version": _ARTIFACT_VERSION,
        "task": name,
        "key": key,
        "result": result,
    }
    return (canonical_json(envelope) + "\n").encode("utf-8")


class ArtifactStore:
    """A content-addressed artifact store under a configurable root."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    def dir_for(self, fingerprint: str) -> Path:
        return self.root / fingerprint

    def path_for(self, fingerprint: str, name: str, key: str) -> Path:
        return self.dir_for(fingerprint) / f"{name}__{key}.json"

    def get(self, fingerprint: str, name: str, key: str) -> object | None:
        """The stored result, or ``None`` on a miss.

        Unreadable or malformed files (torn writes, foreign formats)
        count as misses — the task simply recomputes and overwrites.
        """
        path = self.path_for(fingerprint, name, key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != _ARTIFACT_VERSION
            or payload.get("task") != name
            or payload.get("key") != key
            or "result" not in payload
        ):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload["result"]

    def put(self, fingerprint: str, name: str, key: str, result: object) -> Path:
        """Store one artifact; the write is atomic (tmp file + rename)."""
        path = self.path_for(fingerprint, name, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(prefix=f".{path.name}.", dir=path.parent)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(artifact_bytes(name, key, result))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    def __contains__(self, address: tuple[str, str, str]) -> bool:
        fingerprint, name, key = address
        return self.path_for(fingerprint, name, key).is_file()

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r}, {self.stats})"
