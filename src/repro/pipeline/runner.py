"""DAG runner: topological waves, per-task isolation, artifact reuse.

The runner walks the registry's deterministic topological order in
*waves*: every task whose dependencies are satisfied runs in the
current wave, and the wave is handed to an executor —
:class:`SerialTaskExecutor` (the reference) or
:class:`ThreadedTaskExecutor` (a thread pool; analyses share the
loaded dataset, so threads beat processes, and the numpy-heavy bodies
release the GIL for the hot parts).  Mirroring the generation engine's
serial/parallel contract, results are keyed by task name and written
back in sorted order from the coordinating thread, so scheduling can
never change what a run produces: parallel runs emit byte-identical
artifacts to serial runs.

Failure is isolated per task: a body that raises marks the task
``failed`` (error recorded), a body that raises
:class:`TaskUnavailable` marks it ``skipped``, and either way every
transitive dependent is ``skipped`` with a reason — the rest of the
DAG keeps running.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from ..core.dataset import BrowsingDataset
from ..core.errors import PipelineError, TaskUnavailable
from ..core.types import Month
from ..obs import get_tracer
from .artifacts import ArtifactStore
from .context import TaskContext
from .registry import TaskRegistry
from .task import Task, TaskRecord, TaskStatus, result_digest

#: What executing one task body yields: (status, result, error, seconds).
Outcome = tuple[TaskStatus, object, str | None, float]


def _call(task: Task, ctx: TaskContext, inputs: dict[str, object]) -> Outcome:
    """Run one task body, converting every exception into an outcome."""
    start = time.perf_counter()
    try:
        result = task.fn(ctx, inputs)
    except TaskUnavailable as exc:
        return (TaskStatus.SKIPPED, None, str(exc), time.perf_counter() - start)
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        error = f"{type(exc).__name__}: {exc}"
        return (TaskStatus.FAILED, None, error, time.perf_counter() - start)
    return (TaskStatus.OK, result, None, time.perf_counter() - start)


class SerialTaskExecutor:
    """In-thread wave execution — the reference implementation."""

    name = "serial"

    def run_wave(
        self, wave: list[tuple[str, Callable[[], Outcome]]]
    ) -> dict[str, Outcome]:
        return {name: thunk() for name, thunk in wave}


class ThreadedTaskExecutor:
    """Thread-pool wave execution for independent analyses."""

    name = "threads"

    def __init__(self, jobs: int | None = None) -> None:
        import os

        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise PipelineError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def run_wave(
        self, wave: list[tuple[str, Callable[[], Outcome]]]
    ) -> dict[str, Outcome]:
        if self.jobs == 1 or len(wave) <= 1:
            return SerialTaskExecutor().run_wave(wave)
        with ThreadPoolExecutor(max_workers=min(self.jobs, len(wave))) as pool:
            futures = {name: pool.submit(thunk) for name, thunk in wave}
            return {name: future.result() for name, future in futures.items()}


@dataclass
class RunReport:
    """Everything one pipeline run produced and recorded."""

    fingerprint: str
    order: tuple[str, ...]
    records: dict[str, TaskRecord] = field(default_factory=dict)
    results: dict[str, object] = field(default_factory=dict)

    def count(self, status: TaskStatus) -> int:
        return sum(1 for r in self.records.values() if r.status is status)

    @property
    def executed(self) -> int:
        """Tasks whose bodies actually ran this time (cache misses)."""
        return self.count(TaskStatus.OK)

    @property
    def cached(self) -> int:
        return self.count(TaskStatus.CACHED)

    @property
    def failed(self) -> int:
        return self.count(TaskStatus.FAILED)

    @property
    def skipped(self) -> int:
        return self.count(TaskStatus.SKIPPED)

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def to_dict(self) -> dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "order": list(self.order),
            "counts": {
                "executed": self.executed,
                "cached": self.cached,
                "failed": self.failed,
                "skipped": self.skipped,
            },
            "tasks": {name: rec.to_dict() for name, rec in self.records.items()},
        }


class PipelineRunner:
    """Cache-aware DAG execution over a task registry."""

    def __init__(
        self,
        registry: TaskRegistry,
        *,
        executor: SerialTaskExecutor | ThreadedTaskExecutor | None = None,
        store: ArtifactStore | str | Path | None = None,
    ) -> None:
        self.registry = registry
        self.executor = executor or SerialTaskExecutor()
        if isinstance(store, (str, Path)):
            store = ArtifactStore(store)
        self.store = store

    def run(
        self,
        ctx: TaskContext,
        tasks: Iterable[str] | None = None,
    ) -> RunReport:
        tracer = get_tracer()
        with tracer.span(
            "pipeline.run", fingerprint=ctx.fingerprint
        ) as root:
            report = self._run(ctx, tasks, tracer)
            root.set("tasks", len(report.order))
            root.add("executed", report.executed)
            root.add("cached", report.cached)
            root.add("failed", report.failed)
            root.add("skipped", report.skipped)
            return report

    def _run(self, ctx, tasks, tracer) -> RunReport:
        store_outcome = "miss" if self.store is not None else "off"
        order = self.registry.topological_order(tasks)
        report = RunReport(fingerprint=ctx.fingerprint, order=order)
        for name in order:
            report.records[name] = TaskRecord(name, TaskStatus.SKIPPED)

        pending = list(order)
        done: set[str] = set()
        while pending:
            wave_names = [
                name for name in pending
                if all(d in done or d not in order
                       for d in self.registry.get(name).deps)
            ]
            if not wave_names:  # pragma: no cover - topo order precludes it
                raise PipelineError(f"scheduler stuck with pending {pending}")
            # Tasks whose in-run dependency already resolved badly are
            # settled immediately; the rest form the executable wave.
            runnable: list[tuple[str, Callable[[], Outcome]]] = []
            for name in wave_names:
                task = self.registry.get(name)
                bad = [
                    d for d in task.deps
                    if d in order and report.records[d].status
                    in (TaskStatus.FAILED, TaskStatus.SKIPPED)
                ]
                if bad:
                    report.records[name] = TaskRecord(
                        name, TaskStatus.SKIPPED,
                        error=f"dependency {bad[0]!r} "
                              f"{report.records[bad[0]].status.value}",
                    )
                    tracer.record(
                        "pipeline.task", 0.0, task=name,
                        status=TaskStatus.SKIPPED.value, reason="dependency",
                    )
                    continue
                # Dependencies settled in earlier waves, so their result
                # digests are known here; folding them into the key
                # gives Merkle-style early cutoff (see Task.key).
                dep_digests = {
                    d: report.records[d].digest
                    for d in task.deps
                    if d in report.records and report.records[d].digest
                }
                try:
                    key = task.key(ctx, dep_digests)
                except TaskUnavailable as exc:
                    report.records[name] = TaskRecord(
                        name, TaskStatus.SKIPPED, error=str(exc)
                    )
                    tracer.record(
                        "pipeline.task", 0.0, task=name,
                        status=TaskStatus.SKIPPED.value, reason="unavailable",
                    )
                    continue
                if self.store is not None:
                    lookup = time.perf_counter()
                    cached = self.store.get(ctx.fingerprint, name, key)
                    if cached is not None:
                        report.records[name] = TaskRecord(
                            name, TaskStatus.CACHED, key=key,
                            digest=result_digest(cached),
                        )
                        report.results[name] = cached
                        tracer.record(
                            "pipeline.task",
                            time.perf_counter() - lookup,
                            task=name, status=TaskStatus.CACHED.value,
                            store="hit",
                        )
                        continue
                inputs = {d: report.results[d] for d in task.deps}
                runnable.append((
                    name,
                    (lambda t=task, i=inputs: _call(t, ctx, i)),
                ))
                report.records[name] = TaskRecord(name, TaskStatus.OK, key=key)

            outcomes = self.executor.run_wave(runnable)
            # Settle and write back in sorted order from this thread so
            # artifacts are independent of scheduling.
            for name in sorted(outcomes):
                status, result, error, seconds = outcomes[name]
                record = report.records[name]
                record.status = status
                record.error = error
                record.seconds = seconds
                if status is TaskStatus.OK:
                    report.results[name] = result
                    record.digest = result_digest(result)
                    if self.store is not None:
                        self.store.put(ctx.fingerprint, name, record.key, result)
                tracer.record(
                    "pipeline.task", seconds,
                    task=name, status=status.value, store=store_outcome,
                )

            done.update(wave_names)
            pending = [n for n in pending if n not in done]
        return report


def run_pipeline(
    dataset: BrowsingDataset,
    tasks: Iterable[str] | None = None,
    *,
    registry: TaskRegistry | None = None,
    jobs: int = 1,
    store: ArtifactStore | str | Path | None = None,
    config: object | None = None,
    month: Month | None = None,
    artifacts: ArtifactStore | str | Path | None = None,
) -> RunReport:
    """One-call pipeline run: the registry's tasks over ``dataset``.

    ``store`` accepts a path or an :class:`ArtifactStore`; ``artifacts``
    is the deprecated pre-normalization alias (it warns once).
    """
    from .._compat import deprecated_alias

    store = deprecated_alias(
        store, artifacts, owner="run_pipeline", old="artifacts", new="store"
    )
    if registry is None:
        from .tasks import default_registry

        registry = default_registry()
    executor = ThreadedTaskExecutor(jobs) if jobs > 1 else SerialTaskExecutor()
    runner = PipelineRunner(registry, executor=executor, store=store)
    ctx = TaskContext(dataset, config=config, month=month)
    return runner.run(ctx, tasks)
