"""Run context shared by every task in one pipeline run.

The context carries what tasks may not compute for themselves: the
loaded dataset, the reference month (default: the dataset's last
month), and — optionally — the :class:`GeneratorConfig` matching the
dataset, which ground-truth tasks (labels, tags, app roster) need to
rebuild the synthetic universe.  The generator is built lazily behind a
lock, so a warm artifact cache never pays the universe build and
concurrent tasks share one instance.
"""

from __future__ import annotations

import hashlib
import threading
from typing import TYPE_CHECKING

from ..core.dataset import BrowsingDataset
from ..core.errors import TaskUnavailable
from ..core.types import Metric, Month, Platform

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..synth.generator import GeneratorConfig, TelemetryGenerator


class TaskContext:
    """Immutable-by-convention inputs shared across one run's tasks."""

    def __init__(
        self,
        dataset: BrowsingDataset,
        *,
        config: "GeneratorConfig | None" = None,
        month: Month | None = None,
    ) -> None:
        self.dataset = dataset
        self.config = config
        self.month = month or dataset.months[-1]
        self._generator: "TelemetryGenerator | None" = None
        self._fingerprint: str | None = None
        self._sites: frozenset[str] | None = None
        self._lock = threading.Lock()

    # -- identity -----------------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """The dataset half of every artifact address.

        Engine-provenanced datasets answer from their recorded metadata
        fingerprint, and memory-mapped columnar datasets from the
        fingerprint in their binary manifest — neither path hashes a
        single list, so addressing a warm artifact store stays O(1)
        even against a cold mmap.
        """
        if self._fingerprint is None:
            from ..export.io import dataset_fingerprint

            self._fingerprint = dataset_fingerprint(self.dataset)
        return self._fingerprint

    def months_key(self) -> str:
        """A short digest of the dataset's month set.

        Folded into the cache keys of ``reads="all-months"`` tasks, so
        an ingested month invalidates exactly the tasks that sweep the
        month axis (or the dataset-wide site union) and no others.
        """
        blob = "|".join(str(m) for m in self.dataset.months)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]

    def config_fingerprint(self) -> str:
        """Content address of the generator config (ground-truth tasks)."""
        if self.config is None:
            raise TaskUnavailable(
                "no generator config for this dataset; pass --small/--seed "
                "matching the configuration that generated it"
            )
        return self.config.fingerprint()

    # -- ground truth -------------------------------------------------------------

    @property
    def generator(self) -> "TelemetryGenerator":
        """The generator for :attr:`config`, built once per run.

        Raises :class:`TaskUnavailable` when the run has no config —
        dataset-only tasks never touch this, so a pipeline over an
        unprovenanced export still runs everything label-free.
        """
        if self.config is None:
            self.config_fingerprint()  # raises with the actionable message
        with self._lock:
            if self._generator is None:
                from ..engine.executor import generator_for

                self._generator = generator_for(self.config)
            return self._generator

    # -- dataset conveniences -----------------------------------------------------

    def sites(self) -> frozenset[str]:
        """Every site appearing anywhere in the dataset (memoised).

        Ground-truth tasks restrict their artifacts to this union so a
        full-scale label map stores ~the dataset's vocabulary, not the
        whole 1.1M-site universe.  Columnar datasets answer from their
        packed string table in one bulk decode
        (:meth:`~repro.store.MappedBrowsingDataset.all_sites`) instead
        of materialising every list.
        """
        with self._lock:
            if self._sites is None:
                all_sites = getattr(self.dataset, "all_sites", None)
                if all_sites is not None:
                    self._sites = frozenset(all_sites())
                else:
                    union: set[str] = set()
                    for breakdown in self.dataset.breakdowns():
                        union.update(self.dataset[breakdown].sites)
                    self._sites = frozenset(union)
            return self._sites

    @property
    def primary_platform(self) -> Platform:
        """Windows when present (the paper's headline platform)."""
        if Platform.WINDOWS in self.dataset.platforms:
            return Platform.WINDOWS
        return self.dataset.platforms[-1]

    @property
    def primary_metric(self) -> Metric:
        """Page loads when present (the paper's headline metric)."""
        if Metric.PAGE_LOADS in self.dataset.metrics:
            return Metric.PAGE_LOADS
        return self.dataset.metrics[0]

    def primary_lists(self):
        """Per-country lists for the headline (platform, metric, month)."""
        return self.dataset.select(
            self.primary_platform, self.primary_metric, self.month
        )

    def __repr__(self) -> str:
        config = "yes" if self.config is not None else "no"
        return (
            f"TaskContext(fingerprint={self.fingerprint}, month={self.month}, "
            f"config={config})"
        )


def infer_config(
    dataset: BrowsingDataset,
    *,
    small: bool = False,
    seed: int | None = None,
) -> "GeneratorConfig":
    """The :class:`GeneratorConfig` matching a saved dataset.

    Engine-produced datasets record the config fingerprint in their
    manifest metadata; we try the two canonical configurations (full
    and small scale, at the recorded or requested seed) and return
    whichever one round-trips to that fingerprint.  When neither
    matches — or the dataset carries no provenance — fall back to the
    caller's ``--small``/``--seed`` flags, preserving the historical
    CLI behaviour.
    """
    from ..synth.generator import GeneratorConfig

    metadata = dataset.metadata
    if seed is None:
        recorded_seed = metadata.get("seed")
        seed = recorded_seed if isinstance(recorded_seed, int) else 2022
    recorded = metadata.get("fingerprint")
    candidates = (GeneratorConfig.small(seed=seed), GeneratorConfig(seed=seed))
    if isinstance(recorded, str):
        for candidate in candidates:
            if candidate.fingerprint() == recorded:
                return candidate
    return candidates[0] if small else candidates[1]
