"""Task registry: the catalogue and dependency graph of analyses.

A :class:`TaskRegistry` owns a set of uniquely-named :class:`Task`\\ s
and answers the two graph questions the runner needs: the transitive
dependency *closure* of a task selection, and a deterministic
*topological order* over it (Kahn's algorithm with an alphabetically
sorted ready set, so the schedule — and therefore every run report —
is reproducible).  Registries validate eagerly: duplicate names,
unknown dependencies and cycles all raise :class:`PipelineError` at
wiring time, not mid-run.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from ..core.errors import PipelineError
from .task import ContextKeyFn, RenderFn, Task, TaskFn


class TaskRegistry:
    """An ordered, validated collection of pipeline tasks."""

    def __init__(self, tasks: Iterable[Task] = ()) -> None:
        self._tasks: dict[str, Task] = {}
        for task in tasks:
            self.add(task)

    # -- wiring -------------------------------------------------------------------

    def add(self, task: Task) -> Task:
        if task.name in self._tasks:
            raise PipelineError(f"duplicate task name {task.name!r}")
        self._tasks[task.name] = task
        return task

    def task(
        self,
        name: str,
        *,
        deps: tuple[str, ...] = (),
        params: Mapping[str, object] | None = None,
        section: str = "",
        title: str = "",
        render: RenderFn | None = None,
        context_key: ContextKeyFn | None = None,
        reads: str = "month",
    ) -> Callable[[TaskFn], TaskFn]:
        """Decorator form of :meth:`add` for defining task bodies."""

        def register(fn: TaskFn) -> TaskFn:
            self.add(Task(
                name=name, fn=fn, deps=tuple(deps),
                params=dict(params or {}), section=section, title=title,
                render=render, context_key=context_key, reads=reads,
            ))
            return fn

        return register

    # -- lookups ------------------------------------------------------------------

    def get(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            known = ", ".join(sorted(self._tasks))
            raise PipelineError(
                f"unknown task {name!r}; registered: {known}"
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(self._tasks)

    def __contains__(self, name: object) -> bool:
        return name in self._tasks

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def __len__(self) -> int:
        return len(self._tasks)

    # -- graph --------------------------------------------------------------------

    def closure(self, names: Iterable[str] | None = None) -> set[str]:
        """``names`` plus every transitive dependency (whole graph if None)."""
        if names is None:
            wanted = list(self._tasks)
        else:
            wanted = list(names)
        out: set[str] = set()
        stack = list(wanted)
        while stack:
            name = stack.pop()
            if name in out:
                continue
            out.add(name)
            stack.extend(self.get(name).deps)
        return out

    def topological_order(
        self, names: Iterable[str] | None = None
    ) -> tuple[str, ...]:
        """A deterministic dependency-respecting order over the closure.

        Kahn's algorithm; ties are broken alphabetically so the order
        is a pure function of the graph, independent of registration
        or selection order.  Raises :class:`PipelineError` on cycles.
        """
        selected = self.closure(names)
        remaining_deps = {
            name: {d for d in self.get(name).deps if d in selected}
            for name in selected
        }
        order: list[str] = []
        ready = sorted(n for n, deps in remaining_deps.items() if not deps)
        while ready:
            name = ready.pop(0)
            order.append(name)
            newly_ready = []
            for other, deps in remaining_deps.items():
                if name in deps:
                    deps.discard(name)
                    if not deps and other not in order:
                        newly_ready.append(other)
            ready = sorted(set(ready) | set(newly_ready))
        if len(order) != len(selected):
            stuck = sorted(set(selected) - set(order))
            raise PipelineError(f"dependency cycle involving {stuck}")
        return tuple(order)

    def __repr__(self) -> str:
        return f"TaskRegistry({len(self._tasks)} tasks)"
