"""The default task registry: every paper analysis as a DAG node.

Each task turns one :mod:`repro.analysis` module into a named,
cacheable pipeline step: the body selects the right dataset slice,
runs the analysis, and returns a JSON-shaped summary (the artifact);
``render`` turns that artifact back into the plain-text table/figure
the CLI and run reports print.  Dependencies express real data flow —
ground truth (``labels``/``tags``/``has_app``) feeds the composition
family, the endemicity scoring feeds the popularity mix, and the wRBO
matrix feeds clustering and geography — so independent branches run
concurrently under the threaded executor.

Heavy imports live inside task bodies: building the registry (e.g. to
populate ``analyze --analysis`` choices) costs nothing.
"""

from __future__ import annotations

import math

from ..core.errors import TaskUnavailable
from ..core.types import Metric, Platform
from ..report import render_shares, render_table
from .context import TaskContext
from .registry import TaskRegistry


# -- serialization helpers ------------------------------------------------------------

def _f(value: float) -> float | None:
    """JSON-safe float: non-finite values become null."""
    value = float(value)
    return value if math.isfinite(value) else None


def _q(stats) -> dict[str, float | None]:
    """Serialize a :class:`repro.stats.descriptive.Quartiles`."""
    return {"q25": _f(stats.q25), "median": _f(stats.median), "q75": _f(stats.q75)}


def _config_key(ctx: TaskContext) -> str:
    return ctx.config_fingerprint()


def _sorted_distributions(ctx: TaskContext):
    return sorted(
        ctx.dataset.distributions().items(),
        key=lambda kv: (kv[0][0].value, kv[0][1].value),
    )


def _pct(value: float | None) -> str:
    return "n/a" if value is None else f"{value:.1%}"


REGISTRY = TaskRegistry()


# -- ground truth ---------------------------------------------------------------------

@REGISTRY.task(
    "labels", section="§3.3", title="Site category labels",
    context_key=_config_key, reads="all-months",
)
def _labels(ctx: TaskContext, inputs: dict[str, object]) -> object:
    """Ground-truth category per site, restricted to the dataset's sites."""
    labels = ctx.generator.site_categories()
    present = ctx.sites()
    return {site: labels[site] for site in sorted(present) if site in labels}


@REGISTRY.task(
    "tags", section="§5.3.2", title="Descriptive site tags",
    context_key=_config_key, reads="all-months",
)
def _tags(ctx: TaskContext, inputs: dict[str, object]) -> object:
    universe = ctx.generator.universe
    present = ctx.sites()
    out: dict[str, list[str]] = {}
    for uid, tags in universe.tags.items():
        site = universe.canonical[uid]
        if site in present:
            out[site] = list(tags)
    return out


@REGISTRY.task(
    "has_app", section="§4.1.2", title="Android app roster",
    context_key=_config_key, reads="all-months",
)
def _has_app(ctx: TaskContext, inputs: dict[str, object]) -> object:
    import numpy as np

    universe = ctx.generator.universe
    present = ctx.sites()
    sites = sorted(
        universe.canonical[int(uid)]
        for uid in np.flatnonzero(universe.has_android_app)
        if universe.canonical[int(uid)] in present
    )
    return {"sites": sites}


# -- concentration (§4.1, Figure 1) ---------------------------------------------------

def _render_concentration(result) -> str:
    rows = [
        (f"{s['platform']}/{s['metric']}", _pct(s["top1"]),
         s["sites_for_quarter"], _pct(s["top10k"]))
        for s in result["series"]
    ]
    return render_table(
        ("breakdown", "top-1 share", "sites for 25%", "top-10K share"),
        rows, title="Traffic concentration (Figure 1)",
    )


@REGISTRY.task(
    "concentration", section="§4.1, Figure 1", title="Traffic concentration",
    render=_render_concentration,
)
def _concentration(ctx: TaskContext, inputs: dict[str, object]) -> object:
    from ..analysis import concentration_curve, headline_concentration

    series = []
    for (platform, metric), dist in _sorted_distributions(ctx):
        headline = headline_concentration(dist, platform, metric)
        curve = concentration_curve(dist, platform, metric)
        series.append({
            "platform": platform.value,
            "metric": metric.value,
            "top1": _f(headline.top1),
            "sites_for_quarter": headline.sites_for_quarter,
            "sites_for_half": headline.sites_for_half,
            "top100": _f(headline.top100),
            "top10k": _f(headline.top10k),
            "top1m": _f(headline.top1m),
            "curve": [
                {"rank": row.rank, "share": _f(row.cumulative_share)}
                for row in curve.rows
            ],
        })
    return {"series": series}


# -- composition (§4.2.2, Figure 2) ---------------------------------------------------

def _render_composition(result) -> str:
    blocks = []
    for panel in result["panels"]:
        if panel["perspective"] != "traffic" or panel["top_n"] != 10_000:
            continue
        blocks.append(render_shares(
            panel["shares"], f"{panel['platform']} / {panel['metric']}", top=8,
        ))
    return "\n\n".join(blocks)


@REGISTRY.task(
    "composition", deps=("labels",), params={"top_ns": [100, 10_000]},
    section="§4.2.2, Figure 2", title="Category composition",
    render=_render_composition,
)
def _composition(ctx: TaskContext, inputs: dict[str, object]) -> object:
    from ..analysis import composition_panel, dominant_category

    labels = inputs["labels"]
    panels = []
    for platform in ctx.dataset.platforms:
        for metric in ctx.dataset.metrics:
            for top_n in (100, 10_000):
                for perspective in ("domains", "traffic"):
                    panel = composition_panel(
                        ctx.dataset, labels, platform, metric, ctx.month,
                        top_n=top_n, perspective=perspective,
                    )
                    panels.append({
                        "platform": platform.value,
                        "metric": metric.value,
                        "top_n": top_n,
                        "perspective": perspective,
                        "shares": {c: _f(s) for c, s in panel.shares.items()},
                        "dominant": dominant_category(panel),
                    })
    return {"panels": panels}


# -- prevalence (§4.2.3, Figure 3) ----------------------------------------------------

def _render_prevalence(result) -> str:
    rows = [
        (f"{b['platform']}/{b['metric']}", c["category"],
         _pct(c["points"][0]["median"]), _pct(c["points"][-1]["median"]),
         "-" if c["head_tail_ratio"] is None else f"{c['head_tail_ratio']:.1f}x")
        for b in result["breakdowns"] for c in b["curves"]
    ]
    return render_table(
        ("breakdown", "category", "head median", "tail median", "head/tail"),
        rows, title="Category prevalence by rank (Figure 3)",
    )


@REGISTRY.task(
    "prevalence", deps=("labels",), section="§4.2.3, Figure 3",
    title="Category prevalence by rank", render=_render_prevalence,
)
def _prevalence(ctx: TaskContext, inputs: dict[str, object]) -> object:
    from ..analysis import head_tail_ratio, prevalence_by_rank

    labels = inputs["labels"]
    breakdowns = []
    for platform in ctx.dataset.platforms:
        for metric in ctx.dataset.metrics:
            curves = prevalence_by_rank(
                ctx.dataset, labels, platform, metric, ctx.month,
            )
            breakdowns.append({
                "platform": platform.value,
                "metric": metric.value,
                "curves": [
                    {
                        "category": curve.category,
                        "points": [
                            {"threshold": p.threshold, **_q(p.stats)}
                            for p in curve.points
                        ],
                        "head_tail_ratio": _f(head_tail_ratio(curve))
                        if curve.points else None,
                    }
                    for curve in curves
                ],
            })
    return {"breakdowns": breakdowns}


# -- platform differences (§4.3, Figure 4) --------------------------------------------

def _render_platforms(result) -> str:
    rows = [
        (m["metric"], d["category"], f"{d['median_score']:+.2f}",
         f"{d['n_significant']}/{d['n_countries']}")
        for m in result["metrics"] for d in m["differences"]
    ]
    return render_table(
        ("metric", "category", "median score", "significant"),
        rows, title="Desktop vs mobile category skew (Figure 4)",
    )


@REGISTRY.task(
    "platforms", deps=("labels",), params={"top_n": 10_000},
    section="§4.3, Figures 4 & 15", title="Platform differences",
    render=_render_platforms,
)
def _platforms(ctx: TaskContext, inputs: dict[str, object]) -> object:
    from ..analysis import platform_differences

    if not set(Platform.studied()) <= set(ctx.dataset.platforms):
        raise TaskUnavailable(
            "platform comparison needs both windows and android slices"
        )
    labels = inputs["labels"]
    metrics = []
    for metric in ctx.dataset.metrics:
        differences = platform_differences(
            ctx.dataset, labels, metric, ctx.month, top_n=10_000,
        )
        metrics.append({
            "metric": metric.value,
            "differences": [
                {
                    "category": d.category,
                    "median_score": _f(d.median_score),
                    "n_significant": d.n_significant,
                    "n_countries": d.n_countries,
                    "median_android": _f(d.median_android),
                    "median_windows": _f(d.median_windows),
                }
                for d in differences
            ],
        })
    return {"metrics": metrics}


# -- loads vs time (§4.4, Figure 5) ---------------------------------------------------

def _render_overlap(result) -> str:
    rows = [
        (r["platform"], _pct(r["intersection"]["median"]),
         "n/a" if r["spearman"]["median"] is None
         else f"{r['spearman']['median']:.2f}")
        for r in result["platforms"]
    ]
    return render_table(
        ("platform", "median intersection", "median Spearman"), rows,
        title="Loads vs time agreement (Section 4.4)",
    )


@REGISTRY.task(
    "overlap", params={"top_n": 10_000}, section="§4.4, Figures 5 & 16",
    title="Metric agreement", render=_render_overlap,
)
def _overlap(ctx: TaskContext, inputs: dict[str, object]) -> object:
    from ..analysis import metric_overlap

    # Loop-invariant: both metrics are a dataset property, so check once
    # up front instead of re-testing (and failing) per platform.
    if not {Metric.PAGE_LOADS, Metric.TIME_ON_PAGE} <= set(ctx.dataset.metrics):
        raise TaskUnavailable("dataset lacks both metrics")
    platforms = []
    for platform in ctx.dataset.platforms:
        overlap = metric_overlap(ctx.dataset, platform, ctx.month)
        platforms.append({
            "platform": platform.value,
            "intersection": _q(overlap.intersection_stats),
            "spearman": _q(overlap.spearman_stats),
            "per_country_intersection": {
                c: _f(v) for c, v in sorted(overlap.intersections.items())
            },
        })
    return {"platforms": platforms}


# -- temporal stability (§4.5) --------------------------------------------------------

def _render_temporal(result) -> str:
    rows = [
        (str(b["bucket"]), p["month_a"], p["month_b"],
         _pct(p["intersection"]["median"]))
        for b in result["adjacent"] for p in b["pairs"]
    ]
    table = render_table(
        ("bucket", "month a", "month b", "median intersection"), rows,
        title="Adjacent-month similarity (Section 4.5)",
    )
    anomaly = result["december"]
    if anomaly is not None:
        table += (
            f"\nDecember gap: {anomaly['gap']:+.3f} "
            f"(december {_pct(anomaly['december_intersection'])} vs "
            f"other {_pct(anomaly['other_intersection'])})"
        )
    return table


@REGISTRY.task(
    "temporal", section="§4.5", title="Temporal stability",
    render=_render_temporal, reads="all-months",
)
def _temporal(ctx: TaskContext, inputs: dict[str, object]) -> object:
    from ..analysis import adjacent_month_series, anchored_series, december_anomaly
    from ..analysis.temporal import DEFAULT_BUCKETS

    if len(ctx.dataset.months) < 2:
        raise TaskUnavailable("temporal stability needs at least two months")
    platform, metric = ctx.primary_platform, ctx.primary_metric

    def serialize(series) -> list[dict[str, object]]:
        return [
            {
                "month_a": str(s.month_a),
                "month_b": str(s.month_b),
                "intersection": _q(s.intersection),
                "spearman": _q(s.spearman),
            }
            for s in series
        ]

    adjacent = [
        {
            "bucket": bucket,
            "pairs": serialize(
                adjacent_month_series(ctx.dataset, platform, metric, bucket)
            ),
        }
        for bucket in DEFAULT_BUCKETS
    ]
    anchored = serialize(
        anchored_series(ctx.dataset, platform, metric, DEFAULT_BUCKETS[-1])
    )
    try:
        anomaly = december_anomaly(ctx.dataset, platform, metric)
        december = {
            "december_intersection": _f(anomaly.december_intersection),
            "other_intersection": _f(anomaly.other_intersection),
            "gap": _f(anomaly.gap),
            "is_anomalous": anomaly.is_anomalous,
        }
    except ValueError:
        december = None
    return {
        "platform": platform.value,
        "metric": metric.value,
        "adjacent": adjacent,
        "anchored": anchored,
        "december": december,
    }


# -- endemicity (§5.1–5.2) ------------------------------------------------------------

def _render_endemicity(result) -> str:
    rows = [
        ("eligible sites", result["n_sites"]),
        ("globally popular", result["n_global"]),
        ("nationally popular", result["n_national"]),
        ("global fraction", _pct(result["global_fraction"])),
        ("single-list exclusives", _pct(result["exclusive_fraction"])),
    ] + [(f"shape: {shape}", n) for shape, n in sorted(result["shapes"].items())]
    return render_table(
        ("quantity", "value"), rows,
        title="Endemicity of the popular web (Section 5.1)",
    )


@REGISTRY.task(
    "endemicity", params={"eligible_rank": 1_000, "mad_threshold": 3.5},
    section="§5.1–5.2, Figures 6–8", title="Endemicity scoring",
    render=_render_endemicity,
)
def _endemicity(ctx: TaskContext, inputs: dict[str, object]) -> object:
    from ..analysis import classify_shape, exclusivity_fraction, score_endemicity

    lists = ctx.primary_lists()
    if len(lists) < 2:
        raise TaskUnavailable("endemicity needs at least two countries")
    result = score_endemicity(
        lists, eligible_rank=1_000, mad_threshold=3.5,
        vocab=ctx.dataset.vocabulary(),
    )
    fraction, population = exclusivity_fraction(lists, head_rank=1_000)
    shapes: dict[str, int] = {}
    for curve in result.curves:
        shape = classify_shape(curve)
        shapes[shape] = shapes.get(shape, 0) + 1
    return {
        "platform": ctx.primary_platform.value,
        "metric": ctx.primary_metric.value,
        "n_sites": len(result.curves),
        "n_global": len(result.global_sites),
        "n_national": len(result.national_sites),
        "global_fraction": _f(result.global_fraction),
        "exclusive_fraction": _f(fraction),
        "exclusive_population": population,
        "shapes": shapes,
        "global_sites": sorted(result.global_sites),
        "national_sites": sorted(result.national_sites),
    }


def _category_shares(sites: list[str], labels: dict[str, str]) -> dict[str, float]:
    counts: dict[str, int] = {}
    for site in sites:
        category = labels.get(site, "Unknown")
        counts[category] = counts.get(category, 0) + 1
    total = len(sites)
    return {c: n / total for c, n in counts.items()} if total else {}


def _render_endemic_categories(result) -> str:
    return (
        render_shares(result["global"], "Globally popular sites", top=8)
        + "\n\n"
        + render_shares(result["national"], "Nationally popular sites", top=8)
    )


@REGISTRY.task(
    "endemic_categories", deps=("endemicity", "labels"),
    section="§5.2, Figure 8", title="Global vs national categories",
    render=_render_endemic_categories,
)
def _endemic_categories(ctx: TaskContext, inputs: dict[str, object]) -> object:
    labels = inputs["labels"]
    endemicity = inputs["endemicity"]
    return {
        "global": _category_shares(endemicity["global_sites"], labels),
        "national": _category_shares(endemicity["national_sites"], labels),
    }


# -- popularity mix (§5.2, Figure 9) --------------------------------------------------

def _render_popularity_mix(result) -> str:
    rows = [
        (f"{b['bucket'][0]}-{b['bucket'][1]}", _pct(b["median"]),
         _pct(b["q25"]), _pct(b["q75"]))
        for b in result["buckets"]
    ]
    table = render_table(
        ("rank bucket", "global share (median)", "q25", "q75"), rows,
        title="Globally popular share by rank (Figure 9)",
    )
    majority = result["national_majority_bucket"]
    if majority is not None:
        table += (
            f"\nNational sites reach parity in bucket "
            f"{majority[0]}-{majority[1]}"
        )
    return table


@REGISTRY.task(
    "popularity_mix", deps=("endemicity",), section="§5.2, Figures 9 & 17",
    title="Global vs national mix by rank", render=_render_popularity_mix,
)
def _popularity_mix(ctx: TaskContext, inputs: dict[str, object]) -> object:
    from ..analysis import global_share_by_rank, national_majority_rank

    lists = ctx.primary_lists()
    rows = global_share_by_rank(
        lists, frozenset(inputs["endemicity"]["global_sites"])
    )
    majority = national_majority_rank(rows)
    return {
        "buckets": [
            {"bucket": list(row.bucket), **_q(row.stats)} for row in rows
        ],
        "national_majority_bucket": list(majority) if majority else None,
    }


# -- similarity (§5.3.1, Figure 10) ---------------------------------------------------

def _render_similarity(result) -> str:
    import numpy as np

    values = np.asarray(result["values"], dtype=float)
    n = len(result["countries"])
    off_diagonal = values[~np.eye(n, dtype=bool)] if n > 1 else values
    rows = [
        ("countries", n),
        ("depth", result["depth"]),
        ("mean pairwise wRBO", f"{float(off_diagonal.mean()):.3f}"),
        ("min pairwise wRBO", f"{float(off_diagonal.min()):.3f}"),
        ("max pairwise wRBO", f"{float(off_diagonal.max()):.3f}"),
    ]
    return render_table(
        ("quantity", "value"), rows,
        title="Country similarity, weighted RBO (Figure 10)",
    )


@REGISTRY.task(
    "similarity", params={"depth": 10_000}, section="§5.3.1, Figures 10 & 18–20",
    title="Country similarity matrix", render=_render_similarity,
)
def _similarity(ctx: TaskContext, inputs: dict[str, object]) -> object:
    from ..analysis import rbo_matrix_for

    if len(ctx.primary_lists()) < 2:
        raise TaskUnavailable("similarity needs at least two countries")
    matrix = rbo_matrix_for(
        ctx.dataset, ctx.primary_platform, ctx.primary_metric, ctx.month,
        depth=10_000,
    )
    return {
        "platform": ctx.primary_platform.value,
        "metric": ctx.primary_metric.value,
        "depth": 10_000,
        "countries": list(matrix.countries),
        "values": [[_f(v) for v in row] for row in matrix.values.tolist()],
    }


def _matrix_from(result) -> "object":
    import numpy as np

    from ..analysis import SimilarityMatrix

    return SimilarityMatrix(
        tuple(result["countries"]),
        np.asarray(result["values"], dtype=float),
    )


# -- clustering (§5.3.1, Figure 11) ---------------------------------------------------

def _render_clusters(result) -> str:
    return render_table(
        ("exemplar", "SC", "members"),
        [(c["exemplar"], f"{c['silhouette']:+.2f}", " ".join(c["members"]))
         for c in result["clusters"]],
        title=f"{result['n_clusters']} clusters, "
              f"avg SC {result['average_silhouette']:+.2f}",
    )


@REGISTRY.task(
    "clusters", deps=("similarity",), section="§5.3.1, Figures 11 & 21",
    title="Country clusters", render=_render_clusters,
)
def _clusters(ctx: TaskContext, inputs: dict[str, object]) -> object:
    from ..analysis import cluster_countries

    report = cluster_countries(_matrix_from(inputs["similarity"]))
    return {
        "n_clusters": report.n_clusters,
        "average_silhouette": _f(report.average_silhouette),
        "clusters": [
            {
                "exemplar": c.exemplar,
                "silhouette": _f(c.silhouette),
                "members": list(c.members),
            }
            for c in report.clusters
        ],
        "outliers": list(report.outliers()),
    }


# -- geography (§5.3.1/5.3.3) ---------------------------------------------------------

def _render_geography(result) -> str:
    def fmt(value):
        return "n/a" if value is None else f"{value:.3f}"

    rows = [
        ("same region group", fmt(result["same_region_group"])),
        ("shared language", fmt(result["shared_language"])),
        ("same continent only", fmt(result["same_continent_only"])),
        ("unrelated", fmt(result["unrelated"])),
        ("explained variance (R²)", fmt(result["explained_variance"])),
    ]
    return render_table(
        ("relationship", "mean similarity"), rows,
        title="What geography and language explain (Section 5.3.3)",
    )


@REGISTRY.task(
    "geography", deps=("similarity",), section="§5.3.3",
    title="Geography and language", render=_render_geography,
)
def _geography(ctx: TaskContext, inputs: dict[str, object]) -> object:
    from ..analysis import decompose_similarity, explained_variance

    matrix = _matrix_from(inputs["similarity"])
    decomposition = decompose_similarity(matrix)
    return {
        "shared_language": _f(decomposition.shared_language),
        "same_region_group": _f(decomposition.same_region_group),
        "same_continent_only": _f(decomposition.same_continent_only),
        "unrelated": _f(decomposition.unrelated),
        "n_pairs": decomposition.n_pairs,
        "explained_variance": _f(explained_variance(matrix)),
    }


# -- global south patterns (§5.3.2) ---------------------------------------------------

def _render_south(result) -> str:
    rows = [
        (tag, len(p["south"]), len(p["north"]), _pct(p["south_fraction"]))
        for tag, p in sorted(result.items())
    ]
    return render_table(
        ("class", "south", "north", "south fraction"), rows,
        title="Top-10 classes by hemisphere (Section 5.3.2)",
    )


@REGISTRY.task(
    "south_patterns", deps=("tags",), params={"top_k": 10},
    section="§5.3.2", title="Global-south top-10 patterns",
    render=_render_south,
)
def _south_patterns(ctx: TaskContext, inputs: dict[str, object]) -> object:
    from ..analysis import global_south_patterns

    tags = {site: tuple(t) for site, t in inputs["tags"].items()}
    patterns = global_south_patterns(ctx.primary_lists(), tags, top_k=10)
    return {
        tag: {
            "south": list(p.south_countries),
            "north": list(p.north_countries),
            "south_fraction": _f(p.south_fraction),
        }
        for tag, p in patterns.items()
    }


# -- pairwise intersections (§5.3.1, Figure 12) ---------------------------------------

def _render_intersections(result) -> str:
    rows = [
        (b["bucket"], b["n_pairs"], _pct(b["mean"]), _pct(b["median"]))
        for b in result["buckets"]
    ]
    return render_table(
        ("rank bucket", "pairs", "mean intersection", "median"), rows,
        title="Pairwise intersections by bucket (Figure 12)",
    )


@REGISTRY.task(
    "intersections", params={"buckets": [10, 100, 1_000, 10_000]},
    section="§5.3.1, Figure 12", title="Pairwise intersections",
    render=_render_intersections,
)
def _intersections(ctx: TaskContext, inputs: dict[str, object]) -> object:
    from ..analysis import intersection_curves
    from ..stats.descriptive import quartiles

    if len(ctx.primary_lists()) < 2:
        raise TaskUnavailable("intersections need at least two countries")
    curves = intersection_curves(
        ctx.dataset, ctx.primary_platform, ctx.primary_metric, ctx.month,
    )
    return {
        "platform": ctx.primary_platform.value,
        "metric": ctx.primary_metric.value,
        "buckets": [
            {
                "bucket": curve.bucket,
                "n_pairs": curve.n_pairs,
                "mean": _f(curve.mean_intersection),
                "median": _f(quartiles(curve.sorted_values).median),
            }
            for curve in curves
        ],
    }


# -- top-10 composition (§4.2.1/5.3.2, Table 4) ---------------------------------------

def _render_top10(result) -> str:
    rows = [
        (category, p["n_countries"], p["n_sites"])
        for category, p in sorted(
            result["categories"].items(),
            key=lambda kv: (-kv[1]["n_countries"], kv[0]),
        )[:10]
    ]
    table = render_table(
        ("category", "countries", "sites"), rows,
        title="Top-10 category presence (Table 4)",
    )
    exclusives = result["windows_exclusives"]
    if exclusives is not None:
        table += (
            f"\nWindows-only top sites: {exclusives['n_sites']} "
            f"({_pct(exclusives['app_fraction'])} with an Android app)"
        )
    return table


@REGISTRY.task(
    "top10", deps=("labels", "tags", "has_app"), params={"top_k": 10},
    section="§4.2.1/§5.3.2, Table 4", title="Top-10 composition",
    render=_render_top10,
)
def _top10(ctx: TaskContext, inputs: dict[str, object]) -> object:
    from ..analysis import (
        category_presence,
        tag_presence,
        union_of_top_sites,
        windows_only_top_sites,
    )

    lists = ctx.primary_lists()
    labels = inputs["labels"]
    tags = {site: tuple(t) for site, t in inputs["tags"].items()}
    presence = category_presence(lists, labels, top_k=10)
    tag_rows = tag_presence(lists, tags, top_k=10)
    union = union_of_top_sites(ctx.dataset, ctx.month, top_k=10)
    if set(Platform.studied()) <= set(ctx.dataset.platforms):
        has_app = {site: True for site in inputs["has_app"]["sites"]}
        exclusives = windows_only_top_sites(
            ctx.dataset, ctx.month, has_app, top_k=10,
        )
        windows_exclusives = {
            "n_sites": len(exclusives.sites),
            "n_with_app": len(exclusives.with_android_app),
            "app_fraction": _f(exclusives.app_fraction),
        }
    else:
        windows_exclusives = None
    return {
        "categories": {
            category: {"n_countries": p.n_countries, "n_sites": p.n_sites}
            for category, p in presence.items()
        },
        "tags": {
            tag: {"n_countries": p.n_countries, "n_sites": p.n_sites}
            for tag, p in tag_rows.items()
        },
        "union_size": len(union),
        "windows_exclusives": windows_exclusives,
    }


# -- sampling strategies (§6) ---------------------------------------------------------

def _render_sampling(result) -> str:
    rows = [
        (r["name"], r["size"], _pct(r["median"]), _pct(r["minimum"]),
         " ".join(r["worst_countries"]))
        for r in (result["global"], result["hybrid"])
    ]
    return render_table(
        ("study set", "sites", "median coverage", "min", "worst countries"),
        rows, title="Study-set coverage (Section 6)",
    )


@REGISTRY.task(
    "sampling",
    params={"global_n": 10_000, "hybrid_global_n": 1_000,
            "hybrid_per_country_n": 1_000},
    section="§6", title="Study-set sampling", render=_render_sampling,
)
def _sampling(ctx: TaskContext, inputs: dict[str, object]) -> object:
    from ..analysis import compare_strategies

    lists = ctx.primary_lists()
    if not lists:
        raise TaskUnavailable("sampling needs at least one country")
    distribution = ctx.dataset.distribution(
        ctx.primary_platform, ctx.primary_metric
    )
    global_report, hybrid_report = compare_strategies(lists, distribution)

    def serialize(report) -> dict[str, object]:
        return {
            "name": report.name,
            "size": report.size,
            **_q(report.stats),
            "minimum": _f(report.minimum),
            "worst_countries": report.worst_countries,
        }

    return {"global": serialize(global_report), "hybrid": serialize(hybrid_report)}


def default_registry() -> TaskRegistry:
    """The registry covering every wired paper analysis."""
    return REGISTRY
