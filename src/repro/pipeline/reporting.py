"""Render a pipeline run into a browsable run directory.

Layout::

    <out>/run.json               run summary (statuses, timings, counts)
    <out>/artifacts/<task>.json  one canonical-JSON artifact per task
    <out>/tables/<task>.txt      rendered table/figure for renderable tasks
    <out>/REPORT.txt             all rendered sections, in DAG order

Artifacts reuse :func:`repro.pipeline.artifacts.artifact_bytes`, so a
run directory's ``artifacts/`` files are byte-identical to the
artifact store's — ``diff -r`` between a run dir and the cache is
empty, and between a serial and a parallel run dir too.
"""

from __future__ import annotations

from pathlib import Path

from .artifacts import artifact_bytes
from .registry import TaskRegistry
from .runner import RunReport
from .task import TaskStatus


def render_task(registry: TaskRegistry, report: RunReport, name: str) -> str | None:
    """The rendered table for one completed task, or ``None``."""
    task = registry.get(name)
    if task.render is None or name not in report.results:
        return None
    return task.render(report.results[name])


def write_run_dir(
    out: str | Path,
    registry: TaskRegistry,
    report: RunReport,
) -> Path:
    """Materialise ``report`` under ``out``; returns the run directory."""
    root = Path(out)
    artifacts = root / "artifacts"
    tables = root / "tables"
    artifacts.mkdir(parents=True, exist_ok=True)
    tables.mkdir(parents=True, exist_ok=True)

    sections: list[str] = []
    for name in report.order:
        record = report.records[name]
        if name in report.results:
            payload = artifact_bytes(name, record.key or "", report.results[name])
            (artifacts / f"{name}.json").write_bytes(payload)
        rendered = render_task(registry, report, name)
        if rendered is not None:
            (tables / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")
            sections.append(f"== {registry.get(name).heading} ==\n\n{rendered}")
        elif record.status in (TaskStatus.FAILED, TaskStatus.SKIPPED):
            sections.append(
                f"== {registry.get(name).heading} ==\n\n"
                f"[{record.status.value}] {record.error or ''}".rstrip()
            )

    (root / "REPORT.txt").write_text(
        "\n\n".join(sections) + "\n", encoding="utf-8"
    )
    (root / "run.json").write_text(
        _summary_json(report) + "\n", encoding="utf-8"
    )
    return root


def _summary_json(report: RunReport) -> str:
    from .task import canonical_json

    return canonical_json(report.to_dict())
