"""The unit of work of the reproduction pipeline.

A :class:`Task` wraps one paper analysis as a named node of the DAG:
its body is a pure function of the run context (dataset, reference
month, optional generator config) and the results of its declared
dependencies, and its return value must be JSON-serializable — that is
what the artifact store persists and what dependents receive.  Because
results are addressed by ``(dataset fingerprint, task name, parameter
hash)``, a task's identity is fully captured by its name plus
:meth:`Task.key`; two runs that agree on those are interchangeable.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Mapping, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import TaskContext

#: A task body: ``fn(ctx, inputs)`` where ``inputs`` maps each declared
#: dependency name to that dependency's (JSON-shaped) result.
TaskFn = Callable[["TaskContext", dict[str, object]], object]

#: Optional plain-text renderer for a task's result (tables/figures).
RenderFn = Callable[[object], str]

#: Optional extra cache-key material derived from the run context
#: (e.g. the generator-config fingerprint for ground-truth tasks).
ContextKeyFn = Callable[["TaskContext"], str]


def canonical_json(payload: object) -> str:
    """The one JSON serialization used for hashing and artifacts.

    Sorted keys and fixed separators make the bytes a pure function of
    the value, so parallel and serial runs emit identical artifacts.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def params_hash(params: Mapping[str, object], extra: str = "") -> str:
    """A short stable digest of a task's parameters (+ context key)."""
    blob = canonical_json(dict(params)) + "\x00" + extra
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def result_digest(result: object) -> str:
    """A short digest of a task result, for dependents' cache keys.

    Folding each dependency's result digest into a dependent's key
    gives the DAG Merkle-style early cutoff: after an ingest, a task
    whose inputs (month, params, dependency *results*) are all
    unchanged keeps its warm artifact, even though the dataset grew.
    """
    return hashlib.sha256(
        canonical_json(result).encode("utf-8")
    ).hexdigest()[:16]


class TaskStatus(enum.Enum):
    """Terminal state of one task within one pipeline run."""

    OK = "ok"                # executed this run
    CACHED = "cached"        # served from the artifact store
    FAILED = "failed"        # body raised; error recorded
    SKIPPED = "skipped"      # unavailable, or a dependency failed/skipped


@dataclass(frozen=True)
class Task:
    """One named analysis node; see the module docstring."""

    name: str
    fn: TaskFn
    deps: tuple[str, ...] = ()
    params: Mapping[str, object] = field(default_factory=dict)
    section: str = ""                      # paper section / figure family
    title: str = ""                        # human heading for reports
    render: RenderFn | None = None
    context_key: ContextKeyFn | None = None
    #: What slice of the dataset the body reads: ``"month"`` (only the
    #: reference month's lists — the default) or ``"all-months"`` (the
    #: whole month axis, e.g. the temporal sweep, or the dataset-wide
    #: site union the ground-truth tasks restrict to).  Drives delta
    #: invalidation: ingesting a new month changes the keys of
    #: all-months tasks and leaves month-pinned tasks warm.
    reads: str = "month"

    def key(
        self,
        ctx: "TaskContext",
        dep_digests: Mapping[str, str] | None = None,
    ) -> str:
        """The parameter half of this task's artifact address.

        Always folds in the reference month (the same saved dataset can
        be analysed at different months); tasks that consult the
        synthetic ground truth also fold in the generator-config
        fingerprint via ``context_key``; tasks reading ``"all-months"``
        fold in the dataset's month set; and when the runner supplies
        its dependencies' result digests those are folded in too, so a
        task re-runs exactly when something it actually reads changed.
        """
        extra = str(ctx.month)
        if self.reads == "all-months":
            extra += "|months:" + ctx.months_key()
        if self.context_key is not None:
            extra += "|" + self.context_key(ctx)
        if dep_digests:
            extra += "|deps:" + ",".join(
                f"{d}={dep_digests[d]}"
                for d in self.deps if d in dep_digests
            )
        return params_hash(self.params, extra)

    @property
    def heading(self) -> str:
        label = self.title or self.name
        return f"{label} ({self.section})" if self.section else label


@dataclass
class TaskRecord:
    """What one pipeline run recorded about one task."""

    name: str
    status: TaskStatus
    seconds: float = 0.0
    error: str | None = None
    key: str = ""
    digest: str = ""

    def to_dict(self) -> dict[str, object]:
        return {
            "status": self.status.value,
            "seconds": round(self.seconds, 6),
            "error": self.error,
            "key": self.key,
            "digest": self.digest,
        }
