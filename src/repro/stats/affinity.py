"""Affinity propagation clustering (Frey & Dueck 2007), from scratch.

Section 5.3.1 clusters countries "using the affinity propagation
algorithm on the pairwise weighted RBO values", chosen because it "does
not require specifying the expected number of clusters and accommodates
an arbitrary similarity score matrix with clusters of potentially
varying density".

This is a vectorised implementation of the message-passing updates with
damping, operating directly on a similarity matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AffinityResult:
    """Outcome of an affinity-propagation run.

    ``labels`` is always fully assigned: every point maps to a cluster
    in ``range(n_clusters)`` even when the message passing did not
    settle (a non-converged run keeps the best exemplar set seen, and a
    degenerate run with no self-electing exemplar falls back to one
    cluster around the highest-net-similarity point).  ``converged`` —
    not a sentinel label — is the signal that the run stabilised.
    """

    labels: np.ndarray          # cluster index per point, always assigned
    exemplars: np.ndarray       # indices of the exemplar points
    n_iterations: int
    converged: bool             # False => labels are best-effort

    @property
    def n_clusters(self) -> int:
        return len(self.exemplars)

    def members(self, cluster: int) -> np.ndarray:
        """Indices of points in the given cluster."""
        return np.flatnonzero(self.labels == cluster)


def affinity_propagation(
    similarity: np.ndarray,
    preference: float | np.ndarray | None = None,
    damping: float = 0.7,
    max_iterations: int = 500,
    convergence_iterations: int = 25,
    seed: int = 0,
) -> AffinityResult:
    """Cluster points given a pairwise similarity matrix.

    Parameters
    ----------
    similarity:
        Square matrix ``S[i, k]`` = how well point k would serve as the
        exemplar for point i.  Larger is more similar.  Need not be
        symmetric, but for RBO-style inputs it is.
    preference:
        Self-similarity ``S[k, k]``.  Smaller values yield fewer
        clusters.  Defaults to the median of the off-diagonal
        similarities — the standard heuristic, and the natural choice
        for reproducing the paper's 11 country clusters.
    damping:
        Message damping factor in [0.5, 1).
    seed:
        Seed for the tiny symmetric-degeneracy-breaking noise added to
        the similarities (the same trick the reference implementation
        and scikit-learn use).
    """
    s = np.array(similarity, dtype=float, copy=True)
    if s.ndim != 2 or s.shape[0] != s.shape[1]:
        raise ValueError("similarity must be a square matrix")
    if not 0.5 <= damping < 1.0:
        raise ValueError("damping must be in [0.5, 1)")
    n = s.shape[0]
    if n == 0:
        raise ValueError("empty similarity matrix")
    if n == 1:
        return AffinityResult(np.zeros(1, dtype=int), np.zeros(1, dtype=int), 0, True)

    off_diag = s[~np.eye(n, dtype=bool)]
    if preference is None:
        preference = float(np.median(off_diag))
    s[np.diag_indices_from(s)] = preference

    # Degeneracy-breaking noise, scaled far below the similarity spread.
    rng = np.random.default_rng(seed)
    spread = float(off_diag.max() - off_diag.min()) if n > 1 else 1.0
    scale = (spread if spread > 0 else 1.0) * 1e-10
    s += scale * rng.standard_normal((n, n))

    r = np.zeros((n, n))
    a = np.zeros((n, n))
    idx = np.arange(n)
    stable_count = 0
    last_exemplars: np.ndarray | None = None
    iteration = 0

    for iteration in range(1, max_iterations + 1):
        # Responsibilities: r(i,k) = s(i,k) - max_{k'!=k} (a(i,k') + s(i,k'))
        aps = a + s
        first_idx = np.argmax(aps, axis=1)
        first_val = aps[idx, first_idx]
        aps[idx, first_idx] = -np.inf
        second_val = np.max(aps, axis=1)
        r_new = s - first_val[:, None]
        r_new[idx, first_idx] = s[idx, first_idx] - second_val
        r = damping * r + (1.0 - damping) * r_new

        # Availabilities: a(i,k) = min(0, r(k,k) + sum_{i' not in {i,k}} max(0, r(i',k)))
        rp = np.maximum(r, 0.0)
        rp[np.diag_indices_from(rp)] = r[np.diag_indices_from(r)]
        col_sums = rp.sum(axis=0)
        a_new = col_sums[None, :] - rp
        diag = a_new[np.diag_indices_from(a_new)].copy()
        a_new = np.minimum(a_new, 0.0)
        a_new[np.diag_indices_from(a_new)] = diag
        a = damping * a + (1.0 - damping) * a_new

        exemplars = np.flatnonzero((r + a).diagonal() > 0)
        if last_exemplars is not None and np.array_equal(exemplars, last_exemplars):
            stable_count += 1
            if stable_count >= convergence_iterations and len(exemplars) > 0:
                break
        else:
            stable_count = 0
        last_exemplars = exemplars

    exemplars = np.flatnonzero((r + a).diagonal() > 0)
    converged = stable_count >= convergence_iterations and len(exemplars) > 0
    if len(exemplars) == 0:
        # Degenerate run: fall back to a single cluster around the point
        # with the largest net similarity, so callers always get labels.
        exemplars = np.array([int(np.argmax(s.sum(axis=0)))])
        converged = False

    # Assign every point to its most similar exemplar; exemplars to themselves.
    labels = np.argmax(s[:, exemplars], axis=1)
    for cluster_index, exemplar in enumerate(exemplars):
        labels[exemplar] = cluster_index
    return AffinityResult(
        labels=labels.astype(int),
        exemplars=exemplars.astype(int),
        n_iterations=iteration,
        converged=converged,
    )
