"""Statistics toolkit: every method the paper names, from first principles."""

from .affinity import AffinityResult, affinity_propagation
from .dbscan import NOISE, DBSCANResult, dbscan, dbscan_reference, eps_sweep
from .correction import bonferroni, bonferroni_adjusted, holm
from .descriptive import Quartiles, mean, median, quantile, quartiles, rankdata
from .fisher import (
    ProportionTestResult,
    fisher_exact,
    fisher_exact_batch,
    hypergeom_logpmf,
    normalized_difference,
    proportion_test,
    proportion_test_batch,
)
from .kendall import kendall_from_lists, kendall_tau, kendall_tau_reference
from .kernels import (
    agreement_sequence_ids,
    bucket_intersections,
    intersection_count_ids,
    pairwise_wrbo,
    rank_matrix,
    rank_pairs_ids,
    weighted_rbo_ids,
)
from .outliers import OutlierResult, iqr_outliers, mad_outliers
from .rbo import agreement_sequence, rbo, traffic_weighted_rbo, weighted_rbo
from .silhouette import (
    SilhouetteReport,
    silhouette_samples,
    silhouette_samples_reference,
    similarity_to_distance,
)
from .spearman import spearman_from_lists, spearman_rho

__all__ = [
    "AffinityResult",
    "DBSCANResult",
    "NOISE",
    "OutlierResult",
    "ProportionTestResult",
    "Quartiles",
    "SilhouetteReport",
    "affinity_propagation",
    "agreement_sequence",
    "agreement_sequence_ids",
    "bucket_intersections",
    "intersection_count_ids",
    "pairwise_wrbo",
    "rank_matrix",
    "rank_pairs_ids",
    "weighted_rbo_ids",
    "bonferroni",
    "bonferroni_adjusted",
    "fisher_exact",
    "fisher_exact_batch",
    "holm",
    "hypergeom_logpmf",
    "dbscan",
    "dbscan_reference",
    "eps_sweep",
    "iqr_outliers",
    "kendall_from_lists",
    "kendall_tau",
    "kendall_tau_reference",
    "mad_outliers",
    "mean",
    "median",
    "normalized_difference",
    "proportion_test",
    "proportion_test_batch",
    "quantile",
    "quartiles",
    "rankdata",
    "rbo",
    "silhouette_samples",
    "silhouette_samples_reference",
    "similarity_to_distance",
    "spearman_from_lists",
    "spearman_rho",
    "traffic_weighted_rbo",
    "weighted_rbo",
]
