"""Fisher's exact test and the binomial proportion comparison of §4.3.

Section 4.3: "We then compare traffic volumes per category across
desktop and mobile by computing Fisher's binomial proportion test
(p = 0.05) with a Bonferroni correction."

The traffic volumes being compared are *weighted shares* (fractions of
modelled traffic), so to apply a count-based exact test we convert each
share into an effective success count out of an effective sample size
(:func:`proportion_test`), mirroring how one tests two proportions with
Fisher's method.

Two execution paths live here, following the kernel-layer discipline
(DESIGN.md, "Stats kernels"):

* the **scalar reference** (:func:`fisher_exact`,
  :func:`proportion_test`) evaluates the hypergeometric pmf one ``k``
  at a time via :func:`math.lgamma` — the executable definition;
* the **batched kernel** (:func:`fisher_exact_batch`,
  :func:`proportion_test_batch`) evaluates the full pmf support as one
  numpy vector against a cached cumulative log-factorial table
  (``table[i] == lgamma(i + 1)``, grown on demand and shared across
  calls), deduplicating repeated tables so every category×country cell
  of the Figure 4 grid costs one vector pass at most.

Parity: the batched log-pmf values are **bit-identical** to the scalar
path (same ``lgamma`` table entries combined in the same association
order).  The final p-value applies ``np.exp`` to the masked support,
which may differ from ``math.exp`` in the last ulp on SIMD numpy
builds, so batched p-values match the scalar reference to ~3 ulp
relative — far below any significance threshold, leaving Bonferroni
decisions (and therefore pipeline artifact bytes) identical.  Asserted
by ``tests/stats/test_fisher.py`` and the pipeline byte-parity suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..obs import span as obs_span


def _log_binom(n: int, k: int) -> float:
    """log(n choose k) via lgamma, stable for large n."""
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def hypergeom_logpmf(k: int, total: int, successes: int, draws: int) -> float:
    """log P[X = k] for X ~ Hypergeometric(total, successes, draws)."""
    return (
        _log_binom(successes, k)
        + _log_binom(total - successes, draws - k)
        - _log_binom(total, draws)
    )


#: Tolerance for "at most as likely as observed", matching scipy.
_PMF_EPS = 1e-7


def fisher_exact(table: tuple[tuple[int, int], tuple[int, int]]) -> float:
    """Two-sided Fisher exact test p-value for a 2×2 contingency table.

    Uses the standard point-probability method: sum the probabilities of
    all tables (with the same margins) at most as likely as the observed
    one.  Matches ``scipy.stats.fisher_exact(..., 'two-sided')``.

    This is the scalar reference for :func:`fisher_exact_batch`.
    """
    (a, b), (c, d) = table
    for v in (a, b, c, d):
        if v < 0:
            raise ValueError("table entries must be non-negative")
    total = a + b + c + d
    if total == 0:
        return 1.0
    row1 = a + b
    col1 = a + c
    lo = max(0, row1 + col1 - total)
    hi = min(row1, col1)
    observed = hypergeom_logpmf(a, total, col1, row1)
    # Sum pmf over all k whose probability <= observed (with tolerance
    # for floating error, as scipy does).
    threshold = observed + math.log1p(_PMF_EPS)
    p = 0.0
    for k in range(lo, hi + 1):
        logp = hypergeom_logpmf(k, total, col1, row1)
        if logp <= threshold:
            p += math.exp(logp)
    return min(p, 1.0)


# -- batched kernel -------------------------------------------------------------------

#: Cumulative log-factorial table: ``_LOG_FACTORIALS[i] == lgamma(i + 1)``.
#: Grown on demand (one table serves every ``effective_n``) and built
#: with :func:`math.lgamma` so entries are bit-identical to the values
#: the scalar path computes.  Growth replaces the array atomically, so
#: concurrent readers at worst duplicate work.
_LOG_FACTORIALS = np.zeros(1)


def _log_factorials(n: int) -> np.ndarray:
    """The shared table, grown to cover ``0! .. n!``."""
    global _LOG_FACTORIALS
    table = _LOG_FACTORIALS
    if len(table) <= n:
        grown = np.empty(n + 1)
        grown[: len(table)] = table
        lgamma = math.lgamma
        grown[len(table):] = [lgamma(i + 1) for i in range(len(table), n + 1)]
        _LOG_FACTORIALS = table = grown
    return table


def _fisher_exact_one(a: int, b: int, c: int, d: int) -> float:
    """Vectorized two-sided p for one table: the whole pmf support in
    one numpy pass over the shared log-factorial table."""
    total = a + b + c + d
    if total == 0:
        return 1.0
    row1 = a + b
    col1 = a + c
    lo = max(0, row1 + col1 - total)
    hi = min(row1, col1)
    lf = _log_factorials(total)
    k = np.arange(lo, hi + 1)
    # Same operands, same association order as the scalar _log_binom
    # chain, so every log-pmf below is bit-identical to the reference.
    log_binom_col = (lf[col1] - lf[k]) - lf[col1 - k]
    log_binom_rest = (lf[total - col1] - lf[row1 - k]) - lf[total - col1 - row1 + k]
    log_binom_total = (lf[total] - lf[row1]) - lf[total - row1]
    logp = (log_binom_col + log_binom_rest) - log_binom_total
    threshold = logp[a - lo] + math.log1p(_PMF_EPS)
    masked = np.exp(logp[logp <= threshold])
    # cumsum accumulates sequentially in k order like the scalar loop
    # (np.sum's pairwise reduction would associate differently).
    p = float(np.cumsum(masked)[-1]) if len(masked) else 0.0
    return min(p, 1.0)


def fisher_exact_batch(tables: Sequence[object] | np.ndarray) -> np.ndarray:
    """Two-sided Fisher exact p-values for many 2×2 tables at once.

    ``tables`` is anything ``np.asarray`` shapes to ``(m, 2, 2)`` or
    ``(m, 4)`` (rows ``a, b, c, d``).  Duplicate tables — ubiquitous in
    the Figure 4 grid, where absent categories yield ``(0, n, 0, n)``
    cells — are evaluated once and scattered back (the memoization
    :func:`proportion_test_batch` relies on).  Emits a
    ``stats.fisher_batch`` span with cell/unique counts.
    """
    arr = np.asarray(tables, dtype=np.int64)
    if arr.ndim == 3 and arr.shape[1:] == (2, 2):
        arr = arr.reshape(len(arr), 4)
    if arr.ndim != 2 or arr.shape[1] != 4:
        raise ValueError("tables must have shape (m, 2, 2) or (m, 4)")
    if len(arr) == 0:
        return np.empty(0, dtype=float)
    if np.any(arr < 0):
        raise ValueError("table entries must be non-negative")
    unique, inverse = np.unique(arr, axis=0, return_inverse=True)
    with obs_span(
        "stats.fisher_batch", cells=len(arr), unique_tables=len(unique),
    ):
        p_unique = np.array(
            [_fisher_exact_one(a, b, c, d) for a, b, c, d in unique.tolist()]
        )
    return p_unique[inverse.ravel()]


@dataclass(frozen=True)
class ProportionTestResult:
    """Outcome of comparing two proportions."""

    p_value: float
    proportion_a: float
    proportion_b: float

    @property
    def difference(self) -> float:
        return self.proportion_a - self.proportion_b

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value <= alpha


def _effective_count(share: float, effective_n: int) -> int:
    """Deterministic half-up rounding of ``share * effective_n``.

    Python's ``round`` rounds half to even, so an exact-half share
    would flip its count (and potentially significance) on the parity
    of the neighbouring integer; ``floor(x + 0.5)`` always rounds the
    half up.
    """
    return int(math.floor(share * effective_n + 0.5))


def proportion_test(
    share_a: float,
    share_b: float,
    effective_n: int = 100_000,
) -> ProportionTestResult:
    """Fisher-exact comparison of two traffic *shares*.

    ``share_a`` and ``share_b`` are fractions in [0, 1] (e.g. the share
    of Android vs Windows traffic that a category captures).  Each is
    converted to a success count out of ``effective_n`` trials; the
    effective sample size controls the test's power, standing in for the
    (enormous, unpublished) underlying event counts in the telemetry.

    This is the scalar reference for :func:`proportion_test_batch`.
    """
    for name, share in (("share_a", share_a), ("share_b", share_b)):
        if not 0.0 <= share <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {share}")
    if effective_n < 1:
        raise ValueError("effective_n must be positive")
    a = _effective_count(share_a, effective_n)
    b = _effective_count(share_b, effective_n)
    p = fisher_exact(((a, effective_n - a), (b, effective_n - b)))
    return ProportionTestResult(p_value=p, proportion_a=share_a, proportion_b=share_b)


def proportion_test_batch(
    shares_a: Sequence[float] | np.ndarray,
    shares_b: Sequence[float] | np.ndarray,
    effective_n: int = 100_000,
) -> list[ProportionTestResult]:
    """All of :func:`proportion_test` over paired share vectors at once.

    The whole Figure 4 category×country grid is one call: shares
    become counts with the same half-up rounding as the scalar path,
    and :func:`fisher_exact_batch` memoizes on the resulting ``(a, b)``
    count pairs, so repeated cells (zero shares above all) are priced
    once.
    """
    a_shares = np.asarray(shares_a, dtype=float)
    b_shares = np.asarray(shares_b, dtype=float)
    if a_shares.ndim != 1 or a_shares.shape != b_shares.shape:
        raise ValueError("shares_a and shares_b must be equal-length vectors")
    for name, shares in (("shares_a", a_shares), ("shares_b", b_shares)):
        if np.any(shares < 0.0) or np.any(shares > 1.0):
            raise ValueError(f"every {name} entry must be in [0, 1]")
    if effective_n < 1:
        raise ValueError("effective_n must be positive")
    # floor(x + 0.5) elementwise — bit-identical to _effective_count.
    a = np.floor(a_shares * effective_n + 0.5).astype(np.int64)
    b = np.floor(b_shares * effective_n + 0.5).astype(np.int64)
    tables = np.stack(
        [a, effective_n - a, b, effective_n - b], axis=1
    )
    p_values = fisher_exact_batch(tables)
    return [
        ProportionTestResult(
            p_value=float(p), proportion_a=float(sa), proportion_b=float(sb)
        )
        for p, sa, sb in zip(p_values, a_shares, b_shares)
    ]


def normalized_difference(a: float, w: float) -> float:
    """The paper's platform-difference score (A − W) / max(A, W).

    "This formula expresses the difference in weighted traffic volume as
    a percentage of the larger value, with the sign representing which
    platform (Android or Windows) is more prevalent."  Ranges over
    [−1, 1]; 0 when both are zero.
    """
    if a < 0 or w < 0:
        raise ValueError("traffic volumes must be non-negative")
    larger = max(a, w)
    if larger == 0.0:
        return 0.0
    return (a - w) / larger
