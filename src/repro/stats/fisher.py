"""Fisher's exact test and the binomial proportion comparison of §4.3.

Section 4.3: "We then compare traffic volumes per category across
desktop and mobile by computing Fisher's binomial proportion test
(p = 0.05) with a Bonferroni correction."

The traffic volumes being compared are *weighted shares* (fractions of
modelled traffic), so to apply a count-based exact test we convert each
share into an effective success count out of an effective sample size
(:func:`proportion_test`), mirroring how one tests two proportions with
Fisher's method.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _log_binom(n: int, k: int) -> float:
    """log(n choose k) via lgamma, stable for large n."""
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def hypergeom_logpmf(k: int, total: int, successes: int, draws: int) -> float:
    """log P[X = k] for X ~ Hypergeometric(total, successes, draws)."""
    return (
        _log_binom(successes, k)
        + _log_binom(total - successes, draws - k)
        - _log_binom(total, draws)
    )


def fisher_exact(table: tuple[tuple[int, int], tuple[int, int]]) -> float:
    """Two-sided Fisher exact test p-value for a 2×2 contingency table.

    Uses the standard point-probability method: sum the probabilities of
    all tables (with the same margins) at most as likely as the observed
    one.  Matches ``scipy.stats.fisher_exact(..., 'two-sided')``.
    """
    (a, b), (c, d) = table
    for v in (a, b, c, d):
        if v < 0:
            raise ValueError("table entries must be non-negative")
    total = a + b + c + d
    if total == 0:
        return 1.0
    row1 = a + b
    col1 = a + c
    lo = max(0, row1 + col1 - total)
    hi = min(row1, col1)
    observed = hypergeom_logpmf(a, total, col1, row1)
    # Sum pmf over all k whose probability <= observed (with tolerance
    # for floating error, as scipy does).
    eps = 1e-7
    threshold = observed + math.log1p(eps)
    p = 0.0
    for k in range(lo, hi + 1):
        logp = hypergeom_logpmf(k, total, col1, row1)
        if logp <= threshold:
            p += math.exp(logp)
    return min(p, 1.0)


@dataclass(frozen=True)
class ProportionTestResult:
    """Outcome of comparing two proportions."""

    p_value: float
    proportion_a: float
    proportion_b: float

    @property
    def difference(self) -> float:
        return self.proportion_a - self.proportion_b

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value <= alpha


def proportion_test(
    share_a: float,
    share_b: float,
    effective_n: int = 100_000,
) -> ProportionTestResult:
    """Fisher-exact comparison of two traffic *shares*.

    ``share_a`` and ``share_b`` are fractions in [0, 1] (e.g. the share
    of Android vs Windows traffic that a category captures).  Each is
    converted to a success count out of ``effective_n`` trials; the
    effective sample size controls the test's power, standing in for the
    (enormous, unpublished) underlying event counts in the telemetry.
    """
    for name, share in (("share_a", share_a), ("share_b", share_b)):
        if not 0.0 <= share <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {share}")
    if effective_n < 1:
        raise ValueError("effective_n must be positive")
    a = round(share_a * effective_n)
    b = round(share_b * effective_n)
    p = fisher_exact(((a, effective_n - a), (b, effective_n - b)))
    return ProportionTestResult(p_value=p, proportion_a=share_a, proportion_b=share_b)


def normalized_difference(a: float, w: float) -> float:
    """The paper's platform-difference score (A − W) / max(A, W).

    "This formula expresses the difference in weighted traffic volume as
    a percentage of the larger value, with the sign representing which
    platform (Android or Windows) is more prevalent."  Ranges over
    [−1, 1]; 0 when both are zero.
    """
    if a < 0 or w < 0:
        raise ValueError("traffic volumes must be non-negative")
    larger = max(a, w)
    if larger == 0.0:
        return 0.0
    return (a - w) / larger
