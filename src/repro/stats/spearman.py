"""Spearman's rank correlation coefficient, implemented from definition.

Sections 4.4 and 4.5 quantify agreement between rank lists (metric vs
metric, month vs month) with Spearman's rho computed over the sites in
the lists' intersection.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.rankedlist import RankedList
from .descriptive import rankdata


def spearman_rho(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman's rho between two paired samples (tie-aware).

    Computed as the Pearson correlation of the average-rank transforms,
    which handles ties correctly (the classic 6Σd²/n(n²−1) shortcut does
    not).  Returns ``nan`` for fewer than 2 pairs or constant input.
    """
    if len(x) != len(y):
        raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
    n = len(x)
    if n < 2:
        return float("nan")
    rx = rankdata(x)
    ry = rankdata(y)
    rx -= rx.mean()
    ry -= ry.mean()
    denom = np.sqrt((rx * rx).sum() * (ry * ry).sum())
    if denom == 0.0:
        return float("nan")
    return float((rx * ry).sum() / denom)


def spearman_from_lists(a: RankedList, b: RankedList) -> float:
    """Spearman's rho over the intersection of two ranked lists.

    This is the paper's usage: "Within the intersection, the median
    Spearman's correlation coefficient is 0.65 for desktop..." —
    rank pairs come from each site's rank in each list.
    """
    xs, ys = a.rank_pairs(b)
    if len(xs) < 2:
        return float("nan")
    return spearman_rho(xs, ys)
