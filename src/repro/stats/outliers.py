"""Outlier detection used to split globally vs nationally popular sites.

Section 5.1: "we measure the distance between each point in Figure 7 and
the upper bound on the endemicity score, and then perform outlier
detection on this set".  Sites whose distance-from-maximum-endemicity is
an *upper* outlier (far below the bound) are the globally popular ones.

Two standard detectors are provided: Tukey's IQR fences and the modified
z-score based on the median absolute deviation (MAD).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class OutlierResult:
    """Mask plus the thresholds that produced it."""

    mask: np.ndarray            # True where the value is an outlier
    lower_fence: float
    upper_fence: float

    @property
    def n_outliers(self) -> int:
        return int(self.mask.sum())


def iqr_outliers(values: Sequence[float], k: float = 1.5,
                 side: str = "both") -> OutlierResult:
    """Tukey's fences: outliers fall outside [Q1 − k·IQR, Q3 + k·IQR].

    ``side`` restricts detection to ``"lower"``, ``"upper"`` or
    ``"both"`` tails.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("no values")
    if k <= 0:
        raise ValueError("k must be positive")
    if side not in ("both", "lower", "upper"):
        raise ValueError(f"invalid side {side!r}")
    q1, q3 = np.percentile(arr, [25, 75])
    iqr = q3 - q1
    lower = q1 - k * iqr
    upper = q3 + k * iqr
    if side == "lower":
        mask = arr < lower
    elif side == "upper":
        mask = arr > upper
    else:
        mask = (arr < lower) | (arr > upper)
    return OutlierResult(mask=mask, lower_fence=float(lower), upper_fence=float(upper))


def mad_outliers(values: Sequence[float], threshold: float = 3.5,
                 side: str = "both") -> OutlierResult:
    """Modified z-score detector (Iglewicz & Hoaglin).

    M_i = 0.6745 (x_i − median) / MAD; points with |M_i| > threshold are
    outliers.  Robust to a heavy-tailed bulk, which suits the endemicity
    distribution (98 % national mass, 2 % global tail).
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("no values")
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if side not in ("both", "lower", "upper"):
        raise ValueError(f"invalid side {side!r}")
    med = float(np.median(arr))
    deviations = np.abs(arr - med)
    mad = float(np.median(deviations))
    # Degenerate bulk: when more than half the sample sits (numerically)
    # on the median, the MAD is zero up to floating residue and the
    # fences collapse onto the median.  Fall back to the mean absolute
    # deviation, which still reflects the tail.
    tolerance = 1e-9 * max(1.0, float(deviations.max(initial=0.0)))
    if mad <= tolerance:
        mad = float(np.mean(deviations)) or 1.0
    scores = 0.6745 * (arr - med) / mad
    lower_fence = med - threshold * mad / 0.6745
    upper_fence = med + threshold * mad / 0.6745
    if side == "lower":
        mask = scores < -threshold
    elif side == "upper":
        mask = scores > threshold
    else:
        mask = np.abs(scores) > threshold
    return OutlierResult(mask=mask, lower_fence=lower_fence, upper_fence=upper_fence)
