"""DBSCAN over a precomputed distance matrix, from scratch.

Section 5.3.1 justifies affinity propagation by noting that "DBSCAN
struggles with varying-density clusters".  To make that claim testable
rather than rhetorical, this module implements DBSCAN (Ester et al.
1996) on the same pairwise-distance inputs, and the ablation benchmark
compares the two on the country-similarity matrix.

Two paths, per the kernel-layer discipline (DESIGN.md, "Stats
kernels"): :func:`dbscan_reference` is the per-row/queue scalar loop —
the executable definition — and :func:`dbscan` replaces it with a
boolean eps-neighborhood matrix and frontier-array BFS.  Cluster growth
is wave-by-wave instead of point-by-point, but the set of points each
cluster reaches (and the order clusters are seeded, and therefore every
label, including which cluster claims a contested border point first)
is identical — labels and core masks are exactly equal, asserted by
the parity suite in ``tests/stats/test_dbscan.py``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..obs import span as obs_span

#: Label for points assigned to no cluster.
NOISE = -1


@dataclass(frozen=True)
class DBSCANResult:
    """Clustering outcome; noise points carry the label ``NOISE``."""

    labels: np.ndarray
    core_mask: np.ndarray

    @property
    def n_clusters(self) -> int:
        return len({int(l) for l in self.labels if l != NOISE})

    @property
    def n_noise(self) -> int:
        return int(np.sum(self.labels == NOISE))

    def members(self, cluster: int) -> np.ndarray:
        return np.flatnonzero(self.labels == cluster)


def _validated(distances: np.ndarray, eps: float, min_samples: int) -> np.ndarray:
    d = np.asarray(distances, dtype=float)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError("distances must be a square matrix")
    if eps <= 0:
        raise ValueError("eps must be positive")
    if min_samples < 1:
        raise ValueError("min_samples must be >= 1")
    return d


def dbscan(
    distances: np.ndarray,
    eps: float,
    min_samples: int = 3,
) -> DBSCANResult:
    """Density-based clustering on a symmetric distance matrix.

    A point is *core* if at least ``min_samples`` points (including
    itself) lie within ``eps``.  Clusters grow by breadth-first
    expansion from core points; border points join the first cluster
    that reaches them; everything else is noise.

    Vectorized: neighborhoods come from one boolean ``d <= eps`` matrix
    and each BFS wave labels a whole frontier at once — label-identical
    to :func:`dbscan_reference`.
    """
    d = _validated(distances, eps, min_samples)
    n = d.shape[0]
    with obs_span("stats.dbscan", points=n, eps=float(eps), min_samples=min_samples):
        within = d <= eps
        core = within.sum(axis=1) >= min_samples
        labels = np.full(n, NOISE, dtype=int)

        cluster = 0
        for start in range(n):
            if labels[start] != NOISE or not core[start]:
                continue
            labels[start] = cluster
            frontier = np.array([start])
            while frontier.size:
                # Only core points expand; border points stop the wave.
                expanding = frontier[core[frontier]]
                if expanding.size == 0:
                    break
                reached = within[expanding].any(axis=0)
                frontier = np.flatnonzero(reached & (labels == NOISE))
                labels[frontier] = cluster
            cluster += 1

    return DBSCANResult(labels=labels, core_mask=core)


def dbscan_reference(
    distances: np.ndarray,
    eps: float,
    min_samples: int = 3,
) -> DBSCANResult:
    """The per-point queue BFS :func:`dbscan` reproduces."""
    d = _validated(distances, eps, min_samples)
    n = d.shape[0]
    neighbors = [np.flatnonzero(d[i] <= eps) for i in range(n)]
    core = np.array([len(nb) >= min_samples for nb in neighbors])
    labels = np.full(n, NOISE, dtype=int)

    cluster = 0
    for start in range(n):
        if labels[start] != NOISE or not core[start]:
            continue
        queue = deque([start])
        labels[start] = cluster
        while queue:
            point = queue.popleft()
            if not core[point]:
                continue
            for neighbor in neighbors[point]:
                if labels[neighbor] == NOISE:
                    labels[neighbor] = cluster
                    queue.append(int(neighbor))
        cluster += 1

    return DBSCANResult(labels=labels, core_mask=core)


def eps_sweep(
    distances: np.ndarray,
    eps_values: np.ndarray,
    min_samples: int = 3,
) -> list[tuple[float, int, int]]:
    """(eps, n_clusters, n_noise) across an eps grid.

    On varying-density data, no single eps yields both many clusters
    and little noise — the failure mode the paper alludes to.
    """
    out = []
    for eps in eps_values:
        result = dbscan(distances, float(eps), min_samples)
        out.append((float(eps), result.n_clusters, result.n_noise))
    return out
