"""Vectorized rank-list kernels: exact numpy forms of the pairwise hot paths.

Every heavy pairwise analysis in the paper — the traffic-weighted RBO
matrix over all C(45,2) country pairs (Figure 10), the bucketed
pairwise intersections (Figure 12), the temporal/metric overlap sweeps
(Sections 4.4–4.5) and the endemicity rank matrix (Section 5.1) — is a
set/rank computation over 10K-site ranked lists.  The scalar
implementations (:mod:`repro.stats.rbo`, ``RankedList.rank_pairs``,
``RankedList.percent_intersection``) are kept as the *reference*; this
module computes the same numbers from dense id arrays
(:meth:`repro.core.rankedlist.RankedList.ids` under a shared
:class:`repro.core.vocab.SiteVocabulary`) in a handful of numpy passes.

The key identity (Webber et al.'s RBO admits it directly): a site ``s``
shared by both lists is inside *both* depth-``d`` prefixes iff
``max(rank_a(s), rank_b(s)) <= d``.  So the whole agreement sequence

    A_d = |A_{1:d} ∩ B_{1:d}| / d,   d = 1..k

falls out of one pass: compute the max-rank of every shared site,
histogram those max-ranks (``bincount``), and cumulative-sum — overlap
at depth ``d`` is the number of shared sites whose max-rank is ≤ d.
That replaces the O(k) Python loop with per-element set mutations by
O(k) vectorized work, and the same max-ranks answer *every* bucket of
the intersection curves at once.

Exactness: the kernels produce bit-identical floats to the scalar
reference (integer overlap counts divided by integer depths, then the
same ``np.dot`` over the same contiguous float64 arrays), so artifact
bytes — and therefore warm artifact stores — are unchanged.  Asserted
by the hypothesis parity suite in ``tests/stats/test_kernels.py`` and
the pipeline byte-parity test.

The batched kernels emit ``kernel.*`` obs spans (pair/depth attrs) so
their cost shows up in ``repro trace summarize``, and accept ``jobs=N``
to fan the pair loop out across threads (numpy releases the GIL for
the array passes).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

import numpy as np

from ..obs import span as obs_span

__all__ = [
    "agreement_sequence_ids",
    "bucket_intersections",
    "intersection_count_ids",
    "pairwise_wrbo",
    "rank_matrix",
    "rank_pairs_ids",
    "weighted_rbo_ids",
]


def _prefix_depth(ids_a: np.ndarray, ids_b: np.ndarray, depth: int | None) -> int:
    k = min(len(ids_a), len(ids_b))
    if depth is not None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        k = min(k, depth)
    return k


def _shared_ranks(
    ids_a: np.ndarray, ids_b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """0-based ranks ``(ranks_a, ranks_b)`` of the sites in both arrays.

    Ordered by rank in ``ids_a``.  O((n+m) log n) via one sort of
    ``ids_b`` plus a ``searchsorted`` — no vocabulary-sized scratch, so
    it suits one-off pairs; the batched kernels below amortize a
    scatter table across a whole row of pairs instead.
    """
    if len(ids_a) == 0 or len(ids_b) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.argsort(ids_b)
    sorted_b = ids_b[order]
    idx = np.searchsorted(sorted_b, ids_a)
    idx_clipped = np.minimum(idx, len(sorted_b) - 1)
    found = sorted_b[idx_clipped] == ids_a
    ranks_a = np.flatnonzero(found)
    ranks_b = order[idx_clipped[found]].astype(np.int64, copy=False)
    return ranks_a, ranks_b


def agreement_sequence_ids(
    ids_a: np.ndarray, ids_b: np.ndarray, depth: int | None = None
) -> np.ndarray:
    """A_d = |A_{1:d} ∩ B_{1:d}| / d for d = 1..depth, vectorized.

    Exact equivalent of :func:`repro.stats.rbo.agreement_sequence` on
    the interned forms of the same lists: overlap at depth ``d`` is the
    count of shared sites with ``max(rank_a, rank_b) <= d``, taken from
    one ``bincount`` + ``cumsum`` pass.
    """
    k = _prefix_depth(ids_a, ids_b, depth)
    if k == 0:
        return np.empty(0, dtype=float)
    ranks_a, ranks_b = _shared_ranks(ids_a[:k], ids_b[:k])
    max_ranks = np.maximum(ranks_a, ranks_b)
    overlap = np.cumsum(np.bincount(max_ranks, minlength=k))
    return overlap / np.arange(1, k + 1, dtype=float)


def weighted_rbo_ids(
    ids_a: np.ndarray,
    ids_b: np.ndarray,
    weights: np.ndarray,
    depth: int | None = None,
) -> float:
    """Weighted RBO over id arrays — :func:`repro.stats.rbo.weighted_rbo`
    computed from the vectorized agreement sequence (bit-identical)."""
    agreements = agreement_sequence_ids(ids_a, ids_b, depth)
    k = len(agreements)
    if k == 0:
        return 0.0
    w = np.asarray(weights, dtype=float)
    if len(w) < k:
        raise ValueError(f"need at least {k} weights, got {len(w)}")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    w = w[:k]
    total = w.sum()
    if total <= 0.0:
        raise ValueError("weights sum to zero")
    return float(np.dot(w, agreements) / total)


def intersection_count_ids(
    ids_a: np.ndarray, ids_b: np.ndarray, depth: int | None = None
) -> int:
    """|top-depth(A) ∩ top-depth(B)| without materializing either set."""
    if len(ids_a) == 0 or len(ids_b) == 0:
        return 0
    ka = len(ids_a) if depth is None else min(len(ids_a), depth)
    kb = len(ids_b) if depth is None else min(len(ids_b), depth)
    ranks_a, _ = _shared_ranks(ids_a[:ka], ids_b[:kb])
    return int(len(ranks_a))


def rank_pairs_ids(
    ids_a: np.ndarray, ids_b: np.ndarray, depth: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Paired 1-indexed ranks for the shared sites, for correlation.

    Exact equivalent of ``a.top(depth).rank_pairs(b.top(depth))`` on
    the interned lists: two parallel int64 arrays ``(ranks_in_a,
    ranks_in_b)`` ordered by rank in ``a`` — the Spearman input —
    without constructing either truncated list or its rank dict.
    """
    ka = len(ids_a) if depth is None else min(len(ids_a), depth)
    kb = len(ids_b) if depth is None else min(len(ids_b), depth)
    ranks_a, ranks_b = _shared_ranks(ids_a[:ka], ids_b[:kb])
    return ranks_a + 1, ranks_b + 1


def _n_ids(id_lists: Sequence[np.ndarray]) -> int:
    """Size of the scatter table covering every id in ``id_lists``."""
    top = -1
    for ids in id_lists:
        if len(ids):
            top = max(top, int(ids.max()))
    return top + 1


def _pair_offsets(n: int) -> np.ndarray:
    """Start index of row ``i``'s pairs in ``combinations(range(n), 2)``."""
    i = np.arange(n, dtype=np.int64)
    return i * (n - 1) - (i * (i - 1)) // 2


def _run_rows(n_rows: int, run_row, jobs: int) -> None:
    if jobs > 1 and n_rows > 1:
        with ThreadPoolExecutor(max_workers=min(jobs, n_rows)) as pool:
            # list() propagates the first worker exception, if any.
            list(pool.map(run_row, range(n_rows)))
    else:
        for i in range(n_rows):
            run_row(i)


def pairwise_wrbo(
    id_lists: Sequence[np.ndarray],
    weights: np.ndarray,
    depth: int,
    *,
    jobs: int = 1,
) -> np.ndarray:
    """Weighted RBO for every pair of lists, batched.

    Scores for all C(n, 2) pairs in ``combinations(range(n), 2)``
    order, each computed over the first ``depth`` ids of both lists
    (every list must be at least that long) with the traffic-weight
    vector applied once.  Per row ``i`` a dense rank scatter table is
    built a single time and reused against every ``j > i``; ``jobs``
    threads split the rows.  Bit-identical to calling
    :func:`repro.stats.rbo.weighted_rbo` per pair.
    """
    n = len(id_lists)
    if depth < 1:
        raise ValueError("depth must be >= 1")
    for ids in id_lists:
        if len(ids) < depth:
            raise ValueError(
                f"every list must have at least depth={depth} ids, got {len(ids)}"
            )
    prefixes = [np.asarray(ids[:depth]) for ids in id_lists]
    w = np.asarray(weights, dtype=float)
    if len(w) < depth:
        raise ValueError(f"need at least {depth} weights, got {len(w)}")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    w = w[:depth]
    total = w.sum()
    if total <= 0.0:
        raise ValueError("weights sum to zero")

    n_pairs = n * (n - 1) // 2
    scores = np.empty(n_pairs, dtype=float)
    if n_pairs == 0:
        return scores
    table_size = _n_ids(prefixes)
    offsets = _pair_offsets(n)
    depths = np.arange(1, depth + 1, dtype=float)
    positions = np.arange(depth, dtype=np.int32)

    def run_row(i: int) -> None:
        # ``depth`` is the missing sentinel: a site of list j absent
        # from list i maxes to exactly ``depth`` (its own 0-based rank
        # is < depth), landing in the one bincount bin past the last
        # depth — no boolean mask or compaction pass needed.
        ranks_i = np.full(table_size, depth, dtype=np.int32)
        ranks_i[prefixes[i]] = positions
        base = offsets[i]
        for j in range(i + 1, n):
            max_ranks = np.maximum(ranks_i[prefixes[j]], positions)
            overlap = np.cumsum(np.bincount(max_ranks, minlength=depth + 1)[:depth])
            agreements = overlap / depths
            scores[base + (j - i - 1)] = np.dot(w, agreements) / total

    with obs_span("kernel.pairwise_wrbo", pairs=n_pairs, depth=depth, jobs=jobs):
        _run_rows(n - 1, run_row, jobs)
    return scores


def bucket_intersections(
    id_lists: Sequence[np.ndarray],
    buckets: Sequence[int],
    *,
    jobs: int = 1,
) -> np.ndarray:
    """|top-b(i) ∩ top-b(j)| for every pair and every rank bucket.

    Returns an int64 array of shape ``(n_pairs, n_buckets)`` with pairs
    in ``combinations(range(n), 2)`` order.  All buckets come from one
    pass per pair: the shared sites' max-ranks are sorted once and each
    bucket's count is a ``searchsorted`` into that prefix histogram.
    """
    n = len(id_lists)
    bucket_arr = np.asarray(buckets, dtype=np.int64)
    if bucket_arr.ndim != 1 or len(bucket_arr) == 0:
        raise ValueError("need at least one bucket")
    if np.any(bucket_arr < 0):
        raise ValueError("buckets must be non-negative")
    lists = [np.asarray(ids) for ids in id_lists]
    n_pairs = n * (n - 1) // 2
    counts = np.empty((n_pairs, len(bucket_arr)), dtype=np.int64)
    if n_pairs == 0:
        return counts
    table_size = _n_ids(lists)
    offsets = _pair_offsets(n)

    def run_row(i: int) -> None:
        ranks_i = np.full(table_size, -1, dtype=np.int32)
        ranks_i[lists[i]] = np.arange(len(lists[i]), dtype=np.int32)
        base = offsets[i]
        for j in range(i + 1, n):
            in_i = ranks_i[lists[j]]
            found = in_i >= 0
            # 1-based max-ranks, sorted: count at bucket b = how many <= b.
            max_ranks = np.maximum(in_i[found], np.flatnonzero(found)) + 1
            max_ranks.sort()
            counts[base + (j - i - 1)] = np.searchsorted(
                max_ranks, bucket_arr, side="right"
            )

    with obs_span(
        "kernel.bucket_intersections",
        pairs=n_pairs, buckets=len(bucket_arr), max_depth=int(bucket_arr.max()),
        jobs=jobs,
    ):
        _run_rows(n - 1, run_row, jobs)
    return counts


def rank_matrix(
    id_lists: Sequence[np.ndarray],
    site_ids: np.ndarray,
    *,
    missing: int,
) -> np.ndarray:
    """1-indexed rank of each site in each list, ``missing`` if absent.

    Returns an int32 array of shape ``(len(site_ids), len(id_lists))``
    — the endemicity popularity-curve input — built with one scatter +
    one gather per list instead of a per-site dict probe.
    """
    lists = [np.asarray(ids) for ids in id_lists]
    sites = np.asarray(site_ids)
    out = np.full((len(sites), len(lists)), missing, dtype=np.int32)
    if len(sites) == 0 or not lists:
        return out
    table_size = max(_n_ids(lists), (int(sites.max()) + 1) if len(sites) else 0)
    lookup = np.full(table_size, missing, dtype=np.int32)
    with obs_span(
        "kernel.rank_matrix", sites=len(sites), lists=len(lists),
    ):
        for col, ids in enumerate(lists):
            lookup[ids] = np.arange(1, len(ids) + 1, dtype=np.int32)
            out[:, col] = lookup[sites]
            lookup[ids] = missing
    return out
