"""Silhouette coefficients for cluster validation (Section 5.3.1).

"To measure the strength of clusters, we use Silhouette Coefficient,
which, given cluster labels and pairwise distances between data points,
quantifies how dense and well separated clusters are on a [−1, 1]
scale."  (Rousseeuw 1987.)

Two paths, per the kernel-layer discipline (DESIGN.md, "Stats
kernels"): :func:`silhouette_samples_reference` is the per-point Python
loop — the executable definition — and :func:`silhouette_samples` is
its vectorized form.  The kernel groups the distance matrix's columns
by cluster (stable argsort, preserving original index order within a
cluster) and takes one contiguous ``sum(axis=1)`` per cluster block, so
every per-point per-cluster sum applies numpy's pairwise reduction to
exactly the element sequence the scalar ``d[i, mask].sum()`` reduces —
the results are **bit-identical**, asserted by the hypothesis parity
suite in ``tests/stats/test_silhouette.py`` and the pipeline
byte-parity tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import span as obs_span


@dataclass(frozen=True)
class SilhouetteReport:
    """Per-point and aggregate silhouette values."""

    values: np.ndarray          # silhouette per point
    labels: np.ndarray

    @property
    def average(self) -> float:
        """The overall average silhouette coefficient."""
        return float(self.values.mean())

    def cluster_average(self, cluster: int) -> float:
        """Mean silhouette of one cluster's members."""
        mask = self.labels == cluster
        if not mask.any():
            raise ValueError(f"no points in cluster {cluster}")
        return float(self.values[mask].mean())

    def per_cluster(self) -> dict[int, float]:
        return {
            int(c): self.cluster_average(int(c)) for c in np.unique(self.labels)
        }


def _validated(distances: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    d = np.asarray(distances, dtype=float)
    labels = np.asarray(labels)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError("distances must be a square matrix")
    if len(labels) != d.shape[0]:
        raise ValueError("labels length must match the distance matrix")
    if np.any(d < -1e-12):
        raise ValueError("distances must be non-negative")
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ValueError("silhouette requires at least two clusters")
    return d, labels, unique


def silhouette_samples(distances: np.ndarray, labels: np.ndarray) -> SilhouetteReport:
    """Silhouette coefficient for each point given a distance matrix.

    s(i) = (b(i) − a(i)) / max(a(i), b(i)) where a(i) is the mean
    intra-cluster distance and b(i) the mean distance to the nearest
    other cluster.  Singleton clusters score 0 by convention.

    Vectorized: one contiguous block sum per cluster replaces the
    per-point loop, bit-identical to
    :func:`silhouette_samples_reference`.
    """
    d, labels, unique = _validated(distances, labels)
    n = d.shape[0]
    k = len(unique)
    inverse = np.searchsorted(unique, labels)
    with obs_span("stats.silhouette", points=n, clusters=k):
        # Group columns by cluster; stable sort keeps each cluster's
        # members in original index order, so each row of a block is the
        # same element sequence the scalar mask extraction yields.
        order = np.argsort(inverse, kind="stable")
        sizes = np.bincount(inverse, minlength=k)
        starts = np.concatenate(([0], np.cumsum(sizes)))
        grouped = np.ascontiguousarray(d[:, order])
        sums = np.empty((n, k))
        for c in range(k):
            sums[:, c] = grouped[:, starts[c]:starts[c + 1]].sum(axis=1)

        idx = np.arange(n)
        own_size = sizes[inverse]
        with np.errstate(divide="ignore", invalid="ignore"):
            a = sums[idx, inverse] / (own_size - 1)
            means = sums / sizes[None, :].astype(float)
        means[idx, inverse] = np.inf          # b(i) excludes the own cluster
        b = means.min(axis=1)
        denom = np.maximum(a, b)
        with np.errstate(divide="ignore", invalid="ignore"):
            scores = (b - a) / denom
        values = np.where(
            own_size <= 1, 0.0, np.where(denom == 0.0, 0.0, scores)
        )
    return SilhouetteReport(values=values, labels=labels)


def silhouette_samples_reference(
    distances: np.ndarray, labels: np.ndarray
) -> SilhouetteReport:
    """The per-point scalar loop :func:`silhouette_samples` reproduces."""
    d, labels, unique = _validated(distances, labels)
    n = d.shape[0]
    values = np.zeros(n, dtype=float)
    for i in range(n):
        own = labels[i]
        own_mask = labels == own
        own_size = int(own_mask.sum())
        if own_size <= 1:
            values[i] = 0.0
            continue
        a_i = d[i, own_mask].sum() / (own_size - 1)
        b_i = np.inf
        for other in unique:
            if other == own:
                continue
            other_mask = labels == other
            b_i = min(b_i, float(d[i, other_mask].mean()))
        denom = max(a_i, b_i)
        values[i] = 0.0 if denom == 0.0 else (b_i - a_i) / denom
    return SilhouetteReport(values=values, labels=labels)


def similarity_to_distance(similarity: np.ndarray) -> np.ndarray:
    """Convert a similarity matrix in [0, 1] (e.g. RBO) to distances.

    d = 1 − sim, with the diagonal forced to exactly zero.
    """
    s = np.asarray(similarity, dtype=float)
    if np.any(s < -1e-9) or np.any(s > 1.0 + 1e-9):
        raise ValueError("similarities must lie in [0, 1]")
    d = 1.0 - np.clip(s, 0.0, 1.0)
    np.fill_diagonal(d, 0.0)
    return d
