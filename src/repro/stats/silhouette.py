"""Silhouette coefficients for cluster validation (Section 5.3.1).

"To measure the strength of clusters, we use Silhouette Coefficient,
which, given cluster labels and pairwise distances between data points,
quantifies how dense and well separated clusters are on a [−1, 1]
scale."  (Rousseeuw 1987.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SilhouetteReport:
    """Per-point and aggregate silhouette values."""

    values: np.ndarray          # silhouette per point
    labels: np.ndarray

    @property
    def average(self) -> float:
        """The overall average silhouette coefficient."""
        return float(self.values.mean())

    def cluster_average(self, cluster: int) -> float:
        """Mean silhouette of one cluster's members."""
        mask = self.labels == cluster
        if not mask.any():
            raise ValueError(f"no points in cluster {cluster}")
        return float(self.values[mask].mean())

    def per_cluster(self) -> dict[int, float]:
        return {
            int(c): self.cluster_average(int(c)) for c in np.unique(self.labels)
        }


def silhouette_samples(distances: np.ndarray, labels: np.ndarray) -> SilhouetteReport:
    """Silhouette coefficient for each point given a distance matrix.

    s(i) = (b(i) − a(i)) / max(a(i), b(i)) where a(i) is the mean
    intra-cluster distance and b(i) the mean distance to the nearest
    other cluster.  Singleton clusters score 0 by convention.
    """
    d = np.asarray(distances, dtype=float)
    labels = np.asarray(labels)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError("distances must be a square matrix")
    n = d.shape[0]
    if len(labels) != n:
        raise ValueError("labels length must match the distance matrix")
    if np.any(d < -1e-12):
        raise ValueError("distances must be non-negative")
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ValueError("silhouette requires at least two clusters")

    values = np.zeros(n, dtype=float)
    for i in range(n):
        own = labels[i]
        own_mask = labels == own
        own_size = int(own_mask.sum())
        if own_size <= 1:
            values[i] = 0.0
            continue
        a_i = d[i, own_mask].sum() / (own_size - 1)
        b_i = np.inf
        for other in unique:
            if other == own:
                continue
            other_mask = labels == other
            b_i = min(b_i, float(d[i, other_mask].mean()))
        denom = max(a_i, b_i)
        values[i] = 0.0 if denom == 0.0 else (b_i - a_i) / denom
    return SilhouetteReport(values=values, labels=labels)


def similarity_to_distance(similarity: np.ndarray) -> np.ndarray:
    """Convert a similarity matrix in [0, 1] (e.g. RBO) to distances.

    d = 1 − sim, with the diagonal forced to exactly zero.
    """
    s = np.asarray(similarity, dtype=float)
    if np.any(s < -1e-9) or np.any(s > 1.0 + 1e-9):
        raise ValueError("similarities must lie in [0, 1]")
    d = 1.0 - np.clip(s, 0.0, 1.0)
    np.fill_diagonal(d, 0.0)
    return d
