"""Descriptive statistics used when aggregating per-country results.

The paper reports most statistics as "the median and 25–75 % quartiles
among the 45 countries".  These helpers implement exactly that
aggregation, plus the average-rank transform shared by Spearman and the
tie-aware tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


def median(values: Iterable[float]) -> float:
    """Sample median (average of the two central order statistics)."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("median of empty sequence")
    n = len(data)
    mid = n // 2
    if n % 2:
        return data[mid]
    return (data[mid - 1] + data[mid]) / 2.0


def quantile(values: Iterable[float], q: float) -> float:
    """Linear-interpolation quantile (numpy's default convention)."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    if len(data) == 1:
        return data[0]
    pos = q * (len(data) - 1)
    lo = int(np.floor(pos))
    hi = int(np.ceil(pos))
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


@dataclass(frozen=True)
class Quartiles:
    """Median plus the 25–75 % band the paper reports everywhere."""

    q25: float
    median: float
    q75: float

    @property
    def iqr(self) -> float:
        return self.q75 - self.q25

    def __contains__(self, value: float) -> bool:
        return self.q25 <= value <= self.q75


def quartiles(values: Iterable[float]) -> Quartiles:
    """25 %, 50 % and 75 % quantiles of ``values``."""
    data = [float(v) for v in values]
    return Quartiles(
        q25=quantile(data, 0.25),
        median=quantile(data, 0.50),
        q75=quantile(data, 0.75),
    )


def rankdata(values: Sequence[float]) -> np.ndarray:
    """Average ranks (1-indexed) with ties sharing their mean rank.

    The standard "fractional" ranking used by Spearman's rho.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError("rankdata expects a 1-D sequence")
    order = np.argsort(arr, kind="mergesort")
    ranks = np.empty(len(arr), dtype=float)
    ranks[order] = np.arange(1, len(arr) + 1, dtype=float)
    # Average the ranks of tied groups.
    sorted_vals = arr[order]
    i = 0
    while i < len(arr):
        j = i
        while j + 1 < len(arr) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + j + 2) / 2.0
        i = j + 1
    return ranks


def mean(values: Iterable[float]) -> float:
    data = [float(v) for v in values]
    if not data:
        raise ValueError("mean of empty sequence")
    return sum(data) / len(data)
