"""Rank-Biased Overlap, classic and traffic-weighted (Section 5.3.1).

Classic RBO (Webber, Moffat & Zobel 2010) weights agreement at depth d
by a geometric distribution p^(d-1).  The paper replaces the geometric
weights with the web traffic distribution from Section 4.1, so that
agreement on the sites carrying the most traffic dominates the score:

    "We analyze pairs of per-country top 10K lists by using a variation
    on Rank-Biased Overlap (RBO).  [...] Instead of using a geometric
    distribution for weighting, we leverage our web traffic
    distribution."

Both variants share the *agreement* sequence A_d = |S_{1:d} ∩ T_{1:d}| / d.

These scalar implementations are the *reference*: the batched analyses
(the full wRBO matrix, the intersection curves) run through the exact
vectorized forms in :mod:`repro.stats.kernels`, which are asserted
bit-identical to these functions by the parity suite.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.distribution import TrafficDistribution
from ..core.rankedlist import RankedList


def agreement_sequence(a: RankedList | Sequence[str], b: RankedList | Sequence[str],
                       depth: int | None = None) -> np.ndarray:
    """A_d = |A_{1:d} ∩ B_{1:d}| / d for d = 1..depth.

    Runs in O(depth) using incremental set intersection.
    """
    sa = a.sites if isinstance(a, RankedList) else tuple(a)
    sb = b.sites if isinstance(b, RankedList) else tuple(b)
    k = min(len(sa), len(sb))
    if depth is not None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        k = min(k, depth)
    seen_a: set[str] = set()
    seen_b: set[str] = set()
    overlap = 0
    out = np.empty(k, dtype=float)
    for d in range(k):
        x, y = sa[d], sb[d]
        if x == y:
            overlap += 1
        else:
            if x in seen_b:
                overlap += 1
            if y in seen_a:
                overlap += 1
            seen_a.add(x)
            seen_b.add(y)
        out[d] = overlap / (d + 1)
    return out


def rbo(a: RankedList | Sequence[str], b: RankedList | Sequence[str],
        p: float = 0.9, depth: int | None = None) -> float:
    """Extrapolated RBO with geometric persistence parameter ``p``.

    RBO_ext = (X_k / k) p^k + ((1 − p) / p) Σ_{d=1..k} (X_d / d) p^d

    Bounded in [0, 1]; 1 for identical lists.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    agreements = agreement_sequence(a, b, depth)
    k = len(agreements)
    if k == 0:
        return 0.0
    d = np.arange(1, k + 1, dtype=float)
    tail = float(agreements[-1] * p**k)
    series = float(((1.0 - p) / p) * np.sum(agreements * p**d))
    return min(1.0, tail + series)


def weighted_rbo(
    a: RankedList | Sequence[str],
    b: RankedList | Sequence[str],
    weights: np.ndarray,
    depth: int | None = None,
) -> float:
    """RBO with arbitrary per-depth weights (the paper's variation).

    ``weights[d-1]`` is the weight given to agreement at depth d —
    typically the traffic share of rank d, so agreement near the head
    (where traffic concentrates) dominates.  The score is

        Σ_d w_d A_d / Σ_d w_d  ∈ [0, 1].
    """
    agreements = agreement_sequence(a, b, depth)
    k = len(agreements)
    if k == 0:
        return 0.0
    w = np.asarray(weights, dtype=float)
    if len(w) < k:
        raise ValueError(f"need at least {k} weights, got {len(w)}")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    w = w[:k]
    total = w.sum()
    if total <= 0.0:
        raise ValueError("weights sum to zero")
    return float(np.dot(w, agreements) / total)


def traffic_weighted_rbo(
    a: RankedList,
    b: RankedList,
    distribution: TrafficDistribution,
    depth: int | None = None,
) -> float:
    """Weighted RBO with weights from a traffic-distribution curve."""
    k = min(len(a), len(b))
    if depth is not None:
        k = min(k, depth)
    if k == 0:
        return 0.0
    return weighted_rbo(a, b, distribution.weights(k), depth=k)
