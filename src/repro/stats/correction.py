"""Multiple-testing corrections (Bonferroni, plus Holm as an extension).

Section 4.3 applies a Bonferroni correction to the per-category
platform-difference tests.  Holm–Bonferroni is provided as a uniformly
more powerful alternative used by the ablation benchmarks.
"""

from __future__ import annotations

from typing import Sequence


def bonferroni(p_values: Sequence[float], alpha: float = 0.05) -> list[bool]:
    """Reject H0_i iff p_i <= alpha / m.  Returns a rejection mask."""
    _validate(p_values, alpha)
    m = len(p_values)
    if m == 0:
        return []
    threshold = alpha / m
    return [p <= threshold for p in p_values]


def bonferroni_adjusted(p_values: Sequence[float]) -> list[float]:
    """Adjusted p-values min(1, m * p_i)."""
    _validate(p_values, 0.05)
    m = len(p_values)
    return [min(1.0, p * m) for p in p_values]


def holm(p_values: Sequence[float], alpha: float = 0.05) -> list[bool]:
    """Holm–Bonferroni step-down rejection mask."""
    _validate(p_values, alpha)
    m = len(p_values)
    if m == 0:
        return []
    order = sorted(range(m), key=lambda i: p_values[i])
    reject = [False] * m
    for step, idx in enumerate(order):
        threshold = alpha / (m - step)
        if p_values[idx] <= threshold:
            reject[idx] = True
        else:
            break  # step-down: once one fails, all larger p-values fail
    return reject


def _validate(p_values: Sequence[float], alpha: float) -> None:
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    for p in p_values:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p-value out of range: {p}")
