"""Kendall's tau-b rank correlation.

Not used by the paper directly, but provided as an alternative to
Spearman's rho for the metric/temporal agreement analyses (ablation
benchmarks compare the two — conclusions must not hinge on the choice
of rank-correlation coefficient).

Two implementations, required to agree exactly:

* :func:`kendall_tau` — Knight's O(n log n) algorithm: sort by (x, y),
  count discordant pairs as merge-sort inversions in y, and adjust for
  ties by run-length counting.  Every intermediate is an exact integer,
  so the final quotient is bit-identical to the quadratic definition.
* :func:`kendall_tau_reference` — the O(n²) pair loop from the
  definition, kept as the ground truth for the hypothesis parity suite
  in ``tests/stats/test_kendall.py``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.rankedlist import RankedList


def kendall_tau_reference(x: Sequence[float], y: Sequence[float]) -> float:
    """Kendall's tau-b (tie-adjusted), O(n²) from the definition.

    Returns ``nan`` for fewer than 2 pairs or when either input is
    constant.  Matches ``scipy.stats.kendalltau``.
    """
    if len(x) != len(y):
        raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
    n = len(x)
    if n < 2:
        return float("nan")
    concordant = discordant = 0
    ties_x = ties_y = 0
    for i in range(n):
        for j in range(i + 1, n):
            dx = x[i] - x[j]
            dy = y[i] - y[j]
            if dx == 0 and dy == 0:
                ties_x += 1
                ties_y += 1
            elif dx == 0:
                ties_x += 1
            elif dy == 0:
                ties_y += 1
            elif (dx > 0) == (dy > 0):
                concordant += 1
            else:
                discordant += 1
    total = n * (n - 1) // 2
    denom = math.sqrt((total - ties_x) * (total - ties_y))
    if denom == 0.0:
        return float("nan")
    return (concordant - discordant) / denom


def _sort_and_count(values: np.ndarray) -> tuple[np.ndarray, int]:
    """(sorted copy, inversion count) — pairs i < j with v[i] > v[j].

    Recursive merge count; the merge itself is two ``searchsorted``
    scatter assignments, so each level is vectorised.  Small blocks are
    counted by brute-force broadcasting, which bounds the recursion.
    """
    n = len(values)
    if n <= 64:
        inversions = int(
            np.count_nonzero(np.triu(values[:, None] > values[None, :], 1))
        )
        return np.sort(values, kind="stable"), inversions
    mid = n // 2
    left, left_inv = _sort_and_count(values[:mid])
    right, right_inv = _sort_and_count(values[mid:])
    # Left elements strictly above a right element, with the left block
    # entirely before the right block: each such pair is one inversion.
    pos_right = np.searchsorted(left, right, side="right")
    cross = left.size * right.size - int(pos_right.sum())
    merged = np.empty(n, dtype=values.dtype)
    pos_left = np.searchsorted(right, left, side="left")
    merged[np.arange(left.size) + pos_left] = left
    merged[np.arange(right.size) + pos_right] = right
    return merged, left_inv + right_inv + cross


def _tie_pairs(new_run: np.ndarray, n: int) -> int:
    """Σ s·(s−1)/2 over run lengths, given new-run flags for items 1..n−1."""
    starts = np.flatnonzero(new_run)
    sizes = np.diff(np.concatenate(([0], starts + 1, [n])))
    return int((sizes * (sizes - 1) // 2).sum())


def kendall_tau(x: Sequence[float], y: Sequence[float]) -> float:
    """Kendall's tau-b (tie-adjusted), O(n log n) via Knight's algorithm.

    Returns ``nan`` for fewer than 2 pairs or when either input is
    constant.  Bit-identical to :func:`kendall_tau_reference` (every
    count below is an exact integer and the final expression is the
    same) and matches ``scipy.stats.kendalltau``.
    """
    if len(x) != len(y):
        raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
    n = len(x)
    if n < 2:
        return float("nan")
    xa = np.asarray(x)
    ya = np.asarray(y)
    order = np.lexsort((ya, xa))
    xs = xa[order]
    ys = ya[order]

    new_x = xs[1:] != xs[:-1]
    ties_x = _tie_pairs(new_x, n)
    joint = _tie_pairs(new_x | (ys[1:] != ys[:-1]), n)
    y_sorted = np.sort(ya, kind="stable")
    ties_y = _tie_pairs(y_sorted[1:] != y_sorted[:-1], n)

    # With x ascending and y ascending within equal-x runs, a strict
    # y-inversion can only involve two distinct x values and two
    # distinct y values — exactly the discordant pairs.
    _, discordant = _sort_and_count(ys)

    total = n * (n - 1) // 2
    denom = math.sqrt((total - ties_x) * (total - ties_y))
    if denom == 0.0:
        return float("nan")
    concordant_minus_discordant = (
        total - ties_x - ties_y + joint - 2 * discordant
    )
    return concordant_minus_discordant / denom


def kendall_from_lists(a: RankedList, b: RankedList) -> float:
    """Kendall's tau over the intersection of two ranked lists."""
    xs, ys = a.rank_pairs(b)
    if len(xs) < 2:
        return float("nan")
    return kendall_tau(xs, ys)
