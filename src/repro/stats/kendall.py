"""Kendall's tau-b rank correlation, from definition.

Not used by the paper directly, but provided as an alternative to
Spearman's rho for the metric/temporal agreement analyses (ablation
benchmarks compare the two — conclusions must not hinge on the choice
of rank-correlation coefficient).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.rankedlist import RankedList


def kendall_tau(x: Sequence[float], y: Sequence[float]) -> float:
    """Kendall's tau-b (tie-adjusted), O(n²) from the definition.

    Returns ``nan`` for fewer than 2 pairs or when either input is
    constant.  Matches ``scipy.stats.kendalltau``.
    """
    if len(x) != len(y):
        raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
    n = len(x)
    if n < 2:
        return float("nan")
    concordant = discordant = 0
    ties_x = ties_y = 0
    for i in range(n):
        for j in range(i + 1, n):
            dx = x[i] - x[j]
            dy = y[i] - y[j]
            if dx == 0 and dy == 0:
                ties_x += 1
                ties_y += 1
            elif dx == 0:
                ties_x += 1
            elif dy == 0:
                ties_y += 1
            elif (dx > 0) == (dy > 0):
                concordant += 1
            else:
                discordant += 1
    total = n * (n - 1) // 2
    denom = math.sqrt((total - ties_x) * (total - ties_y))
    if denom == 0.0:
        return float("nan")
    return (concordant - discordant) / denom


def kendall_from_lists(a: RankedList, b: RankedList) -> float:
    """Kendall's tau over the intersection of two ranked lists."""
    xs, ys = a.rank_pairs(b)
    if len(xs) < 2:
        return float("nan")
    return kendall_tau(xs, ys)
