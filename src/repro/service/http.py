"""Stdlib JSON HTTP API over a :class:`QueryService`.

A :class:`ThreadingHTTPServer` (one thread per connection, daemon
threads) dispatching to the shared service instance:

====================================  =========================================
``GET /v1/healthz``                   liveness + dataset identity
``GET /v1/metrics``                   request counters, latency histograms,
                                      cache + artifact-store stats
``GET /v1/rankings?country=US&...``   rank-list head (``platform``, ``metric``,
                                      ``month``, ``top`` optional)
``GET /v1/sites/<site>?...``          one site's rank across all countries
``GET /v1/distributions?...``         global traffic curve for a slice
``GET /v1/analyses``                  the pipeline task catalogue
``GET /v1/analyses/<task>``           one task's artifact (warm-served)
====================================  =========================================

All bodies — including every 4xx/5xx — are canonical JSON with a
``Content-Length``, so responses are byte-identical across threads and
runs.  Errors never leak a traceback: a :class:`ServiceError` maps to
its status and structured payload (unknown country/task → 404 with the
valid choices), anything else to a one-line 500.  Each request is
logged through the ``repro.service`` logger as
``method path status bytes ms``.
"""

from __future__ import annotations

import logging
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlsplit

from .errors import NotFound, ServiceError
from .query import DEFAULT_TOP, QueryService, render_payload

log = logging.getLogger("repro.service")

#: Route table served on ``/`` and in unknown-route 404 choices.
ENDPOINTS: tuple[str, ...] = (
    "/v1/healthz",
    "/v1/metrics",
    "/v1/rankings",
    "/v1/sites/<site>",
    "/v1/distributions",
    "/v1/analyses",
    "/v1/analyses/<task>",
)


class ReproHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`QueryService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: QueryService) -> None:
        super().__init__(address, ReproRequestHandler)
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class ReproRequestHandler(BaseHTTPRequestHandler):
    """Routes one request to the service; see the module docstring."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing -----------------------------------------------------------------

    def _respond(self, status: int, body: bytes, started: float) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        log.info(
            "%s %s %d %dB %.1fms",
            self.command, self.path, status, len(body),
            (time.perf_counter() - started) * 1000.0,
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Route default handler chatter through our logger, not stderr."""
        log.debug(format, *args)

    def _params(self, query: str) -> dict[str, str]:
        return {key: values[-1] for key, values in parse_qs(query).items()}

    # -- dispatch -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        started = time.perf_counter()
        try:
            status, body = self._route()
        except ServiceError as exc:
            status, body = exc.status, render_payload(exc.payload())
        except Exception as exc:  # noqa: BLE001 - no tracebacks on the wire
            status = 500
            body = render_payload({
                "error": "internal_error",
                "message": f"{type(exc).__name__}: {exc}",
            })
        self._respond(status, body, started)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        started = time.perf_counter()
        body = render_payload({
            "error": "method_not_allowed",
            "message": "the serving API is read-only; use GET",
        })
        self._respond(405, body, started)

    do_PUT = do_DELETE = do_PATCH = do_POST

    def _route(self) -> tuple[int, bytes]:
        parsed = urlsplit(self.path)
        path = unquote(parsed.path).rstrip("/") or "/"
        params = self._params(parsed.query)
        service = self.service

        if path in ("/", "/v1"):
            return 200, render_payload({
                "service": "repro",
                "endpoints": list(ENDPOINTS),
            })
        if path == "/v1/healthz":
            return 200, service.healthz()
        if path == "/v1/metrics":
            return 200, service.metrics_payload()
        if path == "/v1/rankings":
            country = params.get("country")
            if not country:
                raise NotFound(
                    "rankings requires a ?country=<ISO code> parameter",
                    choices=service.dataset.countries,
                )
            return 200, service.rankings(
                country,
                platform=params.get("platform"),
                metric=params.get("metric"),
                month=params.get("month"),
                top=params.get("top", DEFAULT_TOP),
            )
        if path == "/v1/distributions":
            return 200, service.distribution(
                platform=params.get("platform"),
                metric=params.get("metric"),
            )
        if path == "/v1/analyses":
            return 200, service.analyses()
        if path.startswith("/v1/analyses/"):
            return 200, service.analysis(path[len("/v1/analyses/"):])
        if path.startswith("/v1/sites/"):
            return 200, service.site(
                path[len("/v1/sites/"):],
                platform=params.get("platform"),
                metric=params.get("metric"),
                month=params.get("month"),
            )
        service.metrics.observe("unknown", 0.0, error=True)
        raise NotFound(f"unknown endpoint {path!r}", choices=ENDPOINTS)


def create_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8000,
) -> ReproHTTPServer:
    """A bound (not yet serving) server; ``port=0`` picks a free port."""
    return ReproHTTPServer((host, port), service)


def serve_forever(server: ReproHTTPServer) -> None:
    """Serve until interrupted; always releases the socket."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
