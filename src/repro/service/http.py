"""Stdlib JSON HTTP API over a :class:`QueryService`.

A :class:`ThreadingHTTPServer` (one thread per connection, daemon
threads) dispatching to the shared service instance:

====================================  =========================================
``GET /v1/healthz``                   liveness + dataset identity
``GET /v1/metrics``                   request counters, latency histograms,
                                      cache + artifact-store stats
``GET /v1/rankings?country=US&...``   rank-list head (``platform``, ``metric``,
                                      ``month``, ``top`` optional)
``GET /v1/sites/<site>?...``          one site's rank across all countries
``GET /v1/distributions?...``         global traffic curve for a slice
``GET /v1/analyses``                  the pipeline task catalogue
``GET /v1/analyses/<task>``           one task's artifact (warm-served)
====================================  =========================================

All bodies — including every 4xx/5xx — are canonical JSON with a
``Content-Length``, so responses are byte-identical across threads and
runs.  Errors never leak a traceback: a :class:`ServiceError` maps to
its status and structured payload (unknown country/task → 404 with the
valid choices), anything else to a one-line 500.  Each request is
logged through the ``repro.service`` logger as
``method path status bytes ms``, traced as one ``http.request`` span
when tracing is on, and observed in :class:`ServiceMetrics` exactly
once — service-level responses by the service itself, everything else
(index hits, handler-level 4xx, 405s, routing 500s) by the handler —
so ``/v1/metrics`` request counters always equal the responses sent.

Paths are percent-decoded *per segment, after splitting*: a site name
containing an encoded slash (``/v1/sites/foo%2Fbar``) stays one
``<site>`` segment instead of shattering the route.
"""

from __future__ import annotations

import logging
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlsplit

from ..obs import get_tracer
from .errors import NotFound, ServiceError
from .metrics import was_observed
from .query import DEFAULT_TOP, QueryService, render_payload

log = logging.getLogger("repro.service")

#: Route table served on ``/`` and in unknown-route 404 choices.
ENDPOINTS: tuple[str, ...] = (
    "/v1/healthz",
    "/v1/metrics",
    "/v1/rankings",
    "/v1/sites/<site>",
    "/v1/distributions",
    "/v1/analyses",
    "/v1/analyses/<task>",
)


class ReproHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`QueryService`."""

    daemon_threads = True
    # Explicit (HTTPServer already opts in, but the guarantee matters
    # here): the listening socket always carries SO_REUSEADDR, so rapid
    # restart loops — tests, `repro loadtest` runs, fleet supervisors
    # respawning a worker — never trip over EADDRINUSE while the old
    # socket lingers in TIME_WAIT.
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        service: QueryService,
        *,
        handler: type["ReproRequestHandler"] | None = None,
        bind_and_activate: bool = True,
    ) -> None:
        super().__init__(
            address,
            handler if handler is not None else ReproRequestHandler,
            bind_and_activate=bind_and_activate,
        )
        self.service = service

    @property
    def url(self) -> str:
        """A *connectable* base URL for this server.

        A wildcard bind (``0.0.0.0`` / ``::``) is a listen address, not
        a destination — substituting loopback keeps the startup log and
        smoke tests pointing at something a client can actually open.
        """
        host, port = self.server_address[:2]
        if host in ("0.0.0.0", "::", ""):
            host = "::1" if host == "::" else "127.0.0.1"
        if ":" in host:  # bracket IPv6 literals for URL syntax
            host = f"[{host}]"
        return f"http://{host}:{port}"


class ReproRequestHandler(BaseHTTPRequestHandler):
    """Routes one request to the service; see the module docstring."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    # Headers and body go out as separate writes on an unbuffered
    # socket; with Nagle on, the second write stalls behind the peer's
    # delayed ACK (~40ms per response on loopback).  TCP_NODELAY makes
    # response latency track render time instead.
    disable_nagle_algorithm = True

    @property
    def service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing -----------------------------------------------------------------

    def _respond(self, status: int, body: bytes, started: float) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        log.info(
            "%s %s %d %dB %.1fms",
            self.command, self.path, status, len(body),
            (time.perf_counter() - started) * 1000.0,
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Route default handler chatter through our logger, not stderr."""
        log.debug(format, *args)

    def _params(self, query: str) -> dict[str, str]:
        return {key: values[-1] for key, values in parse_qs(query).items()}

    # -- dispatch -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(self._route)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(self._method_not_allowed)

    do_PUT = do_DELETE = do_PATCH = do_POST

    def _dispatch(self, handler) -> None:
        """Run ``handler``, trace the request, observe the response once.

        Responses the service already counted (``observed`` true from
        the handler, or an exception tagged by ``_instrumented``) are
        not observed again; everything else — index hits, handler-level
        4xx, 405s, routing 500s — is observed here, so the metrics
        request counters equal the total responses sent.
        """
        started = time.perf_counter()
        with get_tracer().span(
            "http.request", method=self.command, path=self.path
        ) as span:
            self._endpoint = "unknown"
            try:
                status, body, observed = handler()
            except ServiceError as exc:
                status, body = exc.status, render_payload(exc.payload())
                observed = was_observed(exc)
            except Exception as exc:  # noqa: BLE001 - no tracebacks on the wire
                status = 500
                body = render_payload({
                    "error": "internal_error",
                    "message": f"{type(exc).__name__}: {exc}",
                })
                observed = was_observed(exc)
            span.set("endpoint", self._endpoint)
            span.set("status_code", status)
            if not observed:
                self.service.metrics.observe(
                    self._endpoint,
                    time.perf_counter() - started,
                    error=status >= 400,
                )
            self._respond(status, body, started)

    def _method_not_allowed(self) -> tuple[int, bytes, bool]:
        self._endpoint = "method_not_allowed"
        body = render_payload({
            "error": "method_not_allowed",
            "message": "the serving API is read-only; use GET",
        })
        return 405, body, False

    def _split(self) -> tuple[str, tuple[str, ...], dict[str, str]]:
        """Parse ``self.path`` into (raw path, segments, params).

        Percent-decoding happens per segment *after* splitting, so an
        encoded slash inside a ``<site>`` or ``<task>`` name stays part
        of that one segment instead of changing the route shape.
        """
        parsed = urlsplit(self.path)
        raw = parsed.path.rstrip("/")
        segments = tuple(unquote(s) for s in raw.split("/")[1:]) if raw else ()
        return parsed.path, segments, self._params(parsed.query)

    def _route(self) -> tuple[int, bytes, bool]:
        """Dispatch one GET; returns (status, body, observed-by-service)."""
        path, segments, params = self._split()
        service = self.service

        if segments in ((), ("v1",)):
            self._endpoint = "index"
            return 200, render_payload({
                "service": "repro",
                "endpoints": list(ENDPOINTS),
            }), False
        if segments == ("v1", "healthz"):
            self._endpoint = "healthz"
            return 200, service.healthz(as_of=params.get("as_of")), True
        if segments == ("v1", "metrics"):
            self._endpoint = "metrics"
            return 200, service.metrics_payload(), True
        if segments == ("v1", "rankings"):
            self._endpoint = "rankings"
            country = params.get("country")
            if not country:
                raise NotFound(
                    "rankings requires a ?country=<ISO code> parameter",
                    choices=service.dataset.countries,
                )
            return 200, service.rankings(
                country,
                platform=params.get("platform"),
                metric=params.get("metric"),
                month=params.get("month"),
                top=params.get("top", DEFAULT_TOP),
                as_of=params.get("as_of"),
            ), True
        if segments == ("v1", "distributions"):
            self._endpoint = "distribution"
            return 200, service.distribution(
                platform=params.get("platform"),
                metric=params.get("metric"),
                as_of=params.get("as_of"),
            ), True
        if segments == ("v1", "analyses"):
            self._endpoint = "analyses"
            return 200, service.analyses(), True
        if len(segments) == 3 and segments[:2] == ("v1", "analyses"):
            self._endpoint = "analysis"
            return 200, service.analysis(
                segments[2], as_of=params.get("as_of")
            ), True
        if len(segments) == 3 and segments[:2] == ("v1", "sites"):
            self._endpoint = "site"
            return 200, service.site(
                segments[2],
                platform=params.get("platform"),
                metric=params.get("metric"),
                month=params.get("month"),
                as_of=params.get("as_of"),
            ), True
        raise NotFound(
            f"unknown endpoint {path!r}", choices=ENDPOINTS
        )


def create_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8000,
) -> ReproHTTPServer:
    """A bound (not yet serving) server; ``port=0`` picks a free port."""
    return ReproHTTPServer((host, port), service)


def serve_forever(server: ReproHTTPServer) -> None:
    """Serve until interrupted; always releases the socket.

    When run on the main thread, SIGTERM is handled like Ctrl-C — a
    plain ``kill`` (what CI and process managers send) shuts the server
    down cleanly instead of dropping the socket mid-request.  If
    :func:`repro.api.serve` attached a tracing scope to the server
    (``--trace``), it is closed here so the JSONL trace is written on
    either exit path.
    """
    import signal
    import threading

    previous = None
    on_main = threading.current_thread() is threading.main_thread()
    if on_main:
        def _interrupt(signum, frame):  # pragma: no cover - signal path
            raise KeyboardInterrupt
        previous = signal.signal(signal.SIGTERM, _interrupt)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        if on_main:
            signal.signal(signal.SIGTERM, previous)
        server.server_close()
        scope = getattr(server, "trace_scope", None)
        if scope is not None:
            server.trace_scope = None
            scope.__exit__(None, None, None)
