"""repro.service — the serving layer (see DESIGN.md, "Serving layer").

The read path the ROADMAP's "serves heavy traffic" north star needs:
a :class:`QueryService` answering rank-list, site-lookup, traffic-curve
and analysis-artifact queries over one loaded dataset, with

* a thread-safe LRU of rendered canonical-JSON payload bytes
  (:class:`PayloadCache`) behind per-key single-flight locks, so
  concurrent identical requests compute once and receive byte-identical
  bodies;
* analysis queries resolved through the shared
  :class:`~repro.pipeline.PipelineRunner` + artifact store, so warm
  artifacts are served without recomputation;
* per-endpoint request counters and latency histograms
  (:class:`ServiceMetrics`) surfaced at ``/v1/metrics``;
* a stdlib :class:`ThreadingHTTPServer` JSON API (:mod:`.http`) with
  structured 4xx/5xx payloads — an unknown country or task is a 404
  listing the valid choices, never a traceback.

Quick start::

    from repro.api import load, serve
    serve("out/feb", port=8000)              # blocks; ctrl-C to stop

or, composing the pieces::

    from repro.export import load_dataset
    from repro.service import QueryService, create_server

    service = QueryService(load_dataset("out/feb"),
                           store="out/feb/.artifacts")
    server = create_server(service, port=8000)
    server.serve_forever()
"""

from .cache import PayloadCache
from .errors import BadRequest, NotFound, ServiceError, Unavailable
from .http import (
    ENDPOINTS,
    ReproHTTPServer,
    ReproRequestHandler,
    create_server,
    serve_forever,
)
from .metrics import LatencyHistogram, ServiceMetrics
from .query import DEFAULT_TOP, QueryService, render_payload

__all__ = [
    "BadRequest",
    "DEFAULT_TOP",
    "ENDPOINTS",
    "LatencyHistogram",
    "NotFound",
    "PayloadCache",
    "QueryService",
    "ReproHTTPServer",
    "ReproRequestHandler",
    "ServiceError",
    "ServiceMetrics",
    "Unavailable",
    "create_server",
    "render_payload",
    "serve_forever",
]
