"""Thread-safe LRU cache of rendered response payloads.

The serving layer caches the *bytes* it writes to sockets, not parsed
values: every payload is canonical JSON (sorted keys, fixed
separators), so the bytes are a pure function of the query and a hit
is guaranteed byte-identical to a recompute.  First writer wins on a
racing insert — later renders of the same key are discarded in favour
of the stored bytes, so concurrent identical requests can never observe
two different bodies even if a renderer were nondeterministic.

The cache is bounded twice over: by entry count (``capacity``) and,
optionally, by total payload bytes (``max_bytes``).  The byte budget
is what keeps a fleet worker's RSS flat — a handful of oversized
payloads (a deep analysis artifact, a ``top=10000`` rankings body)
must not pin megabytes each while thousands of small rankings heads
get evicted around them.  Inserting past either bound evicts LRU
entries until both hold again; a single payload larger than the whole
byte budget is served but never stored (counted in ``oversized``).

``capacity=0`` disables the cache (every lookup misses, nothing is
stored), which keeps the no-cache serving path on the same code shape.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

#: A cache key: the endpoint name plus its canonicalised parameters.
PayloadKey = tuple[str, ...]


class PayloadCache:
    """An LRU mapping query keys to rendered payload bytes."""

    def __init__(
        self, capacity: int = 256, *, max_bytes: int | None = None
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[PayloadKey, bytes] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.oversized = 0

    def get(self, key: PayloadKey, *, record_miss: bool = True) -> bytes | None:
        """The cached payload (refreshing recency), or ``None``.

        ``record_miss=False`` suppresses the miss counter for
        re-checks that follow an already-counted miss (the
        single-flight path), so ``hits + misses`` equals the number of
        requests, not the number of probes.
        """
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                if record_miss:
                    self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: PayloadKey, value: bytes) -> bytes:
        """Store ``value`` under ``key``; returns the authoritative bytes.

        If another thread stored the key first, *its* bytes win and are
        returned — callers must serve the return value, not their own
        render.  Entries are evicted LRU-first until the cache is back
        under both the entry and byte budgets; a payload that alone
        exceeds ``max_bytes`` is returned unstored.
        """
        if self.capacity == 0:
            return value
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            if self.max_bytes is not None and len(value) > self.max_bytes:
                self.oversized += 1
                return value
            self._entries[key] = value
            self._bytes += len(value)
            while len(self._entries) > self.capacity or (
                self.max_bytes is not None and self._bytes > self.max_bytes
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted)
                self.evictions += 1
            return value

    @property
    def cache_bytes(self) -> int:
        """Total bytes currently held (the ``cache_bytes`` metric)."""
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._entries

    def snapshot(self) -> dict[str, int | None]:
        """JSON-shaped counters for the ``/v1/metrics`` payload."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "cache_bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "oversized": self.oversized,
            }

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"PayloadCache(capacity={snap['capacity']}, size={snap['size']}, "
            f"{snap['hits']} hits, {snap['misses']} misses)"
        )
