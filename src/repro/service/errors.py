"""Structured errors for the serving layer.

Every error a query can provoke maps to one HTTP status and renders as
a structured JSON payload — ``{"error": <code>, "message": ...,
"choices": [...]}`` — never a traceback.  ``choices`` carries the valid
values when the request named something the dataset or registry does
not have (an unknown country lists the known countries, an unknown
task lists the registry), so a 404 is directly actionable.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.errors import ReproError


class ServiceError(ReproError):
    """Base class: an unexpected serving failure (HTTP 500)."""

    status = 500
    code = "internal_error"

    def __init__(
        self, message: str, *, choices: Iterable[object] | None = None
    ) -> None:
        super().__init__(message)
        self.choices: tuple[str, ...] | None = (
            tuple(str(c) for c in choices) if choices is not None else None
        )

    def payload(self) -> dict[str, object]:
        """The JSON body served for this error."""
        out: dict[str, object] = {"error": self.code, "message": str(self)}
        if self.choices is not None:
            out["choices"] = list(self.choices)
        return out


class BadRequest(ServiceError):
    """A malformed parameter (unparseable month, top < 1, ...)."""

    status = 400
    code = "bad_request"


class NotFound(ServiceError):
    """The named resource does not exist in this dataset or registry."""

    status = 404
    code = "not_found"


class Unavailable(ServiceError):
    """The query is well-formed but this dataset cannot answer it.

    Mirrors :class:`~repro.core.errors.TaskUnavailable`: e.g. the
    platform-comparison analysis against a single-platform export.
    """

    status = 422
    code = "unavailable"


def not_found(kind: str, got: object, choices: Sequence[object]) -> NotFound:
    """A uniform unknown-<kind> 404 carrying the valid choices."""
    return NotFound(f"unknown {kind} {str(got)!r}", choices=choices)
