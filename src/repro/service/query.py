"""The query service: every read path of the serving layer.

:class:`QueryService` wraps a loaded :class:`BrowsingDataset` (eager,
:class:`~repro.engine.lazy.LazyBrowsingDataset`, or a memory-mapped
:class:`~repro.store.MappedBrowsingDataset` — ``repro serve`` over a
columnar directory opens the dataset read-only via mmap, so N worker
processes share one physical copy of the pages and cold start never
parses a list) plus the reproduction pipeline, and answers four
families of queries:

* **rankings** — the top of one (country, platform, metric, month) list;
* **site** — one site's rank across every country of a slice;
* **distribution** — the global traffic-volume curve of a (platform,
  metric) pair;
* **analysis** — any registered pipeline task, resolved through the
  shared :class:`~repro.pipeline.PipelineRunner` so warm artifacts are
  served without recomputation.

Every public endpoint returns the exact *bytes* the HTTP layer writes:
canonical JSON plus a trailing newline.  Rendered payloads live in a
thread-safe LRU (:class:`~repro.service.cache.PayloadCache`) behind a
per-key single-flight lock, so N concurrent identical requests compute
once and all receive byte-identical bodies.  Request counts and latency
histograms accumulate in :class:`~repro.service.metrics.ServiceMetrics`
whether the service is driven over HTTP or called directly.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

from ..core.dataset import BrowsingDataset
from ..core.types import Metric, Month, Platform
from ..obs import get_tracer
from ..pipeline import (
    ArtifactStore,
    PipelineRunner,
    SerialTaskExecutor,
    TaskContext,
    TaskStatus,
    ThreadedTaskExecutor,
    canonical_json,
    default_registry,
)
from .cache import PayloadCache, PayloadKey
from .errors import BadRequest, NotFound, ServiceError, Unavailable, not_found
from .metrics import ServiceMetrics, mark_observed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.engine import GenerationEngine

#: Default number of ranks returned by a rankings query.
DEFAULT_TOP = 50

#: Ranks at which the distribution endpoint samples the cumulative curve.
_CURVE_SAMPLE_RANKS = (1, 6, 10, 100, 1_000, 10_000, 100_000, 1_000_000)


def render_payload(payload: object) -> bytes:
    """The one byte encoding every endpoint serves (canonical JSON)."""
    return canonical_json(payload).encode("utf-8") + b"\n"


class QueryService:
    """Cached read-path over one dataset + artifact store; see module doc."""

    def __init__(
        self,
        dataset: BrowsingDataset,
        *,
        store: ArtifactStore | str | Path | None = None,
        registry=None,
        config=None,
        month: Month | None = None,
        cache: PayloadCache | int = 256,
        cache_bytes: int | None = None,
        jobs: int = 1,
        root: str | Path | None = None,
        version: int | None = None,
    ) -> None:
        self.dataset = dataset
        self.registry = registry if registry is not None else default_registry()
        if isinstance(store, (str, Path)):
            store = ArtifactStore(store)
        self.store = store
        executor = ThreadedTaskExecutor(jobs) if jobs > 1 else SerialTaskExecutor()
        self.runner = PipelineRunner(self.registry, executor=executor, store=store)
        self.ctx = TaskContext(dataset, config=config, month=month)
        self.cache = (
            cache if isinstance(cache, PayloadCache)
            else PayloadCache(cache, max_bytes=cache_bytes)
        )
        self.metrics = ServiceMetrics()
        self._flights: dict[PayloadKey, threading.Lock] = {}
        self._flights_guard = threading.Lock()
        # -- dataset versioning (``?as_of=``) --------------------------
        # ``root`` (the saved dataset directory, defaulting to a mapped
        # dataset's own root) lets the service load archived versions
        # on demand and pick up ingests; ``version`` pins the service
        # to one version (it never follows the live manifest).
        if root is None:
            root = getattr(dataset, "root", None)
        self.root = Path(root) if root is not None else None
        self._config = config
        self._month_pin = month
        self._pinned = version is not None
        self._versions_lock = threading.Lock()
        self._latest = int(getattr(dataset, "version", 1))
        self._contexts: dict[int, TaskContext] = {self._latest: self.ctx}
        self._manifest_stat = self._stat_manifest()
        if version is not None and int(version) != self._latest:
            wanted, ctx = self._resolve(version)
            self._latest = wanted
            self.ctx = ctx
            self.dataset = ctx.dataset

    # -- dataset versions ---------------------------------------------------------

    def _manifest_path(self) -> Path | None:
        if self.root is None:
            return None
        for name in ("manifest.bin", "manifest.json"):
            path = self.root / name
            if path.is_file():
                return path
        return None

    def _stat_manifest(self) -> tuple[int, int] | None:
        path = self._manifest_path()
        if path is None:
            return None
        stat = path.stat()
        return (stat.st_mtime_ns, stat.st_size)

    def _refresh(self) -> None:
        """Follow the live manifest: adopt a newly-ingested version.

        An ingest lands its manifest via ``os.replace``, so the stat
        either shows the complete old file or the complete new one —
        never a torn state.  Pinned services (``version=``) and
        in-memory datasets (no root) never refresh.
        """
        if self._pinned or self.root is None:
            return
        stat = self._stat_manifest()
        if stat is None or stat == self._manifest_stat:
            return
        with self._versions_lock:
            stat = self._stat_manifest()
            if stat == self._manifest_stat:
                return
            from ..export.io import load_dataset

            dataset = load_dataset(self.root)
            ctx = TaskContext(
                dataset, config=self._config, month=self._month_pin
            )
            # The generator (universe build!) is config-derived, so the
            # new context can share the one already built, if any.
            ctx._generator = self.ctx._generator
            version = int(getattr(dataset, "version", 1))
            self._contexts[version] = ctx
            self._latest = version
            self.dataset = dataset
            self.ctx = ctx
            self._manifest_stat = stat
            self.metrics.add("dataset_reloads")

    def current_version(self) -> int:
        """The version default (``as_of``-less) requests are served at."""
        self._refresh()
        return self._latest

    def _resolve(self, as_of) -> tuple[int, TaskContext]:
        """The (version, context) a request pins; default is latest."""
        if as_of is None:
            self._refresh()
            return self._latest, self._contexts[self._latest]
        try:
            wanted = int(as_of)
        except (TypeError, ValueError):
            raise BadRequest(
                f"as_of must be an integer dataset version, got {as_of!r}"
            ) from None
        ctx = self._contexts.get(wanted)
        if ctx is not None:
            return wanted, ctx
        if self.root is None:
            raise not_found(
                "dataset version", str(as_of),
                [str(v) for v in sorted(self._contexts)],
            )
        self._refresh()
        with self._versions_lock:
            ctx = self._contexts.get(wanted)
            if ctx is not None:
                return wanted, ctx
            from ..export.io import (
                DatasetError, dataset_versions, load_dataset,
            )

            try:
                available = dataset_versions(self.root)
            except DatasetError:
                available = tuple(sorted(self._contexts))
            if wanted not in available:
                raise not_found(
                    "dataset version", str(as_of),
                    [str(v) for v in available],
                )
            dataset = load_dataset(self.root, as_of=wanted)
            ctx = TaskContext(
                dataset, config=self._config, month=self._month_pin
            )
            ctx._generator = self.ctx._generator
            self._contexts[wanted] = ctx
            return wanted, ctx

    @classmethod
    def from_engine(
        cls,
        engine: "GenerationEngine",
        *,
        countries: Iterable[str] | None = None,
        platforms: Iterable[Platform] | None = None,
        metrics: Iterable[Metric] | None = None,
        months: Iterable[Month] | None = None,
        **kwargs,
    ) -> "QueryService":
        """A service over a lazily-generated grid: slices appear on query."""
        grid: dict[str, object] = {"countries": countries}
        if platforms is not None:
            grid["platforms"] = tuple(platforms)
        if metrics is not None:
            grid["metrics"] = tuple(metrics)
        if months is not None:
            grid["months"] = tuple(months)
        dataset = engine.generate_lazy(**grid)
        return cls(dataset, config=engine.config, **kwargs)

    # -- parameter coercion -------------------------------------------------------

    def _platform(
        self, value: Platform | str | None, ctx: TaskContext | None = None
    ) -> Platform:
        ctx = ctx or self.ctx
        if value is None:
            return ctx.primary_platform
        if isinstance(value, str):
            try:
                value = Platform(value)
            except ValueError:
                raise BadRequest(
                    f"unparseable platform {value!r}",
                    choices=[p.value for p in Platform],
                ) from None
        if value not in ctx.dataset.platforms:
            raise not_found(
                "platform", value.value,
                [p.value for p in ctx.dataset.platforms],
            )
        return value

    def _metric(
        self, value: Metric | str | None, ctx: TaskContext | None = None
    ) -> Metric:
        ctx = ctx or self.ctx
        if value is None:
            return ctx.primary_metric
        if isinstance(value, str):
            try:
                value = Metric(value)
            except ValueError:
                raise BadRequest(
                    f"unparseable metric {value!r}",
                    choices=[m.value for m in Metric],
                ) from None
        if value not in ctx.dataset.metrics:
            raise not_found(
                "metric", value.value,
                [m.value for m in ctx.dataset.metrics],
            )
        return value

    def _month(
        self, value: Month | str | None, ctx: TaskContext | None = None
    ) -> Month:
        ctx = ctx or self.ctx
        if value is None:
            return ctx.month
        if isinstance(value, str):
            try:
                value = Month.parse(value)
            except ValueError:
                raise BadRequest(
                    f"month must look like 2022-02, got {value!r}"
                ) from None
        if value not in ctx.dataset.months:
            raise not_found(
                "month", value, [str(m) for m in ctx.dataset.months]
            )
        return value

    def _country(self, value: str, ctx: TaskContext | None = None) -> str:
        ctx = ctx or self.ctx
        country = value.upper()
        if country not in ctx.dataset.countries:
            raise not_found("country", value, ctx.dataset.countries)
        return country

    def _task(self, name: str):
        if name not in self.registry:
            raise not_found("task", name, sorted(self.registry.names()))
        return self.registry.get(name)

    # -- caching / instrumentation ------------------------------------------------

    def _flight(self, key: PayloadKey) -> threading.Lock:
        with self._flights_guard:
            lock = self._flights.get(key)
            if lock is None:
                lock = self._flights[key] = threading.Lock()
            return lock

    def _cached(self, key: PayloadKey, build: Callable[[], object]) -> bytes:
        """LRU + single-flight: build each payload at most once at a time."""
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        try:
            with self._flight(key):
                hit = self.cache.get(key, record_miss=False)
                if hit is not None:
                    return hit
                return self.cache.put(key, render_payload(build()))
        finally:
            # Always discard the flight lock — a build() that raises
            # (bad site name, failing task) must not leave its key in
            # _flights forever, or an error scan grows it unboundedly.
            with self._flights_guard:
                self._flights.pop(key, None)

    def _instrumented(self, endpoint: str, fn: Callable[[], bytes]) -> bytes:
        start = time.perf_counter()
        with get_tracer().span(f"service.{endpoint}"):
            try:
                result = fn()
            except Exception as exc:
                self.metrics.observe(
                    endpoint, time.perf_counter() - start, error=True
                )
                # Tell the HTTP layer this response is already counted
                # (it observes everything the service never saw).
                mark_observed(exc)
                raise
        self.metrics.observe(endpoint, time.perf_counter() - start)
        return result

    # -- endpoints ----------------------------------------------------------------

    def rankings(
        self,
        country: str,
        *,
        platform: Platform | str | None = None,
        metric: Metric | str | None = None,
        month: Month | str | None = None,
        top: int | str = DEFAULT_TOP,
        as_of: int | str | None = None,
    ) -> bytes:
        """The head of one (country, platform, metric, month) rank list."""
        return self._instrumented(
            "rankings",
            lambda: self._rankings(country, platform, metric, month, top,
                                   as_of),
        )

    def _rankings(self, country, platform, metric, month, top, as_of) -> bytes:
        version, ctx = self._resolve(as_of)
        country = self._country(country, ctx)
        platform = self._platform(platform, ctx)
        metric = self._metric(metric, ctx)
        month = self._month(month, ctx)
        try:
            top = int(top)
        except (TypeError, ValueError):
            raise BadRequest(f"top must be an integer, got {top!r}") from None
        if top < 1:
            raise BadRequest(f"top must be >= 1, got {top}")
        key = ("rankings", version, country, platform.value, metric.value,
               str(month), str(top))

        def build() -> dict[str, object]:
            ranked = ctx.dataset.get_or_none(country, platform, metric, month)
            if ranked is None:
                raise NotFound(
                    f"no rank list for {country}/{platform.value}/"
                    f"{metric.value}/{month}"
                )
            head = ranked.top(min(top, len(ranked)))
            return {
                "country": country,
                "platform": platform.value,
                "metric": metric.value,
                "month": str(month),
                "total_sites": len(ranked),
                "top": len(head),
                "sites": list(head.sites),
            }

        return self._cached(key, build)

    def site(
        self,
        site: str,
        *,
        platform: Platform | str | None = None,
        metric: Metric | str | None = None,
        month: Month | str | None = None,
        as_of: int | str | None = None,
    ) -> bytes:
        """One site's rank in every country of a (platform, metric, month)."""
        return self._instrumented(
            "site", lambda: self._site(site, platform, metric, month, as_of)
        )

    def _site(self, site, platform, metric, month, as_of) -> bytes:
        if not site:
            raise BadRequest("site must be non-empty")
        version, ctx = self._resolve(as_of)
        platform = self._platform(platform, ctx)
        metric = self._metric(metric, ctx)
        month = self._month(month, ctx)
        key = ("site", version, site, platform.value, metric.value, str(month))

        def build() -> dict[str, object]:
            ranks: dict[str, int | None] = {}
            best: tuple[int, str] | None = None
            for country in ctx.dataset.countries:
                ranked = ctx.dataset.get_or_none(country, platform, metric, month)
                rank = ranked.rank_of(site) if ranked is not None else None
                ranks[country] = rank
                if rank is not None and (best is None or rank < best[0]):
                    best = (rank, country)
            present = sum(1 for r in ranks.values() if r is not None)
            if present == 0:
                raise NotFound(
                    f"site {site!r} is not ranked in any country for "
                    f"{platform.value}/{metric.value}/{month}"
                )
            return {
                "site": site,
                "platform": platform.value,
                "metric": metric.value,
                "month": str(month),
                "ranks": ranks,
                "countries_ranked": present,
                "best": {"country": best[1], "rank": best[0]},
            }

        return self._cached(key, build)

    def distribution(
        self,
        *,
        platform: Platform | str | None = None,
        metric: Metric | str | None = None,
        as_of: int | str | None = None,
    ) -> bytes:
        """The global cumulative traffic curve for a (platform, metric)."""
        return self._instrumented(
            "distribution", lambda: self._distribution(platform, metric, as_of)
        )

    def _distribution(self, platform, metric, as_of) -> bytes:
        version, ctx = self._resolve(as_of)
        platform = self._platform(platform, ctx)
        metric = self._metric(metric, ctx)
        key = ("distribution", version, platform.value, metric.value)

        def build() -> dict[str, object]:
            dist = ctx.dataset.distribution(platform, metric)
            return {
                "platform": platform.value,
                "metric": metric.value,
                "total_sites": dist.total_sites,
                "anchors": [[rank, share] for rank, share in dist.anchors],
                "cumulative_share": {
                    str(rank): round(dist.cumulative_share(rank), 6)
                    for rank in _CURVE_SAMPLE_RANKS
                    if rank <= dist.total_sites
                },
            }

        return self._cached(key, build)

    def analysis(
        self, task: str, *, as_of: int | str | None = None
    ) -> bytes:
        """One pipeline task's artifact, served warm when possible."""
        return self._instrumented(
            "analysis", lambda: self._analysis(task, as_of)
        )

    def _analysis(self, name: str, as_of=None) -> bytes:
        version, ctx = self._resolve(as_of)
        task = self._task(name)
        key = ("analysis", version, name)

        def build() -> dict[str, object]:
            self.metrics.add("pipeline_runs")
            report = self.runner.run(ctx, [name])
            self.metrics.add("pipeline_executed", report.executed)
            self.metrics.add("pipeline_cached", report.cached)
            record = report.records[name]
            if record.status is TaskStatus.FAILED:
                raise ServiceError(f"task {name!r} failed: {record.error}")
            if record.status is TaskStatus.SKIPPED:
                raise Unavailable(
                    f"task {name!r} unavailable: {record.error}"
                )
            return {
                "task": name,
                "title": task.title or name,
                "section": task.section,
                "key": record.key,
                "result": report.results[name],
            }

        return self._cached(key, build)

    def analyses(self) -> bytes:
        """The task catalogue: names, sections, dependencies."""
        return self._instrumented("analyses", lambda: self._analyses())

    def _analyses(self) -> bytes:
        def build() -> dict[str, object]:
            return {
                "tasks": [
                    {
                        "name": task.name,
                        "title": task.title or task.name,
                        "section": task.section,
                        "deps": list(task.deps),
                    }
                    for task in sorted(self.registry, key=lambda t: t.name)
                ]
            }

        return self._cached(("analyses",), build)

    def healthz(self, *, as_of: int | str | None = None) -> bytes:
        """Liveness + dataset identity; never cached."""
        return self._instrumented("healthz", lambda: self._healthz(as_of))

    def _healthz(self, as_of=None) -> bytes:
        from .. import __version__

        version, ctx = self._resolve(as_of)
        dataset = ctx.dataset
        payload: dict[str, object] = {
            "status": "ok",
            "version": __version__,
            "storage": dataset.storage,
            "fingerprint": ctx.fingerprint,
            "dataset_version": version,
            "countries": len(dataset.countries),
            "platforms": [p.value for p in dataset.platforms],
            "metrics": [m.value for m in dataset.metrics],
            "months": [str(m) for m in dataset.months],
            "lists": len(dataset),
            "tasks": len(self.registry),
            "pending_slices": int(getattr(dataset, "pending", 0) or 0),
        }
        return render_payload(payload)

    def metrics_payload(self) -> bytes:
        """The ``/v1/metrics`` body: counters, histograms, cache stats."""
        return self._instrumented("metrics", lambda: self._metrics_payload())

    def _metrics_payload(self) -> bytes:
        return render_payload(self.metrics_snapshot())

    def metrics_snapshot(self) -> dict[str, object]:
        """The ``/v1/metrics`` dict, *without* observing a request.

        The fleet layer merges these per-worker snapshots into one
        fleet-wide view (see :mod:`repro.fleet.metrics`); the HTTP
        handler that serves the merged payload observes the request
        itself, so the split keeps the exactly-once accounting intact.
        """
        self._refresh()
        dataset = self.ctx.dataset
        snapshot = self.metrics.snapshot(cache=self.cache.snapshot())
        snapshot["dataset"] = {
            "version": self._latest,
            "months": [str(m) for m in dataset.months],
            "pending_slices": int(getattr(dataset, "pending", 0) or 0),
        }
        snapshot["trace"] = get_tracer().snapshot()
        if self.store is not None:
            snapshot["artifact_store"] = {
                "root": str(self.store.root),
                "hits": self.store.stats.hits,
                "misses": self.store.stats.misses,
                "writes": self.store.stats.writes,
            }
        return snapshot

    def __repr__(self) -> str:
        return (
            f"QueryService(fingerprint={self.ctx.fingerprint}, "
            f"lists={len(self.dataset)}, cache={self.cache!r})"
        )


__all__ = [
    "DEFAULT_TOP",
    "QueryService",
    "render_payload",
]
