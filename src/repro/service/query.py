"""The query service: every read path of the serving layer.

:class:`QueryService` wraps a loaded :class:`BrowsingDataset` (eager,
:class:`~repro.engine.lazy.LazyBrowsingDataset`, or a memory-mapped
:class:`~repro.store.MappedBrowsingDataset` — ``repro serve`` over a
columnar directory opens the dataset read-only via mmap, so N worker
processes share one physical copy of the pages and cold start never
parses a list) plus the reproduction pipeline, and answers four
families of queries:

* **rankings** — the top of one (country, platform, metric, month) list;
* **site** — one site's rank across every country of a slice;
* **distribution** — the global traffic-volume curve of a (platform,
  metric) pair;
* **analysis** — any registered pipeline task, resolved through the
  shared :class:`~repro.pipeline.PipelineRunner` so warm artifacts are
  served without recomputation.

Every public endpoint returns the exact *bytes* the HTTP layer writes:
canonical JSON plus a trailing newline.  Rendered payloads live in a
thread-safe LRU (:class:`~repro.service.cache.PayloadCache`) behind a
per-key single-flight lock, so N concurrent identical requests compute
once and all receive byte-identical bodies.  Request counts and latency
histograms accumulate in :class:`~repro.service.metrics.ServiceMetrics`
whether the service is driven over HTTP or called directly.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

from ..core.dataset import BrowsingDataset
from ..core.types import Metric, Month, Platform
from ..obs import get_tracer
from ..pipeline import (
    ArtifactStore,
    PipelineRunner,
    SerialTaskExecutor,
    TaskContext,
    TaskStatus,
    ThreadedTaskExecutor,
    canonical_json,
    default_registry,
)
from .cache import PayloadCache, PayloadKey
from .errors import BadRequest, NotFound, ServiceError, Unavailable, not_found
from .metrics import ServiceMetrics, mark_observed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.engine import GenerationEngine

#: Default number of ranks returned by a rankings query.
DEFAULT_TOP = 50

#: Ranks at which the distribution endpoint samples the cumulative curve.
_CURVE_SAMPLE_RANKS = (1, 6, 10, 100, 1_000, 10_000, 100_000, 1_000_000)


def render_payload(payload: object) -> bytes:
    """The one byte encoding every endpoint serves (canonical JSON)."""
    return canonical_json(payload).encode("utf-8") + b"\n"


class QueryService:
    """Cached read-path over one dataset + artifact store; see module doc."""

    def __init__(
        self,
        dataset: BrowsingDataset,
        *,
        store: ArtifactStore | str | Path | None = None,
        registry=None,
        config=None,
        month: Month | None = None,
        cache: PayloadCache | int = 256,
        cache_bytes: int | None = None,
        jobs: int = 1,
    ) -> None:
        self.dataset = dataset
        self.registry = registry if registry is not None else default_registry()
        if isinstance(store, (str, Path)):
            store = ArtifactStore(store)
        self.store = store
        executor = ThreadedTaskExecutor(jobs) if jobs > 1 else SerialTaskExecutor()
        self.runner = PipelineRunner(self.registry, executor=executor, store=store)
        self.ctx = TaskContext(dataset, config=config, month=month)
        self.cache = (
            cache if isinstance(cache, PayloadCache)
            else PayloadCache(cache, max_bytes=cache_bytes)
        )
        self.metrics = ServiceMetrics()
        self._flights: dict[PayloadKey, threading.Lock] = {}
        self._flights_guard = threading.Lock()

    @classmethod
    def from_engine(
        cls,
        engine: "GenerationEngine",
        *,
        countries: Iterable[str] | None = None,
        platforms: Iterable[Platform] | None = None,
        metrics: Iterable[Metric] | None = None,
        months: Iterable[Month] | None = None,
        **kwargs,
    ) -> "QueryService":
        """A service over a lazily-generated grid: slices appear on query."""
        grid: dict[str, object] = {"countries": countries}
        if platforms is not None:
            grid["platforms"] = tuple(platforms)
        if metrics is not None:
            grid["metrics"] = tuple(metrics)
        if months is not None:
            grid["months"] = tuple(months)
        dataset = engine.generate_lazy(**grid)
        return cls(dataset, config=engine.config, **kwargs)

    # -- parameter coercion -------------------------------------------------------

    def _platform(self, value: Platform | str | None) -> Platform:
        if value is None:
            return self.ctx.primary_platform
        if isinstance(value, str):
            try:
                value = Platform(value)
            except ValueError:
                raise BadRequest(
                    f"unparseable platform {value!r}",
                    choices=[p.value for p in Platform],
                ) from None
        if value not in self.dataset.platforms:
            raise not_found(
                "platform", value.value, [p.value for p in self.dataset.platforms]
            )
        return value

    def _metric(self, value: Metric | str | None) -> Metric:
        if value is None:
            return self.ctx.primary_metric
        if isinstance(value, str):
            try:
                value = Metric(value)
            except ValueError:
                raise BadRequest(
                    f"unparseable metric {value!r}",
                    choices=[m.value for m in Metric],
                ) from None
        if value not in self.dataset.metrics:
            raise not_found(
                "metric", value.value, [m.value for m in self.dataset.metrics]
            )
        return value

    def _month(self, value: Month | str | None) -> Month:
        if value is None:
            return self.ctx.month
        if isinstance(value, str):
            try:
                value = Month.parse(value)
            except ValueError:
                raise BadRequest(
                    f"month must look like 2022-02, got {value!r}"
                ) from None
        if value not in self.dataset.months:
            raise not_found("month", value, [str(m) for m in self.dataset.months])
        return value

    def _country(self, value: str) -> str:
        country = value.upper()
        if country not in self.dataset.countries:
            raise not_found("country", value, self.dataset.countries)
        return country

    def _task(self, name: str):
        if name not in self.registry:
            raise not_found("task", name, sorted(self.registry.names()))
        return self.registry.get(name)

    # -- caching / instrumentation ------------------------------------------------

    def _flight(self, key: PayloadKey) -> threading.Lock:
        with self._flights_guard:
            lock = self._flights.get(key)
            if lock is None:
                lock = self._flights[key] = threading.Lock()
            return lock

    def _cached(self, key: PayloadKey, build: Callable[[], object]) -> bytes:
        """LRU + single-flight: build each payload at most once at a time."""
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        try:
            with self._flight(key):
                hit = self.cache.get(key, record_miss=False)
                if hit is not None:
                    return hit
                return self.cache.put(key, render_payload(build()))
        finally:
            # Always discard the flight lock — a build() that raises
            # (bad site name, failing task) must not leave its key in
            # _flights forever, or an error scan grows it unboundedly.
            with self._flights_guard:
                self._flights.pop(key, None)

    def _instrumented(self, endpoint: str, fn: Callable[[], bytes]) -> bytes:
        start = time.perf_counter()
        with get_tracer().span(f"service.{endpoint}"):
            try:
                result = fn()
            except Exception as exc:
                self.metrics.observe(
                    endpoint, time.perf_counter() - start, error=True
                )
                # Tell the HTTP layer this response is already counted
                # (it observes everything the service never saw).
                mark_observed(exc)
                raise
        self.metrics.observe(endpoint, time.perf_counter() - start)
        return result

    # -- endpoints ----------------------------------------------------------------

    def rankings(
        self,
        country: str,
        *,
        platform: Platform | str | None = None,
        metric: Metric | str | None = None,
        month: Month | str | None = None,
        top: int | str = DEFAULT_TOP,
    ) -> bytes:
        """The head of one (country, platform, metric, month) rank list."""
        return self._instrumented(
            "rankings",
            lambda: self._rankings(country, platform, metric, month, top),
        )

    def _rankings(self, country, platform, metric, month, top) -> bytes:
        country = self._country(country)
        platform = self._platform(platform)
        metric = self._metric(metric)
        month = self._month(month)
        try:
            top = int(top)
        except (TypeError, ValueError):
            raise BadRequest(f"top must be an integer, got {top!r}") from None
        if top < 1:
            raise BadRequest(f"top must be >= 1, got {top}")
        key = ("rankings", country, platform.value, metric.value,
               str(month), str(top))

        def build() -> dict[str, object]:
            ranked = self.dataset.get_or_none(country, platform, metric, month)
            if ranked is None:
                raise NotFound(
                    f"no rank list for {country}/{platform.value}/"
                    f"{metric.value}/{month}"
                )
            head = ranked.top(min(top, len(ranked)))
            return {
                "country": country,
                "platform": platform.value,
                "metric": metric.value,
                "month": str(month),
                "total_sites": len(ranked),
                "top": len(head),
                "sites": list(head.sites),
            }

        return self._cached(key, build)

    def site(
        self,
        site: str,
        *,
        platform: Platform | str | None = None,
        metric: Metric | str | None = None,
        month: Month | str | None = None,
    ) -> bytes:
        """One site's rank in every country of a (platform, metric, month)."""
        return self._instrumented(
            "site", lambda: self._site(site, platform, metric, month)
        )

    def _site(self, site, platform, metric, month) -> bytes:
        if not site:
            raise BadRequest("site must be non-empty")
        platform = self._platform(platform)
        metric = self._metric(metric)
        month = self._month(month)
        key = ("site", site, platform.value, metric.value, str(month))

        def build() -> dict[str, object]:
            ranks: dict[str, int | None] = {}
            best: tuple[int, str] | None = None
            for country in self.dataset.countries:
                ranked = self.dataset.get_or_none(country, platform, metric, month)
                rank = ranked.rank_of(site) if ranked is not None else None
                ranks[country] = rank
                if rank is not None and (best is None or rank < best[0]):
                    best = (rank, country)
            present = sum(1 for r in ranks.values() if r is not None)
            if present == 0:
                raise NotFound(
                    f"site {site!r} is not ranked in any country for "
                    f"{platform.value}/{metric.value}/{month}"
                )
            return {
                "site": site,
                "platform": platform.value,
                "metric": metric.value,
                "month": str(month),
                "ranks": ranks,
                "countries_ranked": present,
                "best": {"country": best[1], "rank": best[0]},
            }

        return self._cached(key, build)

    def distribution(
        self,
        *,
        platform: Platform | str | None = None,
        metric: Metric | str | None = None,
    ) -> bytes:
        """The global cumulative traffic curve for a (platform, metric)."""
        return self._instrumented(
            "distribution", lambda: self._distribution(platform, metric)
        )

    def _distribution(self, platform, metric) -> bytes:
        platform = self._platform(platform)
        metric = self._metric(metric)
        key = ("distribution", platform.value, metric.value)

        def build() -> dict[str, object]:
            dist = self.dataset.distribution(platform, metric)
            return {
                "platform": platform.value,
                "metric": metric.value,
                "total_sites": dist.total_sites,
                "anchors": [[rank, share] for rank, share in dist.anchors],
                "cumulative_share": {
                    str(rank): round(dist.cumulative_share(rank), 6)
                    for rank in _CURVE_SAMPLE_RANKS
                    if rank <= dist.total_sites
                },
            }

        return self._cached(key, build)

    def analysis(self, task: str) -> bytes:
        """One pipeline task's artifact, served warm when possible."""
        return self._instrumented("analysis", lambda: self._analysis(task))

    def _analysis(self, name: str) -> bytes:
        task = self._task(name)
        key = ("analysis", name)

        def build() -> dict[str, object]:
            self.metrics.add("pipeline_runs")
            report = self.runner.run(self.ctx, [name])
            self.metrics.add("pipeline_executed", report.executed)
            self.metrics.add("pipeline_cached", report.cached)
            record = report.records[name]
            if record.status is TaskStatus.FAILED:
                raise ServiceError(f"task {name!r} failed: {record.error}")
            if record.status is TaskStatus.SKIPPED:
                raise Unavailable(
                    f"task {name!r} unavailable: {record.error}"
                )
            return {
                "task": name,
                "title": task.title or name,
                "section": task.section,
                "key": record.key,
                "result": report.results[name],
            }

        return self._cached(key, build)

    def analyses(self) -> bytes:
        """The task catalogue: names, sections, dependencies."""
        return self._instrumented("analyses", lambda: self._analyses())

    def _analyses(self) -> bytes:
        def build() -> dict[str, object]:
            return {
                "tasks": [
                    {
                        "name": task.name,
                        "title": task.title or task.name,
                        "section": task.section,
                        "deps": list(task.deps),
                    }
                    for task in sorted(self.registry, key=lambda t: t.name)
                ]
            }

        return self._cached(("analyses",), build)

    def healthz(self) -> bytes:
        """Liveness + dataset identity; never cached."""
        return self._instrumented("healthz", lambda: self._healthz())

    def _healthz(self) -> bytes:
        from .. import __version__

        payload: dict[str, object] = {
            "status": "ok",
            "version": __version__,
            "storage": self.dataset.storage,
            "fingerprint": self.ctx.fingerprint,
            "countries": len(self.dataset.countries),
            "platforms": [p.value for p in self.dataset.platforms],
            "metrics": [m.value for m in self.dataset.metrics],
            "months": [str(m) for m in self.dataset.months],
            "lists": len(self.dataset),
            "tasks": len(self.registry),
        }
        pending = getattr(self.dataset, "pending", None)
        if pending is not None:
            payload["pending_slices"] = pending
        return render_payload(payload)

    def metrics_payload(self) -> bytes:
        """The ``/v1/metrics`` body: counters, histograms, cache stats."""
        return self._instrumented("metrics", lambda: self._metrics_payload())

    def _metrics_payload(self) -> bytes:
        return render_payload(self.metrics_snapshot())

    def metrics_snapshot(self) -> dict[str, object]:
        """The ``/v1/metrics`` dict, *without* observing a request.

        The fleet layer merges these per-worker snapshots into one
        fleet-wide view (see :mod:`repro.fleet.metrics`); the HTTP
        handler that serves the merged payload observes the request
        itself, so the split keeps the exactly-once accounting intact.
        """
        snapshot = self.metrics.snapshot(cache=self.cache.snapshot())
        snapshot["trace"] = get_tracer().snapshot()
        if self.store is not None:
            snapshot["artifact_store"] = {
                "root": str(self.store.root),
                "hits": self.store.stats.hits,
                "misses": self.store.stats.misses,
                "writes": self.store.stats.writes,
            }
        return snapshot

    def __repr__(self) -> str:
        return (
            f"QueryService(fingerprint={self.ctx.fingerprint}, "
            f"lists={len(self.dataset)}, cache={self.cache!r})"
        )


__all__ = [
    "DEFAULT_TOP",
    "QueryService",
    "render_payload",
]
