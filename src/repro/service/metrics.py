"""Request counters and latency histograms for the serving layer.

One :class:`ServiceMetrics` instance lives on each
:class:`~repro.service.query.QueryService` and is shared by every
server thread, so all mutation happens behind one lock.  The snapshot
is plain JSON data — it *is* the ``/v1/metrics`` payload body — and
deliberately contains only monotonic counters plus fixed-bound latency
buckets, so scraping it is cheap and diffable.

The serving invariant is **every response is observed exactly once**:
requests that reach a :class:`~repro.service.query.QueryService` method
are observed there (so direct in-process callers are covered too), and
the HTTP handler observes everything else — index hits, handler-level
4xx/5xx, 405s.  :func:`mark_observed` / :func:`was_observed` carry the
"already counted" bit across the exception path so the two layers never
double-count one request.
"""

from __future__ import annotations

import threading
from typing import Mapping

_OBSERVED_FLAG = "_service_metrics_observed"


def mark_observed(exc: BaseException) -> None:
    """Tag ``exc`` as already counted by :meth:`ServiceMetrics.observe`."""
    try:
        setattr(exc, _OBSERVED_FLAG, True)
    except AttributeError:  # pragma: no cover - slotted exception
        pass


def was_observed(exc: BaseException) -> bool:
    """Whether ``exc`` was already counted (see :func:`mark_observed`)."""
    return bool(getattr(exc, _OBSERVED_FLAG, False))

#: Fixed latency bucket upper bounds, in milliseconds; an implicit
#: +inf bucket catches the tail.
LATENCY_BUCKETS_MS: tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram (not thread-safe by itself)."""

    def __init__(self, bounds_ms: tuple[float, ...] = LATENCY_BUCKETS_MS) -> None:
        self.bounds_ms = bounds_ms
        self.counts = [0] * (len(bounds_ms) + 1)
        self.count = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, seconds: float) -> None:
        ms = seconds * 1000.0
        self.count += 1
        self.sum_ms += ms
        self.max_ms = max(self.max_ms, ms)
        for i, bound in enumerate(self.bounds_ms):
            if ms <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def snapshot(self) -> dict[str, object]:
        buckets = {
            f"le_{bound:g}ms": self.counts[i]
            for i, bound in enumerate(self.bounds_ms)
        }
        buckets["gt_%gms" % self.bounds_ms[-1]] = self.counts[-1]
        return {
            "count": self.count,
            "sum_ms": round(self.sum_ms, 3),
            "max_ms": round(self.max_ms, 3),
            "buckets": buckets,
        }


class EndpointStats:
    """Per-endpoint request/error counters plus a latency histogram."""

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.latency = LatencyHistogram()

    def observe(self, seconds: float, *, error: bool = False) -> None:
        self.requests += 1
        if error:
            self.errors += 1
        self.latency.observe(seconds)

    def snapshot(self) -> dict[str, object]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "latency": self.latency.snapshot(),
        }


class ServiceMetrics:
    """Thread-safe metrics registry for one service instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: dict[str, EndpointStats] = {}
        self._counters: dict[str, int] = {}

    def observe(self, endpoint: str, seconds: float, *, error: bool = False) -> None:
        """Record one request against ``endpoint``."""
        with self._lock:
            stats = self._endpoints.get(endpoint)
            if stats is None:
                stats = self._endpoints[endpoint] = EndpointStats()
            stats.observe(seconds, error=error)

    def add(self, counter: str, amount: int = 1) -> None:
        """Bump a named free-form counter (e.g. ``pipeline_runs``)."""
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def total_requests(self) -> int:
        """Observed requests across all endpoints (== responses sent)."""
        with self._lock:
            return sum(stats.requests for stats in self._endpoints.values())

    def snapshot(
        self, *, cache: Mapping[str, object] | None = None
    ) -> dict[str, object]:
        """The full metrics payload (sorted, JSON-shaped)."""
        with self._lock:
            endpoints = {
                name: stats.snapshot()
                for name, stats in sorted(self._endpoints.items())
            }
            counters = dict(sorted(self._counters.items()))
            total = sum(stats.requests for stats in self._endpoints.values())
        out: dict[str, object] = {
            "endpoints": endpoints,
            "counters": counters,
            "requests_total": total,
        }
        if cache is not None:
            out["cache"] = dict(cache)
        return out
