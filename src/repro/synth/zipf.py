"""Zipf–Mandelbrot utilities for heavy-tailed popularity modelling.

Web traffic per rank is approximately Zipfian, but the paper's measured
concentration curve (Figure 1) is steeper at the head than any single
power law — which is why :class:`repro.core.distribution.TrafficDistribution`
interpolates measured anchors instead.  This module provides the pure
power-law machinery used by ablation benchmarks (how wrong would a
plain-Zipf traffic model be?) and by property tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ZipfMandelbrot:
    """f(r) ∝ 1 / (r + q)^s over ranks 1..n."""

    s: float
    q: float = 0.0
    n: int = 1_000_000

    def __post_init__(self) -> None:
        if self.s <= 0:
            raise ValueError("exponent s must be positive")
        if self.q < 0:
            raise ValueError("shift q must be non-negative")
        if self.n < 1:
            raise ValueError("n must be positive")

    def shares(self, upto: int | None = None) -> np.ndarray:
        """Normalised per-rank shares for ranks 1..(upto or n).

        Normalisation is over the full support 1..n, so a prefix's sum is
        the cumulative share of the head.
        """
        upto = self.n if upto is None else min(upto, self.n)
        if upto < 1:
            raise ValueError("upto must be >= 1")
        ranks = np.arange(1, upto + 1, dtype=float)
        raw = 1.0 / np.power(ranks + self.q, self.s)
        return raw / self._normaliser()

    def cumulative_share(self, rank: int) -> float:
        """Share of total mass captured by the top ``rank`` items."""
        if rank < 1:
            raise ValueError("rank must be >= 1")
        return float(self.shares(min(rank, self.n)).sum())

    def _normaliser(self) -> float:
        # Exact sum for moderate n; Euler–Maclaurin tail for large n so we
        # never materialise a million-element array just to normalise.
        cutoff = 100_000
        head = min(self.n, cutoff)
        ranks = np.arange(1, head + 1, dtype=float)
        total = float(np.sum(1.0 / np.power(ranks + self.q, self.s)))
        if self.n > cutoff:
            a, b = cutoff + 0.5, self.n + 0.5
            if abs(self.s - 1.0) < 1e-12:
                total += float(np.log((b + self.q) / (a + self.q)))
            else:
                total += float(
                    ((a + self.q) ** (1.0 - self.s) - (b + self.q) ** (1.0 - self.s))
                    / (self.s - 1.0)
                )
        return total


def fit_zipf_exponent(shares: np.ndarray, skip_head: int = 0) -> float:
    """Least-squares slope of log(share) vs log(rank): the Zipf exponent.

    ``skip_head`` drops the first ranks, where real traffic deviates most
    from a power law.
    """
    arr = np.asarray(shares, dtype=float)
    if arr.ndim != 1 or len(arr) - skip_head < 2:
        raise ValueError("need at least two usable shares")
    ranks = np.arange(1, len(arr) + 1, dtype=float)[skip_head:]
    vals = arr[skip_head:]
    if np.any(vals <= 0):
        raise ValueError("shares must be positive to fit in log space")
    slope, _ = np.polyfit(np.log(ranks), np.log(vals), 1)
    return float(-slope)
