"""Simulation of Chrome's privacy pipeline (Section 3.1).

Three safeguards shape the dataset the paper received, and all three are
modelled so the downstream code paths exist and can be exercised:

1. **Client thresholding** — "the dataset excludes any websites with
   fewer visits from unique clients than a set threshold"; smaller
   countries therefore have fewer than 10K sites.  We model per-site
   unique-client counts as the country's install base times the site's
   traffic share and truncate lists at the threshold.

2. **Time-on-page down-sampling** — "each page foreground event has only
   approximately a 0.35 % chance of being uploaded", adding sampling
   noise to time-based ranks.  The generator injects extra score noise
   for the time metric whose magnitude follows from the sampling rate.

3. **Non-public domain exclusion** — domains not linked from public
   websites are excluded; the universe flags a configurable fraction of
   sites as non-public and the generator drops them.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from ..core.distribution import TrafficDistribution
from ..core.rankedlist import RankedList


#: Chrome's approximate foreground-event upload probability.
TIME_SAMPLING_RATE: float = 0.0035


@dataclass(frozen=True)
class PrivacyConfig:
    """Knobs for the simulated privacy pipeline."""

    client_threshold: int = 50
    time_sampling_rate: float = TIME_SAMPLING_RATE
    exclude_non_public: bool = True

    def __post_init__(self) -> None:
        if self.client_threshold < 0:
            raise ValueError("client_threshold must be non-negative")
        if not 0.0 < self.time_sampling_rate <= 1.0:
            raise ValueError("time_sampling_rate must be in (0, 1]")


def unique_clients_at_rank(
    rank: int,
    install_base: float,
    distribution: TrafficDistribution,
    visits_per_client: float = 40.0,
) -> float:
    """Expected unique clients visiting the site at ``rank`` in a month.

    A site receiving share ``s`` of page loads from an install base of
    ``B`` clients making ``v`` loads each sees about ``B·(1 − e^{−s·v})``
    unique clients (Poissonised visits).
    """
    if rank < 1:
        raise ValueError("rank must be >= 1")
    if install_base <= 0 or visits_per_client <= 0:
        raise ValueError("install_base and visits_per_client must be positive")
    share = distribution.share_of_rank(rank)
    return install_base * (1.0 - math.exp(-share * visits_per_client))


def threshold_rank(
    install_base: float,
    distribution: TrafficDistribution,
    threshold: int,
    visits_per_client: float = 40.0,
    max_rank: int = 1_000_000,
    share_fn=None,
) -> int:
    """The deepest rank whose site still clears the client threshold.

    Unique-client counts fall monotonically with rank (the distribution's
    per-rank share does), so binary search applies.

    ``share_fn`` optionally overrides ``distribution.share_of_rank`` for
    the probes — the batched generation path passes a memoised lookup so
    the searches of many countries over one distribution share their
    probe evaluations.  Any override must return bitwise-identical
    values to ``share_of_rank``; the probe arithmetic here is otherwise
    exactly :func:`unique_clients_at_rank`.
    """
    if threshold <= 0:
        return max_rank
    if install_base <= 0 or visits_per_client <= 0:
        raise ValueError("install_base and visits_per_client must be positive")
    if share_fn is None:
        share_fn = distribution.share_of_rank

    def clients(rank: int) -> float:
        return install_base * (1.0 - math.exp(-share_fn(rank) * visits_per_client))

    if clients(1) < threshold:
        return 0
    lo, hi = 1, max_rank
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if clients(mid) >= threshold:
            lo = mid
        else:
            hi = mid - 1
    return lo


def apply_threshold(
    ranked: RankedList,
    install_base: float,
    distribution: TrafficDistribution,
    config: PrivacyConfig,
    visits_per_client: float = 40.0,
) -> RankedList:
    """Truncate a rank list at the privacy threshold."""
    cutoff = threshold_rank(
        install_base, distribution, config.client_threshold,
        visits_per_client, max_rank=len(ranked),
    )
    return ranked.top(cutoff)


def time_sampling_noise_sigma(rate: float, typical_events: float = 20_000.0) -> float:
    """Log-score noise implied by down-sampling time-on-page events.

    With ``n = rate × typical_events`` sampled events per (site, month),
    the relative error of the time estimate is ~1/√n; for small relative
    errors this equals the standard deviation of the log estimate.
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError("rate must be in (0, 1]")
    if typical_events <= 0:
        raise ValueError("typical_events must be positive")
    sampled = rate * typical_events
    return 1.0 / math.sqrt(max(sampled, 1e-9))
