"""Synthetic Chrome-telemetry substrate (see DESIGN.md, substitution table)."""

from .calibration import AnchorCheck, CalibrationReport, calibration_report
from .domains import (
    COUNTRY_SUFFIX,
    endemic_domain,
    global_domain,
    multinational_domain,
    pseudoword,
    unique_labels,
)
from .generator import INSTALL_BASE_UNIT, GeneratorConfig, TelemetryGenerator
from .privacy import (
    TIME_SAMPLING_RATE,
    PrivacyConfig,
    apply_threshold,
    threshold_rank,
    time_sampling_noise_sigma,
    unique_clients_at_rank,
)
from .traffic import (
    country_distribution,
    country_top1_share,
    global_distribution,
    global_distributions,
)
from .universe import (
    NAMED_DOMAIN_OVERRIDES,
    Universe,
    UniverseConfig,
    build_universe,
)
from .zipf import ZipfMandelbrot, fit_zipf_exponent

__all__ = [
    "AnchorCheck",
    "COUNTRY_SUFFIX",
    "CalibrationReport",
    "calibration_report",
    "GeneratorConfig",
    "INSTALL_BASE_UNIT",
    "NAMED_DOMAIN_OVERRIDES",
    "PrivacyConfig",
    "TIME_SAMPLING_RATE",
    "TelemetryGenerator",
    "Universe",
    "UniverseConfig",
    "ZipfMandelbrot",
    "apply_threshold",
    "build_universe",
    "country_distribution",
    "country_top1_share",
    "endemic_domain",
    "fit_zipf_exponent",
    "global_distribution",
    "global_distributions",
    "global_domain",
    "multinational_domain",
    "pseudoword",
    "threshold_rank",
    "time_sampling_noise_sigma",
    "unique_clients_at_rank",
    "unique_labels",
]
