"""World self-check: verify the generated world against paper anchors.

A maintainer changing a profile or site strength needs to know what
broke.  ``calibration_report`` regenerates the cheap anchor statistics
(the #1 sites, metric/month overlaps, exclusivity, the composition
pluralities) and compares each to the paper's value, returning a
machine-checkable report — the benchmarks assert the details, this is
the fast smoke layer.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..core.types import Metric, Month, Platform, REFERENCE_MONTH
from ..stats.descriptive import median
from ..stats.spearman import spearman_from_lists
from .generator import TelemetryGenerator

#: Countries used for the overlap medians (a spread of regions; the full
#: 45 would triple the runtime without moving the medians much).
PROBE_COUNTRIES = ("US", "BR", "JP", "FR", "NG", "PL", "MX", "KR")


@dataclass(frozen=True)
class AnchorCheck:
    """One calibration anchor: paper value vs measured, with a band."""

    name: str
    paper: float
    measured: float
    lo: float
    hi: float

    @property
    def ok(self) -> bool:
        return self.lo <= self.measured <= self.hi

    def __str__(self) -> str:
        flag = "ok " if self.ok else "OFF"
        return (
            f"[{flag}] {self.name}: paper={self.paper:.3f} "
            f"measured={self.measured:.3f} band=[{self.lo:.3f}, {self.hi:.3f}]"
        )


@dataclass(frozen=True)
class CalibrationReport:
    """All anchor checks for one generator."""

    checks: tuple[AnchorCheck, ...]

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def failures(self) -> tuple[AnchorCheck, ...]:
        return tuple(c for c in self.checks if not c.ok)

    def __str__(self) -> str:
        return "\n".join(str(c) for c in self.checks)


def calibration_report(
    generator: TelemetryGenerator,
    countries: tuple[str, ...] | None = None,
) -> CalibrationReport:
    """Measure the cheap anchors on a generator and band-check them.

    Bands are deliberately loose on a small universe; on the full
    configuration they should all hold comfortably.
    """
    from ..world.countries import COUNTRY_CODES

    all_countries = tuple(countries) if countries else COUNTRY_CODES
    probe = tuple(c for c in PROBE_COUNTRIES if c in all_countries) or all_countries

    loads = {
        c: generator.rank_list(c, Platform.WINDOWS, Metric.PAGE_LOADS)
        for c in all_countries
    }

    # --- #1 sites -------------------------------------------------------------
    google = generator.universe.canonical_of("google")
    naver = generator.universe.canonical_of("naver")
    youtube = generator.universe.canonical_of("youtube")
    top1 = Counter(l[1] for l in loads.values())
    google_share = top1.get(google, 0) / len(all_countries)
    naver_tops_kr = 1.0 if ("KR" not in loads or loads["KR"][1] == naver) else 0.0
    time_lists = {
        c: generator.rank_list(c, Platform.WINDOWS, Metric.TIME_ON_PAGE)
        for c in probe
    }
    youtube_time = sum(1 for l in time_lists.values() if l[1] == youtube) / len(probe)

    # --- overlaps -------------------------------------------------------------
    desktop_i, desktop_rho, mobile_i = [], [], []
    for c in probe:
        dl, dt = loads[c], time_lists[c]
        al = generator.rank_list(c, Platform.ANDROID, Metric.PAGE_LOADS)
        at = generator.rank_list(c, Platform.ANDROID, Metric.TIME_ON_PAGE)
        desktop_i.append(dl.percent_intersection(dt))
        desktop_rho.append(spearman_from_lists(dl, dt))
        mobile_i.append(al.percent_intersection(at))
    jan = {
        c: generator.rank_list(c, Platform.WINDOWS, Metric.PAGE_LOADS, Month(2022, 1))
        for c in probe
    }
    month_i = [loads[c].percent_intersection(jan[c]) for c in probe]

    # --- exclusivity ----------------------------------------------------------
    from ..analysis.endemicity import exclusivity_fraction

    head = max(100, generator.config.list_size // 10)
    exclusive, _ = exclusivity_fraction(loads, head_rank=head)

    full_scale = generator.config.list_size >= 10_000
    slack = 1.0 if full_scale else 1.8

    def band(paper: float, tolerance: float) -> tuple[float, float]:
        return paper - tolerance * slack, paper + tolerance * slack

    checks = (
        AnchorCheck("google #1 by loads (fraction of countries)",
                    44 / 45, google_share, 0.85, 1.0),
        AnchorCheck("naver tops KR by loads", 1.0, naver_tops_kr, 1.0, 1.0),
        AnchorCheck("youtube #1 by time (probe fraction)",
                    40 / 45, youtube_time, 0.5, 1.0),
        AnchorCheck("desktop loads/time intersection", 0.65,
                    median(desktop_i), *band(0.65, 0.08)),
        AnchorCheck("desktop loads/time Spearman", 0.65,
                    median(desktop_rho), *band(0.65, 0.15)),
        AnchorCheck("mobile loads/time intersection", 0.74,
                    median(mobile_i), *band(0.74, 0.08)),
        AnchorCheck("adjacent-month intersection", 0.88,
                    median(month_i), *band(0.88, 0.07)),
        AnchorCheck("top-1K exclusivity", 0.539, exclusive, *band(0.539, 0.10)),
    )
    return CalibrationReport(checks)
