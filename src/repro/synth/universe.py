"""Instantiating the synthetic website universe.

A :class:`Universe` is the fully materialised ground truth the
generator scores: every named anchor, every national champion, and the
procedurally generated rank-and-file sites (global, regional/language,
and per-country endemic pools), each with a category, base strength,
platform/metric/seasonal multipliers and a canonical identity.

Pool composition encodes Section 5.2's finding that global and national
site populations have different category mixes: the global pool samples
categories proportionally to ``prevalence × global_fraction`` while the
endemic pools use ``prevalence × (1 − global_fraction)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.errors import GenerationError
from ..world.categories_data import ALL_CATEGORIES
from ..world.countries import COUNTRIES, by_region_group
from ..world.profiles import profile_for
from ..world.sites import CHAMPION_RULES, NAMED_SITES, Archetype, resolve_scope
from .domains import (
    COUNTRY_SUFFIX,
    endemic_domain,
    global_domain,
    multinational_domain,
    neighbor_domain,
    unique_labels,
)

#: Real-world domains for named sites whose canonical identity is not
#: simply ``<name>.com``.
NAMED_DOMAIN_OVERRIDES: dict[str, str] = {
    "wikipedia": "wikipedia.org",
    "twitch": "twitch.tv",
    "ampproject": "ampproject.org",
    "telegram": "telegram.org",
    "pixiv": "pixiv.net",
    "craigslist": "craigslist.org",
    "arca-live": "arca.live",
    "noonoo-tv": "noonoo.tv",
    "namu-wiki": "namu.wiki",
    "ok": "ok.ru",
    "nicovideo": "nicovideo.jp",
    "vnexpress": "vnexpress.net",
    "2dehands": "2dehands.be",
    "leboncoin": "leboncoin.fr",
    "allegro": "allegro.pl",
    "marktplaats": "marktplaats.nl",
    "sahibinden": "sahibinden.com.tr",
    "trendyol": "trendyol.com.tr",
    "kuleuven": "kuleuven.be",
    "ouedkniss": "ouedkniss.dz",
    "hespress": "hespress.co.ma",
    "yapo": "yapo.cl",
    "globo": "globo.com.br",
    "uol": "uol.com.br",
    "bbc": "bbc.co.uk",
    "tvnz": "tvnz.co.nz",
    "cricbuzz": "cricbuzz.co.in",
    "dcinside": "dcinside.co.kr",
    "fmkorea": "fmkorea.co.kr",
    "inven": "inven.co.kr",
    "nexon": "nexon.co.kr",
    "wavve": "wavve.co.kr",
    "afreecatv": "afreecatv.co.kr",
    "daum": "daum.co.kr",
    "naver": "naver.com",
    "rakuten": "rakuten.co.jp",
    "pixnet": "pixnet.com.tw",
    "ixdzs": "ixdzs.com.tw",
    "uukanshu": "uukanshu.com.tw",
    "czbooks": "czbooks.com.tw",
    "zalo": "zalo.com.vn",
    "sex333": "sex333.com.vn",
    "avito": "avito.ru",
    "ozon": "ozon.ru",
    "youm7": "youm7.com.eg",
    "marca": "marca.es",
}

_ARCH_CODE = {Archetype.GLOBAL: 0, Archetype.REGIONAL: 1, Archetype.ENDEMIC: 2}


@dataclass(frozen=True)
class UniverseConfig:
    """Pool sizes and composition knobs for universe construction."""

    seed: int = 2022
    global_pool: int = 600
    regional_pool: int = 220          # per region group
    language_pool: int = 150          # per multi-country language
    endemic_pool: int = 14_000        # per country
    #: Few-country regional sites: each lives in its primary country
    #: plus 1–3 related (same group / shared language) countries.  This
    #: tier is what makes Section 5.1's arithmetic work: ~46 % of the
    #: sites ranking top-1K somewhere also show up in another country's
    #: top-10K, and most of those are exactly such near-neighbour sites.
    neighbor_pool: int = 10_000       # per country
    #: Strong mid-tier sites per country: the ranks ~30-150 zone that
    #: neither the curated anchors (above it) nor the capped procedural
    #: mass (below it) can populate.  Category mix follows
    #: prevalence × exp(mu) × head_boost, which is how Figure 3's
    #: mid-rank composition (News & Media peaking near the top-50) is
    #: planted.  ~60 % endemic, 40 % shared with 1-2 related countries.
    strong_pool: int = 80             # per country
    nonpublic_fraction: float = 0.01  # Section 3.1: non-public domains excluded

    def __post_init__(self) -> None:
        for name in ("global_pool", "regional_pool", "language_pool",
                     "endemic_pool", "neighbor_pool", "strong_pool"):
            if getattr(self, name) < 0:
                raise GenerationError(f"{name} must be non-negative")
        if not 0.0 <= self.nonpublic_fraction < 1.0:
            raise GenerationError("nonpublic_fraction must be in [0, 1)")

    @classmethod
    def small(cls, seed: int = 2022) -> "UniverseConfig":
        """A laptop-test-sized universe (pairs with list_size ≈ 1500)."""
        return cls(
            seed=seed,
            global_pool=220,
            regional_pool=70,
            language_pool=50,
            endemic_pool=1_500,
            neighbor_pool=1_100,
            strong_pool=40,
        )


@dataclass
class Universe:
    """The materialised site universe (see module docstring)."""

    config: UniverseConfig
    canonical: list[str]              # canonical identity per site
    labels: list[str]                 # registrable label per site
    category_id: np.ndarray           # int16 index into categories
    categories: tuple[str, ...]       # category names, index-aligned
    log_strength: np.ndarray
    log_mobile: np.ndarray
    log_time: np.ndarray
    log_december: np.ndarray
    noise_scale: np.ndarray
    archetype: np.ndarray             # int8: 0 global / 1 regional / 2 endemic
    home: list[str | None]            # country code for endemic sites
    multi_cctld: np.ndarray           # bool
    has_android_app: np.ndarray       # bool
    non_public: np.ndarray            # bool
    tags: dict[int, tuple[str, ...]]  # uid -> descriptive tags (named/champions)
    named_uid: dict[str, int]         # named-site name -> uid
    country_candidates: dict[str, np.ndarray] = field(default_factory=dict)
    country_boost: dict[str, np.ndarray] = field(default_factory=dict)

    # -- convenience -----------------------------------------------------------------

    @property
    def n_sites(self) -> int:
        return len(self.canonical)

    def category_of(self, uid: int) -> str:
        return self.categories[int(self.category_id[uid])]

    def canonical_of(self, name: str) -> str:
        """Canonical identity of a named site ("naver" → "naver.com")."""
        return self.canonical[self.named_uid[name]]

    def category_by_canonical(self) -> dict[str, str]:
        """canonical identity → category name, for the whole universe."""
        return {
            self.canonical[uid]: self.categories[int(self.category_id[uid])]
            for uid in range(self.n_sites)
        }

    def domain_in_country(self, uid: int, country: str) -> str:
        """The domain string this site shows in ``country``'s telemetry."""
        if self.multi_cctld[uid]:
            return multinational_domain(self.labels[uid], country)
        return self.canonical[uid]

    def candidates(self, country: str) -> np.ndarray:
        try:
            return self.country_candidates[country]
        except KeyError:
            raise GenerationError(f"no candidate pool for country {country!r}") from None


def _sample_categories(
    rng: np.random.Generator,
    count: int,
    weight_fn,
) -> np.ndarray:
    """Sample category ids for ``count`` procedural sites."""
    names = [spec.name for spec in ALL_CATEGORIES]
    weights = np.array([max(weight_fn(profile_for(n)), 0.0) for n in names])
    total = weights.sum()
    if total <= 0:
        raise GenerationError("category weights sum to zero")
    return rng.choice(len(names), size=count, p=weights / total)


#: Hard ceiling on procedural site strength.  Named anchors start at
#: ~5.7 and national champions at 5.5; rank-and-file sites must stay
#: below the curated head, however lucky their log-normal draw (24K
#: draws per country reach 4σ tails otherwise).
PROCEDURAL_STRENGTH_CAP: float = 5.30


def _strengths_for(rng: np.random.Generator, category_ids: np.ndarray,
                   categories: tuple[str, ...]) -> np.ndarray:
    """Log-normal base strengths drawn per category profile, capped."""
    mus = np.array([profile_for(c).mu for c in categories])
    sigmas = np.array([profile_for(c).sigma for c in categories])
    z = rng.standard_normal(len(category_ids))
    raw = mus[category_ids] + sigmas[category_ids] * z
    per_cat_cap = mus[category_ids] + 2.75 * sigmas[category_ids]
    return np.minimum(raw, np.minimum(per_cat_cap, PROCEDURAL_STRENGTH_CAP))


#: Universes are deterministic functions of their config and expensive to
#: build (~20 s at full scale), so they are memoised for the process
#: lifetime.  Treat a built Universe as immutable.
_UNIVERSE_CACHE: dict[UniverseConfig, Universe] = {}


def build_universe(config: UniverseConfig | None = None) -> Universe:
    """Materialise the full universe from the world ground truth (memoised)."""
    config = config or UniverseConfig()
    cached = _UNIVERSE_CACHE.get(config)
    if cached is not None:
        return cached
    universe = _build_universe_uncached(config)
    _UNIVERSE_CACHE[config] = universe
    return universe


def _build_universe_uncached(config: UniverseConfig) -> Universe:
    rng = np.random.default_rng(np.random.SeedSequence([config.seed, 0xA11CE]))
    categories = tuple(spec.name for spec in ALL_CATEGORIES)
    cat_index = {name: i for i, name in enumerate(categories)}

    canonical: list[str] = []
    labels: list[str] = []
    cat_ids: list[int] = []
    strengths: list[float] = []
    log_mobile: list[float] = []
    log_time: list[float] = []
    log_december: list[float] = []
    noise_scale: list[float] = []
    archetype: list[int] = []
    home: list[str | None] = []
    multi: list[bool] = []
    has_app: list[bool] = []
    tags: dict[int, tuple[str, ...]] = {}
    named_uid: dict[str, int] = {}
    scope_by_uid: dict[int, tuple[str, ...]] = {}

    taken_labels: set[str] = set()

    def _append(
        label: str,
        canon: str,
        category: str,
        strength: float,
        lm: float,
        lt: float,
        ld: float,
        ns: float,
        arch: Archetype,
        home_country: str | None,
        is_multi: bool,
        app: bool,
        site_tags: tuple[str, ...] = (),
    ) -> int:
        uid = len(canonical)
        canonical.append(canon)
        labels.append(label)
        cat_ids.append(cat_index[category])
        strengths.append(strength)
        log_mobile.append(lm)
        log_time.append(lt)
        log_december.append(ld)
        noise_scale.append(ns)
        archetype.append(_ARCH_CODE[arch])
        home.append(home_country)
        multi.append(is_multi)
        has_app.append(app)
        if site_tags:
            tags[uid] = site_tags
        return uid

    # ---- named anchors ----------------------------------------------------------
    for site in NAMED_SITES:
        taken_labels.add(site.name)
        if site.multi_cctld:
            canon = site.name
        else:
            canon = NAMED_DOMAIN_OVERRIDES.get(site.name, f"{site.name}.com")
        scope = resolve_scope(site.scope)
        arch = site.archetype
        uid = _append(
            site.name, canon, site.category, site.log_strength,
            float(np.log(site.mobile_mult)), float(np.log(site.time_mult)),
            float(np.log(site.december_mult)), site.noise_scale, arch,
            scope[0] if arch is Archetype.ENDEMIC else None,
            site.multi_cctld, site.has_android_app, site.tags,
        )
        named_uid[site.name] = uid
        scope_by_uid[uid] = scope

    # ---- national champions -----------------------------------------------------
    for rule in CHAMPION_RULES:
        lo, hi = rule.log_strength_range
        for country in rule.countries:
            label = unique_labels(rng, 1, taken_labels)[0]
            suffix = COUNTRY_SUFFIX[country]
            canon = f"{label}.{suffix}"
            strength = float(rng.uniform(lo, hi))
            uid = _append(
                label, canon, rule.category, strength,
                float(np.log(rule.mobile_mult)),
                float(np.log(rule.time_mult)),
                float(np.log(rule.december_mult)),
                0.30, Archetype.ENDEMIC, country, False, rule.has_app,
                (rule.tag, "champion"),
            )
            scope_by_uid[uid] = (country,)

    # ---- procedural pools ----------------------------------------------------------
    def _emit_pool(
        count: int,
        weight_fn,
        arch: Archetype,
        home_key: str | None,
        domain_fn,
        store_home: bool = False,
    ) -> list[int]:
        if count == 0:
            return []
        ids = _sample_categories(rng, count, weight_fn)
        strength_arr = _strengths_for(rng, ids, categories)
        # Popular sites have stable ranks (Section 4.5: "top sites are
        # typically stable between months"), so noise shrinks with
        # strength: rank-and-file sites churn, the procedural head barely
        # moves and can never overtake the curated anchors.
        noise_arr = np.clip(1.0 - 0.18 * (strength_arr - 1.0), 0.30, 1.0)
        pool_labels = unique_labels(rng, count, taken_labels)
        uids = []
        for i in range(count):
            category = categories[int(ids[i])]
            profile = profile_for(category)
            uid = _append(
                pool_labels[i], domain_fn(pool_labels[i]), category,
                float(strength_arr[i]),
                float(np.log(profile.mobile_mult)),
                float(np.log(profile.time_mult)),
                float(np.log(profile.december_mult)),
                float(noise_arr[i]), arch,
                home_key if (arch is Archetype.ENDEMIC or store_home) else None,
                False, False,
            )
            uids.append(uid)
        return uids

    global_uids = _emit_pool(
        config.global_pool,
        lambda p: p.prevalence * p.global_fraction,
        Archetype.GLOBAL, None,
        lambda lbl: global_domain(lbl, rng),
    )

    region_groups = by_region_group()
    regional_uids: dict[str, list[int]] = {}
    for group in sorted(region_groups):
        regional_uids[group] = _emit_pool(
            config.regional_pool,
            lambda p: p.prevalence * (1.0 - 0.5 * p.global_fraction),
            Archetype.REGIONAL, None,
            lambda lbl: global_domain(lbl, rng),
        )

    lang_speakers: dict[str, list[str]] = {}
    for country in COUNTRIES:
        for lang in country.languages:
            lang_speakers.setdefault(lang, []).append(country.code)
    multi_langs = sorted(l for l, cs in lang_speakers.items() if len(cs) >= 2)
    language_uids: dict[str, list[int]] = {}
    for lang in multi_langs:
        language_uids[lang] = _emit_pool(
            config.language_pool,
            lambda p: p.prevalence * (1.0 - 0.5 * p.global_fraction),
            Archetype.REGIONAL, None,
            lambda lbl: global_domain(lbl, rng),
        )

    endemic_uids: dict[str, list[int]] = {}
    for country in COUNTRIES:
        code = country.code
        endemic_uids[code] = _emit_pool(
            config.endemic_pool,
            lambda p: p.prevalence * (1.0 - p.global_fraction),
            Archetype.ENDEMIC, code,
            lambda lbl: endemic_domain(lbl, code, rng),
        )

    # Strong mid-tier sites (see UniverseConfig.strong_pool).
    import math as _math

    strong_membership: dict[str, list[int]] = {c.code: [] for c in COUNTRIES}
    related_map: dict[str, list[str]] = {}
    for country in COUNTRIES:
        related = {
            other.code
            for other in COUNTRIES
            if other.code != country.code
            and (other.region_group == country.region_group
                 or country.shares_language(other))
        }
        related_map[country.code] = sorted(related)
    for country in COUNTRIES:
        code = country.code
        n_strong = config.strong_pool
        if n_strong:
            ids = _sample_categories(
                rng, n_strong,
                lambda p: p.prevalence * _math.exp(p.mu) * p.head_boost,
            )
            strong_labels = unique_labels(rng, n_strong, taken_labels)
            shared_mask = rng.random(n_strong) < 0.40
            related = related_map[code]
            for i in range(n_strong):
                category = categories[int(ids[i])]
                profile = profile_for(category)
                strength = float(rng.uniform(5.35, 6.55))
                arch = (Archetype.REGIONAL
                        if shared_mask[i] and related else Archetype.ENDEMIC)
                uid = _append(
                    strong_labels[i],
                    neighbor_domain(strong_labels[i], code, rng),
                    category, strength,
                    float(np.log(profile.mobile_mult)),
                    float(np.log(profile.time_mult)),
                    float(np.log(profile.december_mult)),
                    0.30, arch, code, False, bool(rng.random() < 0.65),
                    ("strong",),
                )
                strong_membership[code].append(uid)
                if arch is Archetype.REGIONAL:
                    k = int(rng.integers(1, 3))
                    picks = rng.choice(len(related), size=min(k, len(related)),
                                       replace=False)
                    for idx in picks:
                        strong_membership[related[int(idx)]].append(uid)

    # Few-country neighbour sites: primary country plus 1-3 related ones.
    neighbor_membership: dict[str, list[int]] = {c.code: [] for c in COUNTRIES}
    for country in COUNTRIES:
        code = country.code
        uids = _emit_pool(
            config.neighbor_pool,
            lambda p: p.prevalence * (1.0 - p.global_fraction),
            Archetype.REGIONAL, code,
            lambda lbl: neighbor_domain(lbl, code, rng),
            store_home=True,
        )
        related = related_map[code]
        neighbor_membership[code].extend(uids)
        if related:
            extra_counts = rng.integers(1, 4, size=len(uids))
            for uid, k in zip(uids, extra_counts):
                picks = rng.choice(len(related), size=min(int(k), len(related)),
                                   replace=False)
                for idx in picks:
                    neighbor_membership[related[int(idx)]].append(uid)

    n = len(canonical)
    non_public = np.zeros(n, dtype=bool)
    if config.nonpublic_fraction > 0:
        # Only procedural sites can be non-public; named anchors and
        # champions are by definition prominent public sites.
        procedural_start = len(named_uid) + sum(len(r.countries) for r in CHAMPION_RULES)
        draw = rng.random(n - procedural_start) < config.nonpublic_fraction
        non_public[procedural_start:] = draw

    universe = Universe(
        config=config,
        canonical=canonical,
        labels=labels,
        category_id=np.asarray(cat_ids, dtype=np.int16),
        categories=categories,
        log_strength=np.asarray(strengths, dtype=np.float64),
        log_mobile=np.asarray(log_mobile, dtype=np.float64),
        log_time=np.asarray(log_time, dtype=np.float64),
        log_december=np.asarray(log_december, dtype=np.float64),
        noise_scale=np.asarray(noise_scale, dtype=np.float64),
        archetype=np.asarray(archetype, dtype=np.int8),
        home=home,
        multi_cctld=np.asarray(multi, dtype=bool),
        has_android_app=np.asarray(has_app, dtype=bool),
        non_public=non_public,
        tags=tags,
        named_uid=named_uid,
    )

    # ---- per-country candidate pools and named boosts ---------------------------------
    named_in_country: dict[str, list[int]] = {c.code: [] for c in COUNTRIES}
    for uid, scope in scope_by_uid.items():
        for code in scope:
            named_in_country[code].append(uid)

    boosts_by_name = {s.name: s.country_boosts for s in NAMED_SITES}
    for country in COUNTRIES:
        code = country.code
        pool: list[int] = list(named_in_country[code])
        pool.extend(global_uids)
        pool.extend(regional_uids[country.region_group])
        for lang in country.languages:
            pool.extend(language_uids.get(lang, []))
        pool.extend(endemic_uids[code])
        pool.extend(neighbor_membership[code])
        pool.extend(strong_membership[code])
        candidate = np.asarray(sorted(set(pool)), dtype=np.int64)
        boost = np.zeros(len(candidate), dtype=np.float64)
        position = {int(uid): i for i, uid in enumerate(candidate)}
        for name, uid in named_uid.items():
            delta = boosts_by_name.get(name, {}).get(code)
            if delta is not None and uid in position:
                boost[position[uid]] = delta
        universe.country_candidates[code] = candidate
        universe.country_boost[code] = boost

    return universe
