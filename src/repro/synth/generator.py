"""The telemetry generator: scores the universe into ranked lists.

This is the stand-in for Chrome's aggregation pipeline.  For every
requested (country, platform, metric, month) breakdown it computes a
log-score per candidate site and emits the top-N as a
:class:`~repro.core.rankedlist.RankedList`:

    log score =  base strength                      (site ground truth)
              +  named-site country boost           (e.g. Naver in KR)
              +  persistent country noise           ε(site, country)
              +  platform effect + platform noise   (mobile multiplier, η)
              +  metric effect + metric noise       (time multiplier, θ)
              +  month random walk                  (slow popularity drift)
              +  seasonal effect + transient noise  (December, sampling)

All noise components are drawn from deterministic streams keyed by
(seed, country, component), so any single breakdown can be regenerated
independently and identically — the property that lets benchmarks
generate only the slices they need.

Because most components are shared by *several* slices of a country's
breakdown grid (the platform noise by every metric × month, the month
walk by every platform × metric, the December mixture by both
platforms), :meth:`TelemetryGenerator.rank_lists_batch` scores a whole
per-country grid in one matrix pass: each deterministic component is
drawn exactly once into a keyed component cache and broadcast into the
columns that use it, preserving the serial path's per-element order of
additions so every column is byte-identical to
:meth:`TelemetryGenerator.rank_list` (asserted in
``tests/engine/test_batch_parity.py``).

Two structural choices are calibration-critical:

* **Mixture metric noise.**  Section 4.4 reports top-10K loads-vs-time
  intersection of only ~65 % *but* Spearman ≈ 0.65 within the
  intersection: lists disagree mostly about *which* sites appear, not
  about the order of the shared ones.  Diffuse Gaussian noise cannot
  produce that combination (it drags rank correlation down before the
  intersection); a mixture can — most sites get a small metric shift,
  a minority (``metric_shift_prob``) gets a large one and falls out of
  one list entirely.

* **Random-walk month drift.**  Month-over-month similarity must decay
  with month distance (Section 4.5 compares September against each
  later month), so the month effect is a cumulative sum of per-month
  innovations rather than independent draws.  December adds a
  *transient* seasonal term (category multipliers + extra noise) that
  reverts in January, which is exactly why December is dissimilar from
  both its neighbours while January and February remain the most
  similar pair.
"""

from __future__ import annotations

import hashlib
import json
import sys
import zlib
from dataclasses import asdict, dataclass, field, fields, replace
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..core.dataset import BrowsingDataset
from ..core.errors import GenerationError
from ..core.rankedlist import RankedList
from ..core.types import Breakdown, Metric, Month, Platform, REFERENCE_MONTH
from ..obs import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import NullTracer, Tracer
from ..world.countries import get_country
from .privacy import (
    PrivacyConfig,
    apply_threshold,
    threshold_rank,
    time_sampling_noise_sigma,
)
from .traffic import global_distributions
from .universe import Universe, UniverseConfig, build_universe

#: Nominal Chrome install base (opted-in clients) for web_scale = 1.0.
INSTALL_BASE_UNIT: float = 5_000_000.0

#: The month at which the popularity random walk is anchored (the first
#: month of the paper's study period).
WALK_ORIGIN: Month = Month(2021, 9)


@dataclass(frozen=True)
class GeneratorConfig:
    """All generation knobs, with paper-calibrated defaults."""

    seed: int = 2022
    universe: UniverseConfig | None = None
    privacy: PrivacyConfig = field(default_factory=PrivacyConfig)
    list_size: int = 10_000
    #: Persistent per-(site, country) appeal noise.
    country_sigma: float = 0.50
    #: Diffuse per-(site, country, platform) noise.
    platform_sigma: float = 0.55
    #: Diffuse per-(site, country) loads-vs-time noise: sets the Spearman
    #: correlation within the metric intersection (Section 4.4, ~0.65).
    metric_sigma: float = 0.12
    #: Metric *churn*: a fraction of sites is systematically favoured by
    #: one metric and crosses the top-N boundary — below-cutoff sites get
    #: an upward shift on the time ranking, above-cutoff sites a downward
    #: one.  This lowers the loads/time intersection without scrambling
    #: the order of the sites both lists keep.
    metric_churn_prob: float = 0.90
    metric_churn_lo: float = 1.2
    metric_churn_hi: float = 2.8
    #: Only sites within ±(band × list_size) ranks of the top-N cutoff
    #: are churn-eligible; the deep head is never displaced.
    metric_churn_band: float = 0.45
    #: Section 4.4: mobile lists agree more across metrics than desktop
    #: (74 % vs 65 % intersection) — less churn and less noise on mobile.
    mobile_metric_factor: float = 0.62
    #: Per-month random-walk innovation (slow drift).
    month_sigma: float = 0.28
    month_shift_prob: float = 0.07
    month_shift_sigma: float = 1.60
    #: December-only transient noise on top of the category multipliers.
    december_extra_sigma: float = 0.30
    december_shift_prob: float = 0.22
    december_shift_sigma: float = 2.00
    emit: str = "canonical"            # "canonical" or "domains"

    def __post_init__(self) -> None:
        if self.list_size < 1:
            raise GenerationError("list_size must be positive")
        for name in (
            "country_sigma", "platform_sigma", "metric_sigma",
            "metric_churn_lo", "metric_churn_hi", "month_sigma",
            "month_shift_sigma", "december_extra_sigma", "december_shift_sigma",
        ):
            if getattr(self, name) < 0:
                raise GenerationError(f"{name} must be non-negative")
        if self.metric_churn_hi < self.metric_churn_lo:
            raise GenerationError("metric_churn_hi must be >= metric_churn_lo")
        for name in ("metric_churn_prob", "month_shift_prob", "december_shift_prob"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise GenerationError(f"{name} must be in [0, 1]")
        if not 0.0 < self.mobile_metric_factor <= 1.0:
            raise GenerationError("mobile_metric_factor must be in (0, 1]")
        if self.emit not in ("canonical", "domains"):
            raise GenerationError(f"emit must be 'canonical' or 'domains', got {self.emit!r}")

    @classmethod
    def small(cls, seed: int = 2022, **overrides) -> "GeneratorConfig":
        """A test-sized configuration (≈1.5K-site lists, small universe)."""
        base = cls(seed=seed, universe=UniverseConfig.small(seed), list_size=1_500)
        return replace(base, **overrides) if overrides else base

    def resolved_universe(self) -> UniverseConfig:
        return self.universe if self.universe is not None else UniverseConfig(seed=self.seed)

    def fingerprint(self) -> str:
        """A stable content address for everything this config generates.

        Hashes every generation knob — including the resolved universe
        and privacy configs — so two configs share a fingerprint exactly
        when they produce byte-identical slices.  Used to key the
        on-disk slice cache (:class:`repro.engine.SliceCache`) and
        recorded in dataset metadata / the ``save_dataset`` manifest
        for provenance.
        """
        payload: dict[str, object] = {
            "format": 1,
            "universe": asdict(self.resolved_universe()),
            "privacy": asdict(self.privacy),
        }
        for spec in fields(self):
            if spec.name in ("universe", "privacy"):
                continue
            payload[spec.name] = getattr(self, spec.name)
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class TelemetryGenerator:
    """Generates :class:`BrowsingDataset` slices from the synthetic world."""

    def __init__(self, config: GeneratorConfig | None = None) -> None:
        self.config = config or GeneratorConfig()
        self.universe: Universe = build_universe(self.config.resolved_universe())
        self._distributions = global_distributions()
        self._per_country: dict[str, dict[str, np.ndarray]] = {}
        self._walk_cache: dict[tuple[str, int], np.ndarray] = {}
        #: Unclipped forward walk cumulative sums keyed by (country,
        #: month index): walk(T+1) reuses walk(T) plus one innovation
        #: instead of re-summing every innovation from WALK_ORIGIN.
        self._walk_unclipped: dict[tuple[str, int], np.ndarray] = {}
        #: Canonical identities as an object array: the "canonical" emit
        #: path takes rows by uid instead of looping per site, and every
        #: emitted list shares the same str objects (no interning pass).
        self._canonical_names = np.asarray(self.universe.canonical, dtype=object)
        #: Per-country domain-identity arrays for ``emit="domains"``,
        #: built on first use (mirrors ``_canonical_names``): only the
        #: multi-ccTLD sites differ from their canonical identity, so a
        #: country's array is the canonical one with those rows swapped.
        self._domain_names: dict[str, np.ndarray] = {}
        self._multi_uids = np.flatnonzero(self.universe.multi_cctld)
        #: Privacy cutoffs keyed by (country, effective platform,
        #: effective metric, pre-truncation length) — ``threshold_rank``
        #: is a pure function of those, so the batch path pays its
        #: binary search once per key instead of once per slice.
        self._threshold_cache: dict[tuple[str, Platform, Metric, int], int] = {}
        #: Memoised ``share_of_rank`` probe values per effective
        #: (platform, metric): every country's cutoff search walks the
        #: same distribution, so probed ranks overlap heavily.
        self._share_memo: dict[tuple[Platform, Metric], dict[int, float]] = {}

    # -- noise streams -------------------------------------------------------------

    def _stream(self, *parts: object) -> np.random.Generator:
        """A deterministic RNG keyed by (seed, *parts)."""
        material: list[int] = [self.config.seed]
        for part in parts:
            if isinstance(part, int):
                material.append(part)
            else:
                material.append(zlib.crc32(str(part).encode("utf-8")))
        return np.random.default_rng(np.random.SeedSequence(material))

    #: All Gaussian noise draws are truncated at ±3σ: with ~a million
    #: (site, country) pairs, unbounded tails otherwise mint a handful of
    #: pseudoword sites that outscore the curated global head.
    _TRUNC: float = 3.0

    def _gauss(self, country: str, component: str, sigma: float) -> np.ndarray:
        """Diffuse noise: sigma × noise_scale × truncated N(0, 1)."""
        candidates = self.universe.candidates(country)
        draw = self._stream(country, component).standard_normal(len(candidates))
        np.clip(draw, -self._TRUNC, self._TRUNC, out=draw)
        return sigma * draw * self.universe.noise_scale[candidates]

    def _mixture(
        self, country: str, component: str,
        base_sigma: float, shift_prob: float, shift_sigma: float,
    ) -> np.ndarray:
        """Mixture noise: a few sites shift hugely, the rest barely.

        The shift mask and both magnitudes come from one stream so the
        component is a pure function of (seed, country, component).
        """
        candidates = self.universe.candidates(country)
        rng = self._stream(country, component)
        n = len(candidates)
        mask = rng.random(n) < shift_prob
        gauss = np.clip(rng.standard_normal(n), -self._TRUNC, self._TRUNC)
        noise = np.where(mask, shift_sigma, base_sigma) * gauss
        return noise * self.universe.noise_scale[candidates]

    def _churn(
        self, country: str, component: str, base: np.ndarray,
        prob: float, lo: float, hi: float,
    ) -> np.ndarray:
        """Boundary churn: shift sites *across* the top-N cutoff.

        A ``prob`` fraction of sites is metric-exclusive: those whose
        base score sits above the country's top-N cutoff are pushed
        down (they leave the other metric's list), those below are
        pushed up (they enter it).  Because survivors are untouched,
        churn lowers list intersection without degrading the rank
        correlation within it — the combination Section 4.4 reports.

        The RNG draws depend only on (seed, country, component) and the
        pool size, while the quantile/direction logic also depends on
        ``base`` (which carries the month walk); the two halves are
        split so :meth:`rank_lists_batch` can draw once per platform
        and re-derive only the base-dependent half per month.
        """
        rng = self._stream(country, component)
        n = len(self.universe.candidates(country))
        rand = rng.random(n)
        magnitude = rng.uniform(lo, hi, size=n)
        return self._churn_from_draws(country, base, rand, magnitude, prob)

    def _churn_from_draws(
        self, country: str, base: np.ndarray,
        rand: np.ndarray, magnitude: np.ndarray, prob: float,
    ) -> np.ndarray:
        """The base-dependent half of :meth:`_churn`, given its draws."""
        candidates = self.universe.candidates(country)
        n = len(candidates)
        q_cut = 1.0 - min(self.config.list_size / max(n, 1), 1.0)
        band = self.config.metric_churn_band * self.config.list_size / max(n, 1)
        q_lo = max(q_cut - band, 0.0)
        q_hi = min(q_cut + band, 1.0)
        cutoff, lo_edge, hi_edge = np.quantile(base, [q_cut, q_lo, q_hi])
        eligible = (base >= lo_edge) & (base <= hi_edge)
        mask = eligible & (rand < prob)
        direction = np.where(base >= cutoff, -1.0, 1.0)
        return mask * direction * magnitude * self.universe.noise_scale[candidates]

    # -- per-country persistent state -----------------------------------------------

    def _country_state(self, country: str) -> dict[str, np.ndarray]:
        state = self._per_country.get(country)
        if state is not None:
            return state
        cfg = self.config
        uni = self.universe
        candidates = uni.candidates(country)
        keep = np.ones(len(candidates), dtype=bool)
        if cfg.privacy.exclude_non_public:
            keep &= ~uni.non_public[candidates]
        base = (
            uni.log_strength[candidates]
            + uni.country_boost[country]
            + self._gauss(country, "eps", cfg.country_sigma)
        )
        state = {"candidates": candidates, "keep": keep, "base": base}
        self._per_country[country] = state
        return state

    def _month_walk(self, country: str, month: Month) -> np.ndarray:
        """Cumulative popularity drift from WALK_ORIGIN to ``month``.

        walk(origin) = 0; each later month adds one innovation, each
        earlier month subtracts one, so similarity decays smoothly with
        month distance in either direction.

        This is the append-stability contract incremental ingestion
        relies on: every innovation is keyed by the absolute month
        *index* (``walk:<index>``), never by which months are in the
        request, so a month generated on its own is byte-identical to
        the same month generated as part of a larger batch.  ``repro
        ingest`` can therefore grow a saved dataset one month at a time
        and end up with exactly the files a full regeneration would
        have written.
        """
        target = month.index()
        origin = WALK_ORIGIN.index()
        key = (country, target)
        cached = self._walk_cache.get(key)
        if cached is not None:
            return cached
        if target >= origin:
            # Forward walks are incremental: walk(T) = walk(T-1) + one
            # innovation, accumulated left-to-right exactly as the old
            # per-month re-sum did, so reuse never changes a bit.  The
            # *unclipped* sums are what get cached — clipping below is
            # a per-read projection, not part of the recurrence.
            walk = self._unclipped_walk(country, target).copy()
        else:
            # Backward (pre-origin) walks keep the full re-sum: seeding
            # them from any cached month would reorder the additions.
            walk = np.zeros(len(self.universe.candidates(country)), dtype=np.float64)
            for idx in range(target + 1, origin + 1):
                walk -= self._innovation(country, idx)
        # A site may draw several large innovations in a row; cap the
        # cumulative drift so no rank-and-file site can climb past the
        # curated head within the study window.
        cap = 2.0 * self.universe.noise_scale[self.universe.candidates(country)]
        np.clip(walk, -cap, cap, out=walk)
        self._walk_cache[key] = walk
        return walk

    def _unclipped_walk(self, country: str, target: int) -> np.ndarray:
        """Unclipped innovation sum from WALK_ORIGIN to month ``target``.

        Cached per (country, month index); callers must copy before
        mutating.  ``target`` must be at or after the walk origin.
        """
        origin = WALK_ORIGIN.index()
        cached = self._walk_unclipped.get((country, target))
        if cached is None:
            if target <= origin:
                n = len(self.universe.candidates(country))
                cached = np.zeros(n, dtype=np.float64)
            else:
                cached = (
                    self._unclipped_walk(country, target - 1)
                    + self._innovation(country, target)
                )
            self._walk_unclipped[(country, target)] = cached
        return cached

    def _innovation(self, country: str, month_index: int) -> np.ndarray:
        cfg = self.config
        return self._mixture(
            country, f"walk:{month_index}",
            cfg.month_sigma, cfg.month_shift_prob, cfg.month_shift_sigma,
        )

    # -- scoring -----------------------------------------------------------------------

    def _scores(
        self, country: str, platform: Platform, metric: Metric, month: Month
    ) -> tuple[np.ndarray, np.ndarray]:
        """(candidate uids, log scores) for one breakdown, pre-truncation."""
        cfg = self.config
        uni = self.universe
        state = self._country_state(country)
        candidates = state["candidates"]
        score = state["base"].copy()

        # Platform effect.
        if platform.is_mobile:
            score += uni.log_mobile[candidates]
        score += self._gauss(country, f"platform:{platform.value}", cfg.platform_sigma)

        # Slow popularity drift — applied before the metric effect so the
        # churn component sees the exact loads-side ranking score.
        score += self._month_walk(country, month)

        # Metric effect.  Initiated page loads track completed page loads
        # almost exactly (Section 3.1), so they share the completed-loads
        # component plus a whisker of independent noise.
        if metric is Metric.TIME_ON_PAGE:
            score += uni.log_time[candidates]
            churn_prob = cfg.metric_churn_prob
            diffuse_sigma = cfg.metric_sigma
            if platform.is_mobile:
                churn_prob *= cfg.mobile_metric_factor
            # Churn direction/cutoff use the loads-side score (base +
            # platform effects), i.e. membership in the list the site is
            # entering or leaving, so shifts almost never misfire.
            score += self._churn(
                country, f"metric:churn:{platform.value}", score,
                churn_prob, cfg.metric_churn_lo, cfg.metric_churn_hi,
            )
            score += self._gauss(
                country, f"metric:time:{platform.value}", diffuse_sigma
            )
        elif metric is Metric.INITIATED_PAGE_LOADS:
            score += self._gauss(country, "metric:initiated", 0.05)

        # December transient: seasonal category multipliers plus extra
        # holiday churn that reverts in January.
        if month.is_december:
            score += uni.log_december[candidates]
            score += self._mixture(
                country, f"december:{month.year}:{metric.value}",
                cfg.december_extra_sigma, cfg.december_shift_prob,
                cfg.december_shift_sigma,
            )

        # Time-on-page sampling error (privacy pipeline): transient per
        # month, grows as the sampling rate shrinks.
        if metric is Metric.TIME_ON_PAGE:
            sampling_sigma = time_sampling_noise_sigma(cfg.privacy.time_sampling_rate)
            score += self._gauss(country, f"sampling:{month}", sampling_sigma)

        keep = state["keep"]
        return candidates[keep], score[keep]

    # -- list generation ----------------------------------------------------------------

    @staticmethod
    def _top_order(scores: np.ndarray, n: int) -> np.ndarray:
        """Indices of the ``n`` best scores, best first, stable on ties."""
        if n < len(scores):
            part = np.argpartition(-scores, n - 1)[:n]
        else:
            part = np.arange(len(scores))
        return part[np.argsort(-scores[part], kind="stable")]

    def _emit_names(self, country: str) -> np.ndarray:
        """Per-uid emitted identities under this config's emit mode.

        ``canonical`` emit shares one global object array; ``domains``
        emit builds one array per country on first use — only the
        multi-ccTLD sites differ from their canonical identity, so the
        country's array is the canonical one with those rows swapped
        for the country's ccTLD variant (interned, so repeated lists
        share str objects like the old per-uid loop did).
        """
        if self.config.emit != "domains":
            return self._canonical_names
        names = self._domain_names.get(country)
        if names is None:
            names = self._canonical_names.copy()
            if len(self._multi_uids):
                names[self._multi_uids] = [
                    sys.intern(self.universe.domain_in_country(int(uid), country))
                    for uid in self._multi_uids
                ]
            self._domain_names[country] = names
        return names

    def _threshold_cutoff(
        self, country: str, platform: Platform, metric: Metric, n: int
    ) -> int:
        """The privacy cutoff for an ``n``-site list of this breakdown.

        Exactly what :func:`apply_threshold` computes, memoised:
        ``threshold_rank`` reads only the country's install base, the
        effective (platform, metric) traffic curve and the list length,
        never the list contents, so every slice of a grid sharing those
        shares one binary search.
        """
        eff_platform = platform if platform in Platform.studied() else Platform.WINDOWS
        eff_metric = metric if metric in Metric.studied() else Metric.PAGE_LOADS
        key = (country, eff_platform, eff_metric, n)
        cutoff = self._threshold_cache.get(key)
        if cutoff is None:
            install_base = get_country(country).web_scale * INSTALL_BASE_UNIT
            dist = self.distribution(eff_platform, eff_metric)
            memo = self._share_memo.setdefault((eff_platform, eff_metric), {})

            def share_fn(rank: int) -> float:
                share = memo.get(rank)
                if share is None:
                    share = dist.share_of_rank(rank)
                    memo[rank] = share
                return share

            cutoff = threshold_rank(
                install_base,
                dist,
                self.config.privacy.client_threshold,
                max_rank=n,
                share_fn=share_fn,
            )
            self._threshold_cache[key] = cutoff
        return cutoff

    def rank_list(
        self, country: str, platform: Platform, metric: Metric,
        month: Month = REFERENCE_MONTH,
    ) -> RankedList:
        """The top-N ranked list for one breakdown."""
        get_country(country)
        uids, scores = self._scores(country, platform, metric, month)
        n = min(self.config.list_size, len(uids))
        if n == 0:
            raise GenerationError(f"no candidates survive for {country}")
        order = self._top_order(scores, n)
        top_uids = uids[order]

        names = self._emit_names(country)[top_uids].tolist()
        ranked = RankedList(names)

        if self.config.privacy.client_threshold > 0:
            install_base = get_country(country).web_scale * INSTALL_BASE_UNIT
            dist = self.distribution(
                platform if platform in Platform.studied() else Platform.WINDOWS,
                metric if metric in Metric.studied() else Metric.PAGE_LOADS,
            )
            ranked = apply_threshold(ranked, install_base, dist, self.config.privacy)
        return ranked

    def rank_lists_batch(
        self,
        country: str,
        breakdowns: Sequence[Breakdown],
        *,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
    ) -> dict[Breakdown, RankedList]:
        """Every requested slice of one country's grid, in one matrix pass.

        Builds an ``(n_slices × n_candidates)`` score matrix for the
        country and fills each breakdown's row from a keyed component
        cache: the base scores, each platform's gauss, each month's
        walk, the churn draws per platform, the December mixture per
        (year, metric) and the sampling gauss per month are computed
        exactly once and broadcast into every row that uses them.

        Byte-identity with :meth:`rank_list` is by construction, not by
        tolerance: IEEE addition is commutative but not associative, so
        the batch path never re-associates — rows sharing a prefix of
        the serial accumulation (base → platform → walk → metric →
        season → sampling) share the *computed prefix array* and then
        apply the remaining ``+=`` in the serial order, making every
        partial sum bitwise equal to the serial one.  Top-k, emit and
        the privacy cutoff then reuse the same primitives as the serial
        path (the cutoff via :meth:`_threshold_cutoff`, which memoises
        the identical binary search).

        Under an active tracer every slice gets the same
        ``engine.generate_slice`` span the per-slice executor path
        emits.
        """
        cfg = self.config
        uni = self.universe
        get_country(country)
        for breakdown in breakdowns:
            if breakdown.country != country:
                raise GenerationError(
                    f"breakdown {breakdown} is not part of "
                    f"country batch {country!r}"
                )
        state = self._country_state(country)
        candidates = state["candidates"]
        base = state["base"]
        keep = state["keep"]
        kept_uids = candidates[keep]
        if min(cfg.list_size, len(kept_uids)) == 0:
            raise GenerationError(f"no candidates survive for {country}")

        n_all = len(candidates)
        log_mobile_c = uni.log_mobile[candidates]
        log_time_c = uni.log_time[candidates]
        log_december_c = uni.log_december[candidates]
        emit_names = self._emit_names(country)
        sampling_sigma = time_sampling_noise_sigma(cfg.privacy.time_sampling_rate)

        # Per-call component caches (walks and thresholds are memoised
        # on the generator itself; these are cheap to rebuild and keyed
        # the same way the serial noise streams are).
        gauss_cache: dict[str, np.ndarray] = {}
        prefix: dict[Platform, np.ndarray] = {}
        prefix_month: dict[tuple[Platform, int], np.ndarray] = {}
        churn_draws: dict[Platform, tuple[np.ndarray, np.ndarray]] = {}
        churn_comp: dict[tuple[Platform, int], np.ndarray] = {}
        mixture_cache: dict[tuple[int, str], np.ndarray] = {}

        def gauss(component: str, sigma: float) -> np.ndarray:
            arr = gauss_cache.get(component)
            if arr is None:
                arr = self._gauss(country, component, sigma)
                gauss_cache[component] = arr
            return arr

        matrix = np.empty((len(breakdowns), n_all), dtype=np.float64)
        results: dict[Breakdown, RankedList] = {}
        for row, breakdown in zip(matrix, breakdowns):
            platform = breakdown.platform
            metric = breakdown.metric
            month = breakdown.month
            with tracer.span(
                "engine.generate_slice",
                country=country,
                platform=platform.value,
                metric=metric.value,
                month=str(month),
                cache="miss",
            ):
                month_key = (platform, month.index())
                pm = prefix_month.get(month_key)
                if pm is None:
                    p = prefix.get(platform)
                    if p is None:
                        p = base.copy()
                        if platform.is_mobile:
                            p += log_mobile_c
                        p += gauss(
                            f"platform:{platform.value}", cfg.platform_sigma
                        )
                        prefix[platform] = p
                    pm = p.copy()
                    pm += self._month_walk(country, month)
                    prefix_month[month_key] = pm
                np.copyto(row, pm)

                if metric is Metric.TIME_ON_PAGE:
                    row += log_time_c
                    churn = churn_comp.get(month_key)
                    if churn is None:
                        draws = churn_draws.get(platform)
                        if draws is None:
                            rng = self._stream(
                                country, f"metric:churn:{platform.value}"
                            )
                            draws = (
                                rng.random(n_all),
                                rng.uniform(
                                    cfg.metric_churn_lo,
                                    cfg.metric_churn_hi,
                                    size=n_all,
                                ),
                            )
                            churn_draws[platform] = draws
                        churn_prob = cfg.metric_churn_prob
                        if platform.is_mobile:
                            churn_prob *= cfg.mobile_metric_factor
                        # The churn input is the loads-side score so far
                        # (prefix + walk + log_time), exactly what the
                        # serial path passes.
                        churn = self._churn_from_draws(
                            country, row, draws[0], draws[1], churn_prob
                        )
                        churn_comp[month_key] = churn
                    row += churn
                    row += gauss(
                        f"metric:time:{platform.value}", cfg.metric_sigma
                    )
                elif metric is Metric.INITIATED_PAGE_LOADS:
                    row += gauss("metric:initiated", 0.05)

                if month.is_december:
                    row += log_december_c
                    mix_key = (month.year, metric.value)
                    mix = mixture_cache.get(mix_key)
                    if mix is None:
                        mix = self._mixture(
                            country, f"december:{month.year}:{metric.value}",
                            cfg.december_extra_sigma, cfg.december_shift_prob,
                            cfg.december_shift_sigma,
                        )
                        mixture_cache[mix_key] = mix
                    row += mix

                if metric is Metric.TIME_ON_PAGE:
                    row += gauss(f"sampling:{month}", sampling_sigma)

                scores = row[keep]
                n = min(cfg.list_size, len(scores))
                order = self._top_order(scores, n)
                if cfg.privacy.client_threshold > 0:
                    cutoff = self._threshold_cutoff(country, platform, metric, n)
                    if cutoff < n:
                        order = order[:cutoff]
                top_uids = kept_uids[order]
                # Labels are globally unique by universe construction,
                # so the emitted names need no re-validation.
                results[breakdown] = RankedList._trusted(
                    tuple(emit_names[top_uids].tolist())
                )
        return results

    def generate(
        self,
        *,
        countries: tuple[str, ...] | None = None,
        platforms: tuple[Platform, ...] = Platform.studied(),
        metrics: tuple[Metric, ...] = Metric.studied(),
        months: tuple[Month, ...] = (REFERENCE_MONTH,),
    ) -> BrowsingDataset:
        """Generate a dataset covering the requested breakdown grid.

        Delegates to :class:`repro.engine.GenerationEngine` with the
        serial reference executor and this generator's state; pass an
        engine explicitly (with a :class:`~repro.engine.ParallelExecutor`
        or a :class:`~repro.engine.SliceCache`) for the fast paths.
        """
        from ..engine import GenerationEngine  # local: engine builds on synth

        engine = GenerationEngine(self.config, generator=self)
        return engine.generate(
            countries=countries, platforms=platforms,
            metrics=metrics, months=months,
        )

    # -- lookups -----------------------------------------------------------------------

    def distribution(self, platform: Platform, metric: Metric):
        """The global traffic curve for a studied (platform, metric)."""
        return self._distributions[(platform, metric)]

    def site_categories(self) -> dict[str, str]:
        """canonical site identity → ground-truth category."""
        return self.universe.category_by_canonical()
