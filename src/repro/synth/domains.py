"""Domain-string synthesis for the generated website universe.

The telemetry is keyed by *domain*, so the generator must emit realistic
hostnames: multinational sites appear under a per-country ccTLD variant
(google.com at home, google.co.uk in the UK, ...), endemic sites under
their home country's suffix or .com, and global rank-and-file sites
under common gTLDs.  The eTLD merge step (:mod:`repro.etld`) then
collapses the ccTLD variants back together, exactly the clean-up the
paper performs.
"""

from __future__ import annotations

import numpy as np

#: The "home" suffix used for a multinational's storefront in each study
#: country.  The US storefront (and any unlisted country) uses .com.
COUNTRY_SUFFIX: dict[str, str] = {
    "DZ": "dz", "EG": "com.eg", "KE": "co.ke", "MA": "co.ma", "NG": "com.ng",
    "TN": "tn", "ZA": "co.za",
    "JP": "co.jp", "IN": "co.in", "KR": "co.kr", "TR": "com.tr",
    "VN": "com.vn", "TW": "com.tw", "ID": "co.id", "TH": "co.th",
    "PH": "com.ph", "HK": "com.hk",
    "GB": "co.uk", "FR": "fr", "RU": "ru", "DE": "de", "IT": "it",
    "ES": "es", "NL": "nl", "PL": "pl", "UA": "com.ua", "BE": "be",
    "CA": "ca", "CR": "co.cr", "DO": "com.do", "GT": "com.gt",
    "MX": "com.mx", "PA": "com.pa", "US": "com",
    "AU": "com.au", "NZ": "co.nz",
    "AR": "com.ar", "BO": "com.bo", "BR": "com.br", "CL": "cl",
    "CO": "com.co", "EC": "com.ec", "PE": "com.pe", "UY": "com.uy",
    "VE": "com.ve",
}

#: gTLD mix for procedural global sites (weights roughly web-realistic).
_GLOBAL_TLDS: tuple[str, ...] = ("com", "org", "net", "io", "tv", "co", "info")
_GLOBAL_TLD_WEIGHTS: tuple[float, ...] = (0.62, 0.10, 0.08, 0.08, 0.04, 0.04, 0.04)

_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"


def pseudoword(rng: np.random.Generator, syllables: int = 3) -> str:
    """A pronounceable fake site label, e.g. ``katupo``."""
    if syllables < 1:
        raise ValueError("need at least one syllable")
    parts = []
    for _ in range(syllables):
        c = _CONSONANTS[int(rng.integers(len(_CONSONANTS)))]
        v = _VOWELS[int(rng.integers(len(_VOWELS)))]
        parts.append(c + v)
    return "".join(parts)


def unique_labels(rng: np.random.Generator, count: int, taken: set[str]) -> list[str]:
    """``count`` pseudoword labels, unique among themselves and ``taken``.

    Collisions get a numeric disambiguator, so generation never stalls.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    labels: list[str] = []
    for _ in range(count):
        label = pseudoword(rng, syllables=int(rng.integers(2, 5)))
        if label in taken:
            label = f"{label}{int(rng.integers(10, 9999))}"
            while label in taken:
                label = f"{pseudoword(rng)}{int(rng.integers(10, 9999))}"
        taken.add(label)
        labels.append(label)
    return labels


def global_domain(label: str, rng: np.random.Generator) -> str:
    """Domain for a procedural global site: label + weighted gTLD."""
    tld = rng.choice(_GLOBAL_TLDS, p=_GLOBAL_TLD_WEIGHTS)
    return f"{label}.{tld}"


def endemic_domain(label: str, country: str, rng: np.random.Generator) -> str:
    """Domain for an endemic site: usually the home ccTLD, sometimes .com.

    Real national sites split between their ccTLD and .com; we use a
    70/30 split so the eTLD logic sees both shapes.
    """
    suffix = COUNTRY_SUFFIX.get(country)
    if suffix is None:
        raise KeyError(f"no suffix configured for country {country!r}")
    if rng.random() < 0.30:
        return f"{label}.com"
    return f"{label}.{suffix}"


def multinational_domain(label: str, country: str) -> str:
    """The per-country storefront domain for a multi-ccTLD site."""
    suffix = COUNTRY_SUFFIX.get(country, "com")
    return f"{label}.{suffix}"


def neighbor_domain(label: str, country: str, rng: np.random.Generator) -> str:
    """Domain for a few-country regional site.

    Sites serving a small set of neighbouring countries mostly run on a
    gTLD (60 %), falling back to the primary country's ccTLD.
    """
    if rng.random() < 0.60:
        return global_domain(label, rng)
    suffix = COUNTRY_SUFFIX.get(country)
    if suffix is None:
        raise KeyError(f"no suffix configured for country {country!r}")
    return f"{label}.{suffix}"
