"""Traffic-distribution curves for the synthetic telemetry.

Section 4.1.1: Chrome provided the traffic-volume distribution data
directly, aggregated globally per (platform, metric).  We rebuild those
curves from the concentration anchors the paper reports
(:data:`repro.world.profiles.TRAFFIC_ANCHORS`), and additionally provide
per-country variants whose head concentration is jittered inside the
reported 12–33 % band ("the top ranked website in each country captures
12–33 % of all page loads (median, 20 %)").
"""

from __future__ import annotations

import numpy as np

from ..core.distribution import TrafficDistribution
from ..core.types import Metric, Platform
from ..world.countries import get_country
from ..world.profiles import (
    PER_COUNTRY_TOP1_MEDIAN,
    PER_COUNTRY_TOP1_RANGE,
    TRAFFIC_ANCHORS,
)


def global_distribution(platform: Platform, metric: Metric) -> TrafficDistribution:
    """The global curve for one (platform, metric), from paper anchors."""
    try:
        anchors = TRAFFIC_ANCHORS[(platform, metric)]
    except KeyError:
        raise KeyError(
            f"no traffic anchors for ({platform.value}, {metric.value}); "
            "the paper only reports curves for Windows/Android × loads/time"
        ) from None
    return TrafficDistribution(anchors)


def global_distributions() -> dict[tuple[Platform, Metric], TrafficDistribution]:
    """All four global curves (Figure 1's series)."""
    return {key: TrafficDistribution(a) for key, a in TRAFFIC_ANCHORS.items()}


def country_top1_share(country: str, seed: int = 2022) -> float:
    """A deterministic per-country head share inside the 12–33 % band.

    Drawn from a triangular distribution peaked at the reported median
    (20 %), seeded per country so the value is stable across runs.
    """
    get_country(country)  # validate
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, 0x70D1, *(ord(ch) for ch in country)])
    )
    lo, hi = PER_COUNTRY_TOP1_RANGE
    return float(rng.triangular(lo, PER_COUNTRY_TOP1_MEDIAN, hi))


def country_distribution(
    country: str,
    platform: Platform,
    metric: Metric,
    seed: int = 2022,
) -> TrafficDistribution:
    """A per-country curve: the global shape with a jittered head.

    The shift applied at rank 1 decays quadratically in log-rank so the
    long-tail shares stay near the global curve, and monotonicity of the
    anchors is restored by a running maximum.
    """
    base = TRAFFIC_ANCHORS[(platform, metric)]
    target_top1 = country_top1_share(country, seed)
    base_top1 = base[0][1]
    delta = target_top1 - base_top1
    log_total = np.log10(base[-1][0])
    adjusted: list[tuple[float, float]] = []
    for rank, share in base:
        decay = (1.0 - np.log10(rank) / log_total) ** 2
        adjusted.append((rank, float(np.clip(share + delta * decay, 1e-4, 1.0))))
    # Restore strict monotonicity if a large negative delta crossed anchors.
    monotone: list[tuple[float, float]] = []
    floor = 0.0
    for rank, share in adjusted:
        share = max(share, floor + 1e-6)
        monotone.append((rank, min(share, 1.0)))
        floor = share
    return TrafficDistribution(monotone)
