"""Warn-once plumbing for deprecated keyword aliases.

The PR-3 API normalization renamed a few keyword arguments so the same
concept has the same name everywhere (``cache`` for slice caches,
``store`` for artifact stores, ``jobs`` for worker counts).  The old
names keep working through :func:`deprecated_alias`, which emits one
:class:`DeprecationWarning` per (owner, old-name) pair per process —
loud enough to notice, quiet enough not to spam a request loop.
"""

from __future__ import annotations

import warnings

_warned: set[tuple[str, str]] = set()


def warn_once(key: tuple[str, str], message: str) -> None:
    """Emit ``message`` as a DeprecationWarning the first time per process."""
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def deprecated_alias(
    new_value: object,
    old_value: object,
    *,
    owner: str,
    old: str,
    new: str,
) -> object:
    """Resolve a renamed keyword: prefer ``new``, accept ``old`` with a warning.

    Passing both (with the old one not ``None``) is an error — silently
    picking one would hide a real conflict at the call site.
    """
    if old_value is None:
        return new_value
    if new_value is not None:
        raise TypeError(f"{owner}: pass {new!r}, not both {new!r} and {old!r}")
    warn_once(
        (owner, old),
        f"{owner}: {old!r} is deprecated, use {new!r}",
    )
    return old_value
