"""Public-suffix handling and cross-country domain merging."""

from .merge import DEFAULT_DENYLIST, DomainMerger, merge_rank_lists
from .psl import DEFAULT_PSL, PSL_RULES, PublicSuffixList, SuffixMatch

__all__ = [
    "DEFAULT_DENYLIST",
    "DEFAULT_PSL",
    "DomainMerger",
    "PSL_RULES",
    "PublicSuffixList",
    "SuffixMatch",
    "merge_rank_lists",
]
