"""A minimal embedded Public Suffix List and the eTLD+1 algorithm.

Section 3.1: "we merge websites when a secondary version exists under
another eTLD (e.g., we aggregate google.co.uk with google.com), as
defined by the Mozilla Public Suffix list".  The full PSL is ~10K
entries; we embed the subset covering every suffix the synthetic world
emits (all study-country ccTLDs plus the common gTLDs) and implement
the standard matching rules, including wildcard entries.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Plain public-suffix rules.  A leading ``*.`` marks a wildcard rule and
#: a leading ``!`` an exception, per the PSL specification.
PSL_RULES: frozenset[str] = frozenset(
    {
        # generic TLDs
        "com", "org", "net", "gov", "edu", "mil", "int", "info", "biz",
        "io", "gg", "tv", "live", "wiki", "app", "dev", "me", "co",
        "online", "site", "store", "xyz", "news",
        # second-level generic registries
        "com.co", "net.co",
        # Africa
        "dz", "com.dz", "eg", "com.eg", "ke", "co.ke", "ma", "co.ma",
        "ng", "com.ng", "tn", "com.tn", "za", "co.za",
        # Asia
        "jp", "co.jp", "ne.jp", "or.jp", "in", "co.in", "kr", "co.kr",
        "or.kr", "tr", "com.tr", "vn", "com.vn", "tw", "com.tw", "id",
        "co.id", "th", "co.th", "in.th", "ph", "com.ph", "hk", "com.hk",
        # Europe
        "uk", "co.uk", "org.uk", "ac.uk", "gov.uk", "fr", "ru", "com.ru",
        "de", "it", "es", "com.es", "nl", "pl", "com.pl", "ua", "com.ua",
        "be", "eu",
        # Americas
        "ca", "cr", "co.cr", "do", "com.do", "gt", "com.gt", "mx",
        "com.mx", "pa", "com.pa", "us",
        "ar", "com.ar", "bo", "com.bo", "br", "com.br", "cl", "ec",
        "com.ec", "pe", "com.pe", "uy", "com.uy", "ve", "com.ve",
        # Oceania
        "au", "com.au", "net.au", "org.au", "nz", "co.nz", "org.nz",
        # wildcard examples from the PSL spec, to exercise the matcher
        "*.ck", "!www.ck",
    }
)


@dataclass(frozen=True)
class SuffixMatch:
    """Decomposition of a hostname against the PSL."""

    hostname: str
    public_suffix: str
    registrable_domain: str | None   # eTLD+1, None for bare suffixes

    @property
    def label(self) -> str | None:
        """The registrable label (the eTLD+1 minus the suffix).

        ``google.co.uk`` → ``google``; used for cross-eTLD merging.
        """
        if self.registrable_domain is None:
            return None
        return self.registrable_domain[: -(len(self.public_suffix) + 1)]


class PublicSuffixList:
    """Matcher over a rule set following the PSL algorithm.

    Rules: the longest matching rule wins; wildcard rules (``*.foo``)
    match one extra label; exception rules (``!bar.foo``) override
    wildcards.  A hostname with no matching rule uses its last label as
    the suffix (the PSL's implicit ``*`` rule).
    """

    def __init__(self, rules: frozenset[str] | set[str] = PSL_RULES) -> None:
        self._plain: set[str] = set()
        self._wildcards: set[str] = set()
        self._exceptions: set[str] = set()
        for rule in rules:
            if rule.startswith("!"):
                self._exceptions.add(rule[1:])
            elif rule.startswith("*."):
                self._wildcards.add(rule[2:])
            else:
                self._plain.add(rule)

    def match(self, hostname: str) -> SuffixMatch:
        """Decompose ``hostname`` into public suffix and eTLD+1."""
        host = hostname.strip().strip(".").lower()
        if not host or any(not part for part in host.split(".")):
            raise ValueError(f"malformed hostname {hostname!r}")
        labels = host.split(".")
        suffix_len = 1  # implicit * rule
        for start in range(len(labels)):
            candidate = ".".join(labels[start:])
            n = len(labels) - start
            if candidate in self._exceptions:
                # Exception: the suffix is the candidate minus its first label.
                suffix_len = max(suffix_len, n - 1)
                break
            if candidate in self._plain:
                suffix_len = max(suffix_len, n)
            parent = ".".join(labels[start + 1 :])
            if parent and parent in self._wildcards:
                suffix_len = max(suffix_len, n)
        suffix = ".".join(labels[-suffix_len:])
        if len(labels) > suffix_len:
            registrable = ".".join(labels[-(suffix_len + 1):])
        else:
            registrable = None
        return SuffixMatch(host, suffix, registrable)

    def public_suffix(self, hostname: str) -> str:
        return self.match(hostname).public_suffix

    def registrable_domain(self, hostname: str) -> str | None:
        """The eTLD+1 of ``hostname`` (``www.google.co.uk`` → ``google.co.uk``)."""
        return self.match(hostname).registrable_domain


#: Module-level default instance (the rules are static data).
DEFAULT_PSL = PublicSuffixList()
