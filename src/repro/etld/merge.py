"""Cross-country domain merging (Section 3.1, "Aggregating Sites Across
Domains").

Many multinational sites operate one domain per country
(google.com / google.co.uk / google.com.br ...), which "creates noise
when aggregating metrics globally".  Following the paper, we merge
domains that share a registrable *label* under more than one eTLD onto a
single canonical identity (the bare label).

The paper notes the process is imperfect — top.com (a crypto exchange)
and top.gg (a Discord ranking) would wrongly merge — and that manual
inspection found such errors rare.  We model that too: a ``denylist`` of
labels that must never merge, and :meth:`DomainMerger.false_merge_candidates`
to surface risky merges for manual inspection.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping

from .psl import DEFAULT_PSL, PublicSuffixList

#: Labels known to collide across unrelated sites (the paper's example).
DEFAULT_DENYLIST: frozenset[str] = frozenset({"top"})


class DomainMerger:
    """Builds and applies the domain → canonical-site mapping.

    Construction scans a corpus of domains (typically the union of every
    rank list in the dataset); :meth:`canonical` then maps any domain to
    its merged identity:

    * domains whose label appears under ≥ 2 eTLDs merge to the label
      (``google.com``, ``google.co.uk`` → ``google``), unless denylisted;
    * all other domains keep their registrable domain as identity.
    """

    def __init__(
        self,
        corpus: Iterable[str],
        psl: PublicSuffixList = DEFAULT_PSL,
        denylist: frozenset[str] = DEFAULT_DENYLIST,
    ) -> None:
        self._psl = psl
        self._denylist = denylist
        suffixes_per_label: dict[str, set[str]] = defaultdict(set)
        self._registrable: dict[str, str] = {}
        for domain in corpus:
            match = psl.match(domain)
            if match.registrable_domain is None:
                continue
            self._registrable[match.hostname] = match.registrable_domain
            label = match.label
            if label:
                suffixes_per_label[label].add(match.public_suffix)
        self._mergeable: set[str] = {
            label
            for label, suffixes in suffixes_per_label.items()
            if len(suffixes) >= 2 and label not in denylist
        }
        self._suffixes_per_label = {k: frozenset(v) for k, v in suffixes_per_label.items()}

    # -- queries --------------------------------------------------------------------

    def canonical(self, domain: str) -> str:
        """The merged identity for ``domain``.

        Domains outside the construction corpus are resolved on the fly
        with the same rules (their label merges only if the corpus saw
        it under multiple eTLDs).
        """
        match = self._psl.match(domain)
        if match.registrable_domain is None:
            return match.hostname
        label = match.label
        if label and label in self._mergeable:
            return label
        return match.registrable_domain

    def mapping_for(self, domains: Iterable[str]) -> dict[str, str]:
        """domain → canonical for each input (stable for RankedList.rename)."""
        return {d: self.canonical(d) for d in domains}

    @property
    def mergeable_labels(self) -> frozenset[str]:
        return frozenset(self._mergeable)

    def false_merge_candidates(self, max_suffixes: int = 2) -> list[str]:
        """Labels merged across *few* eTLDs — the risky merges.

        A genuine multinational shows up under many country suffixes; a
        label under exactly two unrelated TLDs (top.com / top.gg) is the
        classic false merge.  Returned for manual inspection, mirroring
        the paper's validation step.
        """
        return sorted(
            label
            for label in self._mergeable
            if len(self._suffixes_per_label[label]) <= max_suffixes
        )


def merge_rank_lists(
    lists: Mapping[object, "object"],
    merger: DomainMerger,
):
    """Apply a merger to a mapping of key → RankedList.

    Collisions within one list (a country listing both google.com and
    google.com.mx) keep the better rank, per
    :meth:`repro.core.rankedlist.RankedList.rename`.
    """
    out = {}
    for key, ranked in lists.items():
        mapping = merger.mapping_for(ranked.sites)  # type: ignore[attr-defined]
        out[key] = ranked.rename(mapping)  # type: ignore[attr-defined]
    return out
