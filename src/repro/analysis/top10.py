"""Composition of the top-10 sites per country (Section 4.2.1, 5.3.2, Table 4).

The paper manually verifies and categorises every top-10 site across
all (country, platform, metric) breakdowns, then counts which use
cases appear in how many countries: every country has a search engine
and a video platform in its top 10; most have social networks and adult
content; classified ads, banks, government portals and broadcasters are
top-10 in exactly one country each.

Our "manual verification" consults ground-truth labels and tags; the
counting logic is the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.dataset import BrowsingDataset
from ..core.rankedlist import RankedList
from ..core.types import Metric, Month, Platform


@dataclass(frozen=True)
class CategoryPresence:
    """Countries whose top-K contains at least one site of a category."""

    category: str
    countries: tuple[str, ...]
    sites: tuple[str, ...]            # distinct sites driving the presence

    @property
    def n_countries(self) -> int:
        return len(self.countries)

    @property
    def n_sites(self) -> int:
        return len(self.sites)


def category_presence(
    lists_by_country: Mapping[str, RankedList],
    labels: Mapping[str, str],
    top_k: int = 10,
) -> dict[str, CategoryPresence]:
    """Per category: which countries have it in their top-K."""
    countries_per: dict[str, set[str]] = {}
    sites_per: dict[str, set[str]] = {}
    for country, ranked in lists_by_country.items():
        for site in ranked.top(top_k).sites:
            category = labels.get(site, "Unknown")
            countries_per.setdefault(category, set()).add(country)
            sites_per.setdefault(category, set()).add(site)
    return {
        category: CategoryPresence(
            category,
            tuple(sorted(countries_per[category])),
            tuple(sorted(sites_per[category])),
        )
        for category in countries_per
    }


def tag_presence(
    lists_by_country: Mapping[str, RankedList],
    tags: Mapping[str, tuple[str, ...]],
    top_k: int = 10,
) -> dict[str, CategoryPresence]:
    """Same as :func:`category_presence` but over descriptive tags.

    Tags capture Table 4's long tail (videoconferencing, ISPs, job
    search, ...) and Section 5.3.2's classes (classifieds, forums, ...).
    """
    countries_per: dict[str, set[str]] = {}
    sites_per: dict[str, set[str]] = {}
    for country, ranked in lists_by_country.items():
        for site in ranked.top(top_k).sites:
            for tag in tags.get(site, ()):
                countries_per.setdefault(tag, set()).add(country)
                sites_per.setdefault(tag, set()).add(site)
    return {
        tag: CategoryPresence(
            tag, tuple(sorted(countries_per[tag])), tuple(sorted(sites_per[tag]))
        )
        for tag in countries_per
    }


def single_country_sites(
    presence: CategoryPresence,
    lists_by_country: Mapping[str, RankedList],
    top_k: int = 10,
) -> tuple[str, ...]:
    """Sites of a class that are top-K in exactly one country.

    Section 5.3.2: government sites, news outlets and banks "are only
    ever top-10 in one country".
    """
    out = []
    for site in presence.sites:
        n = sum(
            1 for ranked in lists_by_country.values()
            if site in ranked.top(top_k)
        )
        if n == 1:
            out.append(site)
    return tuple(sorted(out))


@dataclass(frozen=True)
class PlatformExclusives:
    """Sites in the Windows top-K but not the Android top-K (Section 4.1.2)."""

    sites: tuple[str, ...]
    with_android_app: tuple[str, ...]

    @property
    def app_fraction(self) -> float:
        if not self.sites:
            return 0.0
        return len(self.with_android_app) / len(self.sites)


def windows_only_top_sites(
    dataset: BrowsingDataset,
    month: Month,
    has_app: Mapping[str, bool],
    metric: Metric = Metric.PAGE_LOADS,
    top_k: int = 10,
    countries: tuple[str, ...] | None = None,
) -> PlatformExclusives:
    """Sites top-K on Windows somewhere but top-K on Android nowhere.

    Paper: "Of the 114 sites ranking in the top 10 in at least one
    country by page loads on Windows but not Android, 93 (82 %) have a
    dedicated Android app."
    """
    windows = dataset.select(Platform.WINDOWS, metric, month, countries)
    android = dataset.select(Platform.ANDROID, metric, month, countries)
    windows_top: set[str] = set()
    android_top: set[str] = set()
    for ranked in windows.values():
        windows_top.update(ranked.top(top_k).sites)
    for ranked in android.values():
        android_top.update(ranked.top(top_k).sites)
    exclusives = tuple(sorted(windows_top - android_top))
    with_app = tuple(s for s in exclusives if has_app.get(s, False))
    return PlatformExclusives(exclusives, with_app)


def union_of_top_sites(
    dataset: BrowsingDataset,
    month: Month,
    top_k: int = 10,
    countries: tuple[str, ...] | None = None,
) -> set[str]:
    """The union of top-K sites over every (country, platform, metric).

    Paper: "across the 1.8K domains found in the union of breakdowns,
    we identify ... 469 unique domains that belong to 402 websites."
    """
    out: set[str] = set()
    for platform in dataset.platforms:
        for metric in dataset.metrics:
            for ranked in dataset.select(platform, metric, month, countries).values():
                out.update(ranked.top(top_k).sites)
    return out
