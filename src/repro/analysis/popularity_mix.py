"""Globally vs nationally popular sites by rank (Section 5.2 / Figures 9, 17).

"For each of several rank buckets, we compute the percentage of sites
in that rank bucket that are globally popular."  Globally popular sites
predominate in the top 10 (median 6–7/10) but national sites dominate
from rank ~20 down (65–73 % at ranks 101–200).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Mapping

from ..core.rankedlist import RankedList
from ..stats.descriptive import Quartiles, quartiles
from .endemicity import EndemicityResult

#: The rank buckets of Figure 9 (start, end inclusive).
DEFAULT_BUCKETS: tuple[tuple[int, int], ...] = (
    (1, 10), (11, 20), (21, 50), (51, 100), (101, 200), (201, 500), (501, 1000),
)


@dataclass(frozen=True)
class GlobalShareByBucket:
    """Share of globally popular sites per rank bucket, over countries."""

    bucket: tuple[int, int]
    stats: Quartiles
    per_country: dict[str, float]


def global_share_by_rank(
    lists_by_country: Mapping[str, RankedList],
    endemicity: EndemicityResult | AbstractSet[str],
    buckets: tuple[tuple[int, int], ...] = DEFAULT_BUCKETS,
) -> list[GlobalShareByBucket]:
    """Fraction of each rank bucket occupied by globally popular sites.

    ``endemicity`` is either a full Section 5.1 result or just its set
    of globally popular sites — the latter lets callers replay the
    analysis from a persisted artifact without rescoring.
    """
    if isinstance(endemicity, EndemicityResult):
        global_sites = endemicity.global_sites
    else:
        global_sites = set(endemicity)
    out = []
    for first, last in buckets:
        per_country: dict[str, float] = {}
        for country, ranked in lists_by_country.items():
            if len(ranked) < first:
                continue
            segment = ranked.slice(first, min(last, len(ranked)))
            if len(segment) == 0:
                continue
            hits = sum(1 for site in segment.sites if site in global_sites)
            per_country[country] = hits / len(segment)
        if per_country:
            out.append(
                GlobalShareByBucket(
                    bucket=(first, last),
                    stats=quartiles(per_country.values()),
                    per_country=per_country,
                )
            )
    return out


def national_majority_rank(results: list[GlobalShareByBucket]) -> tuple[int, int] | None:
    """The first bucket where nationally popular sites reach parity.

    Paper: "starting at top 20, there are at least as many (if not
    more) nationally popular sites compared to globally popular sites".
    """
    for row in results:
        if row.stats.median <= 0.5:
            return row.bucket
    return None
