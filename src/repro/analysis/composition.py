"""Category composition of top sites (Section 4.2.2 / Figure 2).

Two perspectives, both averaged over the study countries:

* **by domains** — what fraction of the top-N *sites* carries each
  category label (skews toward the long tail);
* **by traffic** — the same count weighted by the per-rank traffic
  share (models what users actually do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.dataset import BrowsingDataset
from ..core.types import Metric, Month, Platform
from .weighting import (
    average_over_countries,
    share_by_category,
    weighted_volume_by_category,
)


@dataclass(frozen=True)
class CompositionPanel:
    """One panel of Figure 2: a (platform, metric, top-N, perspective)."""

    platform: Platform
    metric: Metric
    top_n: int
    perspective: str                     # "domains" or "traffic"
    shares: dict[str, float]             # category -> average share
    per_country: dict[str, dict[str, float]]

    def top_categories(self, k: int = 10) -> list[tuple[str, float]]:
        return sorted(self.shares.items(), key=lambda kv: -kv[1])[:k]


def composition_panel(
    dataset: BrowsingDataset,
    labels: Mapping[str, str],
    platform: Platform,
    metric: Metric,
    month: Month,
    top_n: int,
    perspective: str = "domains",
    countries: tuple[str, ...] | None = None,
) -> CompositionPanel:
    """Compute one Figure 2 panel from a dataset slice."""
    if perspective not in ("domains", "traffic"):
        raise ValueError(f"unknown perspective {perspective!r}")
    lists = dataset.select(platform, metric, month, countries)
    per_country: dict[str, dict[str, float]] = {}
    distribution = dataset.distribution(platform, metric)
    for country, ranked in lists.items():
        if perspective == "domains":
            per_country[country] = share_by_category(ranked, labels, top_n)
        else:
            per_country[country] = weighted_volume_by_category(
                ranked, labels, distribution, top_n
            )
    return CompositionPanel(
        platform=platform,
        metric=metric,
        top_n=top_n,
        perspective=perspective,
        shares=average_over_countries(per_country),
        per_country=per_country,
    )


def figure2_panels(
    dataset: BrowsingDataset,
    labels: Mapping[str, str],
    month: Month,
    top_ns: tuple[int, ...] = (100, 10_000),
    countries: tuple[str, ...] | None = None,
) -> list[CompositionPanel]:
    """All Figure 2 panels: platform × metric × top-N × perspective."""
    panels = []
    for platform in Platform.studied():
        for metric in Metric.studied():
            for top_n in top_ns:
                for perspective in ("domains", "traffic"):
                    panels.append(
                        composition_panel(
                            dataset, labels, platform, metric, month,
                            top_n, perspective, countries,
                        )
                    )
    return panels


def dominant_category(panel: CompositionPanel, exclude: tuple[str, ...] = ("Unknown",)) -> str:
    """The category with the plurality share in a panel."""
    candidates = {c: v for c, v in panel.shares.items() if c not in exclude}
    if not candidates:
        raise ValueError("panel has no categories outside the exclusion list")
    return max(candidates.items(), key=lambda kv: kv[1])[0]
