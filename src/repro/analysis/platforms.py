"""Desktop vs mobile browsing differences (Section 4.3 / Figures 4, 15).

For each category, compare the traffic-weighted volume on Android vs
Windows per country with Fisher's binomial proportion test under a
Bonferroni correction, then summarise the normalised difference
(A − W) / max(A, W) across the countries where the difference is
significant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.dataset import BrowsingDataset
from ..core.types import Metric, Month, Platform
from ..stats.correction import bonferroni
from ..stats.descriptive import median
from ..stats.fisher import normalized_difference, proportion_test_batch
from .weighting import weighted_volume_by_category


@dataclass(frozen=True)
class PlatformDifference:
    """One bar of Figure 4: a category's desktop-vs-mobile skew."""

    category: str
    median_score: float          # (A − W) / max(A, W) over significant countries
    n_significant: int           # countries where the difference is significant
    n_countries: int
    median_android: float
    median_windows: float

    @property
    def mobile_leaning(self) -> bool:
        return self.median_score > 0


def platform_differences(
    dataset: BrowsingDataset,
    labels: Mapping[str, str],
    metric: Metric,
    month: Month,
    top_n: int = 10_000,
    alpha: float = 0.05,
    effective_n: int = 100_000,
    min_significant: int | None = None,
    countries: tuple[str, ...] | None = None,
) -> list[PlatformDifference]:
    """Compute Figure 4 (or 15, with metric=TIME_ON_PAGE).

    Per country: per-category weighted volumes on both platforms, a
    Fisher proportion test per category, Bonferroni-corrected across
    categories.  A category appears in the output if it is significant
    in at least ``min_significant`` countries (default: a majority).
    """
    windows_lists = dataset.select(Platform.WINDOWS, metric, month, countries)
    android_lists = dataset.select(Platform.ANDROID, metric, month, countries)
    shared = sorted(set(windows_lists) & set(android_lists))
    if not shared:
        raise ValueError("no countries present on both platforms")
    if min_significant is None:
        min_significant = len(shared) // 2 + 1

    dist_w = dataset.distribution(Platform.WINDOWS, metric)
    dist_a = dataset.distribution(Platform.ANDROID, metric)

    scores: dict[str, list[float]] = {}
    significant: dict[str, int] = {}
    volumes_a: dict[str, list[float]] = {}
    volumes_w: dict[str, list[float]] = {}

    # Collect every category×country cell, then run the whole Fisher
    # grid through one batched call (the kernel memoizes repeated count
    # pairs); Bonferroni stays per-country over that country's slice.
    per_country: list[tuple[list[str], dict[str, float], dict[str, float]]] = []
    cells_a: list[float] = []
    cells_w: list[float] = []
    for country in shared:
        vol_w = weighted_volume_by_category(windows_lists[country], labels, dist_w, top_n)
        vol_a = weighted_volume_by_category(android_lists[country], labels, dist_a, top_n)
        categories = sorted(set(vol_w) | set(vol_a))
        per_country.append((categories, vol_a, vol_w))
        for category in categories:
            cells_a.append(vol_a.get(category, 0.0))
            cells_w.append(vol_w.get(category, 0.0))
    results = proportion_test_batch(cells_a, cells_w, effective_n)

    offset = 0
    for categories, vol_a, vol_w in per_country:
        p_values = [r.p_value for r in results[offset:offset + len(categories)]]
        offset += len(categories)
        rejected = bonferroni(p_values, alpha)
        for category, reject in zip(categories, rejected):
            a = vol_a.get(category, 0.0)
            w = vol_w.get(category, 0.0)
            volumes_a.setdefault(category, []).append(a)
            volumes_w.setdefault(category, []).append(w)
            if reject:
                significant[category] = significant.get(category, 0) + 1
                scores.setdefault(category, []).append(normalized_difference(a, w))

    out = []
    for category, n_sig in sorted(significant.items()):
        if n_sig < min_significant:
            continue
        out.append(
            PlatformDifference(
                category=category,
                median_score=median(scores[category]),
                n_significant=n_sig,
                n_countries=len(shared),
                median_android=median(volumes_a[category]),
                median_windows=median(volumes_w[category]),
            )
        )
    out.sort(key=lambda d: d.median_score)
    return out


def split_by_leaning(
    differences: list[PlatformDifference],
) -> tuple[list[PlatformDifference], list[PlatformDifference]]:
    """(desktop-leaning, mobile-leaning) categories, each sorted by |score|."""
    desktop = sorted(
        (d for d in differences if not d.mobile_leaning), key=lambda d: d.median_score
    )
    mobile = sorted(
        (d for d in differences if d.mobile_leaning), key=lambda d: -d.median_score
    )
    return desktop, mobile
