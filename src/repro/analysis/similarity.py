"""Country-to-country similarity (Section 5.3.1, 5.3.3 / Figures 10, 12, 18–20).

* Traffic-weighted RBO between every pair of countries' top-10K lists
  (the Figure 10 heatmap and its appendix variants);
* unweighted percent intersection per rank bucket, summarised as the
  cumulative sum of the sorted pairwise values (Figure 12).

Both run through the vectorized kernels in :mod:`repro.stats.kernels`:
the lists are interned to dense id arrays under one shared
:class:`~repro.core.vocab.SiteVocabulary` and every pair is a few
numpy passes instead of a Python rank loop.  Results are bit-identical
to the scalar reference (:func:`repro.stats.rbo.weighted_rbo`,
``RankedList.percent_intersection``); ``jobs > 1`` fans the pair loop
out across threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Mapping

import numpy as np

from ..core.dataset import BrowsingDataset
from ..core.distribution import TrafficDistribution
from ..core.errors import AnalysisError
from ..core.rankedlist import RankedList
from ..core.types import Metric, Month, Platform
from ..core.vocab import SiteVocabulary
from ..stats.kernels import bucket_intersections, pairwise_wrbo


@dataclass(frozen=True)
class SimilarityMatrix:
    """A symmetric country-pair similarity matrix."""

    countries: tuple[str, ...]
    values: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.countries)
        if self.values.shape != (n, n):
            raise ValueError("matrix shape must match country count")

    def _index(self, country: str) -> int:
        try:
            return self.countries.index(country)
        except ValueError:
            raise AnalysisError(
                f"unknown country {country!r}; "
                f"valid choices: {', '.join(self.countries)}"
            ) from None

    def pair(self, a: str, b: str) -> float:
        i = self._index(a)
        j = self._index(b)
        return float(self.values[i, j])

    def most_similar_to(self, country: str, k: int = 5) -> list[tuple[str, float]]:
        i = self._index(country)
        order = np.argsort(-self.values[i])
        out = []
        for j in order:
            if j == i:
                continue
            out.append((self.countries[int(j)], float(self.values[i, int(j)])))
            if len(out) == k:
                break
        return out

    def mean_similarity(self, country: str) -> float:
        """Average similarity to all other countries (outliers score low)."""
        i = self._index(country)
        mask = np.ones(len(self.countries), dtype=bool)
        mask[i] = False
        return float(self.values[i, mask].mean())


def weighted_rbo_matrix(
    lists_by_country: Mapping[str, RankedList],
    distribution: TrafficDistribution,
    depth: int = 10_000,
    *,
    vocab: SiteVocabulary | None = None,
    jobs: int = 1,
) -> SimilarityMatrix:
    """Pairwise traffic-weighted RBO over per-country lists.

    The weight of agreement at depth d is the traffic share of rank d
    (Section 5.3.1's replacement for RBO's geometric weights).  All
    C(n, 2) pairs are batched through
    :func:`repro.stats.kernels.pairwise_wrbo`; pass the dataset's
    shared ``vocab`` to reuse cached id arrays across analyses, and
    ``jobs > 1`` to split the pair loop over threads (scores are
    written to disjoint cells, so parallel runs are byte-identical).
    """
    countries = tuple(sorted(lists_by_country))
    n = len(countries)
    values = np.eye(n)
    max_depth = min(
        depth, min(len(lists_by_country[c]) for c in countries)
    )
    weights = distribution.weights(max_depth)
    if vocab is None:
        vocab = SiteVocabulary()
    ids = [lists_by_country[c].ids(vocab) for c in countries]
    scores = pairwise_wrbo(ids, weights, depth=max_depth, jobs=jobs)
    for score, (i, j) in zip(scores, combinations(range(n), 2)):
        values[i, j] = values[j, i] = score
    return SimilarityMatrix(countries, values)


def rbo_matrix_for(
    dataset: BrowsingDataset,
    platform: Platform,
    metric: Metric,
    month: Month,
    depth: int = 10_000,
    countries: tuple[str, ...] | None = None,
    *,
    jobs: int = 1,
) -> SimilarityMatrix:
    """Figure 10 (and 18–20): the wRBO matrix for one dataset slice."""
    lists = dataset.select(platform, metric, month, countries)
    if len(lists) < 2:
        raise ValueError("need at least two countries")
    return weighted_rbo_matrix(
        lists, dataset.distribution(platform, metric), depth,
        vocab=dataset.vocabulary(), jobs=jobs,
    )


@dataclass(frozen=True)
class IntersectionCurve:
    """Figure 12: sorted pairwise intersections, cumulatively summed."""

    bucket: int
    sorted_values: np.ndarray        # descending pairwise % intersections
    cumulative: np.ndarray

    @property
    def n_pairs(self) -> int:
        return len(self.sorted_values)

    @property
    def mean_intersection(self) -> float:
        return float(self.sorted_values.mean())


def _curves_from_counts(
    counts: np.ndarray,
    lengths: list[int],
    buckets: tuple[int, ...],
) -> list[IntersectionCurve]:
    """Percent-intersection curves from raw pairwise counts.

    The denominator matches ``percent_intersection`` on the truncated
    lists: ``min(bucket, len_a, len_b)`` (0 pairs score 0.0).
    """
    n = len(lengths)
    pair_mins = np.array(
        [min(lengths[i], lengths[j]) for i, j in combinations(range(n), 2)],
        dtype=np.int64,
    )
    curves = []
    for column, bucket in enumerate(buckets):
        denoms = np.minimum(pair_mins, bucket)
        values = np.where(denoms > 0, counts[:, column] / np.maximum(denoms, 1), 0.0)
        ordered = np.sort(values)[::-1]
        curves.append(IntersectionCurve(bucket, ordered, np.cumsum(ordered)))
    return curves


def pairwise_intersections(
    lists_by_country: Mapping[str, RankedList],
    bucket: int,
    *,
    vocab: SiteVocabulary | None = None,
) -> IntersectionCurve:
    """Unweighted percent intersection for every country pair at one bucket."""
    return intersection_curves_for_lists(
        lists_by_country, buckets=(bucket,), vocab=vocab
    )[0]


def intersection_curves_for_lists(
    lists_by_country: Mapping[str, RankedList],
    buckets: tuple[int, ...],
    *,
    vocab: SiteVocabulary | None = None,
    jobs: int = 1,
) -> list[IntersectionCurve]:
    """All pairs × all rank buckets from one kernel pass per pair."""
    countries = sorted(lists_by_country)
    if vocab is None:
        vocab = SiteVocabulary()
    ids = [lists_by_country[c].ids(vocab) for c in countries]
    lengths = [len(lists_by_country[c]) for c in countries]
    counts = bucket_intersections(ids, buckets, jobs=jobs)
    return _curves_from_counts(counts, lengths, tuple(buckets))


def intersection_curves(
    dataset: BrowsingDataset,
    platform: Platform,
    metric: Metric,
    month: Month,
    buckets: tuple[int, ...] = (10, 100, 1_000, 10_000),
    countries: tuple[str, ...] | None = None,
    *,
    jobs: int = 1,
) -> list[IntersectionCurve]:
    """Figure 12's family of curves across rank buckets."""
    lists = dataset.select(platform, metric, month, countries)
    if len(lists) < 2:
        raise ValueError("need at least two countries")
    return intersection_curves_for_lists(
        lists, tuple(buckets), vocab=dataset.vocabulary(), jobs=jobs,
    )
