"""Country-to-country similarity (Section 5.3.1, 5.3.3 / Figures 10, 12, 18–20).

* Traffic-weighted RBO between every pair of countries' top-10K lists
  (the Figure 10 heatmap and its appendix variants);
* unweighted percent intersection per rank bucket, summarised as the
  cumulative sum of the sorted pairwise values (Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Mapping

import numpy as np

from ..core.dataset import BrowsingDataset
from ..core.distribution import TrafficDistribution
from ..core.rankedlist import RankedList
from ..core.types import Metric, Month, Platform
from ..stats.rbo import weighted_rbo


@dataclass(frozen=True)
class SimilarityMatrix:
    """A symmetric country-pair similarity matrix."""

    countries: tuple[str, ...]
    values: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.countries)
        if self.values.shape != (n, n):
            raise ValueError("matrix shape must match country count")

    def pair(self, a: str, b: str) -> float:
        i = self.countries.index(a)
        j = self.countries.index(b)
        return float(self.values[i, j])

    def most_similar_to(self, country: str, k: int = 5) -> list[tuple[str, float]]:
        i = self.countries.index(country)
        order = np.argsort(-self.values[i])
        out = []
        for j in order:
            if j == i:
                continue
            out.append((self.countries[int(j)], float(self.values[i, int(j)])))
            if len(out) == k:
                break
        return out

    def mean_similarity(self, country: str) -> float:
        """Average similarity to all other countries (outliers score low)."""
        i = self.countries.index(country)
        mask = np.ones(len(self.countries), dtype=bool)
        mask[i] = False
        return float(self.values[i, mask].mean())


def weighted_rbo_matrix(
    lists_by_country: Mapping[str, RankedList],
    distribution: TrafficDistribution,
    depth: int = 10_000,
) -> SimilarityMatrix:
    """Pairwise traffic-weighted RBO over per-country lists.

    The weight of agreement at depth d is the traffic share of rank d
    (Section 5.3.1's replacement for RBO's geometric weights).
    """
    countries = tuple(sorted(lists_by_country))
    n = len(countries)
    values = np.eye(n)
    max_depth = min(
        depth, min(len(lists_by_country[c]) for c in countries)
    )
    weights = distribution.weights(max_depth)
    for i, j in combinations(range(n), 2):
        score = weighted_rbo(
            lists_by_country[countries[i]],
            lists_by_country[countries[j]],
            weights,
            depth=max_depth,
        )
        values[i, j] = values[j, i] = score
    return SimilarityMatrix(countries, values)


def rbo_matrix_for(
    dataset: BrowsingDataset,
    platform: Platform,
    metric: Metric,
    month: Month,
    depth: int = 10_000,
    countries: tuple[str, ...] | None = None,
) -> SimilarityMatrix:
    """Figure 10 (and 18–20): the wRBO matrix for one dataset slice."""
    lists = dataset.select(platform, metric, month, countries)
    if len(lists) < 2:
        raise ValueError("need at least two countries")
    return weighted_rbo_matrix(lists, dataset.distribution(platform, metric), depth)


@dataclass(frozen=True)
class IntersectionCurve:
    """Figure 12: sorted pairwise intersections, cumulatively summed."""

    bucket: int
    sorted_values: np.ndarray        # descending pairwise % intersections
    cumulative: np.ndarray

    @property
    def n_pairs(self) -> int:
        return len(self.sorted_values)

    @property
    def mean_intersection(self) -> float:
        return float(self.sorted_values.mean())


def pairwise_intersections(
    lists_by_country: Mapping[str, RankedList],
    bucket: int,
) -> IntersectionCurve:
    """Unweighted percent intersection for every country pair at one bucket."""
    countries = sorted(lists_by_country)
    tops = {c: lists_by_country[c].top(bucket) for c in countries}
    values = [
        tops[a].percent_intersection(tops[b])
        for a, b in combinations(countries, 2)
    ]
    ordered = np.sort(np.asarray(values))[::-1]
    return IntersectionCurve(bucket, ordered, np.cumsum(ordered))


def intersection_curves(
    dataset: BrowsingDataset,
    platform: Platform,
    metric: Metric,
    month: Month,
    buckets: tuple[int, ...] = (10, 100, 1_000, 10_000),
    countries: tuple[str, ...] | None = None,
) -> list[IntersectionCurve]:
    """Figure 12's family of curves across rank buckets."""
    lists = dataset.select(platform, metric, month, countries)
    if len(lists) < 2:
        raise ValueError("need at least two countries")
    return [pairwise_intersections(lists, bucket) for bucket in buckets]
