"""Traffic concentration across sites (Section 4.1 / Figure 1).

How much of all browsing goes to the top-N sites?  The analysis
consumes the traffic-distribution curves exactly as the paper does
("The traffic volume data in this section is provided directly by
Chrome") and adds the per-country view ("the top ranked website in each
country captures 12–33 % of all page loads").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dataset import BrowsingDataset
from ..core.distribution import TrafficDistribution
from ..core.types import Metric, Platform
from ..stats.descriptive import Quartiles, quartiles
from ..synth.traffic import country_top1_share

#: The rank thresholds Figure 1 and Section 4.1.2 discuss.
FIGURE1_RANKS: tuple[int, ...] = (1, 6, 7, 8, 10, 100, 1_000, 10_000, 100_000, 1_000_000)


@dataclass(frozen=True)
class ConcentrationRow:
    """Cumulative share captured by the top ``rank`` sites."""

    rank: int
    cumulative_share: float


@dataclass(frozen=True)
class ConcentrationCurve:
    """One Figure 1 series."""

    platform: Platform
    metric: Metric
    rows: tuple[ConcentrationRow, ...]

    def share_at(self, rank: int) -> float:
        for row in self.rows:
            if row.rank == rank:
                return row.cumulative_share
        raise KeyError(f"rank {rank} not tabulated")


def concentration_curve(
    distribution: TrafficDistribution,
    platform: Platform,
    metric: Metric,
    ranks: tuple[int, ...] = FIGURE1_RANKS,
) -> ConcentrationCurve:
    """Tabulate a distribution at the Figure 1 ranks."""
    rows = tuple(
        ConcentrationRow(int(r), distribution.cumulative_share(r))
        for r in ranks
        if r <= distribution.total_sites
    )
    return ConcentrationCurve(platform, metric, rows)


def all_concentration_curves(dataset: BrowsingDataset) -> list[ConcentrationCurve]:
    """All four Figure 1 series (platform × metric)."""
    curves = []
    for (platform, metric), dist in sorted(
        dataset.distributions().items(), key=lambda kv: (kv[0][0].value, kv[0][1].value)
    ):
        curves.append(concentration_curve(dist, platform, metric))
    return curves


def sites_for_traffic_share(distribution: TrafficDistribution, share: float) -> int:
    """How many top sites capture ``share`` of traffic (e.g. 7 for 50 %)."""
    return distribution.sites_for_share(share)


@dataclass(frozen=True)
class HeadlineConcentration:
    """The headline numbers of Section 4.1.2 for one (platform, metric)."""

    platform: Platform
    metric: Metric
    top1: float
    sites_for_quarter: int
    sites_for_half: int
    top100: float
    top10k: float
    top1m: float


def headline_concentration(
    distribution: TrafficDistribution, platform: Platform, metric: Metric
) -> HeadlineConcentration:
    """Compute the quoted concentration facts from a curve."""
    return HeadlineConcentration(
        platform=platform,
        metric=metric,
        top1=distribution.cumulative_share(1),
        sites_for_quarter=distribution.sites_for_share(0.25),
        sites_for_half=distribution.sites_for_share(0.50),
        top100=distribution.cumulative_share(100),
        top10k=distribution.cumulative_share(10_000),
        top1m=distribution.cumulative_share(min(1_000_000, distribution.total_sites)),
    )


def per_country_top1(
    countries: tuple[str, ...], seed: int = 2022
) -> tuple[dict[str, float], Quartiles]:
    """Per-country top-site share of page loads, plus its quartiles.

    Section 4.1.2: "the top ranked website in each country captures
    12–33 % of all page loads (median, 20 %)".
    """
    shares = {c: country_top1_share(c, seed) for c in countries}
    return shares, quartiles(shares.values())
