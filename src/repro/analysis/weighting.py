"""Shared traffic-weighting helpers.

Several analyses "model the percent of page loads and time on page per
category by computing a weighted count of sites per category with our
traffic distribution data from Section 4.1" — i.e. the site at rank r
contributes the traffic share of rank r rather than 1.  These helpers
implement that weighted counting over ranked lists.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.distribution import TrafficDistribution
from ..core.rankedlist import RankedList

UNKNOWN = "Unknown"


def label_of(site: str, labels: Mapping[str, str]) -> str:
    """The category label for a site, defaulting to Unknown."""
    return labels.get(site, UNKNOWN)


def count_by_category(
    ranked: RankedList,
    labels: Mapping[str, str],
    top_n: int | None = None,
) -> dict[str, int]:
    """Plain site counts per category over the top-N of a list."""
    sites = ranked.sites if top_n is None else ranked.top(top_n).sites
    counts: dict[str, int] = {}
    for site in sites:
        category = label_of(site, labels)
        counts[category] = counts.get(category, 0) + 1
    return counts


def share_by_category(
    ranked: RankedList,
    labels: Mapping[str, str],
    top_n: int | None = None,
) -> dict[str, float]:
    """Fraction of top-N *domains* per category (sums to 1)."""
    counts = count_by_category(ranked, labels, top_n)
    total = sum(counts.values())
    if total == 0:
        return {}
    return {c: n / total for c, n in counts.items()}


def weighted_volume_by_category(
    ranked: RankedList,
    labels: Mapping[str, str],
    distribution: TrafficDistribution,
    top_n: int | None = None,
    normalize: bool = True,
) -> dict[str, float]:
    """Traffic-weighted category volumes over the top-N of a list.

    The site at rank r contributes ``distribution.share_of_rank(r)``.
    With ``normalize=True`` the result is the share of *modelled top-N
    traffic* per category (sums to 1); otherwise it is the share of all
    traffic (sums to the distribution's cumulative share at N).
    """
    sites = ranked.sites if top_n is None else ranked.top(top_n).sites
    if not sites:
        return {}
    weights = distribution.weights(len(sites))
    volumes: dict[str, float] = {}
    for position, site in enumerate(sites):
        category = label_of(site, labels)
        volumes[category] = volumes.get(category, 0.0) + float(weights[position])
    if normalize:
        total = sum(volumes.values())
        if total > 0:
            volumes = {c: v / total for c, v in volumes.items()}
    return volumes


def per_site_share(
    ranked: RankedList,
    distribution: TrafficDistribution,
    top_n: int | None = None,
) -> dict[str, float]:
    """Estimated traffic share per individual site (rank → curve weight)."""
    sites = ranked.sites if top_n is None else ranked.top(top_n).sites
    weights = distribution.weights(len(sites)) if sites else np.empty(0)
    return {site: float(weights[i]) for i, site in enumerate(sites)}


def average_over_countries(
    per_country: Mapping[str, Mapping[str, float]],
    categories: tuple[str, ...] | None = None,
) -> dict[str, float]:
    """Mean per-category value across countries (the paper's global view).

    Countries missing a category contribute 0 for it, so the averages
    are comparable across categories.
    """
    if not per_country:
        return {}
    if categories is None:
        seen: set[str] = set()
        for mapping in per_country.values():
            seen.update(mapping)
        categories = tuple(sorted(seen))
    n = len(per_country)
    return {
        category: sum(m.get(category, 0.0) for m in per_country.values()) / n
        for category in categories
    }
