"""The paper's analyses, one module per section/figure family.

==================  ==============================================
Module              Paper section / figures
==================  ==============================================
concentration       §4.1, Figure 1
composition         §4.2.2, Figure 2
prevalence          §4.2.3, Figures 3 & 14
platforms           §4.3, Figures 4 & 15
metrics_compare     §4.4, Figures 5 & 16
temporal            §4.5
endemicity          §5.1–5.2, Figures 6–8, Tables 1 & 2
popularity_mix      §5.2, Figures 9 & 17
similarity          §5.3.1/5.3.3, Figures 10, 12, 18–20
clustering          §5.3.1, Figures 11 & 21
top10               §4.2.1, §5.3.2, Table 4
==================  ==============================================
"""

from .clustering import ClusterReport, CountryCluster, cluster_countries
from .composition import CompositionPanel, composition_panel, dominant_category, figure2_panels
from .concentration import (
    ConcentrationCurve,
    HeadlineConcentration,
    all_concentration_curves,
    concentration_curve,
    headline_concentration,
    per_country_top1,
)
from .geography import (
    GLOBAL_SOUTH,
    GlobalSouthPattern,
    SimilarityDecomposition,
    decompose_similarity,
    explained_variance,
    global_south_patterns,
)
from .endemicity import (
    ALL_SHAPES,
    EndemicityResult,
    MISSING_RANK,
    PopularityCurve,
    category_split,
    classify_shape,
    exclusivity_fraction,
    popularity_curves,
    score_endemicity,
)
from .metrics_compare import (
    LOADS_LEANING,
    OTHER,
    TIME_LEANING,
    LeaningComposition,
    MetricOverlap,
    category_overlap,
    classify_leaning,
    leaning_composition,
    metric_overlap,
)
from .platforms import PlatformDifference, platform_differences, split_by_leaning
from .popularity_mix import GlobalShareByBucket, global_share_by_rank, national_majority_rank
from .prevalence import PrevalenceCurve, head_tail_ratio, prevalence_by_rank
from .sampling import (
    CoverageReport,
    compare_strategies,
    country_coverage,
    coverage_report,
    global_study_set,
    hybrid_study_set,
)
from .similarity import (
    IntersectionCurve,
    SimilarityMatrix,
    intersection_curves,
    pairwise_intersections,
    rbo_matrix_for,
    weighted_rbo_matrix,
)
from .temporal import (
    DecemberAnomaly,
    MonthPairSimilarity,
    adjacent_month_series,
    anchored_series,
    category_share_over_months,
    december_anomaly,
    month_pair_similarity,
)
from .top10 import (
    CategoryPresence,
    PlatformExclusives,
    category_presence,
    single_country_sites,
    tag_presence,
    union_of_top_sites,
    windows_only_top_sites,
)
from .weighting import (
    average_over_countries,
    count_by_category,
    per_site_share,
    share_by_category,
    weighted_volume_by_category,
)

__all__ = [
    "ALL_SHAPES",
    "CategoryPresence",
    "ClusterReport",
    "CompositionPanel",
    "ConcentrationCurve",
    "CoverageReport",
    "CountryCluster",
    "DecemberAnomaly",
    "EndemicityResult",
    "GLOBAL_SOUTH",
    "GlobalShareByBucket",
    "GlobalSouthPattern",
    "SimilarityDecomposition",
    "HeadlineConcentration",
    "IntersectionCurve",
    "LOADS_LEANING",
    "LeaningComposition",
    "MISSING_RANK",
    "MetricOverlap",
    "MonthPairSimilarity",
    "OTHER",
    "PlatformDifference",
    "PlatformExclusives",
    "PopularityCurve",
    "PrevalenceCurve",
    "SimilarityMatrix",
    "TIME_LEANING",
    "adjacent_month_series",
    "all_concentration_curves",
    "anchored_series",
    "average_over_countries",
    "category_overlap",
    "category_presence",
    "category_share_over_months",
    "category_split",
    "classify_leaning",
    "classify_shape",
    "cluster_countries",
    "compare_strategies",
    "composition_panel",
    "concentration_curve",
    "count_by_category",
    "country_coverage",
    "coverage_report",
    "december_anomaly",
    "decompose_similarity",
    "dominant_category",
    "exclusivity_fraction",
    "explained_variance",
    "figure2_panels",
    "global_share_by_rank",
    "global_south_patterns",
    "global_study_set",
    "hybrid_study_set",
    "head_tail_ratio",
    "headline_concentration",
    "intersection_curves",
    "leaning_composition",
    "metric_overlap",
    "month_pair_similarity",
    "national_majority_rank",
    "pairwise_intersections",
    "per_country_top1",
    "per_site_share",
    "platform_differences",
    "popularity_curves",
    "rbo_matrix_for",
    "score_endemicity",
    "share_by_category",
    "single_country_sites",
    "split_by_leaning",
    "tag_presence",
    "union_of_top_sites",
    "weighted_rbo_matrix",
    "weighted_volume_by_category",
    "windows_only_top_sites",
]
