"""Geographic structure behind country similarity (Section 5.3).

Quantifies two of the paper's qualitative observations:

* "clusters of web browsing behavior follow patterns of shared
  geography and shared language" — decompose pairwise similarity by
  whether the pair shares a language, a region group, or a continent;
* "Geographic proximity and shared language only partially explain
  country differences" — the decomposition leaves most variance
  unexplained;
* the global-south patterns of Section 5.3.2 (universities, gambling
  and sports sites concentrate in global-south top-10 lists).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Mapping

import numpy as np

from ..core.rankedlist import RankedList
from ..world.countries import get_country
from .similarity import SimilarityMatrix

#: Study countries conventionally counted as the global south (Africa,
#: Latin America, and south/southeast Asia).
GLOBAL_SOUTH: frozenset[str] = frozenset({
    "DZ", "EG", "KE", "MA", "NG", "TN", "ZA",
    "IN", "VN", "ID", "TH", "PH",
    "CR", "DO", "GT", "MX", "PA",
    "AR", "BO", "BR", "CL", "CO", "EC", "PE", "UY", "VE",
})


@dataclass(frozen=True)
class SimilarityDecomposition:
    """Mean pairwise similarity by relationship class."""

    shared_language: float
    same_region_group: float
    same_continent_only: float       # same continent, no shared language/group
    unrelated: float
    n_pairs: dict[str, int]

    @property
    def language_lift(self) -> float:
        """How much sharing a language raises similarity over baseline."""
        return self.shared_language - self.unrelated

    @property
    def geography_lift(self) -> float:
        return self.same_continent_only - self.unrelated


def decompose_similarity(matrix: SimilarityMatrix) -> SimilarityDecomposition:
    """Average pairwise similarity per relationship class."""
    buckets: dict[str, list[float]] = {
        "language": [], "group": [], "continent": [], "unrelated": [],
    }
    for a, b in combinations(matrix.countries, 2):
        ca, cb = get_country(a), get_country(b)
        value = matrix.pair(a, b)
        if ca.region_group == cb.region_group:
            buckets["group"].append(value)
        elif ca.shares_language(cb):
            buckets["language"].append(value)
        elif ca.continent == cb.continent:
            buckets["continent"].append(value)
        else:
            buckets["unrelated"].append(value)
    if not buckets["unrelated"]:
        raise ValueError("similarity matrix has no unrelated pairs")
    return SimilarityDecomposition(
        shared_language=float(np.mean(buckets["language"])) if buckets["language"] else float("nan"),
        same_region_group=float(np.mean(buckets["group"])) if buckets["group"] else float("nan"),
        same_continent_only=float(np.mean(buckets["continent"])) if buckets["continent"] else float("nan"),
        unrelated=float(np.mean(buckets["unrelated"])),
        n_pairs={k: len(v) for k, v in buckets.items()},
    )


def explained_variance(matrix: SimilarityMatrix) -> float:
    """R² of similarity regressed on (shared language, group, continent).

    The paper's caveat — geography and language only *partially* explain
    differences — corresponds to this being well below 1.
    """
    features = []
    target = []
    for a, b in combinations(matrix.countries, 2):
        ca, cb = get_country(a), get_country(b)
        features.append([
            1.0,
            1.0 if ca.shares_language(cb) else 0.0,
            1.0 if ca.region_group == cb.region_group else 0.0,
            1.0 if ca.continent == cb.continent else 0.0,
        ])
        target.append(matrix.pair(a, b))
    x = np.asarray(features)
    y = np.asarray(target)
    coef, *_ = np.linalg.lstsq(x, y, rcond=None)
    residuals = y - x @ coef
    total = float(np.sum((y - y.mean()) ** 2))
    if total == 0.0:
        return 0.0
    return 1.0 - float(np.sum(residuals**2)) / total


@dataclass(frozen=True)
class GlobalSouthPattern:
    """Where a top-10 site class concentrates (Section 5.3.2)."""

    tag: str
    south_countries: tuple[str, ...]
    north_countries: tuple[str, ...]

    @property
    def south_fraction(self) -> float:
        total = len(self.south_countries) + len(self.north_countries)
        if total == 0:
            return 0.0
        return len(self.south_countries) / total


def global_south_patterns(
    lists_by_country: Mapping[str, RankedList],
    tags: Mapping[str, tuple[str, ...]],
    class_tags: tuple[str, ...] = ("university", "gambling", "sports"),
    top_k: int = 10,
) -> dict[str, GlobalSouthPattern]:
    """Per class: the split of top-K presence between global south/north.

    Paper: 9/10 university countries, 11/14 gambling countries and 7/9
    sports countries are in the global south.
    """
    presence: dict[str, set[str]] = {tag: set() for tag in class_tags}
    for country, ranked in lists_by_country.items():
        for site in ranked.top(top_k).sites:
            for tag in tags.get(site, ()):
                if tag in presence:
                    presence[tag].add(country)
    return {
        tag: GlobalSouthPattern(
            tag=tag,
            south_countries=tuple(sorted(c for c in countries if c in GLOBAL_SOUTH)),
            north_countries=tuple(sorted(c for c in countries if c not in GLOBAL_SOUTH)),
        )
        for tag, countries in presence.items()
    }
