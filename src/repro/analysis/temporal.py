"""Temporal stability of website popularity (Section 4.5).

Three measurements:

* adjacent-month intersection / Spearman per rank bucket (top 20, 100,
  10K), plus September against every later month;
* the December anomaly (lower similarity to both its neighbours, most
  pronounced for time on Windows);
* stability of the category distribution over time (Education drops and
  Ecommerce rises in December).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.dataset import BrowsingDataset
from ..core.types import Metric, Month, Platform
from ..stats.descriptive import Quartiles, quartiles
from ..stats.kernels import rank_pairs_ids
from ..stats.spearman import spearman_rho
from .weighting import share_by_category

#: Rank buckets used throughout Section 4.5.
DEFAULT_BUCKETS: tuple[int, ...] = (20, 100, 10_000)


@dataclass(frozen=True)
class MonthPairSimilarity:
    """List agreement between two months, per rank bucket."""

    platform: Platform
    metric: Metric
    month_a: Month
    month_b: Month
    bucket: int
    intersection: Quartiles
    spearman: Quartiles


def month_pair_similarity(
    dataset: BrowsingDataset,
    platform: Platform,
    metric: Metric,
    month_a: Month,
    month_b: Month,
    bucket: int,
    countries: tuple[str, ...] | None = None,
) -> MonthPairSimilarity:
    """Intersection/Spearman between two months, aggregated over countries.

    Per country, one :func:`repro.stats.kernels.rank_pairs_ids` pass
    over the interned lists yields both statistics — the intersection
    size (the pair count) and the Spearman input — without building
    truncated lists or rank dicts.
    """
    lists_a = dataset.select(platform, metric, month_a, countries)
    lists_b = dataset.select(platform, metric, month_b, countries)
    shared = sorted(set(lists_a) & set(lists_b))
    if not shared:
        raise ValueError(f"no countries with both {month_a} and {month_b}")
    vocab = dataset.vocabulary()
    intersections = []
    rhos = []
    for country in shared:
        ids_a = lists_a[country].ids(vocab)
        ids_b = lists_b[country].ids(vocab)
        xs, ys = rank_pairs_ids(ids_a, ids_b, depth=bucket)
        denom = min(bucket, len(ids_a), len(ids_b))
        intersections.append(len(xs) / denom if denom else 0.0)
        rho = spearman_rho(xs, ys) if len(xs) >= 2 else float("nan")
        if rho == rho:  # not NaN
            rhos.append(rho)
    return MonthPairSimilarity(
        platform, metric, month_a, month_b, bucket,
        quartiles(intersections), quartiles(rhos or [float("nan")]),
    )


def adjacent_month_series(
    dataset: BrowsingDataset,
    platform: Platform,
    metric: Metric,
    bucket: int,
    countries: tuple[str, ...] | None = None,
) -> list[MonthPairSimilarity]:
    """Similarity for every adjacent month pair in the dataset."""
    months = dataset.months
    return [
        month_pair_similarity(dataset, platform, metric, a, b, bucket, countries)
        for a, b in zip(months, months[1:])
    ]


def anchored_series(
    dataset: BrowsingDataset,
    platform: Platform,
    metric: Metric,
    bucket: int,
    anchor: Month | None = None,
    countries: tuple[str, ...] | None = None,
) -> list[MonthPairSimilarity]:
    """The anchor month (default: the first) against every later month."""
    months = dataset.months
    anchor = anchor or months[0]
    return [
        month_pair_similarity(dataset, platform, metric, anchor, m, bucket, countries)
        for m in months
        if m > anchor
    ]


@dataclass(frozen=True)
class DecemberAnomaly:
    """How much December stands out from the other adjacent pairs."""

    platform: Platform
    metric: Metric
    bucket: int
    december_intersection: float        # median over the pairs touching December
    other_intersection: float           # median over the remaining adjacent pairs

    @property
    def gap(self) -> float:
        return self.other_intersection - self.december_intersection

    @property
    def is_anomalous(self) -> bool:
        return self.gap > 0


def december_anomaly(
    dataset: BrowsingDataset,
    platform: Platform,
    metric: Metric,
    bucket: int = 10_000,
    countries: tuple[str, ...] | None = None,
) -> DecemberAnomaly:
    """Quantify December's dissimilarity from its neighbours."""
    series = adjacent_month_series(dataset, platform, metric, bucket, countries)
    touching = [
        s.intersection.median for s in series
        if s.month_a.is_december or s.month_b.is_december
    ]
    others = [
        s.intersection.median for s in series
        if not (s.month_a.is_december or s.month_b.is_december)
    ]
    if not touching or not others:
        raise ValueError("need both December-adjacent and other month pairs")
    return DecemberAnomaly(
        platform, metric, bucket,
        december_intersection=sorted(touching)[len(touching) // 2],
        other_intersection=sorted(others)[len(others) // 2],
    )


def category_share_over_months(
    dataset: BrowsingDataset,
    labels: Mapping[str, str],
    platform: Platform,
    metric: Metric,
    category: str,
    top_n: int = 10_000,
    countries: tuple[str, ...] | None = None,
) -> dict[Month, float]:
    """Median share of top-N domains in ``category``, per month.

    Section 4.5: "Education drops from 8.4 % to 6.8 % of sites and
    Ecommerce rises from 5.0 % to 6.1 % for desktop top 10K time on
    page" in December.
    """
    out: dict[Month, float] = {}
    for month in dataset.months:
        lists = dataset.select(platform, metric, month, countries)
        if not lists:
            continue
        shares = [
            share_by_category(ranked, labels, top_n).get(category, 0.0)
            for ranked in lists.values()
        ]
        out[month] = quartiles(shares).median
    return out
