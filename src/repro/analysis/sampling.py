"""Study-set sampling strategies (Section 6, "Lessons for geo-aware
methodology").

The paper's discussion hypothesises that "taking the global top 1K
together with the top 1K from each country may lead to more
geographically generalizable conclusions than taking simply the global
top 10K".  This module makes that testable: build candidate study sets,
then measure how much of each country's modelled traffic they cover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.distribution import TrafficDistribution
from ..core.rankedlist import RankedList
from ..export.crux import global_ranking
from ..stats.descriptive import Quartiles, quartiles


def global_study_set(
    lists_by_country: Mapping[str, RankedList],
    distribution: TrafficDistribution,
    n: int,
) -> set[str]:
    """The global top-N (the conventional "top million list" design)."""
    if n < 1:
        raise ValueError("n must be positive")
    ranking = global_ranking(lists_by_country, distribution)
    return set(ranking.top(n).sites)


def hybrid_study_set(
    lists_by_country: Mapping[str, RankedList],
    distribution: TrafficDistribution,
    global_n: int,
    per_country_n: int,
) -> set[str]:
    """Global top-N ∪ each country's top-M (the paper's recommendation)."""
    out = global_study_set(lists_by_country, distribution, global_n)
    for ranked in lists_by_country.values():
        out.update(ranked.top(per_country_n).sites)
    return out


def country_coverage(
    study_set: set[str],
    ranked: RankedList,
    distribution: TrafficDistribution,
) -> float:
    """Fraction of a country's modelled traffic the study set captures.

    Weighted by the per-rank traffic shares, normalised to the traffic
    modelled by the country's full list — i.e. 1.0 means the study set
    contains every site this country's users meaningfully visit.
    """
    if len(ranked) == 0:
        return 0.0
    weights = distribution.weights(len(ranked))
    covered = sum(
        float(weights[i]) for i, site in enumerate(ranked.sites)
        if site in study_set
    )
    total = float(weights.sum())
    return covered / total if total > 0 else 0.0


@dataclass(frozen=True)
class CoverageReport:
    """Per-country coverage of one study set."""

    name: str
    size: int
    per_country: dict[str, float]
    stats: Quartiles

    @property
    def minimum(self) -> float:
        return min(self.per_country.values())

    @property
    def worst_countries(self) -> list[str]:
        ordered = sorted(self.per_country, key=self.per_country.get)
        return ordered[:5]


def coverage_report(
    name: str,
    study_set: set[str],
    lists_by_country: Mapping[str, RankedList],
    distribution: TrafficDistribution,
) -> CoverageReport:
    """Evaluate a study set against every country."""
    per_country = {
        country: country_coverage(study_set, ranked, distribution)
        for country, ranked in lists_by_country.items()
    }
    if not per_country:
        raise ValueError("no countries to evaluate")
    return CoverageReport(
        name=name,
        size=len(study_set),
        per_country=per_country,
        stats=quartiles(per_country.values()),
    )


def compare_strategies(
    lists_by_country: Mapping[str, RankedList],
    distribution: TrafficDistribution,
    global_n: int = 10_000,
    hybrid_global_n: int = 1_000,
    hybrid_per_country_n: int = 1_000,
) -> tuple[CoverageReport, CoverageReport]:
    """(global-only report, hybrid report) for the paper's §6 hypothesis."""
    global_set = global_study_set(lists_by_country, distribution, global_n)
    hybrid_set = hybrid_study_set(
        lists_by_country, distribution, hybrid_global_n, hybrid_per_country_n
    )
    return (
        coverage_report(f"global top-{global_n}", global_set,
                        lists_by_country, distribution),
        coverage_report(
            f"global top-{hybrid_global_n} + per-country top-{hybrid_per_country_n}",
            hybrid_set, lists_by_country, distribution,
        ),
    )
