"""Global vs national popularity: endemicity scores (Sections 5.1–5.2).

The paper's two-step construction:

1. **Website popularity curves** — for each site, the sorted vector of
   its per-country ranks (missing countries get rank 10,001), plotted
   as −log10(rank).  Six characteristic shapes emerge (Figure 6 /
   Table 1).

2. **Endemicity score** — the area between the flattest possible curve
   at the site's best rank and its actual curve:

       E_w = Σ_i (log10(r_i) − log10(r_1))  ∈ [0, ~180 for 45 countries]

   Small scores = globally popular; large = endemic to one place.
   Globally popular sites are found by outlier detection on the
   distance between each site's score and the theoretical upper bound
   at its best rank (Figure 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..core.rankedlist import RankedList
from ..core.vocab import SiteVocabulary
from ..stats.kernels import rank_matrix
from ..stats.outliers import OutlierResult, mad_outliers

#: The sentinel rank for a country whose top-10K misses the site
#: ("the lowest possible rank value + 1").
MISSING_RANK = 10_001


@dataclass(frozen=True)
class PopularityCurve:
    """One site's sorted per-country rank vector."""

    site: str
    ranks: tuple[int, ...]           # ascending; MISSING_RANK for absences

    def __post_init__(self) -> None:
        if not self.ranks:
            raise ValueError("curve needs at least one rank")
        if any(b < a for a, b in zip(self.ranks, self.ranks[1:])):
            raise ValueError("ranks must be sorted ascending")

    @property
    def best_rank(self) -> int:
        return self.ranks[0]

    @property
    def n_present(self) -> int:
        return sum(1 for r in self.ranks if r < MISSING_RANK)

    @property
    def n_countries(self) -> int:
        return len(self.ranks)

    def values(self) -> np.ndarray:
        """The plotted curve: −log10(rank) per country, best first."""
        return -np.log10(np.asarray(self.ranks, dtype=float))

    def endemicity_score(self) -> float:
        """E_w = Σ (log10(r_i) − log10(r_1))."""
        logs = np.log10(np.asarray(self.ranks, dtype=float))
        return float(np.sum(logs - logs[0]))

    def upper_bound(self) -> float:
        """Maximum possible score for this best rank (all others missing)."""
        return (self.n_countries - 1) * (
            math.log10(MISSING_RANK) - math.log10(self.best_rank)
        )

    def distance_from_bound(self) -> float:
        """How far below maximal endemicity the site sits (Figure 7's y-gap)."""
        return self.upper_bound() - self.endemicity_score()

    def relative_distance(self) -> float:
        """distance_from_bound / upper_bound, in [0, 1].

        Scale-free in the best rank: approximately
        (countries present − 1) / (countries − 1), weighted by how
        strong the extra presences are.  0 = maximally endemic,
        1 = identical rank everywhere.  The outlier detection that
        separates globally popular sites runs on this quantity, so a
        champion site with best rank 3 in one country is not confused
        with a global site merely because its *absolute* bound is huge.
        """
        bound = self.upper_bound()
        if bound <= 0.0:
            return 0.0
        return self.distance_from_bound() / bound


#: The six curve shapes of Figure 6 / Table 1.
SHAPE_GLOBAL_FLAT = "global-flat"            # similar rank everywhere (google)
SHAPE_GLOBAL_SLOPE = "global-slope"          # everywhere, gradually weaker
SHAPE_MOSTLY_GLOBAL = "mostly-global"        # most countries, absent in a few
SHAPE_MULTI_REGIONAL = "multi-regional"      # strong plateau in a few countries (hbomax)
SHAPE_SINGLE_COUNTRY = "single-country"      # one country only
SHAPE_SCATTERED_TAIL = "scattered-tail"      # weak presence in a handful

ALL_SHAPES = (
    SHAPE_GLOBAL_FLAT,
    SHAPE_GLOBAL_SLOPE,
    SHAPE_MOSTLY_GLOBAL,
    SHAPE_MULTI_REGIONAL,
    SHAPE_SINGLE_COUNTRY,
    SHAPE_SCATTERED_TAIL,
)


def classify_shape(curve: PopularityCurve) -> str:
    """Assign a popularity curve to one of the six Table 1 shapes."""
    n = curve.n_countries
    present = curve.n_present
    logs = [math.log10(r) for r in curve.ranks if r < MISSING_RANK]
    spread = (logs[-1] - logs[0]) if logs else 0.0

    if present <= 1:
        return SHAPE_SINGLE_COUNTRY
    if present >= n:
        return SHAPE_GLOBAL_FLAT if spread <= 1.0 else SHAPE_GLOBAL_SLOPE
    if present >= 0.8 * n:
        return SHAPE_MOSTLY_GLOBAL
    # Partially present: plateau (consistently strong where present) vs
    # scattered tail presence.
    strong = sum(1 for r in curve.ranks if r <= 1_000)
    if strong >= 2 and strong >= 0.6 * present:
        return SHAPE_MULTI_REGIONAL
    return SHAPE_SCATTERED_TAIL


def popularity_curves(
    lists_by_country: Mapping[str, RankedList],
    eligible_rank: int = 1_000,
    *,
    vocab: SiteVocabulary | None = None,
) -> list[PopularityCurve]:
    """Curves for every site ranking in the top ``eligible_rank``
    of at least one country (the paper's 23,785-site population).

    Vectorized: the lists are interned once, the eligible population is
    a ``np.unique`` over the prefix id arrays, and the full site ×
    country rank matrix comes from
    :func:`repro.stats.kernels.rank_matrix` (one scatter + gather per
    country) followed by a row sort — no per-site dict probes.
    """
    countries = sorted(lists_by_country)
    if not countries:
        return []
    if vocab is None:
        vocab = SiteVocabulary()
    id_arrays = [lists_by_country[c].ids(vocab) for c in countries]
    prefixes = [ids[:eligible_rank] for ids in id_arrays]
    eligible_ids = np.unique(np.concatenate(prefixes))
    if len(eligible_ids) == 0:
        return []
    # The curves are emitted in site-name order, exactly as the scalar
    # reference iterated ``sorted(eligible)``.
    by_name = sorted(
        (vocab.site_of(int(sid)), int(sid)) for sid in eligible_ids
    )
    site_ids = np.fromiter(
        (sid for _, sid in by_name), dtype=np.int64, count=len(by_name)
    )
    ranks = rank_matrix(id_arrays, site_ids, missing=MISSING_RANK)
    ranks.sort(axis=1)
    return [
        PopularityCurve(name, tuple(int(r) for r in row))
        for (name, _), row in zip(by_name, ranks)
    ]


@dataclass(frozen=True)
class EndemicityResult:
    """Scored and classified site population for one (platform, metric)."""

    curves: tuple[PopularityCurve, ...]
    scores: np.ndarray                  # endemicity score per curve
    global_mask: np.ndarray             # True where globally popular
    outliers: OutlierResult

    @property
    def global_sites(self) -> set[str]:
        return {c.site for c, g in zip(self.curves, self.global_mask) if g}

    @property
    def national_sites(self) -> set[str]:
        return {c.site for c, g in zip(self.curves, self.global_mask) if not g}

    @property
    def global_fraction(self) -> float:
        if len(self.global_mask) == 0:
            return 0.0
        return float(self.global_mask.mean())


def score_endemicity(
    lists_by_country: Mapping[str, RankedList],
    eligible_rank: int = 1_000,
    mad_threshold: float = 3.5,
    *,
    vocab: SiteVocabulary | None = None,
) -> EndemicityResult:
    """Run the full Section 5.1 pipeline on one dataset slice.

    Outlier detection runs on the *relative* distance from the upper
    bound (distance / bound); *upper* outliers — sites far below maximal
    endemicity for their own best rank — are the globally popular ones.
    """
    curves = popularity_curves(lists_by_country, eligible_rank, vocab=vocab)
    if not curves:
        raise ValueError("no eligible sites")
    scores = np.array([c.endemicity_score() for c in curves])
    distances = np.array([c.relative_distance() for c in curves])
    outliers = mad_outliers(distances, threshold=mad_threshold, side="upper")
    return EndemicityResult(
        curves=tuple(curves),
        scores=scores,
        global_mask=outliers.mask,
        outliers=outliers,
    )


def exclusivity_fraction(
    lists_by_country: Mapping[str, RankedList],
    head_rank: int = 1_000,
) -> tuple[float, int]:
    """Section 5.1's headline: of the sites ranking in the top
    ``head_rank`` for at least one country, the fraction appearing in
    **no other** country's full list.  Returns (fraction, population).

    Paper: 13K of 24K sites (53.9 %).
    """
    countries = sorted(lists_by_country)
    membership: dict[str, int] = {}
    heads: set[str] = set()
    for country in countries:
        ranked = lists_by_country[country]
        heads.update(ranked.top(head_rank).sites)
        for site in ranked.sites:
            membership[site] = membership.get(site, 0) + 1
    if not heads:
        raise ValueError("no head sites")
    exclusive = sum(1 for site in heads if membership.get(site, 0) <= 1)
    return exclusive / len(heads), len(heads)


def category_split(
    result: EndemicityResult,
    labels: Mapping[str, str],
) -> tuple[dict[str, float], dict[str, float]]:
    """Figure 8: category shares of globally vs nationally popular sites."""
    def shares(sites: set[str]) -> dict[str, float]:
        if not sites:
            return {}
        counts: dict[str, int] = {}
        for site in sites:
            category = labels.get(site, "Unknown")
            counts[category] = counts.get(category, 0) + 1
        total = len(sites)
        return {c: n / total for c, n in counts.items()}

    return shares(result.global_sites), shares(result.national_sites)
