"""Page loads vs time on page (Section 4.4 / Figures 5, 16).

Two analyses:

* **overlap** — per-country top-10K intersection and within-intersection
  Spearman between the two popularity metrics ("the median intersection
  is 65 % of sites for desktop and 74 % for mobile ... Spearman's
  correlation coefficient is 0.65 for desktop and 0.69 for mobile");
* **leaning** — classify sites into loads-leaning / time-leaning /
  other by the ratio of their estimated loads share to time share
  (highest and lowest 20 % of ratios), then compare the category
  composition of the three classes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..core.dataset import BrowsingDataset
from ..core.rankedlist import RankedList
from ..core.types import Metric, Month, Platform
from ..stats.descriptive import Quartiles, quartiles
from ..stats.kernels import rank_pairs_ids
from ..stats.spearman import spearman_from_lists, spearman_rho
from .weighting import per_site_share


@dataclass(frozen=True)
class MetricOverlap:
    """Per-platform metric agreement across countries."""

    platform: Platform
    intersections: dict[str, float]       # country -> % intersection
    spearmans: dict[str, float]           # country -> rho within intersection
    intersection_stats: Quartiles
    spearman_stats: Quartiles


def metric_overlap(
    dataset: BrowsingDataset,
    platform: Platform,
    month: Month,
    top_n: int = 10_000,
    countries: tuple[str, ...] | None = None,
) -> MetricOverlap:
    """Intersection % and Spearman between loads and time lists.

    One :func:`repro.stats.kernels.rank_pairs_ids` pass per country
    yields both statistics from the interned lists.
    """
    loads = dataset.select(platform, Metric.PAGE_LOADS, month, countries)
    time = dataset.select(platform, Metric.TIME_ON_PAGE, month, countries)
    shared = sorted(set(loads) & set(time))
    if not shared:
        raise ValueError("no countries with both metrics")
    vocab = dataset.vocabulary()
    intersections: dict[str, float] = {}
    spearmans: dict[str, float] = {}
    for country in shared:
        ids_a = loads[country].ids(vocab)
        ids_b = time[country].ids(vocab)
        xs, ys = rank_pairs_ids(ids_a, ids_b, depth=top_n)
        denom = min(top_n, len(ids_a), len(ids_b))
        intersections[country] = len(xs) / denom if denom else 0.0
        rho = spearman_rho(xs, ys) if len(xs) >= 2 else float("nan")
        if not math.isnan(rho):
            spearmans[country] = rho
    return MetricOverlap(
        platform=platform,
        intersections=intersections,
        spearmans=spearmans,
        intersection_stats=quartiles(intersections.values()),
        spearman_stats=quartiles(spearmans.values()),
    )


def category_overlap(
    loads_list: RankedList,
    time_list: RankedList,
    labels: Mapping[str, str],
    category: str,
    top_n: int = 10_000,
) -> tuple[float, float]:
    """(intersection %, Spearman) restricted to one category's sites.

    Section 4.4: "Correlation values remain in the same range within
    website categories".
    """
    a = loads_list.top(top_n).filter(lambda s: labels.get(s, "Unknown") == category)
    b = time_list.top(top_n).filter(lambda s: labels.get(s, "Unknown") == category)
    if len(a) == 0 or len(b) == 0:
        return 0.0, float("nan")
    return a.percent_intersection(b), spearman_from_lists(a, b)


LOADS_LEANING = "loads-leaning"
TIME_LEANING = "time-leaning"
OTHER = "other"


@dataclass(frozen=True)
class LeaningClassification:
    """Per-site leaning classes for one country."""

    country: str
    classes: dict[str, str]               # site -> class label

    def sites_in(self, leaning: str) -> list[str]:
        return [s for s, c in self.classes.items() if c == leaning]


def classify_leaning(
    loads_list: RankedList,
    time_list: RankedList,
    dataset: BrowsingDataset,
    platform: Platform,
    country: str,
    top_n: int = 10_000,
    tail_fraction: float = 0.20,
) -> LeaningClassification:
    """Classify the union of both top-N lists by loads/time share ratio.

    Sites absent from one list get that metric's smallest modelled share
    (the rank just past the list end), which pushes them toward the
    extreme ratios — exactly the intuition that a site only ranked by
    time is time-leaning.
    """
    if not 0.0 < tail_fraction < 0.5:
        raise ValueError("tail_fraction must be in (0, 0.5)")
    dist_loads = dataset.distribution(platform, Metric.PAGE_LOADS)
    dist_time = dataset.distribution(platform, Metric.TIME_ON_PAGE)
    loads_share = per_site_share(loads_list.top(top_n), dist_loads)
    time_share = per_site_share(time_list.top(top_n), dist_time)
    floor_loads = dist_loads.share_of_rank(min(top_n, len(loads_list)) + 1)
    floor_time = dist_time.share_of_rank(min(top_n, len(time_list)) + 1)

    ratios: dict[str, float] = {}
    for site in set(loads_share) | set(time_share):
        num = loads_share.get(site, floor_loads)
        den = time_share.get(site, floor_time)
        ratios[site] = num / den if den > 0 else float("inf")

    ordered = sorted(ratios.items(), key=lambda kv: kv[1])
    n = len(ordered)
    k = int(n * tail_fraction)
    classes: dict[str, str] = {}
    for i, (site, _) in enumerate(ordered):
        if i < k:
            classes[site] = TIME_LEANING
        elif i >= n - k:
            classes[site] = LOADS_LEANING
        else:
            classes[site] = OTHER
    return LeaningClassification(country, classes)


@dataclass(frozen=True)
class LeaningComposition:
    """Figure 5: category share within each leaning class, across countries."""

    platform: Platform
    shares: dict[str, dict[str, Quartiles]]   # class -> category -> quartiles

    def overrepresented_in(self, leaning: str, versus: str = OTHER,
                           min_share: float = 0.0) -> list[str]:
        """Categories with a higher median share in ``leaning`` than ``versus``."""
        out = []
        for category, stats in self.shares[leaning].items():
            baseline = self.shares[versus].get(category)
            if stats.median >= min_share and (
                baseline is None or stats.median > baseline.median
            ):
                out.append(category)
        return sorted(
            out, key=lambda c: -self.shares[leaning][c].median
        )


def leaning_composition(
    dataset: BrowsingDataset,
    labels: Mapping[str, str],
    platform: Platform,
    month: Month,
    top_n: int = 10_000,
    countries: tuple[str, ...] | None = None,
) -> LeaningComposition:
    """Compute Figure 5 (desktop) or Figure 16 (mobile)."""
    loads = dataset.select(platform, Metric.PAGE_LOADS, month, countries)
    time = dataset.select(platform, Metric.TIME_ON_PAGE, month, countries)
    shared = sorted(set(loads) & set(time))
    per_class_samples: dict[str, dict[str, list[float]]] = {
        LOADS_LEANING: {}, TIME_LEANING: {}, OTHER: {},
    }
    for country in shared:
        classification = classify_leaning(
            loads[country], time[country], dataset, platform, country, top_n
        )
        for leaning in per_class_samples:
            sites = classification.sites_in(leaning)
            if not sites:
                continue
            counts: dict[str, int] = {}
            for site in sites:
                category = labels.get(site, "Unknown")
                counts[category] = counts.get(category, 0) + 1
            total = len(sites)
            for category, count in counts.items():
                per_class_samples[leaning].setdefault(category, []).append(count / total)
    shares = {
        leaning: {
            category: quartiles(samples + [0.0] * (len(shared) - len(samples)))
            for category, samples in categories.items()
        }
        for leaning, categories in per_class_samples.items()
    }
    return LeaningComposition(platform, shares)
