"""Category prevalence by rank threshold (Section 4.2.3 / Figures 3, 14).

"for a range of rank thresholds, we estimate the percentage of domains
in the top N with each category label.  We plot the median and 25–75 %
quartiles among 45 countries at each rank threshold."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.dataset import BrowsingDataset
from ..core.types import Metric, Month, Platform
from ..stats.descriptive import Quartiles, quartiles
from .weighting import count_by_category

#: The default rank-threshold sweep (log-spaced, like the paper's x-axis).
DEFAULT_THRESHOLDS: tuple[int, ...] = (
    10, 20, 30, 50, 100, 200, 300, 500, 1_000, 2_000, 3_000, 5_000, 10_000
)

#: The categories Figure 3 highlights.
FIGURE3_CATEGORIES: tuple[str, ...] = (
    "Video Streaming",
    "News & Media",
    "Business",
    "Technology",
    "Pornography",
    "Ecommerce",
)


@dataclass(frozen=True)
class PrevalencePoint:
    """Category share of top-N domains at one threshold (across countries)."""

    threshold: int
    stats: Quartiles


@dataclass(frozen=True)
class PrevalenceCurve:
    """One line of Figure 3: a category's share as rank threshold grows."""

    category: str
    platform: Platform
    metric: Metric
    points: tuple[PrevalencePoint, ...]

    def median_at(self, threshold: int) -> float:
        for point in self.points:
            if point.threshold == threshold:
                return point.stats.median
        raise KeyError(f"threshold {threshold} not swept")


def prevalence_by_rank(
    dataset: BrowsingDataset,
    labels: Mapping[str, str],
    platform: Platform,
    metric: Metric,
    month: Month,
    categories: tuple[str, ...] = FIGURE3_CATEGORIES,
    thresholds: tuple[int, ...] = DEFAULT_THRESHOLDS,
    countries: tuple[str, ...] | None = None,
) -> list[PrevalenceCurve]:
    """Compute prevalence curves for the given categories.

    One pass per country computes cumulative category counts along the
    list, so the whole threshold sweep costs O(list length).
    """
    lists = dataset.select(platform, metric, month, countries)
    swept = tuple(sorted(set(thresholds)))
    # per category -> per threshold -> list of per-country shares
    samples: dict[str, dict[int, list[float]]] = {
        c: {t: [] for t in swept} for c in categories
    }
    for ranked in lists.values():
        running: dict[str, int] = {}
        sweep_iter = iter(swept)
        next_threshold = next(sweep_iter, None)
        for position, site in enumerate(ranked.sites, start=1):
            category = labels.get(site, "Unknown")
            running[category] = running.get(category, 0) + 1
            while next_threshold is not None and position == next_threshold:
                for c in categories:
                    samples[c][next_threshold].append(
                        running.get(c, 0) / next_threshold
                    )
                next_threshold = next(sweep_iter, None)
            if next_threshold is None:
                break
        # Thresholds beyond the list length use the full-list share.
        length = len(ranked)
        counts = count_by_category(ranked, labels)
        for t in swept:
            if t > length:
                for c in categories:
                    samples[c][t].append(counts.get(c, 0) / max(length, 1))

    curves = []
    for category in categories:
        points = tuple(
            PrevalencePoint(t, quartiles(samples[category][t]))
            for t in swept
            if samples[category][t]
        )
        curves.append(PrevalenceCurve(category, platform, metric, points))
    return curves


def head_tail_ratio(curve: PrevalenceCurve, head: int = 30, tail: int = 10_000) -> float:
    """Median share at the head divided by median share at the tail.

    >1 means the category is head-heavy (Video Streaming by time);
    <1 means it is disproportionately long-tail (Business).
    Returns ``inf`` if the tail share is zero.
    """
    head_share = curve.median_at(head)
    tail_share = curve.median_at(tail)
    if tail_share == 0.0:
        return float("inf")
    return head_share / tail_share
