"""Country clusters from browsing similarity (Section 5.3.1 / Figures 11, 21).

Affinity propagation over the pairwise weighted-RBO matrix, validated
with silhouette coefficients.  The paper finds 11 clusters that track
shared language and geography — North Africa tightest (SC ≈ 0.31),
Japan and South Korea as outliers — with a weak overall average
(SC ≈ 0.11).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..stats.affinity import AffinityResult, affinity_propagation
from ..stats.silhouette import (
    SilhouetteReport,
    silhouette_samples,
    similarity_to_distance,
)
from .similarity import SimilarityMatrix


@dataclass(frozen=True)
class CountryCluster:
    """One discovered cluster of countries.

    ``index`` is the cluster's position in ``ClusterReport.clusters``
    (which is sorted by silhouette, tightest first);
    ``affinity_index`` is the cluster id inside the underlying
    :class:`AffinityResult` (``report.affinity.members(affinity_index)``
    and ``report.affinity.exemplars[affinity_index]`` line up with this
    cluster).  The two differ whenever sorting reordered the clusters.
    """

    index: int                  # position in ClusterReport.clusters
    exemplar: str
    members: tuple[str, ...]
    silhouette: float
    affinity_index: int         # cluster id in ClusterReport.affinity

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class ClusterReport:
    """Full clustering outcome for one (platform, metric) slice."""

    clusters: tuple[CountryCluster, ...]
    average_silhouette: float
    affinity: AffinityResult
    silhouettes: SilhouetteReport

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def cluster_of(self, country: str) -> CountryCluster:
        for cluster in self.clusters:
            if country in cluster.members:
                return cluster
        raise KeyError(f"{country!r} not clustered")

    def outliers(self, max_size: int = 1) -> tuple[str, ...]:
        """Countries in singleton (or tiny) clusters — the JP/KR pattern."""
        out: list[str] = []
        for cluster in self.clusters:
            if cluster.size <= max_size:
                out.extend(cluster.members)
        return tuple(sorted(out))


def cluster_countries(
    matrix: SimilarityMatrix,
    damping: float = 0.7,
    preference: float | None = None,
    seed: int = 0,
) -> ClusterReport:
    """Affinity propagation + silhouette validation on a wRBO matrix."""
    result = affinity_propagation(
        matrix.values, preference=preference, damping=damping, seed=seed
    )
    distances = similarity_to_distance(matrix.values)
    if result.n_clusters >= 2:
        silhouettes = silhouette_samples(distances, result.labels)
        average = silhouettes.average
        per_cluster = silhouettes.per_cluster()
    else:
        # A single cluster has no silhouette; report zeros.
        silhouettes = SilhouetteReport(
            values=np.zeros(len(matrix.countries)), labels=result.labels
        )
        average = 0.0
        per_cluster = {0: 0.0}

    clusters = []
    for affinity_index in range(result.n_clusters):
        members = tuple(
            matrix.countries[int(i)] for i in result.members(affinity_index)
        )
        exemplar = matrix.countries[int(result.exemplars[affinity_index])]
        clusters.append(
            CountryCluster(
                index=affinity_index,
                exemplar=exemplar,
                members=members,
                silhouette=per_cluster.get(affinity_index, 0.0),
                affinity_index=affinity_index,
            )
        )
    clusters.sort(key=lambda c: -c.silhouette)
    # Sorting reorders the clusters, so re-index to list position;
    # affinity_index keeps the AffinityResult cluster id.
    clusters = [
        replace(cluster, index=position)
        for position, cluster in enumerate(clusters)
    ]
    return ClusterReport(
        clusters=tuple(clusters),
        average_silhouette=average,
        affinity=result,
        silhouettes=silhouettes,
    )


def clusters_share_language_or_region(
    report: ClusterReport,
) -> float:
    """Fraction of multi-country clusters whose members share a language
    or a region group — the paper's qualitative validation that clusters
    "follow patterns of shared geography and shared language"."""
    from ..world.countries import get_country

    multi = [c for c in report.clusters if c.size >= 2]
    if not multi:
        return 0.0
    coherent = 0
    for cluster in multi:
        members = [get_country(code) for code in cluster.members]
        shared_langs = set(members[0].languages)
        shared_group = {members[0].region_group}
        for country in members[1:]:
            shared_langs &= set(country.languages)
            shared_group &= {country.region_group}
        # Pairwise language chains also count (es/pt in Latin America).
        pairwise = all(
            any(a.shares_language(b) or a.region_group == b.region_group
                for b in members if b is not a)
            for a in members
        )
        if shared_langs or shared_group or pairwise:
            coherent += 1
    return coherent / len(multi)
