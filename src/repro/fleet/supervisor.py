"""The fleet supervisor: bind once, fork N, keep N alive.

:class:`FleetSupervisor` owns every socket in the fleet — the shared
public listening socket and one pre-bound internal loopback socket per
worker index — and forks the workers around them.  Owning the sockets
in the parent is what makes the lifecycle clean:

* the **public port** is bound (with ``SO_REUSEADDR``) before any
  worker exists, so the startup log can print the resolved address
  immediately, even for ``--port 0``;
* a **crashed worker** is detected through its process sentinel and
  respawned *onto the same sockets* — clients queued in the listen
  backlog never see the crash, and the consistent-hash ring (keyed by
  worker index, not pid) is unchanged;
* the **internal ports** outlive their workers, so peers keep a stable
  ring map across restarts instead of re-discovering addresses.

Workers are forked (``multiprocessing`` fork context): the dataset is
*not* loaded in the supervisor — each worker opens the dataset path
itself after the fork, which for a columnar dataset is an O(open)
``mmap`` whose pages all workers share.

``stop()`` is a graceful drain: SIGTERM to every worker (each finishes
in-flight requests, bounded by the spec's ``drain_timeout``), a bounded
join, SIGKILL for stragglers, then the sockets close.  ``run()`` is the
CLI entry: it installs SIGTERM/SIGINT handlers and supervises until
signalled.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
import socket
import threading
import time
from multiprocessing import connection
from pathlib import Path

from .worker import FleetSpec, worker_main

log = logging.getLogger("repro.fleet")


class FleetSupervisor:
    """Spawns and supervises N pre-forked workers on one shared socket."""

    def __init__(
        self,
        data: "str | Path",
        *,
        host: str = "127.0.0.1",
        port: int = 8000,
        workers: int = 2,
        store=None,
        no_store: bool = False,
        cache_size: int = 256,
        cache_bytes: int | None = None,
        jobs: int = 1,
        month=None,
        small: bool = False,
        seed: int | None = None,
        as_of: int | None = None,
        replicas: int = 64,
        proxy_timeout: float = 5.0,
        drain_timeout: float = 10.0,
        restart_backoff: float = 0.2,
        max_restarts: int = 1000,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not hasattr(os, "fork"):
            raise RuntimeError(
                "fleet serving pre-forks workers and needs a POSIX fork(); "
                "use workers=1 (single-process) on this platform"
            )
        store = getattr(store, "root", store)  # ArtifactStore -> its root
        self.spec = FleetSpec(
            data=str(data),
            store=str(store) if store is not None else None,
            no_store=no_store,
            cache_size=cache_size,
            cache_bytes=cache_bytes,
            jobs=jobs,
            month=str(month) if month is not None else None,
            small=small,
            seed=seed,
            as_of=int(as_of) if as_of is not None else None,
            replicas=replicas,
            proxy_timeout=proxy_timeout,
            drain_timeout=drain_timeout,
        )
        self.host = host
        self.port = port
        self.workers = workers
        self.restart_backoff = restart_backoff
        self.max_restarts = max_restarts
        self._ctx = multiprocessing.get_context("fork")
        self._socket: socket.socket | None = None
        self._internal: list[socket.socket] = []
        self._procs: list = []
        self._watcher: threading.Thread | None = None
        self._stopping = threading.Event()
        self._failed = False
        self.internal_ports: tuple[int, ...] = ()
        self.restarts = None

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "FleetSupervisor":
        """Bind the sockets, fork the workers, start the watcher thread."""
        if self._socket is not None:
            raise RuntimeError("fleet already started")
        family = socket.AF_INET6 if ":" in self.host else socket.AF_INET
        self._socket = socket.create_server(
            (self.host, self.port), family=family, backlog=128
        )
        self._internal = [
            socket.create_server(("127.0.0.1", 0), backlog=64)
            for _ in range(self.workers)
        ]
        self.internal_ports = tuple(
            sock.getsockname()[1] for sock in self._internal
        )
        self.restarts = self._ctx.Value("i", 0)
        self._procs = [None] * self.workers
        self._wake_r, self._wake_w = os.pipe()
        for index in range(self.workers):
            self._spawn(index)
        self._watcher = threading.Thread(
            target=self._watch, name="fleet-watcher", daemon=True
        )
        self._watcher.start()
        log.info(
            "fleet serving %s on %s with %d workers (pids %s)",
            self.spec.data, self.url, self.workers,
            " ".join(str(p.pid) for p in self._procs),
        )
        return self

    def _spawn(self, index: int) -> None:
        proc = self._ctx.Process(
            target=worker_main,
            args=(
                index,
                self._socket,
                self._internal[index],
                self.internal_ports,
                self.spec,
                self.restarts,
            ),
            name=f"repro-fleet-worker-{index}",
            daemon=True,
        )
        proc.start()
        self._procs[index] = proc

    def _watch(self) -> None:
        """Restart crashed workers until told to stop."""
        while not self._stopping.is_set():
            sentinels = {
                proc.sentinel: index
                for index, proc in enumerate(self._procs)
                if proc is not None
            }
            ready = connection.wait(
                list(sentinels) + [self._wake_r], timeout=1.0
            )
            if self._stopping.is_set():
                return
            for sentinel in ready:
                index = sentinels.get(sentinel)
                if index is None:
                    continue
                proc = self._procs[index]
                proc.join()
                with self.restarts.get_lock():
                    self.restarts.value += 1
                    total = self.restarts.value
                if total > self.max_restarts:
                    log.error(
                        "worker %d died (exit %r) and the fleet exceeded "
                        "max_restarts=%d; giving up",
                        index, proc.exitcode, self.max_restarts,
                    )
                    self._failed = True
                    self._stopping.set()
                    return
                log.warning(
                    "worker %d (pid %s) died with exit %r; restarting",
                    index, proc.pid, proc.exitcode,
                )
                time.sleep(self.restart_backoff)
                self._spawn(index)

    def stop(self) -> None:
        """Drain and stop the fleet; idempotent."""
        self._stopping.set()
        if getattr(self, "_wake_w", None) is not None:
            try:
                os.write(self._wake_w, b"x")
            except OSError:
                pass
        if self._watcher is not None:
            self._watcher.join(timeout=5.0)
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()  # SIGTERM -> graceful drain in the worker
        deadline = time.monotonic() + self.spec.drain_timeout + 5.0
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                log.warning("worker pid %s did not drain; killing", proc.pid)
                proc.kill()
                proc.join(timeout=2.0)
        for sock in [self._socket, *self._internal]:
            if sock is not None:
                sock.close()
        self._socket = None
        self._internal = []
        for fd in (getattr(self, "_wake_r", None), getattr(self, "_wake_w", None)):
            if fd is not None:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self._wake_r = self._wake_w = None

    def run(self) -> int:
        """CLI entry: serve until SIGTERM/SIGINT, then drain; returns rc."""
        self.start()
        return self.wait()

    def wait(self) -> int:
        """Block a started fleet until SIGTERM/SIGINT, then drain."""
        signalled = threading.Event()

        def _interrupt(signum, frame):  # pragma: no cover - signal path
            signalled.set()

        previous = {
            sig: signal.signal(sig, _interrupt)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            while not signalled.is_set() and not self._stopping.is_set():
                signalled.wait(0.5)
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            self.stop()
        return 1 if self._failed else 0

    # -- introspection ------------------------------------------------------------

    @property
    def url(self) -> str:
        """A connectable base URL (wildcard binds become loopback)."""
        if self._socket is None:
            raise RuntimeError("fleet not started")
        host, port = self._socket.getsockname()[:2]
        if host in ("0.0.0.0", "::", ""):
            host = "::1" if host == "::" else "127.0.0.1"
        if ":" in host:
            host = f"[{host}]"
        return f"http://{host}:{port}"

    def worker_pids(self) -> tuple[int, ...]:
        """Live worker pids, by index."""
        return tuple(
            proc.pid for proc in self._procs
            if proc is not None and proc.is_alive()
        )

    def __enter__(self) -> "FleetSupervisor":
        if self._socket is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "stopped" if self._socket is None else f"on {self.url}"
        return f"FleetSupervisor(workers={self.workers}, {state})"
