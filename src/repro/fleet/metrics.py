"""Merging per-worker metrics snapshots into one fleet-wide view.

Each worker keeps its own :class:`~repro.service.metrics.ServiceMetrics`
and :class:`~repro.service.cache.PayloadCache`; nothing is shared at
runtime (sharing would mean cross-process locks on the hot path).  The
fleet view is assembled *at read time*: the worker answering a public
``/v1/metrics`` request collects every peer's local snapshot over the
internal ports and folds them together here.

Merging is pure counter arithmetic — requests, errors and latency
bucket counts add; ``sum_ms`` adds; ``max_ms`` takes the max; cache
and artifact-store counters add (`capacity`/`max_bytes` add too: the
fleet's total budget is the sum of its workers' budgets).  Latency
*percentiles* are intentionally not merged — they are not mergeable
from percentiles; the fixed histogram buckets are, which is why the
buckets exist.
"""

from __future__ import annotations

from typing import Iterable, Mapping


def _merge_histogram(into: dict, snap: Mapping) -> None:
    into["count"] = into.get("count", 0) + snap.get("count", 0)
    into["sum_ms"] = round(into.get("sum_ms", 0.0) + snap.get("sum_ms", 0.0), 3)
    into["max_ms"] = round(max(into.get("max_ms", 0.0), snap.get("max_ms", 0.0)), 3)
    buckets = into.setdefault("buckets", {})
    for name, count in snap.get("buckets", {}).items():
        buckets[name] = buckets.get(name, 0) + count


def _merge_endpoint(into: dict, snap: Mapping) -> None:
    into["requests"] = into.get("requests", 0) + snap.get("requests", 0)
    into["errors"] = into.get("errors", 0) + snap.get("errors", 0)
    _merge_histogram(into.setdefault("latency", {}), snap.get("latency", {}))


def _merge_counts(into: dict, snap: Mapping) -> None:
    """Sum numeric fields; ``None`` (an unset budget) stays ``None``."""
    for name, value in snap.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        current = into.get(name)
        into[name] = value if current is None else current + value


def merge_snapshots(snapshots: Iterable[Mapping]) -> dict[str, object]:
    """One fleet-wide snapshot from per-worker ``metrics_snapshot()`` dicts.

    The result has the same shape as a single-process ``/v1/metrics``
    body (``endpoints`` / ``counters`` / ``requests_total`` / ``cache``
    / ``artifact_store``), so anything scraping the single-process
    payload reads the merged one unchanged.  Worker-local blocks that
    cannot be meaningfully summed (``trace``) are dropped.
    """
    endpoints: dict[str, dict] = {}
    counters: dict[str, int] = {}
    cache: dict[str, object] = {}
    store: dict[str, object] = {}
    datasets: list[Mapping] = []
    requests_total = 0
    saw_cache = saw_store = False
    for snap in snapshots:
        for name, endpoint in snap.get("endpoints", {}).items():
            _merge_endpoint(endpoints.setdefault(name, {}), endpoint)
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        requests_total += snap.get("requests_total", 0)
        if "cache" in snap:
            saw_cache = True
            _merge_counts(cache, snap["cache"])
        if "artifact_store" in snap:
            saw_store = True
            block = snap["artifact_store"]
            store.setdefault("root", block.get("root"))
            _merge_counts(
                store, {k: v for k, v in block.items() if k != "root"}
            )
        if "dataset" in snap:
            datasets.append(snap["dataset"])
    merged: dict[str, object] = {
        "endpoints": {name: endpoints[name] for name in sorted(endpoints)},
        "counters": dict(sorted(counters.items())),
        "requests_total": requests_total,
    }
    if saw_cache:
        merged["cache"] = cache
    if saw_store:
        merged["artifact_store"] = store
    if datasets:
        # Versions do NOT sum: the fleet view reports the newest one,
        # the per-worker spread, and whether every worker has converged
        # to the same version (the post-ingest smoke assertion).
        versions = sorted({int(d.get("version", 1)) for d in datasets})
        newest = max(
            datasets, key=lambda d: int(d.get("version", 1))
        )
        merged["dataset"] = {
            "version": versions[-1],
            "versions": versions,
            "converged": len(versions) == 1,
            "months": list(newest.get("months", [])),
            "pending_slices": sum(
                int(d.get("pending_slices", 0)) for d in datasets
            ),
        }
    return merged
