"""One fleet worker: two HTTP servers, one ring position.

A worker process serves the public API by ``accept()``-ing on the
supervisor's shared listening socket (classic pre-fork: the kernel
load-balances connections across whichever workers are blocked in
``accept``), and additionally listens on a private loopback port —
the *internal* port — that peers use for two things:

* **ownership proxying** — a cacheable query whose consistent-hash
  owner is another worker is forwarded to that worker's internal port
  and the owner's bytes are relayed verbatim, so every payload is
  *rendered* exactly once fleet-wide instead of once per worker
  (non-owners keep an LRU copy of the relayed bytes, so the Zipf head
  is served locally everywhere after one hop);
* **metrics fan-in** — a public ``/v1/metrics`` request is answered
  with the fleet-wide view: the local snapshot plus every peer's,
  merged by :mod:`repro.fleet.metrics`.

The worker builds its own :class:`~repro.service.query.QueryService`
*after* the fork, from the dataset path — over a columnar dataset the
open is O(open) ``mmap`` and all workers share one physical copy of
the pages, which is what makes N workers cost one dataset of RAM.

All other endpoints (``/v1/healthz``, errors, the index) are answered
locally and byte-identically to single-process mode.  Shutdown is a
graceful drain: SIGTERM stops both accept loops, in-flight requests
run to completion (bounded by ``drain_timeout``), idle keep-alive
connections are dropped, and the process exits 0.
"""

from __future__ import annotations

import http.client
import json
import logging
import os
import signal
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Sequence

from ..obs import get_tracer
from ..service.http import ReproHTTPServer, ReproRequestHandler
from ..service.query import QueryService, render_payload
from .metrics import merge_snapshots
from .ring import HashRing

log = logging.getLogger("repro.fleet")

#: ``/v1`` heads whose payloads are cacheable and therefore owned by
#: exactly one worker.  ``healthz``/``metrics``/index stay local.
_ROUTED_HEADS = frozenset({"rankings", "sites", "distributions", "analyses"})


def payload_route_key(
    segments: tuple[str, ...],
    params: dict[str, str],
    version: int | str | None = None,
) -> str | None:
    """The ownership key for a request, or ``None`` to answer locally.

    The key is a pure function of the *canonicalised* query (sorted
    params), so every worker — and a worker restarted mid-fleet —
    hashes the same request to the same owner.  ``version`` is the
    dataset version the request resolves to (an explicit ``as_of`` or
    the worker's current latest): prefixing it keeps relayed bytes
    cached under one version from ever answering another — after an
    ingest, default-latest keys roll over instead of serving stale
    relays, while ``as_of``-pinned keys stay warm forever.
    """
    if len(segments) < 2 or segments[0] != "v1":
        return None
    if segments[1] not in _ROUTED_HEADS:
        return None
    query = "&".join(f"{k}={v}" for k, v in sorted(params.items()))
    key = "/".join(segments) + "?" + query
    if version is not None:
        key = f"v{params.get('as_of', version)}:{key}"
    return key


def _endpoint_label(segments: tuple[str, ...]) -> str:
    """The metrics endpoint name for a routed path (matches `_route`)."""
    head = segments[1]
    if head == "sites":
        return "site"
    if head == "distributions":
        return "distribution"
    if head == "analyses" and len(segments) == 3:
        return "analysis"
    return head


@dataclass(frozen=True)
class FleetSpec:
    """Everything a worker needs to build its service (fork-portable)."""

    data: str
    store: str | None = None
    no_store: bool = False
    cache_size: int = 256
    cache_bytes: int | None = None
    jobs: int = 1
    month: str | None = None
    small: bool = False
    seed: int | None = None
    as_of: int | None = None
    replicas: int = 64
    proxy_timeout: float = 5.0
    drain_timeout: float = 10.0


class _Inflight:
    """Counts requests currently being handled (for the drain)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0

    def __enter__(self) -> "_Inflight":
        with self._lock:
            self._count += 1
        return self

    def __exit__(self, *exc) -> None:
        with self._lock:
            self._count -= 1

    @property
    def drained(self) -> bool:
        with self._lock:
            return self._count == 0


class FleetWorkerRuntime:
    """This worker's position in the fleet: index, ring, peer ports."""

    def __init__(
        self,
        *,
        index: int,
        internal_ports: Sequence[int],
        replicas: int = 64,
        proxy_timeout: float = 5.0,
        restarts=None,
    ) -> None:
        self.index = index
        self.internal_ports = tuple(internal_ports)
        self.ring = HashRing(len(self.internal_ports), replicas=replicas)
        self.proxy_timeout = proxy_timeout
        self.restarts = restarts  # multiprocessing.Value owned by the supervisor
        self.inflight = _Inflight()

    def restarts_total(self) -> int:
        return int(self.restarts.value) if self.restarts is not None else 0

    def fleet_metrics(self, service: QueryService) -> bytes:
        """The merged ``/v1/metrics`` body: every worker's counters + fleet info."""
        with get_tracer().span(
            "fleet.metrics_merge", worker=self.index, workers=self.ring.size
        ):
            per_worker = {str(self.index): service.metrics_snapshot()}
            unreachable: list[int] = []
            for index, port in enumerate(self.internal_ports):
                if index == self.index:
                    continue
                try:
                    with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/v1/metrics",
                        timeout=self.proxy_timeout,
                    ) as resp:
                        per_worker[str(index)] = json.loads(resp.read())
                except (OSError, urllib.error.URLError, ValueError):
                    unreachable.append(index)
            merged = merge_snapshots(per_worker.values())
            merged["fleet"] = {
                "size": self.ring.size,
                "worker": self.index,
                "restarts_total": self.restarts_total(),
                "unreachable": unreachable,
                "workers": dict(sorted(per_worker.items())),
            }
            return render_payload(merged)


class FleetHTTPServer(ReproHTTPServer):
    """A :class:`ReproHTTPServer` adopting an already-bound socket."""

    def __init__(
        self,
        sock,
        service: QueryService,
        *,
        runtime: FleetWorkerRuntime,
        local_only: bool = False,
    ) -> None:
        self.fleet_runtime = runtime
        #: Internal servers answer everything locally — a proxied
        #: request must render at its owner, never bounce onward.
        self.fleet_local_only = local_only
        super().__init__(
            sock.getsockname()[:2],
            service,
            handler=FleetRequestHandler,
            bind_and_activate=False,
        )
        # Swap the unbound socket socketserver created for the shared
        # one; listen() on an already-listening socket is a no-op.
        self.socket.close()
        self.socket = sock
        # Pre-fork thundering herd: a connection wakes every worker's
        # selector, one wins the accept, and on a *blocking* socket the
        # losers would then sit in accept() — unresponsive to shutdown —
        # until the next connection arrives.  Non-blocking turns the
        # lost race into an EAGAIN the serve loop swallows.
        self.socket.setblocking(False)
        host, port = sock.getsockname()[:2]
        self.server_address = (host, port)
        self.server_name = host
        self.server_port = port
        self.server_activate()


#: Keep-alive proxy connections, one per (handler thread, owner port).
#: Handler threads live as long as their client connection, so a
#: persistent client amortises the proxy TCP setup down to zero.
_PROXY_CONNS = threading.local()


class FleetRequestHandler(ReproRequestHandler):
    """Adds ring routing and fleet metrics on top of the base handler."""

    server_version = "repro-fleet/1.0"

    @property
    def runtime(self) -> FleetWorkerRuntime:
        return self.server.fleet_runtime  # type: ignore[attr-defined]

    def _dispatch(self, handler) -> None:
        with self.runtime.inflight:
            super()._dispatch(handler)

    def _route(self) -> tuple[int, bytes, bool]:
        _, segments, params = self._split()
        runtime = self.runtime
        if not self.server.fleet_local_only:  # type: ignore[attr-defined]
            key = payload_route_key(
                segments, params, version=self.service.current_version()
            )
            if key is not None and runtime.ring.size > 1:
                owner = runtime.ring.owner(key)
                if owner != runtime.index:
                    self._endpoint = _endpoint_label(segments)
                    # Serve relayed bytes from the local LRU when we
                    # have them: only the owner ever *renders*, but the
                    # hot head of a Zipf workload should not pay a
                    # proxy hop per request either.
                    hit = self.service.cache.get(key)
                    if hit is not None:
                        return 200, hit, False
                    return self._proxy(owner, key)
            if segments == ("v1", "metrics"):
                self._endpoint = "metrics"
                return 200, runtime.fleet_metrics(self.service), False
        return super()._route()

    def _proxy_conn(self, port: int) -> http.client.HTTPConnection:
        conns = getattr(_PROXY_CONNS, "by_port", None)
        if conns is None:
            conns = _PROXY_CONNS.by_port = {}
        conn = conns.get(port)
        if conn is None:
            conn = http.client.HTTPConnection(
                "127.0.0.1", port, timeout=self.runtime.proxy_timeout
            )
            conns[port] = conn
        return conn

    def _drop_proxy_conn(self, port: int) -> None:
        conns = getattr(_PROXY_CONNS, "by_port", {})
        conn = conns.pop(port, None)
        if conn is not None:
            conn.close()

    def _proxy(self, owner: int, key: str) -> tuple[int, bytes, bool]:
        """Relay this request to its owner's internal port, verbatim.

        The owner renders (or LRU-serves) the payload, so its bytes are
        canonical; 4xx/5xx bodies relay unchanged too.  A 200 body is
        additionally stored in the local LRU under the route key so the
        next occurrence skips the hop.  If the owner is unreachable —
        crashed and not yet restarted — fall back to a local render:
        the payload is deterministic, so correctness survives, only the
        once-fleet-wide guarantee degrades until the supervisor brings
        the owner back.
        """
        runtime = self.runtime
        port = runtime.internal_ports[owner]
        with get_tracer().span(
            "fleet.proxy", owner=owner, worker=runtime.index, path=self.path
        ) as span:
            status = body = None
            for attempt in (1, 2):  # retry once on a stale kept-alive conn
                conn = self._proxy_conn(port)
                try:
                    conn.request("GET", self.path)
                    resp = conn.getresponse()
                    body = resp.read()
                    status = resp.status
                    break
                except (OSError, http.client.HTTPException):
                    self._drop_proxy_conn(port)
            if status is None:
                span.set("fallback", True)
                self.service.metrics.add("fleet_proxy_fallback")
                return super()._route()
            span.set("status_code", status)
            self.service.metrics.add("fleet_proxied")
            if status == 200:
                body = self.service.cache.put(key, body)
            return status, body, False


def build_worker_service(spec: FleetSpec) -> QueryService:
    """The worker's :class:`QueryService`, mirroring ``repro.api.serve``."""
    from ..api import _build_service

    return _build_service(
        spec.data,
        store=spec.store,
        no_store=spec.no_store,
        cache_size=spec.cache_size,
        cache_bytes=spec.cache_bytes,
        jobs=spec.jobs,
        config=None,
        month=spec.month,
        small=spec.small,
        seed=spec.seed,
        as_of=spec.as_of,
    )


def worker_main(
    index: int,
    public_sock,
    internal_sock,
    internal_ports: Sequence[int],
    spec: FleetSpec,
    restarts=None,
) -> int:
    """The worker process body: serve until SIGTERM, then drain."""
    runtime = FleetWorkerRuntime(
        index=index,
        internal_ports=internal_ports,
        replicas=spec.replicas,
        proxy_timeout=spec.proxy_timeout,
        restarts=restarts,
    )
    service = build_worker_service(spec)
    public = FleetHTTPServer(public_sock, service, runtime=runtime)
    internal = FleetHTTPServer(
        internal_sock, service, runtime=runtime, local_only=True
    )

    draining = threading.Event()

    def _drain(signum, frame):  # pragma: no cover - signal path
        if draining.is_set():
            return
        draining.set()
        # shutdown() blocks until the accept loop exits; never call it
        # from the loop's own thread (the signal runs on the main
        # thread, which is inside serve_forever).
        threading.Thread(target=public.shutdown, daemon=True).start()
        threading.Thread(target=internal.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)

    internal_thread = threading.Thread(
        target=internal.serve_forever,
        name=f"fleet-internal-{index}",
        daemon=True,
    )
    internal_thread.start()
    log.info(
        "worker %d (pid %d) serving on %s, internal %s",
        index, os.getpid(), public.url, internal.url,
    )
    try:
        public.serve_forever()
    finally:
        internal.shutdown()
        deadline = time.monotonic() + spec.drain_timeout
        while not runtime.inflight.drained and time.monotonic() < deadline:
            time.sleep(0.01)
        public.server_close()
        internal.server_close()
        log.info("worker %d (pid %d) drained", index, os.getpid())
    return 0
