"""``repro loadtest`` — replay a Zipf-shaped query mix against a server.

The paper's central empirical fact is that browsing attention is
heavy-tailed: a handful of sites (and a handful of large countries)
absorb most traffic.  A load test that hits every query uniformly
therefore exercises a cache pattern no real deployment would see.  This
driver shapes its replay the way the dataset itself says traffic is
shaped:

1. **discover** the grid from the running server — countries from the
   ``choices`` of a parameterless ``/v1/rankings`` 404, platforms /
   metrics / months from ``/v1/healthz``, the head of the top country's
   rank list for site queries;
2. **fit** a Zipf exponent to the server's own ``/v1/distributions``
   cumulative curve (finite-difference densities at geometric-mid
   ranks, least squares in log–log space — the same construction as
   :func:`repro.synth.zipf.fit_zipf_exponent`);
3. **sample** a deterministic request schedule: countries and sites are
   drawn with weight ``1/rank^s``, endpoints by a configurable mix, so
   the head of the popularity curve dominates exactly as it does in
   Figure 1.

The driver hammers the server from ``concurrency`` threads over
keep-alive connections, measures per-endpoint p50/p95/p99 and overall
throughput, asserts the given :class:`SLO` (the CLI exits 2 on a
violation), and can persist a ``BENCH_service.json`` so CI tracks the
serving-throughput trajectory the way ``BENCH_kernels.json`` tracks
kernel speed.
"""

from __future__ import annotations

import http.client
import json
import math
import os
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence
from urllib.parse import quote, urlsplit

from ..core.errors import ReproError
from ..obs import get_tracer

#: Endpoint shares of the default query mix.  Rankings dominate (they
#: are the product surface), site lookups second — mirroring a serving
#: deployment where per-country pages are the hot path.  Analysis
#: artifacts are excluded by default: one cold pipeline task can cost
#: seconds and would swamp the latency picture.
DEFAULT_MIX: Mapping[str, float] = {
    "rankings": 0.55,
    "site": 0.25,
    "distribution": 0.08,
    "analyses": 0.07,
    "healthz": 0.05,
}

#: Fallback Zipf exponent when the curve cannot be fit (degenerate
#: anchors); ~1.0 is the canonical web-traffic value.
_DEFAULT_ZIPF_S = 1.0


class LoadTestError(ReproError):
    """The target server could not be reached or probed."""


@dataclass(frozen=True)
class SLO:
    """Service-level objectives; ``None`` fields are not asserted."""

    p50_ms: float | None = None
    p95_ms: float | None = None
    p99_ms: float | None = None
    error_rate: float | None = None
    min_rps: float | None = None

    def to_payload(self) -> dict[str, float | None]:
        return {
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "error_rate": self.error_rate,
            "min_rps": self.min_rps,
        }


@dataclass(frozen=True)
class QueryMix:
    """A deterministic population of (endpoint, path) with weights."""

    entries: tuple[tuple[str, str], ...]
    weights: tuple[float, ...]
    zipf_s: float
    countries: tuple[str, ...]
    sites: tuple[str, ...]


def _get_json(base_url: str, path: str, *, timeout: float) -> dict:
    try:
        with urllib.request.urlopen(base_url + path, timeout=timeout) as resp:
            return json.loads(resp.read())
    except urllib.error.HTTPError as err:
        # Structured 4xx payloads are data here (choices discovery).
        try:
            return json.loads(err.read())
        except ValueError:
            raise LoadTestError(
                f"{base_url + path} answered {err.code} without JSON"
            ) from None
    except (OSError, urllib.error.URLError) as err:
        raise LoadTestError(f"cannot reach {base_url + path}: {err}") from None


def fit_zipf_from_anchors(anchors: Sequence[Sequence[float]]) -> float:
    """The Zipf exponent implied by cumulative (rank, share) anchors.

    Consecutive anchors give a mean density ``Δshare/Δrank`` over the
    span, attributed to the geometric mid rank; the exponent is the
    negated least-squares slope of log(density) on log(rank), clamped
    to a sane [0.3, 2.5] band.
    """
    points: list[tuple[float, float]] = []
    for (r1, s1), (r2, s2) in zip(anchors, anchors[1:]):
        if r2 <= r1 or s2 <= s1:
            continue
        density = (s2 - s1) / (r2 - r1)
        points.append((math.log(math.sqrt(r1 * r2)), math.log(density)))
    if len(points) < 2:
        return _DEFAULT_ZIPF_S
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    var = sum((x - mean_x) ** 2 for x, _ in points)
    if var == 0:
        return _DEFAULT_ZIPF_S
    cov = sum((x - mean_x) * (y - mean_y) for x, y, in points)
    return min(2.5, max(0.3, -(cov / var)))


def discover_mix(
    base_url: str,
    *,
    mix: Mapping[str, float] | None = None,
    top_sites: int = 100,
    timeout: float = 10.0,
) -> QueryMix:
    """Probe a running server and build its Zipf-shaped query population."""
    base_url = base_url.rstrip("/")
    shares = dict(DEFAULT_MIX if mix is None else mix)
    health = _get_json(base_url, "/v1/healthz", timeout=timeout)
    if health.get("status") != "ok":
        raise LoadTestError(f"{base_url}/v1/healthz is not ok: {health}")
    platforms = [str(p) for p in health.get("platforms", [])]
    metrics = [str(m) for m in health.get("metrics", [])]
    # A parameterless rankings query 404s with the country list as
    # its structured choices — discovery needs no dataset on disk.
    probe = _get_json(base_url, "/v1/rankings", timeout=timeout)
    countries = [str(c) for c in probe.get("choices", [])]
    if not countries:
        raise LoadTestError(
            f"{base_url}/v1/rankings did not reveal the country list: {probe}"
        )
    dist = _get_json(base_url, "/v1/distributions", timeout=timeout)
    zipf_s = fit_zipf_from_anchors(dist.get("anchors", []))
    head = _get_json(
        base_url,
        f"/v1/rankings?country={countries[0]}&top={top_sites}",
        timeout=timeout,
    )
    sites = [str(s) for s in head.get("sites", [])]

    def zipf_weight(rank: int) -> float:
        return 1.0 / float(rank) ** zipf_s

    entries: list[tuple[str, str]] = []
    weights: list[float] = []

    def add(endpoint: str, path: str, weight: float) -> None:
        entries.append((endpoint, path))
        weights.append(weight)

    if shares.get("rankings", 0) > 0 and countries:
        total = sum(zipf_weight(i + 1) for i in range(len(countries)))
        for i, country in enumerate(countries):
            # The head country additionally fans out across platforms
            # and metrics so the slice grid is exercised, not just the
            # default slice.
            variants = [""]
            if i < 3:
                variants += [
                    f"&platform={p}&metric={m}"
                    for p in platforms for m in metrics
                ]
            for variant in variants:
                add(
                    "rankings",
                    f"/v1/rankings?country={country}&top=50{variant}",
                    shares["rankings"] * zipf_weight(i + 1)
                    / (total * len(variants)),
                )
    if shares.get("site", 0) > 0 and sites:
        total = sum(zipf_weight(i + 1) for i in range(len(sites)))
        for i, site in enumerate(sites):
            add(
                "site",
                f"/v1/sites/{quote(site, safe='')}",
                shares["site"] * zipf_weight(i + 1) / total,
            )
    if shares.get("distribution", 0) > 0:
        pairs = [(p, m) for p in platforms for m in metrics] or [(None, None)]
        for platform, metric in pairs:
            query = (
                f"?platform={platform}&metric={metric}"
                if platform is not None else ""
            )
            add(
                "distribution",
                f"/v1/distributions{query}",
                shares["distribution"] / len(pairs),
            )
    if shares.get("analyses", 0) > 0:
        add("analyses", "/v1/analyses", shares["analyses"])
    if shares.get("healthz", 0) > 0:
        add("healthz", "/v1/healthz", shares["healthz"])
    if not entries:
        raise LoadTestError("the query mix is empty — every share is zero")
    return QueryMix(
        entries=tuple(entries),
        weights=tuple(weights),
        zipf_s=zipf_s,
        countries=tuple(countries),
        sites=tuple(sites),
    )


def _percentile(sorted_ms: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_ms:
        return 0.0
    at = max(0, math.ceil(pct / 100.0 * len(sorted_ms)) - 1)
    return sorted_ms[at]


@dataclass
class EndpointResult:
    """Latency/error aggregate for one endpoint of the mix."""

    requests: int = 0
    errors: int = 0
    latencies_ms: list[float] = field(default_factory=list)

    def to_payload(self) -> dict[str, object]:
        ordered = sorted(self.latencies_ms)
        return {
            "requests": self.requests,
            "errors": self.errors,
            "p50_ms": round(_percentile(ordered, 50), 3),
            "p95_ms": round(_percentile(ordered, 95), 3),
            "p99_ms": round(_percentile(ordered, 99), 3),
            "mean_ms": round(
                sum(ordered) / len(ordered) if ordered else 0.0, 3
            ),
            "max_ms": round(ordered[-1] if ordered else 0.0, 3),
        }


@dataclass
class LoadTestReport:
    """Everything one run measured, plus its SLO verdict."""

    base_url: str
    duration_s: float
    requests: int
    errors: int
    concurrency: int
    client_procs: int
    zipf_s: float
    endpoints: dict[str, EndpointResult]
    slo: SLO
    fleet: dict | None = None
    baseline: dict | None = None

    @property
    def error_rate(self) -> float:
        return self.errors / self.requests if self.requests else 0.0

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.duration_s if self.duration_s > 0 else 0.0

    def _overall(self) -> dict[str, object]:
        ordered = sorted(
            ms for ep in self.endpoints.values() for ms in ep.latencies_ms
        )
        return {
            "p50_ms": round(_percentile(ordered, 50), 3),
            "p95_ms": round(_percentile(ordered, 95), 3),
            "p99_ms": round(_percentile(ordered, 99), 3),
        }

    def violations(self) -> list[str]:
        """Human-readable SLO violations (empty == pass)."""
        out: list[str] = []
        overall = self._overall()
        for name in ("p50_ms", "p95_ms", "p99_ms"):
            bound = getattr(self.slo, name)
            if bound is not None and overall[name] > bound:
                out.append(
                    f"overall {name} {overall[name]:.3f} > SLO {bound:g}"
                )
        if self.slo.error_rate is not None and (
            self.error_rate > self.slo.error_rate
        ):
            out.append(
                f"error rate {self.error_rate:.4f} > SLO "
                f"{self.slo.error_rate:g}"
            )
        if self.slo.min_rps is not None and (
            self.throughput_rps < self.slo.min_rps
        ):
            out.append(
                f"throughput {self.throughput_rps:.1f} req/s < SLO "
                f"{self.slo.min_rps:g}"
            )
        if self.baseline is not None:
            speedup = self.baseline.get("speedup")
            floor = self.baseline.get("min_speedup")
            if floor is not None and speedup is not None and speedup < floor:
                out.append(
                    f"throughput speedup {speedup:.2f}x over baseline "
                    f"< required {floor:g}x"
                )
        return out

    @property
    def ok(self) -> bool:
        return not self.violations()

    def to_payload(self) -> dict[str, object]:
        """The machine-readable (BENCH_service.json) body."""
        payload: dict[str, object] = {
            "base_url": self.base_url,
            "duration_s": round(self.duration_s, 3),
            "requests": self.requests,
            "errors": self.errors,
            "error_rate": round(self.error_rate, 6),
            "throughput_rps": round(self.throughput_rps, 1),
            "concurrency": self.concurrency,
            "client_procs": self.client_procs,
            "zipf_s": round(self.zipf_s, 4),
            "overall": self._overall(),
            "endpoints": {
                name: self.endpoints[name].to_payload()
                for name in sorted(self.endpoints)
            },
            "slo": self.slo.to_payload(),
            "violations": self.violations(),
            "ok": self.ok,
        }
        if self.fleet is not None:
            payload["fleet"] = self.fleet
        if self.baseline is not None:
            payload["baseline"] = self.baseline
        return payload

    def write_bench_json(self, path: "str | Path") -> Path:
        """Persist the payload in the ``BENCH_*.json`` house format."""
        out = Path(path)
        out.write_text(
            json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"
        )
        return out


def _worker_loop(
    base_url: str,
    schedule: Sequence[tuple[str, str]],
    offset: int,
    stride: int,
    deadline: float | None,
    quota: int | None,
    timeout: float,
    results: dict[str, EndpointResult],
    lock: threading.Lock,
) -> None:
    """One client thread: keep-alive connection, its slice of the schedule."""
    split = urlsplit(base_url)
    local: dict[str, EndpointResult] = {}
    conn = http.client.HTTPConnection(split.hostname, split.port, timeout=timeout)
    sent = 0
    at = offset
    try:
        while True:
            if deadline is not None and time.perf_counter() >= deadline:
                break
            if quota is not None and sent >= quota:
                break
            endpoint, path = schedule[at % len(schedule)]
            at += stride
            sent += 1
            result = local.setdefault(endpoint, EndpointResult())
            started = time.perf_counter()
            try:
                conn.request("GET", path)
                resp = conn.getresponse()
                body = resp.read()
                status = resp.status
            except (OSError, http.client.HTTPException):
                # Connection died (worker crash, timeout): count the
                # error, reconnect, keep hammering.
                result.requests += 1
                result.errors += 1
                conn.close()
                conn = http.client.HTTPConnection(
                    split.hostname, split.port, timeout=timeout
                )
                continue
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            result.requests += 1
            result.latencies_ms.append(elapsed_ms)
            if status >= 400 or not body:
                result.errors += 1
    finally:
        conn.close()
        with lock:
            for endpoint, found in local.items():
                merged = results.setdefault(endpoint, EndpointResult())
                merged.requests += found.requests
                merged.errors += found.errors
                merged.latencies_ms.extend(found.latencies_ms)


def _drive_threads(
    base_url: str,
    schedule: Sequence[tuple[str, str]],
    offsets: Sequence[int],
    stride: int,
    duration: float | None,
    quota: int | None,
    timeout: float,
) -> dict[str, EndpointResult]:
    """Run one thread per offset to completion; merged endpoint results."""
    results: dict[str, EndpointResult] = {}
    lock = threading.Lock()
    deadline = (
        time.perf_counter() + duration if duration is not None else None
    )
    threads = [
        threading.Thread(
            target=_worker_loop,
            args=(
                base_url, schedule, offset, stride, deadline,
                quota, timeout, results, lock,
            ),
            name=f"loadtest-{offset}",
            daemon=True,
        )
        for offset in offsets
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


def _drive_process(
    queue, base_url, schedule, offsets, stride, duration, quota, timeout
) -> None:
    """Child-process entry: drive a slice of the threads, ship results."""
    results = _drive_threads(
        base_url, schedule, offsets, stride, duration, quota, timeout
    )
    queue.put({
        name: (ep.requests, ep.errors, ep.latencies_ms)
        for name, ep in results.items()
    })


def run_loadtest(
    base_url: str,
    *,
    duration: float | None = None,
    requests: int | None = None,
    concurrency: int = 8,
    client_procs: int = 1,
    seed: int = 2022,
    mix: Mapping[str, float] | None = None,
    top_sites: int = 100,
    slo: SLO | None = None,
    timeout: float = 10.0,
    baseline: Mapping[str, object] | None = None,
    min_speedup: float | None = None,
) -> LoadTestReport:
    """Discover, replay, measure; see the module docstring.

    Exactly one of ``duration`` (seconds) / ``requests`` (total count)
    bounds the run; with neither given, 200 requests are sent.  The
    schedule is deterministic in ``seed``; ``baseline`` (a previous
    report payload) plus ``min_speedup`` turns the run into a
    throughput-regression gate.

    ``client_procs`` forks the client itself across processes (the
    ``concurrency`` threads are divided among them).  A single Python
    client process saturates near one server process's throughput — its
    GIL costs roughly what the server's does per request — so measuring
    a multi-worker fleet honestly needs a multi-process client.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if client_procs < 1:
        raise ValueError(f"client_procs must be >= 1, got {client_procs}")
    client_procs = min(client_procs, concurrency)
    if client_procs > 1 and not hasattr(os, "fork"):
        raise LoadTestError(
            "client_procs > 1 forks the load generator and needs POSIX "
            "fork(); use client_procs=1 on this platform"
        )
    if duration is None and requests is None:
        requests = 200
    base_url = base_url.rstrip("/")
    with get_tracer().span("fleet.loadtest", url=base_url) as span:
        population = discover_mix(
            base_url, mix=mix, top_sites=top_sites, timeout=timeout
        )
        rng = random.Random(seed)
        schedule_len = max(4096, concurrency * 64)
        schedule = rng.choices(
            population.entries, weights=population.weights, k=schedule_len
        )
        quota = (
            None if requests is None
            else max(1, requests // concurrency)
        )
        started = time.perf_counter()
        if client_procs == 1:
            results = _drive_threads(
                base_url, schedule, range(concurrency), concurrency,
                duration, quota, timeout,
            )
        else:
            import multiprocessing

            ctx = multiprocessing.get_context("fork")
            queue = ctx.Queue()
            procs = [
                ctx.Process(
                    target=_drive_process,
                    args=(
                        queue, base_url, schedule,
                        range(index, concurrency, client_procs),
                        concurrency, duration, quota, timeout,
                    ),
                    daemon=True,
                )
                for index in range(client_procs)
            ]
            for proc in procs:
                proc.start()
            results = {}
            for _ in procs:
                for name, (count, errs, lats) in queue.get().items():
                    merged = results.setdefault(name, EndpointResult())
                    merged.requests += count
                    merged.errors += errs
                    merged.latencies_ms.extend(lats)
            for proc in procs:
                proc.join()
        elapsed = time.perf_counter() - started
        total = sum(ep.requests for ep in results.values())
        errors = sum(ep.errors for ep in results.values())
        span.set("requests", total)
        span.set("errors", errors)
        fleet = None
        try:
            metrics = _get_json(base_url, "/v1/metrics", timeout=timeout)
            block = metrics.get("fleet")
            if isinstance(block, dict):
                fleet = {
                    "size": block.get("size"),
                    "restarts_total": block.get("restarts_total"),
                    "unreachable": block.get("unreachable"),
                }
        except LoadTestError:
            pass
        baseline_block = None
        if baseline is not None:
            base_rps = float(baseline.get("throughput_rps", 0.0) or 0.0)
            rps = total / elapsed if elapsed > 0 else 0.0
            baseline_block = {
                "throughput_rps": base_rps,
                "speedup": round(rps / base_rps, 3) if base_rps else None,
                "min_speedup": min_speedup,
            }
        return LoadTestReport(
            base_url=base_url,
            duration_s=elapsed,
            requests=total,
            errors=errors,
            concurrency=concurrency,
            client_procs=client_procs,
            zipf_s=population.zipf_s,
            endpoints=results,
            slo=slo if slo is not None else SLO(),
            fleet=fleet,
            baseline=baseline_block,
        )
