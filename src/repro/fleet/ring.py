"""Consistent-hash ownership of payload keys across fleet workers.

Every cacheable query has one *owner* worker, and only the owner
renders and caches its payload — the point of the ring is that a
payload is rendered once fleet-wide instead of once per worker that
happens to ``accept()`` it.  Ownership must therefore be a pure
function of (key, fleet size): every worker computes the same answer
with no coordination, including a worker that was just restarted.

The ring is the classic construction: each worker index contributes
``replicas`` virtual points at ``sha1("worker:<i>#<r>")``, keys hash
onto the same circle, and the owner is the first point clockwise.
Virtual points smooth the load (with 64 replicas per worker the
per-worker share of a uniform key space stays within a few tens of
percent of 1/N), and because points depend only on the worker *index*
— not pid or start time — the mapping is stable across crashes,
restarts and supervisor reboots.
"""

from __future__ import annotations

import bisect
import hashlib


def _point(label: str) -> int:
    """A stable 64-bit position on the hash circle."""
    return int.from_bytes(
        hashlib.sha1(label.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Maps string keys to one of ``size`` worker indices, consistently."""

    def __init__(self, size: int, *, replicas: int = 64) -> None:
        if size < 1:
            raise ValueError(f"ring size must be >= 1, got {size}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.size = size
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for index in range(size):
            for replica in range(replicas):
                points.append((_point(f"worker:{index}#{replica}"), index))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [o for _, o in points]

    def owner(self, key: str) -> int:
        """The worker index owning ``key`` (first ring point clockwise)."""
        if self.size == 1:
            return 0
        at = bisect.bisect_right(self._points, _point(key))
        if at == len(self._points):
            at = 0
        return self._owners[at]

    def spread(self, keys: list[str]) -> dict[int, int]:
        """How many of ``keys`` each worker owns (diagnostics/tests)."""
        out = {index: 0 for index in range(self.size)}
        for key in keys:
            out[self.owner(key)] += 1
        return out

    def __repr__(self) -> str:
        return f"HashRing(size={self.size}, replicas={self.replicas})"
