"""repro.fleet — pre-forked multi-process serving over one mmap'd dataset.

The single-process server (:mod:`repro.service`) is thread-per-request
over Python code that holds the GIL while rendering payloads; one
process is one core.  The fleet layer scales the same API across cores
the way production front ends do:

* a :class:`FleetSupervisor` binds the listening socket once and forks
  N workers that all ``accept()`` on it (kernel load-balancing), each
  worker opening the columnar dataset itself post-fork so the mmap'd
  pages are physically shared — N workers, one dataset of RAM;
* a :class:`HashRing` gives every cacheable payload exactly one owner
  worker; non-owners proxy to the owner's internal port, so each
  payload is rendered and cached once fleet-wide;
* the supervisor health-checks workers through their process
  sentinels, restarting crashed ones onto the same sockets, and drains
  gracefully on SIGTERM;
* a public ``/v1/metrics`` answers with the merged fleet-wide counters
  (:func:`merge_snapshots`) plus a ``fleet`` block.

:mod:`repro.fleet.loadtest` is the measuring stick: it replays a
Zipf-shaped query mix (fit from the server's own distribution curves)
and asserts SLOs, which is how CI holds the multi-worker speedup.
"""

from .loadtest import (
    SLO,
    LoadTestError,
    LoadTestReport,
    QueryMix,
    discover_mix,
    run_loadtest,
)
from .metrics import merge_snapshots
from .ring import HashRing
from .supervisor import FleetSupervisor
from .worker import FleetSpec, payload_route_key, worker_main

__all__ = [
    "SLO",
    "FleetSpec",
    "FleetSupervisor",
    "HashRing",
    "LoadTestError",
    "LoadTestReport",
    "QueryMix",
    "discover_mix",
    "merge_snapshots",
    "payload_route_key",
    "run_loadtest",
    "worker_main",
]
