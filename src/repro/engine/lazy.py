"""A BrowsingDataset view that materialises slices on first access.

Analyses consume datasets through a narrow surface (``__getitem__`` /
``get`` / ``select``), and most touch only a subset of the grid they
were handed — e.g. a figure benchmark pulling two platforms out of a
full-grid fixture.  :class:`LazyBrowsingDataset` keeps the full key set
(so indices, membership and iteration behave exactly like the eager
container) but defers list generation to the engine until a slice is
actually read; with a warm slice cache behind the engine, a fixture
declared over the whole grid costs nothing until used.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable

from ..core.dataset import BrowsingDataset
from ..core.rankedlist import RankedList
from ..core.types import Breakdown, Metric, Month, Platform
from ..synth.traffic import global_distributions
from .plan import SlicePlan


class LazyBrowsingDataset(BrowsingDataset):
    """Same contract as :class:`BrowsingDataset`; slices appear on demand."""

    def __init__(self, engine, plan: SlicePlan) -> None:
        self._engine = engine
        # Serving reads a lazy dataset from many threads; materialize
        # mutates _pending/_lists, so it runs under this lock.
        self._materialize_lock = threading.Lock()
        self._pending: set[Breakdown] = set(plan.breakdowns())
        # Placeholder values: the base initialiser only reads keys, and
        # every value-reading path below materialises first.
        super().__init__(
            dict.fromkeys(plan.breakdowns()),
            global_distributions(),
            engine.metadata(),
        )

    @property
    def pending(self) -> int:
        """How many slices have not been generated yet."""
        return len(self._pending)

    def materialize(self, breakdowns: Iterable[Breakdown] | None = None) -> None:
        """Generate the requested (default: all) still-pending slices.

        Thread-safe: concurrent readers (e.g. server threads) serialize
        here, and a slice is generated at most once.
        """
        wanted_input = None if breakdowns is None else set(breakdowns)
        with self._materialize_lock:
            wanted = self._pending if wanted_input is None else (
                wanted_input & self._pending
            )
            if not wanted:
                return
            produced = self._engine.run(SlicePlan.from_breakdowns(wanted))
            self._lists.update(produced)
            self._pending -= set(produced)

    # -- value-reading paths ------------------------------------------------------

    def __getitem__(self, breakdown: Breakdown) -> RankedList:
        if breakdown in self._pending:
            self.materialize((breakdown,))
        return super().__getitem__(breakdown)

    def get_or_none(
        self, country: str, platform: Platform, metric: Metric, month: Month
    ) -> RankedList | None:
        breakdown = Breakdown(country, platform, metric, month)
        if breakdown not in self._lists:
            return None
        return self[breakdown]

    def select(
        self,
        platform: Platform,
        metric: Metric,
        month: Month,
        countries: Iterable[str] | None = None,
    ) -> dict[str, RankedList]:
        wanted = tuple(countries) if countries is not None else self.countries
        self.materialize(
            Breakdown(country, platform, metric, month) for country in wanted
        )
        return super().select(platform, metric, month, countries)

    def filter(
        self, predicate: Callable[[Breakdown], bool]
    ) -> BrowsingDataset:
        self.materialize(b for b in self._lists if predicate(b))
        return super().filter(predicate)

    def map_lists(
        self, transform: Callable[[Breakdown, RankedList], RankedList]
    ) -> BrowsingDataset:
        self.materialize()
        return super().map_lists(transform)

    def __repr__(self) -> str:
        return super().__repr__().replace(
            "BrowsingDataset(", f"LazyBrowsingDataset(pending={self.pending}, ", 1
        )
