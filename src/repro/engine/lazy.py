"""A BrowsingDataset view that materialises slices on first access.

Analyses consume datasets through a narrow surface (``__getitem__`` /
``get`` / ``select``), and most touch only a subset of the grid they
were handed — e.g. a figure benchmark pulling two platforms out of a
full-grid fixture.  :class:`LazyBrowsingDataset` keeps the full key set
(so indices, membership and iteration behave exactly like the eager
container) but defers list generation to the engine until a slice is
actually read; with a warm slice cache behind the engine, a fixture
declared over the whole grid costs nothing until used.

The deferred-materialisation machinery (pending set, thread-safe
``materialize``, value-path overrides) lives in
:class:`repro.core.dataset.DeferredBrowsingDataset`, shared with the
columnar store's memory-mapped dataset; this subclass only wires the
production hook to the generation engine.
"""

from __future__ import annotations

from typing import Mapping

from ..core.dataset import DeferredBrowsingDataset
from ..core.rankedlist import RankedList
from ..core.types import Breakdown
from ..synth.traffic import global_distributions
from .plan import SlicePlan


class LazyBrowsingDataset(DeferredBrowsingDataset):
    """Same contract as :class:`BrowsingDataset`; slices appear on demand."""

    storage = "engine"

    def __init__(self, engine, plan: SlicePlan) -> None:
        self._engine = engine
        super().__init__(
            plan.breakdowns(),
            global_distributions(),
            engine.metadata(),
        )

    def _produce(
        self, breakdowns: set[Breakdown]
    ) -> Mapping[Breakdown, RankedList]:
        return self._engine.run(SlicePlan.from_breakdowns(breakdowns))
