"""The generation engine: plan → (cache | executor) → dataset.

:class:`GenerationEngine` is the single entry point the generator, the
CLI and the benchmark fixtures all route through.  For each requested
plan it serves what it can from the content-addressed slice cache and
hands only the misses to its executor; everything a run produces is
written back to the cache.  The engine is *lazy about the expensive
parts*: no generator (and hence no universe) is constructed until a
cache miss actually requires scoring, so a warm cache answers a full
grid without paying the ~25 s full-scale universe build.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterable

from ..core.dataset import BrowsingDataset
from ..core.errors import GenerationError
from ..core.rankedlist import RankedList
from ..core.types import Breakdown, Metric, Month, Platform, REFERENCE_MONTH
from ..obs import get_tracer
from ..synth.generator import GeneratorConfig, TelemetryGenerator
from ..synth.traffic import global_distributions
from .cache import SliceCache
from .executor import ParallelExecutor, SerialExecutor, generator_for
from .plan import SlicePlan


class GenerationEngine:
    """Cache-aware, executor-pluggable slice generation."""

    def __init__(
        self,
        config: GeneratorConfig | None = None,
        *,
        executor: SerialExecutor | ParallelExecutor | None = None,
        jobs: int | None = None,
        cache: SliceCache | str | Path | None = None,
        generator: TelemetryGenerator | None = None,
        cache_dir: str | Path | None = None,
    ) -> None:
        from .._compat import deprecated_alias

        cache = deprecated_alias(
            cache, cache_dir,
            owner="GenerationEngine", old="cache_dir", new="cache",
        )
        if generator is not None:
            config = generator.config
        self.config = config or GeneratorConfig()
        if jobs is not None:
            if executor is not None:
                raise GenerationError(
                    "pass either executor= or jobs=, not both"
                )
            executor = ParallelExecutor(jobs=jobs) if jobs > 1 else None
        self.executor = executor or SerialExecutor()
        if isinstance(cache, (str, Path)):
            cache = SliceCache(cache)
        self.cache = cache
        self._generator = generator
        self._fingerprint: str | None = None

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = self.config.fingerprint()
        return self._fingerprint

    @property
    def generator(self) -> TelemetryGenerator:
        """The engine's generator, built on first use (universe build!)."""
        if self._generator is None:
            self._generator = generator_for(self.config)
        return self._generator

    def metadata(self) -> dict[str, object]:
        """Dataset provenance: generation knobs plus the fingerprint."""
        return {
            "seed": self.config.seed,
            "emit": self.config.emit,
            "list_size": self.config.list_size,
            "fingerprint": self.fingerprint,
        }

    # -- execution ----------------------------------------------------------------

    def run(self, plan: SlicePlan) -> dict[Breakdown, RankedList]:
        """Produce every slice of ``plan``, in plan order.

        Cache hits are served as-is; only the remaining breakdowns reach
        the executor, and everything generated is written back.  Under
        an active tracer every slice gets an ``engine.generate_slice``
        span carrying its breakdown and a ``cache: hit|miss`` attribute
        (miss spans come from the executor, wherever it runs).
        """
        tracer = get_tracer()
        with tracer.span(
            "engine.run", fingerprint=self.fingerprint, slices=len(plan)
        ) as root:
            results: dict[Breakdown, RankedList] = {}
            if self.cache is not None:
                for breakdown in plan.breakdowns():
                    start = time.perf_counter()
                    cached = self.cache.get(self.fingerprint, breakdown)
                    if cached is not None:
                        results[breakdown] = cached
                        root.add("cache_hits")
                        tracer.record(
                            "engine.generate_slice",
                            time.perf_counter() - start,
                            country=breakdown.country,
                            platform=breakdown.platform.value,
                            metric=breakdown.metric.value,
                            month=str(breakdown.month),
                            cache="hit",
                        )
                misses = plan.without(results)
            else:
                misses = plan
            if len(misses):
                root.add("cache_misses", len(misses))
                produced = self.executor.execute(
                    self.config, misses,
                    generator=self._generator, tracer=tracer,
                )
                if self.cache is not None:
                    with tracer.span(
                        "engine.cache_write", slices=len(produced)
                    ):
                        self.cache.put_many(self.fingerprint, produced.items())
                results.update(produced)
            return {b: results[b] for b in plan.breakdowns()}

    def rank_list(
        self,
        country: str,
        platform: Platform,
        metric: Metric,
        month: Month = REFERENCE_MONTH,
    ) -> RankedList:
        """One slice, cache-aware."""
        breakdown = Breakdown(country, platform, metric, month)
        return self.run(SlicePlan.from_breakdowns((breakdown,)))[breakdown]

    # -- datasets -----------------------------------------------------------------

    def generate(
        self,
        *,
        countries: Iterable[str] | None = None,
        platforms: Iterable[Platform] = Platform.studied(),
        metrics: Iterable[Metric] = Metric.studied(),
        months: Iterable[Month] = (REFERENCE_MONTH,),
    ) -> BrowsingDataset:
        """An eagerly materialised dataset for the requested grid.

        The grid knobs are keyword-only (PR-3 API normalization): every
        subsystem spells them the same way, and call sites stay readable
        as the grid grows dimensions.
        """
        return self.generate_plan(
            SlicePlan.from_grid(countries, platforms, metrics, months)
        )

    def generate_plan(self, plan: SlicePlan) -> BrowsingDataset:
        return BrowsingDataset(self.run(plan), global_distributions(), self.metadata())

    def generate_lazy(
        self,
        *,
        countries: Iterable[str] | None = None,
        platforms: Iterable[Platform] = Platform.studied(),
        metrics: Iterable[Metric] = Metric.studied(),
        months: Iterable[Month] = (REFERENCE_MONTH,),
    ) -> "LazyBrowsingDataset":
        """A dataset whose slices materialise on first access."""
        from .lazy import LazyBrowsingDataset

        plan = SlicePlan.from_grid(countries, platforms, metrics, months)
        return LazyBrowsingDataset(self, plan)

    def __repr__(self) -> str:
        cache = str(self.cache.root) if self.cache is not None else None
        return (
            f"GenerationEngine(fingerprint={self.fingerprint}, "
            f"executor={self.executor.name}, cache={cache!r})"
        )
