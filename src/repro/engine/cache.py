"""Content-addressed on-disk cache of generated rank-list slices.

Layout::

    <root>/<fingerprint>/<country>_<platform>_<metric>_<YYYY-MM>.txt   # text
    <root>/<fingerprint>/<country>_<platform>_<metric>_<YYYY-MM>.slc   # columnar

The fingerprint directory is :meth:`GeneratorConfig.fingerprint` — a
hash of every generation knob including the universe and privacy
configs — so a hit is guaranteed byte-identical to regeneration and two
different configurations can never collide.  The cache speaks both
slice codecs: ``codec="text"`` (the default) writes the
:mod:`repro.export.io` text format (one site per line, rank order), so
a cache stays greppable and diffable with standard tools;
``codec="columnar"`` writes the binary slice files of
:mod:`repro.store.slicefile`, which carry an explicit count (truncation
is detected, not silently served) and skip line splitting on read.
Reads always try both extensions, so a cache directory can be shared by
engines configured either way.  A warm cache serves slices without
constructing a generator at all, skipping both scoring and the ~25 s
full-scale universe build.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..core.errors import DatasetError
from ..core.rankedlist import RankedList
from ..core.types import Breakdown
from ..export.io import breakdown_slug


@dataclass
class CacheStats:
    """Counters for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def __str__(self) -> str:
        return f"{self.hits} hits, {self.misses} misses, {self.writes} writes"


class SliceCache:
    """A content-addressed slice store under a configurable directory."""

    _SUFFIXES = (".txt", ".slc")

    def __init__(self, root: str | Path, *, codec: str = "text") -> None:
        if codec not in ("text", "columnar"):
            raise DatasetError(
                f"unknown slice-cache codec {codec!r}; "
                "choose 'text' or 'columnar'"
            )
        self.root = Path(root)
        self.codec = codec
        self.stats = CacheStats()

    def dir_for(self, fingerprint: str) -> Path:
        return self.root / fingerprint

    def path_for(self, fingerprint: str, breakdown: Breakdown) -> Path:
        """Where :meth:`put` writes this slice under the configured codec."""
        suffix = ".slc" if self.codec == "columnar" else ".txt"
        return self.dir_for(fingerprint) / f"{breakdown_slug(breakdown)}{suffix}"

    def _candidates(self, fingerprint: str, breakdown: Breakdown) -> tuple[Path, ...]:
        """Read candidates, configured codec's extension first."""
        base = self.dir_for(fingerprint) / breakdown_slug(breakdown)
        first = self.path_for(fingerprint, breakdown)
        return tuple(
            dict.fromkeys(
                (first, *(base.with_suffix(s) for s in self._SUFFIXES))
            )
        )

    def get(self, fingerprint: str, breakdown: Breakdown) -> RankedList | None:
        """The cached slice, or ``None`` on a miss (either codec)."""
        for path in self._candidates(fingerprint, breakdown):
            if path.suffix == ".slc":
                from ..store.slicefile import read_slice

                try:
                    ranked = read_slice(path)
                except OSError:
                    continue
            else:
                try:
                    text = path.read_text(encoding="utf-8")
                except OSError:
                    continue
                ranked = RankedList(
                    line for line in text.splitlines() if line
                )
            self.stats.hits += 1
            return ranked
        self.stats.misses += 1
        return None

    def put(self, fingerprint: str, breakdown: Breakdown, ranked: RankedList) -> Path:
        """Store one slice; the write is atomic (tmp file + rename)."""
        path = self.path_for(fingerprint, breakdown)
        if self.codec == "columnar":
            from ..store.slicefile import write_slice

            write_slice(path, ranked)
            self.stats.writes += 1
            return path
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = "\n".join(ranked.sites) + "\n"
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{path.name}.", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    def put_many(
        self, fingerprint: str, items: Iterable[tuple[Breakdown, RankedList]]
    ) -> int:
        """Store a batch of slices; returns the number written.

        The engine's write-back path hands over whole country grids at
        a time (the batched executor produces them together), so the
        fingerprint directory is ensured once up front instead of once
        per slice; each file write stays individually atomic.
        """
        count = 0
        for breakdown, ranked in items:
            if count == 0:
                self.dir_for(fingerprint).mkdir(parents=True, exist_ok=True)
            self.put(fingerprint, breakdown, ranked)
            count += 1
        return count

    def __contains__(self, key: tuple[str, Breakdown]) -> bool:
        fingerprint, breakdown = key
        return any(
            path.is_file()
            for path in self._candidates(fingerprint, breakdown)
        )

    def __repr__(self) -> str:
        return (
            f"SliceCache({str(self.root)!r}, codec={self.codec!r}, "
            f"{self.stats})"
        )
