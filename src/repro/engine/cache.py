"""Content-addressed on-disk cache of generated rank-list slices.

Layout::

    <root>/<fingerprint>/<country>_<platform>_<metric>_<YYYY-MM>.txt

The fingerprint directory is :meth:`GeneratorConfig.fingerprint` — a
hash of every generation knob including the universe and privacy
configs — so a hit is guaranteed byte-identical to regeneration and two
different configurations can never collide.  List files reuse the
:mod:`repro.export.io` text format (one site per line, rank order), so
a cache stays greppable and can be inspected or diffed with standard
tools.  A warm cache serves slices without constructing a generator at
all, skipping both scoring and the ~25 s full-scale universe build.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from ..core.rankedlist import RankedList
from ..core.types import Breakdown
from ..export.io import breakdown_slug


@dataclass
class CacheStats:
    """Counters for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def __str__(self) -> str:
        return f"{self.hits} hits, {self.misses} misses, {self.writes} writes"


class SliceCache:
    """A content-addressed slice store under a configurable directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    def dir_for(self, fingerprint: str) -> Path:
        return self.root / fingerprint

    def path_for(self, fingerprint: str, breakdown: Breakdown) -> Path:
        return self.dir_for(fingerprint) / f"{breakdown_slug(breakdown)}.txt"

    def get(self, fingerprint: str, breakdown: Breakdown) -> RankedList | None:
        """The cached slice, or ``None`` on a miss."""
        path = self.path_for(fingerprint, breakdown)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return RankedList(line for line in text.splitlines() if line)

    def put(self, fingerprint: str, breakdown: Breakdown, ranked: RankedList) -> Path:
        """Store one slice; the write is atomic (tmp file + rename)."""
        path = self.path_for(fingerprint, breakdown)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = "\n".join(ranked.sites) + "\n"
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{path.name}.", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    def __contains__(self, key: tuple[str, Breakdown]) -> bool:
        fingerprint, breakdown = key
        return self.path_for(fingerprint, breakdown).is_file()

    def __repr__(self) -> str:
        return f"SliceCache({str(self.root)!r}, {self.stats})"
