"""The plan/execute generation engine (see DESIGN.md, "Generation engine").

Three layers on top of :mod:`repro.synth`:

* **Planning** — :class:`SlicePlan` / :class:`SliceRequest` enumerate and
  dedupe requested breakdowns and partition them into per-country
  :class:`CountryWorkUnit`\\ s (country is the natural shard key: country
  state and month walks are shared within a country).
* **Execution** — :class:`SerialExecutor` (the reference) and the
  process-pool :class:`ParallelExecutor`, both required to produce
  byte-identical output for the same config.
* **Caching** — :class:`SliceCache`, a content-addressed on-disk store
  keyed by ``GeneratorConfig.fingerprint()`` + breakdown slug; warm hits
  skip scoring *and* the universe build.

:class:`GenerationEngine` composes the three;
:class:`LazyBrowsingDataset` defers slice generation until first read.
"""

from .cache import CacheStats, SliceCache
from .engine import GenerationEngine
from .executor import ParallelExecutor, SerialExecutor, generator_for
from .lazy import LazyBrowsingDataset
from .plan import CountryWorkUnit, SlicePlan, SliceRequest

__all__ = [
    "CacheStats",
    "CountryWorkUnit",
    "GenerationEngine",
    "LazyBrowsingDataset",
    "ParallelExecutor",
    "SerialExecutor",
    "SliceCache",
    "SlicePlan",
    "SliceRequest",
    "generator_for",
]
