"""Slice planning: which breakdowns to generate, deduped and sharded.

The generator's contract (see :mod:`repro.synth.generator`) makes every
breakdown independently regenerable from ``(seed, country, component)``
noise streams; the only state *shared* between breakdowns is per-country
(the candidate pool, base scores and month random walks).  A
:class:`SlicePlan` therefore replaces the old nested
country × platform × metric × month loop with an explicit, deduplicated
request list partitioned into per-country :class:`CountryWorkUnit`\\ s —
the natural shard: each unit can run on any worker, in any order, and
still produce lists byte-identical to the serial reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..core.types import Breakdown, Metric, Month, Platform, REFERENCE_MONTH
from ..world.countries import COUNTRIES


def _plan_key(breakdown: Breakdown) -> tuple:
    """Canonical plan ordering — matches the export manifest ordering."""
    return (
        breakdown.country,
        breakdown.platform.value,
        breakdown.metric.value,
        breakdown.month,
    )


@dataclass(frozen=True)
class SliceRequest:
    """A request for one (country, platform, metric, month) rank list."""

    breakdown: Breakdown

    @property
    def country(self) -> str:
        return self.breakdown.country

    @property
    def platform(self) -> Platform:
        return self.breakdown.platform

    @property
    def metric(self) -> Metric:
        return self.breakdown.metric

    @property
    def month(self) -> Month:
        return self.breakdown.month

    def __str__(self) -> str:
        return str(self.breakdown)


@dataclass(frozen=True)
class CountryWorkUnit:
    """All requests for one country — one schedulable unit of work.

    Country state (candidate pool, base scores) and month walks are
    computed once per country and shared by every slice in the unit, so
    splitting a country across workers would duplicate that work.
    """

    country: str
    requests: tuple[SliceRequest, ...]

    def __len__(self) -> int:
        return len(self.requests)

    def breakdowns(self) -> tuple[Breakdown, ...]:
        return tuple(request.breakdown for request in self.requests)

    def grid_shape(self) -> tuple[int, int, int]:
        """Distinct (platforms, metrics, months) this unit spans.

        The batched executor scores the unit as one matrix whose
        component reuse scales with these counts; the shape is attached
        to ``engine.work_unit`` spans so traces show how much sharing a
        unit actually had.
        """
        return (
            len({r.platform for r in self.requests}),
            len({r.metric for r in self.requests}),
            len({r.month for r in self.requests}),
        )


class SlicePlan:
    """A deduplicated, deterministically ordered set of slice requests."""

    __slots__ = ("_requests",)

    def __init__(self, requests: Iterable[SliceRequest | Breakdown]) -> None:
        unique: dict[Breakdown, SliceRequest] = {}
        for request in requests:
            if isinstance(request, Breakdown):
                request = SliceRequest(request)
            unique.setdefault(request.breakdown, request)
        self._requests: tuple[SliceRequest, ...] = tuple(
            unique[b] for b in sorted(unique, key=_plan_key)
        )

    @classmethod
    def from_grid(
        cls,
        countries: Iterable[str] | None = None,
        platforms: Iterable[Platform] = Platform.studied(),
        metrics: Iterable[Metric] = Metric.studied(),
        months: Iterable[Month] = (REFERENCE_MONTH,),
    ) -> "SlicePlan":
        """The full cross-product grid (default: the paper's study grid)."""
        if countries is None:
            countries = tuple(sorted(c.code for c in COUNTRIES))
        return cls(
            Breakdown(country, platform, metric, month)
            for country in countries
            for platform in platforms
            for metric in metrics
            for month in months
        )

    @classmethod
    def from_breakdowns(cls, breakdowns: Iterable[Breakdown]) -> "SlicePlan":
        return cls(breakdowns)

    # -- views --------------------------------------------------------------------

    @property
    def requests(self) -> tuple[SliceRequest, ...]:
        return self._requests

    def breakdowns(self) -> tuple[Breakdown, ...]:
        return tuple(request.breakdown for request in self._requests)

    @property
    def countries(self) -> tuple[str, ...]:
        return tuple(sorted({r.country for r in self._requests}))

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[SliceRequest]:
        return iter(self._requests)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SlicePlan):
            return NotImplemented
        return self._requests == other._requests

    def __hash__(self) -> int:
        return hash(self._requests)

    def __repr__(self) -> str:
        return (
            f"SlicePlan({len(self._requests)} slices, "
            f"{len(self.countries)} countries)"
        )

    # -- derivation ---------------------------------------------------------------

    def without(self, done: Iterable[Breakdown]) -> "SlicePlan":
        """The remaining plan after removing already-available breakdowns."""
        drop = set(done)
        return SlicePlan(r for r in self._requests if r.breakdown not in drop)

    def partition(self) -> tuple[CountryWorkUnit, ...]:
        """Per-country work units, in country order."""
        by_country: dict[str, list[SliceRequest]] = {}
        for request in self._requests:
            by_country.setdefault(request.country, []).append(request)
        return tuple(
            CountryWorkUnit(country, tuple(requests))
            for country, requests in sorted(by_country.items())
        )
