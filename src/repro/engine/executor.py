"""Slice executors: the serial reference and the process-pool fast path.

Both executors turn a :class:`~repro.engine.plan.SlicePlan` into
``{Breakdown: RankedList}`` and are required to produce *byte-identical*
output for the same :class:`~repro.synth.generator.GeneratorConfig`:
every noise component is a pure function of ``(seed, country,
component)``, so where a slice is computed cannot change what it
contains.  :class:`SerialExecutor` is the reference implementation;
:class:`ParallelExecutor` fans per-country work units out to worker
processes, each of which builds (or, under ``fork``, inherits) its own
generator from the picklable config.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed

from ..core.errors import GenerationError
from ..core.rankedlist import RankedList
from ..core.types import Breakdown
from ..obs import NULL_TRACER, NullTracer, Tracer
from ..synth.generator import GeneratorConfig, TelemetryGenerator
from .plan import CountryWorkUnit, SlicePlan

#: Generators are deterministic functions of their config and carry the
#: memoised universe plus per-country state, so each process keeps one
#: per fingerprint — in workers this is the per-worker construction the
#: parallel path relies on; in the parent it lets engines share state.
_GENERATORS: dict[str, TelemetryGenerator] = {}


def generator_for(config: GeneratorConfig) -> TelemetryGenerator:
    """This process's memoised generator for ``config``."""
    fingerprint = config.fingerprint()
    generator = _GENERATORS.get(fingerprint)
    if generator is None:
        generator = TelemetryGenerator(config)
        _GENERATORS[fingerprint] = generator
    return generator


def _run_work_unit(
    config: GeneratorConfig,
    unit: CountryWorkUnit,
    tracer: Tracer | NullTracer = NULL_TRACER,
    batch: bool = True,
) -> list[tuple[Breakdown, RankedList]]:
    """Worker entry point: generate every slice of one country's unit.

    ``batch=True`` scores the whole unit in one matrix pass
    (:meth:`TelemetryGenerator.rank_lists_batch`); ``batch=False`` keeps
    the per-slice reference path.  Both emit the same per-slice
    ``engine.generate_slice`` spans and are byte-identical (asserted in
    ``tests/engine/test_batch_parity.py``).
    """
    generator = generator_for(config)
    if batch:
        produced = generator.rank_lists_batch(
            unit.country, unit.breakdowns(), tracer=tracer
        )
        return list(produced.items())
    results: list[tuple[Breakdown, RankedList]] = []
    for request in unit.requests:
        with tracer.span(
            "engine.generate_slice",
            country=request.country,
            platform=request.platform.value,
            metric=request.metric.value,
            month=str(request.month),
            cache="miss",
        ):
            results.append((
                request.breakdown,
                generator.rank_list(
                    request.country, request.platform,
                    request.metric, request.month,
                ),
            ))
    return results


def _run_work_unit_traced(
    config: GeneratorConfig, unit: CountryWorkUnit, batch: bool = True
) -> tuple[list[tuple[Breakdown, RankedList]], list[dict[str, object]]]:
    """Worker entry point when the parent traces: ship span dicts back.

    The worker records into its own local tracer (a forked worker must
    not touch the parent's collector through the inherited module
    global) and the parent adopts the finished spans; the pid-prefixed
    span ids keep workers' spans distinct from each other's.
    """
    tracer = Tracer(span_prefix=f"w{os.getpid()}-")
    grid = "x".join(str(extent) for extent in unit.grid_shape())
    with tracer.span("engine.work_unit", country=unit.country,
                     pid=os.getpid(), slices=len(unit), grid=grid):
        results = _run_work_unit(config, unit, tracer, batch)
    return results, tracer.collector.drain()


class SerialExecutor:
    """In-process execution — the reference implementation.

    ``batch=True`` (the default) scores each country's work unit in one
    matrix pass; ``batch=False`` keeps the original per-slice loop as
    the byte-identity reference and benchmark baseline.
    """

    name = "serial"

    def __init__(self, *, batch: bool = True) -> None:
        self.batch = batch

    def execute(
        self,
        config: GeneratorConfig,
        plan: SlicePlan,
        generator: TelemetryGenerator | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> dict[Breakdown, RankedList]:
        if generator is None:
            generator = generator_for(config)
        if tracer is None:
            tracer = NULL_TRACER
        results: dict[Breakdown, RankedList] = {}
        for unit in plan.partition():
            results.update(_run_work_unit(config, unit, tracer, self.batch))
        return results


class ParallelExecutor:
    """Process-pool execution, sharded by country.

    ``jobs`` bounds the worker count (default: the CPU count).  Workers
    are forked where the platform supports it so an already-built
    universe is inherited rather than rebuilt; under ``spawn`` each
    worker reconstructs its generator from the picklable config.
    Results are keyed by breakdown, so scheduling order never affects
    the output — a requirement, not an accident (see module docstring).
    Each shipped work unit is a whole country grid, which the worker
    scores in one batched matrix pass by default (``batch=False`` for
    the per-slice reference path).
    """

    name = "parallel"

    def __init__(self, jobs: int | None = None, *, batch: bool = True) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise GenerationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.batch = batch

    @staticmethod
    def _context():
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context()

    def execute(
        self,
        config: GeneratorConfig,
        plan: SlicePlan,
        generator: TelemetryGenerator | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> dict[Breakdown, RankedList]:
        if tracer is None:
            tracer = NULL_TRACER
        units = plan.partition()
        if self.jobs == 1 or len(units) <= 1:
            return SerialExecutor(batch=self.batch).execute(
                config, plan, generator=generator, tracer=tracer
            )
        results: dict[Breakdown, RankedList] = {}
        workers = min(self.jobs, len(units))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=self._context()
        ) as pool:
            if tracer.enabled:
                # Workers trace locally and ship span dicts back with
                # their results; adopting re-parents them under the
                # caller's active span so one file covers the whole run.
                futures = [
                    pool.submit(_run_work_unit_traced, config, unit, self.batch)
                    for unit in units
                ]
                for future in as_completed(futures):
                    produced, spans = future.result()
                    results.update(produced)
                    tracer.adopt(spans)
            else:
                futures = [
                    pool.submit(_run_work_unit, config, unit, NULL_TRACER, self.batch)
                    for unit in units
                ]
                for future in as_completed(futures):
                    results.update(future.result())
        return results
