"""The website category taxonomy (Table 3) plus curated special categories.

Section 3.2: starting from Cloudflare's 26 super-categories / 114
categories, the authors drop 19 low-accuracy categories, merge similar
ones, and end with **22 super-categories and 61 categories** (Table 3).
Two additional use-case-defining categories — *Search Engines* and
*Social Networks* — failed the API accuracy bar and were manually
curated instead; we model them as ``curated`` categories layered on top
of the API taxonomy, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CategorySpec:
    """One category in the final taxonomy."""

    name: str
    supercategory: str
    curated: bool = False


def _cat(name: str, supercategory: str) -> CategorySpec:
    return CategorySpec(name, supercategory)


#: Table 3 — the final 22-super-category / 61-category taxonomy.
TABLE3_TAXONOMY: tuple[CategorySpec, ...] = (
    # Adult Themes
    _cat("Pornography", "Adult Themes"),
    _cat("Adult Themes", "Adult Themes"),
    # Business & Economy
    _cat("Business", "Business & Economy"),
    _cat("Economy & Finance", "Business & Economy"),
    # Education
    _cat("Educational Institutions", "Education"),
    _cat("Education", "Education"),
    _cat("Science", "Education"),
    # Entertainment
    _cat("News & Media", "Entertainment"),
    _cat("Audio Streaming", "Entertainment"),
    _cat("Music", "Entertainment"),
    _cat("Magazines", "Entertainment"),
    _cat("Cartoons & Anime", "Entertainment"),
    _cat("Movies & Home Video", "Entertainment"),
    _cat("Arts", "Entertainment"),
    _cat("Entertainment", "Entertainment"),
    _cat("Gaming", "Entertainment"),
    _cat("Video Streaming", "Entertainment"),
    _cat("Television", "Entertainment"),
    _cat("Comic Books", "Entertainment"),
    _cat("Paranormal", "Entertainment"),
    # Gambling
    _cat("Gambling", "Gambling"),
    # Government & Politics
    _cat("Government & Politics", "Government & Politics"),
    _cat("Politics, Advocacy, and Government-Related", "Government & Politics"),
    # Health
    _cat("Health & Fitness", "Health"),
    _cat("Sex Education", "Health"),
    # Internet Communication
    _cat("Forums", "Internet Communication"),
    _cat("Webmail", "Internet Communication"),
    _cat("Chat & Messaging", "Internet Communication"),
    # Job Search & Careers
    _cat("Job Search & Careers", "Job Search & Careers"),
    # Miscellaneous
    _cat("Redirect", "Miscellaneous"),
    # Questionable Content
    _cat("Drugs", "Questionable Content"),
    _cat("Questionable Content", "Questionable Content"),
    _cat("Hacking", "Questionable Content"),
    # Real Estate
    _cat("Real Estate", "Real Estate"),
    # Religion
    _cat("Religion", "Religion"),
    # Shopping & Auctions
    _cat("Ecommerce", "Shopping & Auctions"),
    _cat("Auctions & Marketplaces", "Shopping & Auctions"),
    _cat("Coupons", "Shopping & Auctions"),
    # Society & Lifestyle
    _cat("Lifestyle", "Society & Lifestyle"),
    _cat("Clothing and Fashion", "Society & Lifestyle"),
    _cat("Food & Drink", "Society & Lifestyle"),
    _cat("Hobbies & Interests", "Society & Lifestyle"),
    _cat("Home & Garden", "Society & Lifestyle"),
    _cat("Pets", "Society & Lifestyle"),
    _cat("Parenting", "Society & Lifestyle"),
    _cat("Photography", "Society & Lifestyle"),
    _cat("Astrology", "Society & Lifestyle"),
    _cat("Dating & Relationships", "Society & Lifestyle"),
    _cat("Arts & Crafts", "Society & Lifestyle"),
    _cat("Sexuality", "Society & Lifestyle"),
    _cat("Tobacco", "Society & Lifestyle"),
    _cat("Body Art", "Society & Lifestyle"),
    _cat("Digital Postcards", "Society & Lifestyle"),
    # Sports
    _cat("Sports", "Sports"),
    # Technology
    _cat("Technology", "Technology"),
    # Travel
    _cat("Travel", "Travel"),
    # Vehicles
    _cat("Vehicles", "Vehicles"),
    # Violence
    _cat("Weapons", "Violence"),
    _cat("Violence", "Violence"),
    # Weather
    _cat("Weather", "Weather"),
    # Unknown
    _cat("Unknown", "Unknown"),
)

#: The two manually curated categories (Section 3.2): the API's labels for
#: these were below the 80 % accuracy bar, so the authors verified sites
#: by hand.  We attach them to the supercategories they naturally live in.
CURATED_CATEGORIES: tuple[CategorySpec, ...] = (
    CategorySpec("Search Engines", "Search Engines", curated=True),
    CategorySpec("Social Networks", "Social Networks", curated=True),
)

#: Full working taxonomy = Table 3 + curated categories.
ALL_CATEGORIES: tuple[CategorySpec, ...] = TABLE3_TAXONOMY + CURATED_CATEGORIES


#: Categories the accuracy analysis dropped (Appendix B: 19 excluded
#: categories whose sites were folded into Other/Unknown).  These exist in
#: the *raw* simulated API vocabulary but not in the final taxonomy; the
#: validation workflow (repro.categories.validation) rediscovers that they
#: are inaccurate and excludes them.
DROPPED_RAW_CATEGORIES: tuple[str, ...] = (
    "Content Servers",
    "CDNs",
    "Advertising",
    "Parked Domains",
    "Login Screens",
    "Malware",
    "Phishing",
    "Spam",
    "Cryptomining",
    "Anonymizers",
    "Translation Services",
    "File Sharing",
    "P2P",
    "Dynamic DNS",
    "Newly Registered Domains",
    "Newly Seen Domains",
    "Placeholders",
    "Military",
    "Swimwear & Lingerie",
)

#: Raw API categories that the cleaning step *merges* into a single final
#: category (Section 3.2's example: Chat, Instant Messengers and Messaging
#: become "Chat & Messaging").
MERGED_RAW_CATEGORIES: dict[str, str] = {
    "Chat": "Chat & Messaging",
    "Instant Messengers": "Chat & Messaging",
    "Messaging": "Chat & Messaging",
    "Blogs": "Lifestyle",
    "Personal Sites": "Lifestyle",
    "Streaming Video": "Video Streaming",
    "Internet Radio": "Audio Streaming",
    "Online Games": "Gaming",
    "Game Publishers": "Gaming",
    "Stock Trading": "Economy & Finance",
    "Cryptocurrency": "Economy & Finance",
}


def category_names() -> tuple[str, ...]:
    """Names of the 61 Table 3 categories, in table order."""
    return tuple(spec.name for spec in TABLE3_TAXONOMY)


def supercategory_names() -> tuple[str, ...]:
    """Names of the 22 Table 3 supercategories, in first-seen order."""
    seen: list[str] = []
    for spec in TABLE3_TAXONOMY:
        if spec.supercategory not in seen:
            seen.append(spec.supercategory)
    return tuple(seen)
