"""The 45 study countries (Appendix A) with generation-relevant metadata.

The paper limits analysis to 45 countries — at most 10 per continent —
each with at least 10K websites above Chrome's privacy threshold.  For
the synthetic world each country carries:

* ``continent`` and ``languages`` — drive the regional-affinity structure
  that Section 5.3 recovers ("clusters ... follow patterns of shared
  geography and shared language");
* ``region_group`` — the latent cluster the generator plants and that
  affinity propagation should (approximately) rediscover;
* ``web_scale`` — relative size of the Chrome install base, weighting the
  globally aggregated traffic curves (Section 4.1.1 notes global curves
  are "more heavily weighted towards countries with more web usage");
* ``list_size`` — how many sites clear the privacy threshold (10K for
  every study country, by construction; the generator can also emit
  smaller non-study countries to exercise the thresholding code path).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Country:
    """Static metadata for one country in the synthetic world."""

    code: str
    name: str
    continent: str
    languages: tuple[str, ...]
    region_group: str
    web_scale: float = 1.0
    list_size: int = 10_000

    def __post_init__(self) -> None:
        if len(self.code) != 2 or not self.code.isupper():
            raise ValueError(f"bad ISO code {self.code!r}")
        if self.web_scale <= 0:
            raise ValueError("web_scale must be positive")
        if self.list_size < 1:
            raise ValueError("list_size must be positive")

    def shares_language(self, other: "Country") -> bool:
        return bool(set(self.languages) & set(other.languages))


def _c(
    code: str,
    name: str,
    continent: str,
    languages: tuple[str, ...],
    region_group: str,
    web_scale: float,
) -> Country:
    return Country(code, name, continent, languages, region_group, web_scale)


#: All 45 study countries, Appendix A order within continent.
COUNTRIES: tuple[Country, ...] = (
    # -- Africa (7) ---------------------------------------------------------------
    _c("DZ", "Algeria", "Africa", ("ar", "fr"), "north_africa", 1.1),
    _c("EG", "Egypt", "Africa", ("ar",), "north_africa", 2.4),
    _c("KE", "Kenya", "Africa", ("en", "sw"), "subsaharan", 0.8),
    _c("MA", "Morocco", "Africa", ("ar", "fr"), "north_africa", 1.0),
    _c("NG", "Nigeria", "Africa", ("en",), "subsaharan", 1.6),
    _c("TN", "Tunisia", "Africa", ("ar", "fr"), "north_africa", 0.5),
    _c("ZA", "South Africa", "Africa", ("en",), "subsaharan", 1.3),
    # -- Asia (10) ----------------------------------------------------------------
    _c("JP", "Japan", "Asia", ("ja",), "japan", 6.0),
    _c("IN", "India", "Asia", ("hi", "en"), "india", 9.0),
    _c("KR", "South Korea", "Asia", ("ko",), "korea", 3.0),
    _c("TR", "Turkey", "Asia", ("tr",), "turkey", 2.2),
    _c("VN", "Vietnam", "Asia", ("vi",), "southeast_asia", 1.8),
    _c("TW", "Taiwan", "Asia", ("zh",), "east_asia_zh", 1.5),
    _c("ID", "Indonesia", "Asia", ("id",), "southeast_asia", 2.8),
    _c("TH", "Thailand", "Asia", ("th",), "southeast_asia", 1.6),
    _c("PH", "Philippines", "Asia", ("en", "tl"), "southeast_asia", 1.7),
    _c("HK", "Hong Kong", "Asia", ("zh", "en"), "east_asia_zh", 0.9),
    # -- Europe (10) --------------------------------------------------------------
    _c("GB", "United Kingdom", "Europe", ("en",), "anglosphere", 4.0),
    _c("FR", "France", "Europe", ("fr",), "france_benelux", 3.8),
    _c("RU", "Russia", "Europe", ("ru",), "russia", 4.5),
    _c("DE", "Germany", "Europe", ("de",), "europe_central", 4.2),
    _c("IT", "Italy", "Europe", ("it",), "europe_central", 3.0),
    _c("ES", "Spain", "Europe", ("es",), "europe_central", 2.6),
    _c("NL", "Netherlands", "Europe", ("nl",), "france_benelux", 1.2),
    _c("PL", "Poland", "Europe", ("pl",), "europe_central", 1.9),
    _c("UA", "Ukraine", "Europe", ("uk", "ru"), "europe_central", 1.4),
    _c("BE", "Belgium", "Europe", ("fr", "nl"), "france_benelux", 0.8),
    # -- North America (7) ----------------------------------------------------------
    _c("CA", "Canada", "North America", ("en", "fr"), "anglosphere", 2.4),
    _c("CR", "Costa Rica", "North America", ("es",), "latam_es", 0.4),
    _c("DO", "Dominican Republic", "North America", ("es",), "latam_es", 0.5),
    _c("GT", "Guatemala", "North America", ("es",), "latam_es", 0.6),
    _c("MX", "Mexico", "North America", ("es",), "latam_es", 3.4),
    _c("PA", "Panama", "North America", ("es",), "latam_es", 0.3),
    _c("US", "United States", "North America", ("en",), "anglosphere", 10.0),
    # -- Oceania (2) -----------------------------------------------------------------
    _c("AU", "Australia", "Oceania", ("en",), "anglosphere", 1.8),
    _c("NZ", "New Zealand", "Oceania", ("en",), "anglosphere", 0.5),
    # -- South America (9) -------------------------------------------------------------
    _c("AR", "Argentina", "South America", ("es",), "latam_es", 1.8),
    _c("BO", "Bolivia", "South America", ("es",), "latam_es", 0.5),
    _c("BR", "Brazil", "South America", ("pt",), "brazil", 5.5),
    _c("CL", "Chile", "South America", ("es",), "latam_es", 1.1),
    _c("CO", "Colombia", "South America", ("es",), "latam_es", 1.6),
    _c("EC", "Ecuador", "South America", ("es",), "latam_es", 0.7),
    _c("PE", "Peru", "South America", ("es",), "latam_es", 1.2),
    _c("UY", "Uruguay", "South America", ("es",), "latam_es", 0.3),
    _c("VE", "Venezuela", "South America", ("es",), "latam_es", 0.9),
)

_BY_CODE: dict[str, Country] = {c.code: c for c in COUNTRIES}

#: ISO codes of all 45 study countries, sorted.
COUNTRY_CODES: tuple[str, ...] = tuple(sorted(_BY_CODE))


def get_country(code: str) -> Country:
    """Look up a study country by ISO code."""
    try:
        return _BY_CODE[code]
    except KeyError:
        raise KeyError(f"unknown study country {code!r}") from None


def by_continent() -> dict[str, tuple[Country, ...]]:
    """Countries grouped by continent, mirroring Appendix A."""
    groups: dict[str, list[Country]] = {}
    for country in COUNTRIES:
        groups.setdefault(country.continent, []).append(country)
    return {k: tuple(v) for k, v in groups.items()}


def by_region_group() -> dict[str, tuple[Country, ...]]:
    """Countries grouped by the latent region group the generator plants."""
    groups: dict[str, list[Country]] = {}
    for country in COUNTRIES:
        groups.setdefault(country.region_group, []).append(country)
    return {k: tuple(v) for k, v in groups.items()}


def language_neighbors(code: str) -> tuple[str, ...]:
    """Codes of other study countries sharing at least one language."""
    country = get_country(code)
    return tuple(
        other.code
        for other in COUNTRIES
        if other.code != code and country.shares_language(other)
    )
