"""Per-category behavioural profiles and paper-calibrated traffic anchors.

This module is the quantitative heart of the substitution described in
DESIGN.md: every qualitative finding the paper reports about a category
(mobile- vs desktop-leaning, loads- vs time-leaning, December shifts,
globally vs nationally popular, head- vs tail-heavy) is encoded here as a
generation parameter, so the analysis pipeline can *recover* it from the
synthesised rank lists the same way the paper recovered it from Chrome
telemetry.

The profile fields:

``prevalence``
    Relative share of sites carrying this category in the per-country
    site pools (drives the %-of-domains panels of Figure 2).
``mu`` / ``sigma``
    Location and spread of the log-normal base-strength distribution for
    the category's rank-and-file sites.  A high ``mu`` pushes the
    category toward the head of rank lists (News & Media peaks among the
    top-50, Figure 3); a low ``mu`` with high ``prevalence`` makes a
    long-tail category (Business rises to ~8 % of the top-10K).
``mobile_mult``
    Android score multiplier; >1 means mobile-leaning (Figure 4: e.g.
    Pornography, Dating & Relationships, Gambling), <1 desktop-leaning
    (Educational Institutions, Webmail, Gaming, Economy & Finance).
``time_mult``
    Time-on-page score multiplier; >1 means time-leaning (Figure 5:
    Video Streaming, Movies & Home Video, News & Media), <1
    loads-leaning (Ecommerce, Educational Institutions, Economy &
    Finance).
``december_mult``
    Seasonal multiplier applied in December (Section 4.5: Ecommerce up,
    Education down).
``global_fraction``
    Fraction of the category's sites drawn as *global* archetypes
    (Section 5.2 / Figure 8: technology, pornography and gaming are
    disproportionately global; educational institutions, politics and
    finance are national).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.types import Metric, Platform
from .categories_data import ALL_CATEGORIES


@dataclass(frozen=True)
class CategoryProfile:
    """Generation parameters for one website category."""

    prevalence: float = 1.0
    mu: float = 0.0
    sigma: float = 1.0
    mobile_mult: float = 1.0
    time_mult: float = 1.0
    december_mult: float = 1.0
    global_fraction: float = 0.05
    #: Extra multiplier on the category's weight in the per-country
    #: *strong-site* pool (the ranks ~30-150 zone of Figure 3); the base
    #: weight is prevalence × exp(mu).
    head_boost: float = 1.0

    def __post_init__(self) -> None:
        if self.prevalence < 0:
            raise ValueError("prevalence must be non-negative")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        for field_name in ("mobile_mult", "time_mult", "december_mult"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if not 0.0 <= self.global_fraction <= 1.0:
            raise ValueError("global_fraction must be in [0, 1]")
        if self.head_boost < 0:
            raise ValueError("head_boost must be non-negative")


_DEFAULT = CategoryProfile()

#: Hand-tuned overrides for the categories the paper's findings hinge on.
#: Categories not listed here take supercategory defaults, then _DEFAULT.
_CATEGORY_OVERRIDES: dict[str, CategoryProfile] = {
    # -- the two curated use-case categories -------------------------------------
    "Search Engines": CategoryProfile(
        prevalence=0.08, mu=3.2, sigma=1.2,
        mobile_mult=1.0, time_mult=0.45, global_fraction=0.5,
    ),
    "Social Networks": CategoryProfile(
        prevalence=0.25, mu=2.2, sigma=1.2,
        mobile_mult=1.15, time_mult=1.3, global_fraction=0.45,
    ),
    # -- adult -----------------------------------------------------------------------
    "Pornography": CategoryProfile(
        prevalence=4.5, mu=0.7, sigma=1.3,
        mobile_mult=1.5, time_mult=1.40, global_fraction=0.30,
    ),
    "Adult Themes": CategoryProfile(
        prevalence=0.8, mu=-0.2, sigma=1.0, mobile_mult=1.6, global_fraction=0.15,
    ),
    # -- business / economy ---------------------------------------------------------
    "Business": CategoryProfile(
        prevalence=11.0, mu=-0.35, sigma=0.95,
        mobile_mult=0.55, time_mult=0.85, global_fraction=0.06,
    ),
    "Economy & Finance": CategoryProfile(
        prevalence=4.0, mu=0.1, sigma=1.0,
        mobile_mult=0.6, time_mult=0.6, global_fraction=0.03,
    ),
    # -- education ---------------------------------------------------------------------
    "Educational Institutions": CategoryProfile(
        prevalence=4.5, mu=0.0, sigma=1.0,
        mobile_mult=0.45, time_mult=0.6, december_mult=0.55, global_fraction=0.01,
    ),
    "Education": CategoryProfile(
        prevalence=3.0, mu=0.0, sigma=1.0,
        mobile_mult=0.7, time_mult=0.8, december_mult=0.7, global_fraction=0.06,
    ),
    "Science": CategoryProfile(
        prevalence=1.2, mu=-0.2, sigma=0.9,
        mobile_mult=0.7, december_mult=0.8, global_fraction=0.10,
    ),
    # -- entertainment ------------------------------------------------------------------
    "News & Media": CategoryProfile(
        prevalence=3.2, mu=1.1, sigma=0.85,
        mobile_mult=1.10, time_mult=1.35, global_fraction=0.02,
        head_boost=2.4,
    ),
    "Video Streaming": CategoryProfile(
        prevalence=1.6, mu=1.6, sigma=1.7,
        mobile_mult=0.8, time_mult=2.4, global_fraction=0.20,
    ),
    "Movies & Home Video": CategoryProfile(
        prevalence=1.4, mu=0.5, sigma=1.2,
        mobile_mult=1.1, time_mult=2.0, global_fraction=0.12,
    ),
    "Television": CategoryProfile(
        prevalence=1.0, mu=0.6, sigma=1.1,
        mobile_mult=0.95, time_mult=1.8, global_fraction=0.0,
    ),
    "Gaming": CategoryProfile(
        prevalence=4.0, mu=0.45, sigma=1.25,
        mobile_mult=0.55, time_mult=1.35, global_fraction=0.22,
    ),
    "Cartoons & Anime": CategoryProfile(
        prevalence=1.0, mu=0.3, sigma=1.2,
        mobile_mult=1.2, time_mult=1.5, global_fraction=0.12,
    ),
    "Comic Books": CategoryProfile(
        prevalence=0.6, mu=0.0, sigma=1.0, mobile_mult=1.3, time_mult=1.3,
        global_fraction=0.08,
    ),
    "Music": CategoryProfile(
        prevalence=1.6, mu=0.3, sigma=1.0, mobile_mult=1.25, time_mult=1.2,
        global_fraction=0.15,
    ),
    "Audio Streaming": CategoryProfile(
        prevalence=0.7, mu=0.4, sigma=1.1, mobile_mult=1.1, time_mult=1.6,
        global_fraction=0.18,
    ),
    "Magazines": CategoryProfile(
        prevalence=1.2, mu=0.1, sigma=0.9, mobile_mult=1.7, time_mult=1.2,
        global_fraction=0.05,
    ),
    "Entertainment": CategoryProfile(
        prevalence=2.4, mu=0.2, sigma=1.0, mobile_mult=1.3, time_mult=1.2,
        global_fraction=0.10,
    ),
    "Arts": CategoryProfile(prevalence=0.8, mu=-0.2, sigma=0.9, global_fraction=0.08),
    "Paranormal": CategoryProfile(
        prevalence=0.2, mu=-0.5, sigma=0.8, mobile_mult=1.4, global_fraction=0.05,
    ),
    # -- gambling -------------------------------------------------------------------------
    "Gambling": CategoryProfile(
        prevalence=1.5, mu=0.2, sigma=1.1,
        mobile_mult=1.75, time_mult=1.2, global_fraction=0.06,
    ),
    # -- government / politics ---------------------------------------------------------------
    "Government & Politics": CategoryProfile(
        prevalence=2.6, mu=0.15, sigma=1.0,
        mobile_mult=0.8, time_mult=0.8, global_fraction=0.0,
    ),
    "Politics, Advocacy, and Government-Related": CategoryProfile(
        prevalence=1.0, mu=-0.2, sigma=0.9, mobile_mult=0.9, global_fraction=0.01,
    ),
    # -- health ----------------------------------------------------------------------------
    "Health & Fitness": CategoryProfile(
        prevalence=2.2, mu=-0.1, sigma=0.9, mobile_mult=1.25, global_fraction=0.04,
    ),
    "Sex Education": CategoryProfile(
        prevalence=0.3, mu=-0.4, sigma=0.8, mobile_mult=1.4, global_fraction=0.08,
    ),
    # -- internet communication ---------------------------------------------------------------
    "Forums": CategoryProfile(
        prevalence=2.0, mu=0.3, sigma=1.1,
        mobile_mult=0.9, time_mult=1.35, global_fraction=0.08,
    ),
    "Webmail": CategoryProfile(
        prevalence=0.9, mu=1.1, sigma=1.1,
        mobile_mult=0.5, time_mult=1.1, global_fraction=0.12,
    ),
    "Chat & Messaging": CategoryProfile(
        prevalence=0.9, mu=1.2, sigma=1.3,
        mobile_mult=0.95, time_mult=1.2, global_fraction=0.28,
    ),
    # -- job search -------------------------------------------------------------------------
    "Job Search & Careers": CategoryProfile(
        prevalence=1.2, mu=0.0, sigma=0.9, mobile_mult=0.85, time_mult=0.8,
        global_fraction=0.04,
    ),
    # -- misc / questionable --------------------------------------------------------------------
    "Redirect": CategoryProfile(
        prevalence=0.7, mu=-0.3, sigma=1.0, time_mult=0.4, global_fraction=0.25,
    ),
    "Drugs": CategoryProfile(prevalence=0.3, mu=-0.6, sigma=0.8, global_fraction=0.06),
    "Questionable Content": CategoryProfile(
        prevalence=0.8, mu=-0.4, sigma=0.9, mobile_mult=1.3, global_fraction=0.10,
    ),
    "Hacking": CategoryProfile(prevalence=0.3, mu=-0.5, sigma=0.9, global_fraction=0.15),
    # -- shopping ----------------------------------------------------------------------------
    "Ecommerce": CategoryProfile(
        prevalence=5.0, mu=0.55, sigma=1.15,
        mobile_mult=1.05, time_mult=0.55, december_mult=1.45, global_fraction=0.08,
    ),
    "Auctions & Marketplaces": CategoryProfile(
        prevalence=1.2, mu=0.3, sigma=1.1,
        mobile_mult=1.0, time_mult=0.7, december_mult=1.3, global_fraction=0.07,
    ),
    "Coupons": CategoryProfile(
        prevalence=0.5, mu=-0.3, sigma=0.8,
        mobile_mult=1.2, time_mult=0.6, december_mult=1.5, global_fraction=0.04,
    ),
    # -- society & lifestyle ------------------------------------------------------------------
    "Lifestyle": CategoryProfile(
        prevalence=2.6, mu=-0.25, sigma=0.9, mobile_mult=1.45, global_fraction=0.05,
    ),
    "Clothing and Fashion": CategoryProfile(
        prevalence=1.4, mu=-0.2, sigma=0.9, mobile_mult=1.45, december_mult=1.25,
        global_fraction=0.06,
    ),
    "Food & Drink": CategoryProfile(
        prevalence=1.5, mu=-0.2, sigma=0.9, mobile_mult=1.3, global_fraction=0.04,
    ),
    "Hobbies & Interests": CategoryProfile(
        prevalence=1.6, mu=-0.25, sigma=0.9, mobile_mult=1.15, global_fraction=0.15,
    ),
    "Home & Garden": CategoryProfile(
        prevalence=1.0, mu=-0.3, sigma=0.85, mobile_mult=1.2, global_fraction=0.04,
    ),
    "Pets": CategoryProfile(prevalence=0.5, mu=-0.4, sigma=0.8, mobile_mult=1.2,
                            global_fraction=0.05),
    "Parenting": CategoryProfile(prevalence=0.4, mu=-0.4, sigma=0.8, mobile_mult=1.3,
                                 global_fraction=0.03),
    "Photography": CategoryProfile(
        prevalence=0.7, mu=-0.1, sigma=1.0, mobile_mult=1.1, global_fraction=0.22,
    ),
    "Astrology": CategoryProfile(
        prevalence=0.3, mu=-0.3, sigma=0.8, mobile_mult=1.6, global_fraction=0.04,
    ),
    "Dating & Relationships": CategoryProfile(
        prevalence=0.9, mu=0.0, sigma=1.0,
        mobile_mult=1.95, time_mult=1.2, global_fraction=0.15,
    ),
    "Arts & Crafts": CategoryProfile(
        prevalence=0.5, mu=-0.4, sigma=0.8, mobile_mult=1.2, global_fraction=0.06,
    ),
    "Sexuality": CategoryProfile(
        prevalence=0.3, mu=-0.4, sigma=0.8, mobile_mult=1.4, global_fraction=0.08,
    ),
    "Tobacco": CategoryProfile(prevalence=0.1, mu=-0.7, sigma=0.7, global_fraction=0.03),
    "Body Art": CategoryProfile(prevalence=0.15, mu=-0.6, sigma=0.7, mobile_mult=1.3,
                                global_fraction=0.04),
    "Digital Postcards": CategoryProfile(
        prevalence=0.1, mu=-0.7, sigma=0.7, global_fraction=0.03,
    ),
    # -- remaining single-category supercategories -----------------------------------------------
    "Real Estate": CategoryProfile(
        prevalence=1.2, mu=-0.1, sigma=0.9, mobile_mult=0.9, time_mult=0.8,
        global_fraction=0.01,
    ),
    "Religion": CategoryProfile(prevalence=0.6, mu=-0.4, sigma=0.9, global_fraction=0.03),
    "Sports": CategoryProfile(
        prevalence=1.8, mu=0.45, sigma=1.0, mobile_mult=1.3, time_mult=1.15,
        global_fraction=0.05,
    ),
    "Technology": CategoryProfile(
        prevalence=10.0, mu=0.1, sigma=1.35,
        mobile_mult=0.62, time_mult=0.9, global_fraction=0.26,
    ),
    "Travel": CategoryProfile(
        prevalence=1.6, mu=-0.1, sigma=0.95, mobile_mult=0.95, time_mult=0.8,
        global_fraction=0.08,
    ),
    "Vehicles": CategoryProfile(
        prevalence=1.2, mu=-0.2, sigma=0.9, mobile_mult=0.85, global_fraction=0.04,
    ),
    "Weapons": CategoryProfile(prevalence=0.2, mu=-0.6, sigma=0.8, global_fraction=0.05),
    "Violence": CategoryProfile(prevalence=0.1, mu=-0.8, sigma=0.7, global_fraction=0.05),
    "Weather": CategoryProfile(
        prevalence=0.4, mu=0.4, sigma=0.9, mobile_mult=1.2, time_mult=0.6,
        global_fraction=0.03,
    ),
    "Unknown": CategoryProfile(
        prevalence=8.0, mu=-0.5, sigma=1.1, global_fraction=0.08,
    ),
}

_KNOWN_NAMES = {spec.name for spec in ALL_CATEGORIES}
_unknown = set(_CATEGORY_OVERRIDES) - _KNOWN_NAMES
if _unknown:  # fail at import time: a typo here corrupts the whole world
    raise ValueError(f"profiles reference unknown categories: {sorted(_unknown)}")


def profile_for(category: str) -> CategoryProfile:
    """The generation profile for ``category`` (default profile if untuned)."""
    if category not in _KNOWN_NAMES:
        raise KeyError(f"unknown category {category!r}")
    return _CATEGORY_OVERRIDES.get(category, _DEFAULT)


def all_profiles() -> dict[str, CategoryProfile]:
    """Profiles for every category in the working taxonomy."""
    return {spec.name: profile_for(spec.name) for spec in ALL_CATEGORIES}


def scaled_profile(category: str, prevalence_scale: float) -> CategoryProfile:
    """A profile with prevalence scaled — used by ablation experiments."""
    base = profile_for(category)
    return replace(base, prevalence=base.prevalence * prevalence_scale)


# ---------------------------------------------------------------------------
# Traffic-distribution anchors (Figure 1 / Section 4.1.2)
# ---------------------------------------------------------------------------

#: Cumulative-share anchor points per (platform, metric), straight from the
#: concentration numbers reported in Section 4.1.2.  Interpolated by
#: :class:`repro.core.distribution.TrafficDistribution`.
TRAFFIC_ANCHORS: dict[tuple[Platform, Metric], tuple[tuple[float, float], ...]] = {
    (Platform.WINDOWS, Metric.PAGE_LOADS): (
        (1, 0.17), (6, 0.25), (100, 0.397), (10_000, 0.70), (1_000_000, 0.955),
    ),
    (Platform.WINDOWS, Metric.TIME_ON_PAGE): (
        (1, 0.24), (7, 0.50), (100, 0.62), (10_000, 0.86), (1_000_000, 0.97),
    ),
    (Platform.ANDROID, Metric.PAGE_LOADS): (
        (1, 0.12), (10, 0.25), (100, 0.36), (10_000, 0.72), (1_000_000, 0.95),
    ),
    (Platform.ANDROID, Metric.TIME_ON_PAGE): (
        (1, 0.10), (8, 0.25), (100, 0.43), (10_000, 0.79), (1_000_000, 0.96),
    ),
}

#: Per-country concentration: the top-ranked site captures 12–33 % of page
#: loads (median 20 %, Section 4.1.2).  The generator jitters each
#: country's curve head within this band.
PER_COUNTRY_TOP1_RANGE: tuple[float, float] = (0.12, 0.33)
PER_COUNTRY_TOP1_MEDIAN: float = 0.20
