"""The synthetic website universe: named anchors and national champions.

Two kinds of ground truth live here:

* :data:`NAMED_SITES` — a curated roster of the individual websites the
  paper discusses by name (Google, YouTube, Naver, the KR forums, HBO
  Max, shopee's per-country storefronts, ...), each with an explicit
  strength and the platform/metric/seasonal behaviour the paper reports
  for it.  These populate the heads of the generated rank lists, so
  site-level findings ("Google is #1 by page loads in 44/45 countries,
  Naver tops South Korea"; "users spend the most time on YouTube in
  40/45 countries") are reproducible.

* :data:`CHAMPION_RULES` — procedural rules that give each country its
  *national champions*: the top-10 bank, government portal, news outlet,
  classified-ads site, and so on that Section 5.3.2 finds are "only ever
  top-10 in one country".

Everything else in the universe (the ~hundreds of thousands of
rank-and-file sites) is generated procedurally by
:mod:`repro.synth.universe` from the category profiles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .countries import COUNTRIES, get_country


class Archetype(enum.Enum):
    """How widely a site's appeal extends (Section 5.1's latent truth)."""

    GLOBAL = "global"       # nonzero appeal in every study country
    REGIONAL = "regional"   # appeal within a language/geography group
    ENDEMIC = "endemic"     # appeal in exactly one country


@dataclass(frozen=True)
class NamedSite:
    """A curated website with explicit generation parameters.

    ``log_strength`` is the natural-log base score on the (Windows,
    page-loads) reference dimension.  Procedural sites top out around
    +4.5, so anchors at 6+ occupy list heads.  ``scope`` entries are
    selectors: ``"global"``, ``"region:<group>"``, ``"lang:<code>"`` or a
    2-letter country code.
    """

    name: str
    category: str
    scope: tuple[str, ...]
    log_strength: float
    mobile_mult: float = 1.0
    time_mult: float = 1.0
    december_mult: float = 1.0
    noise_scale: float = 0.35
    multi_cctld: bool = False
    has_android_app: bool = False
    country_boosts: dict[str, float] = field(default_factory=dict)
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("site needs a name")
        if self.mobile_mult <= 0 or self.time_mult <= 0 or self.december_mult <= 0:
            raise ValueError(f"{self.name}: multipliers must be positive")
        if self.noise_scale < 0:
            raise ValueError(f"{self.name}: noise_scale must be non-negative")

    @property
    def archetype(self) -> Archetype:
        if "global" in self.scope:
            return Archetype.GLOBAL
        country_codes = {c.code for c in COUNTRIES}
        concrete = [s for s in self.scope if s in country_codes]
        if len(self.scope) == len(concrete) == 1:
            return Archetype.ENDEMIC
        return Archetype.REGIONAL


def resolve_scope(scope: tuple[str, ...]) -> tuple[str, ...]:
    """Expand scope selectors into a sorted tuple of country codes."""
    if "global" in scope:
        return tuple(sorted(c.code for c in COUNTRIES))
    codes: set[str] = set()
    for selector in scope:
        if selector.startswith("region:"):
            group = selector.split(":", 1)[1]
            matched = [c.code for c in COUNTRIES if c.region_group == group]
            if not matched:
                raise ValueError(f"unknown region group {group!r}")
            codes.update(matched)
        elif selector.startswith("lang:"):
            lang = selector.split(":", 1)[1]
            matched = [c.code for c in COUNTRIES if lang in c.languages]
            if not matched:
                raise ValueError(f"no study country speaks {lang!r}")
            codes.update(matched)
        else:
            codes.add(get_country(selector).code)
    return tuple(sorted(codes))


def _site(
    name: str,
    category: str,
    scope: tuple[str, ...],
    log_strength: float,
    **kwargs,
) -> NamedSite:
    return NamedSite(name, category, scope, log_strength, **kwargs)


#: The curated anchor roster.  Strengths are on the Windows/page-loads
#: reference dimension; see module docstring for the scale.
NAMED_SITES: tuple[NamedSite, ...] = (
    # ---- the global mega-head (Section 4.1.2) -----------------------------------
    _site("google", "Search Engines", ("global",), 9.00,
          time_mult=0.67, mobile_mult=1.0, noise_scale=0.12, multi_cctld=True,
          has_android_app=True, country_boosts={"US": 0.45},
          tags=("search", "portal")),
    _site("youtube", "Video Streaming", ("global",), 8.45,
          time_mult=1.50, mobile_mult=0.28, noise_scale=0.12,
          has_android_app=True, country_boosts={"US": -0.30},
          tags=("video-sharing",)),
    _site("facebook", "Social Networks", ("global",), 7.90,
          time_mult=1.20, mobile_mult=0.85, noise_scale=0.22,
          has_android_app=True, tags=("social",)),
    _site("whatsapp", "Chat & Messaging", ("global",), 7.45,
          time_mult=1.10, mobile_mult=0.15, noise_scale=0.25,
          has_android_app=True, tags=("messaging",)),
    _site("instagram", "Social Networks", ("global",), 6.80,
          time_mult=1.25, mobile_mult=0.50, noise_scale=0.30,
          has_android_app=True, tags=("social",)),
    _site("twitter", "Social Networks", ("global",), 6.35,
          time_mult=1.20, mobile_mult=0.60, noise_scale=0.30,
          has_android_app=True, tags=("social",)),
    _site("wikipedia", "Education", ("global",), 6.45,
          time_mult=0.85, mobile_mult=1.05, noise_scale=0.30,
          tags=("reference",)),
    _site("amazon", "Ecommerce", ("global",), 6.75,
          time_mult=0.60, mobile_mult=0.75, december_mult=1.50,
          multi_cctld=True, has_android_app=True, noise_scale=0.30,
          country_boosts={"US": 0.6, "GB": 0.5, "DE": 0.5, "JP": 0.5, "IN": 0.4,
                          "IT": 0.3, "ES": 0.3, "FR": 0.3, "CA": 0.3},
          tags=("ecommerce",)),
    _site("roblox", "Gaming", ("global",), 7.00,
          time_mult=1.45, mobile_mult=0.20, noise_scale=0.30,
          has_android_app=True, country_boosts={"KR": -2.5},
          tags=("gaming",)),
    _site("netflix", "Video Streaming", tuple(
        sorted(set(c.code for c in COUNTRIES) - {"JP", "VN", "RU"})), 6.90,
          time_mult=2.20, mobile_mult=0.15, noise_scale=0.28,
          has_android_app=True, tags=("streaming",)),
    _site("twitch", "Gaming", ("global",), 6.85,
          time_mult=1.85, mobile_mult=0.30, noise_scale=0.30,
          has_android_app=True, tags=("gaming", "video-sharing")),
    # ---- work & school (desktop-leaning, Section 4.3) ------------------------------
    _site("office", "Business", ("global",), 6.35,
          time_mult=0.95, mobile_mult=0.10, noise_scale=0.30,
          tags=("business-platform",)),
    _site("sharepoint", "Business", ("global",), 5.80,
          time_mult=0.90, mobile_mult=0.08, noise_scale=0.32,
          tags=("business-platform",)),
    _site("zoom", "Business", ("global",), 5.85,
          time_mult=1.20, mobile_mult=0.25, noise_scale=0.32,
          tags=("videoconferencing",)),
    _site("linkedin", "Job Search & Careers", ("global",), 5.90,
          time_mult=0.90, mobile_mult=0.55, noise_scale=0.32,
          has_android_app=True, tags=("job-search",)),
    # ---- adult (mobile-leaning, Sections 4.2.2 / 4.3) --------------------------------
    _site("xnxx", "Pornography", ("global",), 7.10,
          time_mult=1.50, mobile_mult=1.45, noise_scale=0.28, tags=("adult",)),
    _site("xvideos", "Pornography", ("global",), 7.00,
          time_mult=1.50, mobile_mult=1.42, noise_scale=0.28, tags=("adult",)),
    _site("pornhub", "Pornography", ("global",), 6.95,
          time_mult=1.55, mobile_mult=1.40, noise_scale=0.28,
          country_boosts={"KR": -4.0, "TR": -4.0, "VN": -4.0, "RU": -4.0},
          tags=("adult",)),
    # Censoring countries (Section 5.3.2): KR/TR/VN/RU suppress the big three.
    # xnxx / xvideos share the same suppression via country_boosts below.
    _site("ampproject", "Redirect", ("global",), 4.60,
          time_mult=0.50, mobile_mult=14.0, noise_scale=0.30,
          tags=("amp",)),
    # ---- search & portals beyond Google -----------------------------------------------
    _site("bing", "Search Engines", ("global",), 5.95,
          time_mult=0.50, mobile_mult=0.35, noise_scale=0.30, tags=("search",)),
    _site("duckduckgo", "Search Engines", ("global",), 5.75,
          time_mult=0.50, mobile_mult=0.70, noise_scale=0.32, tags=("search",)),
    _site("yahoo", "Search Engines", ("global",), 6.00,
          time_mult=0.80, mobile_mult=0.80, noise_scale=0.30,
          country_boosts={"JP": 2.35, "TW": 0.8}, tags=("search", "portal")),
    _site("yandex", "Search Engines", ("lang:ru",), 8.05,
          time_mult=0.70, mobile_mult=0.90, noise_scale=0.25, multi_cctld=True,
          tags=("search", "portal")),
    _site("naver", "Search Engines", ("KR",), 9.40,
          time_mult=0.50, mobile_mult=1.05, noise_scale=0.15,
          tags=("search", "portal")),
    _site("daum", "Search Engines", ("KR",), 6.95,
          time_mult=0.70, mobile_mult=0.95, noise_scale=0.28,
          tags=("search", "portal")),
    # ---- Russia / Ukraine ----------------------------------------------------------------
    _site("vk", "Social Networks", ("lang:ru",), 7.35,
          time_mult=1.30, mobile_mult=0.90, noise_scale=0.26, tags=("social",)),
    _site("ok", "Social Networks", ("lang:ru",), 6.55,
          time_mult=1.25, mobile_mult=0.95, noise_scale=0.30, tags=("social",)),
    _site("avito", "Auctions & Marketplaces", ("RU",), 7.10,
          time_mult=0.75, noise_scale=0.30, tags=("classifieds",)),
    _site("ozon", "Ecommerce", ("RU",), 6.55, time_mult=0.60,
          december_mult=1.45, noise_scale=0.30, tags=("ecommerce",)),
    # ---- South Korea's endemic platforms (Section 5.3.2) ------------------------------------
    _site("dcinside", "Forums", ("KR",), 6.80, time_mult=1.40, noise_scale=0.28,
          tags=("forum",)),
    _site("arca-live", "Forums", ("KR",), 6.32, time_mult=1.40, noise_scale=0.28,
          tags=("forum",)),
    _site("fmkorea", "Forums", ("KR",), 6.30, time_mult=1.40, noise_scale=0.28,
          tags=("forum",)),
    _site("inven", "Forums", ("KR",), 6.25, time_mult=1.35, noise_scale=0.28,
          tags=("forum", "gaming")),
    _site("namu-wiki", "Education", ("KR",), 6.85, time_mult=1.10,
          noise_scale=0.28, tags=("reference",)),
    _site("nexon", "Gaming", ("KR",), 6.22, time_mult=1.30, mobile_mult=0.4,
          noise_scale=0.28, tags=("gaming",)),
    _site("wavve", "Video Streaming", ("KR",), 6.12, time_mult=2.0,
          mobile_mult=0.3, noise_scale=0.30, tags=("streaming",)),
    _site("noonoo-tv", "Video Streaming", ("KR",), 6.05, time_mult=2.0,
          mobile_mult=0.5, noise_scale=0.30, tags=("streaming", "free-content")),
    _site("afreecatv", "Video Streaming", ("KR",), 6.15, time_mult=1.9,
          mobile_mult=0.4, noise_scale=0.30, tags=("video-sharing",)),
    # ---- Japan ---------------------------------------------------------------------------------
    _site("nicovideo", "Video Streaming", ("JP",), 7.25, time_mult=1.8,
          mobile_mult=0.5, noise_scale=0.26, tags=("video-sharing",)),
    _site("rakuten", "Ecommerce", ("JP",), 7.35, time_mult=0.60,
          december_mult=1.4, noise_scale=0.26, tags=("ecommerce",)),
    _site("pixiv", "Arts", ("JP", "TW", "KR"), 6.10, time_mult=1.3,
          noise_scale=0.30, tags=("artist-community",)),
    # ---- Vietnam ---------------------------------------------------------------------------------
    _site("zalo", "Chat & Messaging", ("VN",), 7.25, time_mult=1.1,
          mobile_mult=0.6, noise_scale=0.26, tags=("messaging",)),
    _site("vnexpress", "News & Media", ("VN",), 7.05, time_mult=1.4,
          noise_scale=0.28, tags=("news",)),
    _site("sex333", "Pornography", ("VN",), 6.80, time_mult=1.3,
          mobile_mult=2.2, noise_scale=0.30, tags=("adult",)),
    # ---- East / Southeast Asia ------------------------------------------------------------------
    _site("shopee", "Ecommerce", ("region:southeast_asia", "TW"), 7.00,
          time_mult=0.60, mobile_mult=1.1, december_mult=1.45,
          multi_cctld=True, noise_scale=0.26, tags=("ecommerce",)),
    _site("lazada", "Ecommerce", ("region:southeast_asia",), 6.40,
          time_mult=0.60, december_mult=1.4, multi_cctld=True,
          noise_scale=0.30, tags=("ecommerce",)),
    _site("bilibili", "Video Streaming", ("region:east_asia_zh",), 6.30,
          time_mult=1.9, mobile_mult=0.6, noise_scale=0.30,
          tags=("video-sharing",)),
    _site("pixnet", "Lifestyle", ("TW",), 6.20, time_mult=1.1,
          noise_scale=0.30, tags=("blog",)),
    _site("ixdzs", "Entertainment", ("TW",), 5.95, time_mult=1.6,
          noise_scale=0.32, tags=("ebooks",)),
    _site("uukanshu", "Entertainment", ("TW",), 5.90, time_mult=1.6,
          noise_scale=0.32, tags=("ebooks",)),
    _site("czbooks", "Entertainment", ("TW",), 5.85, time_mult=1.6,
          noise_scale=0.32, tags=("ebooks",)),
    # ---- Latin America ---------------------------------------------------------------------------
    _site("mercadolibre", "Ecommerce", ("region:latam_es", "BR"), 7.00,
          time_mult=0.60, december_mult=1.45, multi_cctld=True,
          noise_scale=0.26, tags=("ecommerce",)),
    _site("yapo", "Auctions & Marketplaces", ("CL",), 6.80, time_mult=0.75,
          noise_scale=0.30, tags=("classifieds",)),
    _site("globo", "News & Media", ("BR",), 7.15, time_mult=1.45,
          noise_scale=0.26, tags=("news", "television")),
    _site("uol", "News & Media", ("BR",), 6.60, time_mult=1.35,
          noise_scale=0.28, tags=("news", "portal")),
    # ---- Europe ----------------------------------------------------------------------------------
    _site("bbc", "News & Media", ("GB",), 7.10, time_mult=1.45,
          noise_scale=0.26, tags=("news",)),
    _site("leboncoin", "Auctions & Marketplaces", ("FR",), 7.00,
          time_mult=0.75, noise_scale=0.28, tags=("classifieds",)),
    _site("allegro", "Ecommerce", ("PL",), 7.25, time_mult=0.60,
          december_mult=1.45, noise_scale=0.26, tags=("ecommerce",)),
    _site("2dehands", "Auctions & Marketplaces", ("BE",), 6.80,
          time_mult=0.75, noise_scale=0.30, tags=("classifieds",)),
    _site("kuleuven", "Educational Institutions", ("BE",), 5.90,
          time_mult=0.65, mobile_mult=0.4, december_mult=0.55,
          noise_scale=0.30, tags=("university",)),
    _site("marktplaats", "Auctions & Marketplaces", ("NL",), 6.95,
          time_mult=0.75, noise_scale=0.28, tags=("classifieds",)),
    # ---- North Africa / Middle East ------------------------------------------------------------------
    _site("ouedkniss", "Auctions & Marketplaces", ("DZ",), 6.90,
          time_mult=0.75, noise_scale=0.28, tags=("classifieds",)),
    _site("youm7", "News & Media", ("EG",), 7.00, time_mult=1.4,
          noise_scale=0.28, tags=("news",)),
    _site("hespress", "News & Media", ("MA",), 6.95, time_mult=1.4,
          noise_scale=0.28, tags=("news",)),
    _site("sahibinden", "Auctions & Marketplaces", ("TR",), 7.05,
          time_mult=0.75, noise_scale=0.26, tags=("classifieds",)),
    _site("trendyol", "Ecommerce", ("TR",), 7.10, time_mult=0.6,
          december_mult=1.4, noise_scale=0.26, tags=("ecommerce",)),
    # ---- Anglosphere & global misc ----------------------------------------------------------------------
    _site("reddit", "Forums", ("global",), 6.10, time_mult=1.45,
          mobile_mult=0.75, noise_scale=0.28,
          country_boosts={"US": 0.5, "CA": 0.4, "GB": 0.3, "AU": 0.4, "NZ": 0.4},
          tags=("forum",)),
    _site("craigslist", "Auctions & Marketplaces", ("US", "CA"), 6.70,
          time_mult=0.80, noise_scale=0.28, tags=("classifieds",)),
    _site("ebay", "Auctions & Marketplaces", ("global",), 5.95,
          time_mult=0.65, december_mult=1.35, multi_cctld=True,
          noise_scale=0.30,
          country_boosts={"US": 0.4, "GB": 0.4, "DE": 0.4, "AU": 0.3},
          tags=("ecommerce",)),
    _site("aliexpress", "Ecommerce", ("global",), 5.90, time_mult=0.60,
          december_mult=1.4, multi_cctld=True, noise_scale=0.32,
          country_boosts={"RU": 0.8, "BR": 0.4, "ES": 0.4}, tags=("ecommerce",)),
    _site("spotify", "Audio Streaming", ("global",), 5.95, time_mult=1.6,
          mobile_mult=0.35, noise_scale=0.30, has_android_app=True,
          tags=("streaming",)),
    _site("tiktok", "Social Networks", ("global",), 6.15, time_mult=1.4,
          mobile_mult=0.8, noise_scale=0.30, has_android_app=True,
          tags=("social", "video-sharing")),
    _site("telegram", "Chat & Messaging", ("global",), 6.00, time_mult=1.2,
          mobile_mult=0.6, noise_scale=0.30,
          country_boosts={"RU": 0.7, "UA": 0.7, "IN": 0.3}, tags=("messaging",)),
    _site("discord", "Chat & Messaging", ("global",), 5.90, time_mult=1.6,
          mobile_mult=0.25, noise_scale=0.30, tags=("messaging", "gaming")),
    _site("paypal", "Economy & Finance", ("global",), 5.70, time_mult=0.6,
          mobile_mult=0.6, noise_scale=0.30, tags=("payments",)),
    _site("booking", "Travel", ("global",), 5.60, time_mult=0.8,
          mobile_mult=0.8, noise_scale=0.32, tags=("travel-booking",)),
    _site("accuweather", "Weather", ("global",), 5.40, time_mult=0.55,
          mobile_mult=1.3, noise_scale=0.32, tags=("weather",)),
    _site("github", "Technology", ("global",), 5.80, time_mult=1.1,
          mobile_mult=0.25, noise_scale=0.30, tags=("technology",)),
    _site("stackoverflow", "Technology", ("global",), 5.70, time_mult=0.95,
          mobile_mult=0.30, noise_scale=0.30, tags=("technology",)),
    _site("canva", "Technology", ("global",), 5.60, time_mult=1.2,
          mobile_mult=0.5, noise_scale=0.32, tags=("graphic-design",)),
    _site("hbomax", "Video Streaming", ("US", "MX", "BR", "AR", "CL", "CO"),
          6.00, time_mult=2.1, mobile_mult=0.2, noise_scale=0.30,
          tags=("streaming",)),
    _site("primevideo", "Video Streaming", tuple(
        sorted(set(c.code for c in COUNTRIES) - {"VN", "RU"})), 5.90,
          time_mult=2.0, mobile_mult=0.2, noise_scale=0.32,
          tags=("streaming",)),
    _site("cricbuzz", "Sports", ("IN",), 6.90, time_mult=1.2,
          mobile_mult=1.4, noise_scale=0.28, tags=("sports",)),
    _site("hotstar", "Video Streaming", ("IN",), 6.45, time_mult=2.0,
          mobile_mult=0.6, noise_scale=0.28, tags=("streaming",)),
    _site("tvnz", "Television", ("NZ",), 6.60, time_mult=1.8,
          noise_scale=0.30, tags=("television",)),
    _site("espn", "Sports", ("US",), 6.60, time_mult=1.2, noise_scale=0.30,
          tags=("sports",)),
    _site("marca", "Sports", ("ES",), 6.80, time_mult=1.25, noise_scale=0.28,
          tags=("sports", "news")),
)

# Apply the censorship suppression to the other two major adult sites the
# paper names (Section 5.3.2: KR, TR, VN and RU keep all three out of
# their top 10; VN retains its local site sex333).
_CENSOR = {"KR": -4.0, "TR": -4.0, "VN": -4.0, "RU": -4.0}
NAMED_SITES = tuple(
    NamedSite(
        s.name, s.category, s.scope, s.log_strength,
        mobile_mult=s.mobile_mult, time_mult=s.time_mult,
        december_mult=s.december_mult, noise_scale=s.noise_scale,
        multi_cctld=s.multi_cctld, has_android_app=s.has_android_app,
        country_boosts={**_CENSOR, **s.country_boosts},
        tags=s.tags,
    )
    if s.name in ("xnxx", "xvideos") else s
    for s in NAMED_SITES
)

#: Named sites *without* a dedicated Android app.  Everything else on
#: the roster ships one — the basis for Section 4.1.2's "of the 114
#: sites ranking in the top 10 ... on Windows but not Android, 93 (82 %)
#: have a dedicated Android app".
_NO_ANDROID_APP: frozenset[str] = frozenset({
    "xnxx", "xvideos", "pornhub", "sex333",          # adult web-first
    "ampproject",                                     # infrastructure
    "kuleuven",                                       # university portal
    "ixdzs", "uukanshu", "czbooks",                   # ebook sites
    "noonoo-tv",                                      # pirated streaming
    "craigslist",                                     # famously web-only
    "arca-live", "namu-wiki",                         # community wikis
    "sharepoint",                                     # enterprise web portal
})
NAMED_SITES = tuple(
    s if s.name in _NO_ANDROID_APP or s.has_android_app else NamedSite(
        s.name, s.category, s.scope, s.log_strength,
        mobile_mult=s.mobile_mult, time_mult=s.time_mult,
        december_mult=s.december_mult, noise_scale=s.noise_scale,
        multi_cctld=s.multi_cctld, has_android_app=True,
        country_boosts=s.country_boosts, tags=s.tags,
    )
    for s in NAMED_SITES
)

_seen_names: set[str] = set()
for _s in NAMED_SITES:
    if _s.name in _seen_names:
        raise ValueError(f"duplicate named site {_s.name!r}")
    _seen_names.add(_s.name)


@dataclass(frozen=True)
class ChampionRule:
    """A procedural rule planting one strong endemic site per country.

    Section 5.3.2 finds whole classes of sites that are top-10 in exactly
    one country: government portals (26 countries), news outlets (20),
    banks (17), classified ads, broadcasters, universities (mostly the
    global south), gambling (mostly the global south), ...
    """

    category: str
    countries: tuple[str, ...]
    log_strength_range: tuple[float, float]
    time_mult: float = 1.0
    mobile_mult: float = 1.0
    december_mult: float = 1.0
    tag: str = ""
    has_app: bool = False


_GLOBAL_SOUTH = (
    "DZ", "EG", "KE", "MA", "NG", "TN", "ZA",
    "IN", "VN", "ID", "TH", "PH",
    "CR", "DO", "GT", "MX", "PA",
    "AR", "BO", "BR", "CL", "CO", "EC", "PE", "UY", "VE",
)

_ALL = tuple(sorted(c.code for c in COUNTRIES))

#: Per-country champion rules.  Countries listed get exactly one endemic
#: champion site of the category with a strength drawn from the range.
CHAMPION_RULES: tuple[ChampionRule, ...] = (
    ChampionRule("News & Media", tuple(sorted(set(_ALL) - {"VN", "BR", "GB", "EG", "MA"})),
                 (6.6, 7.7), time_mult=1.25, mobile_mult=1.05, tag="news", has_app=True),
    ChampionRule("Government & Politics",
                 ("DZ", "EG", "MA", "TN", "KE", "NG", "ZA", "IN", "TR", "VN",
                  "ID", "TH", "PH", "IT", "ES", "PL", "UA", "MX", "GT", "CR",
                  "AR", "BR", "CL", "CO", "PE", "UY"),
                 (6.6, 7.5), time_mult=0.8, mobile_mult=0.8, tag="government"),
    ChampionRule("Economy & Finance",
                 ("BR", "IN", "TR", "MX", "AR", "CL", "CO", "PE", "VE", "NG",
                  "KE", "ZA", "ID", "TH", "PL", "UA", "EG"),
                 (6.6, 7.45), time_mult=0.6, mobile_mult=0.7, tag="bank", has_app=True),
    ChampionRule("Auctions & Marketplaces",
                 ("EG", "TN", "KE", "NG", "ZA", "IN", "ID", "TH", "PH", "UA",
                  "HK", "NZ", "AU", "CR", "DO", "GT", "PA", "BO", "EC", "PE",
                  "UY", "VE"),
                 (6.7, 7.4), time_mult=0.75, tag="classifieds", has_app=True),
    ChampionRule("Television",
                 ("BR", "IT", "ES", "PL", "FR", "DE", "GB", "AU", "TH", "PH", "MX"),
                 (6.0, 6.8), time_mult=1.8, tag="television"),
    ChampionRule("Educational Institutions",
                 ("AR", "BO", "BR", "CL", "CO", "EC", "PE", "UY", "MX", "BE"),
                 (5.7, 6.3), time_mult=0.65, mobile_mult=0.4,
                 december_mult=0.5, tag="university"),
    ChampionRule("Gambling",
                 ("NG", "KE", "ZA", "BR", "AR", "CO", "PE", "MX", "ID", "TH",
                  "PH", "VN", "GB", "IT"),
                 (5.9, 6.5), time_mult=1.2, mobile_mult=1.7, tag="gambling"),
    ChampionRule("Sports",
                 ("IN", "NG", "KE", "ZA", "BR", "AR", "MX", "EG", "GB"),
                 (6.0, 6.6), time_mult=1.2, mobile_mult=1.3, tag="sports", has_app=True),
    ChampionRule("Video Streaming",
                 ("PL", "TR", "TH", "ID", "PH", "AR", "MX", "CO", "EG", "MA",
                  "DZ", "UA", "VE", "BO", "DO"),
                 (6.0, 6.7), time_mult=2.0, mobile_mult=0.5,
                 tag="local-streaming", has_app=True),
    ChampionRule("Webmail", ("FR", "DE", "IT", "PL", "RU", "UA", "ES"),
                 (6.0, 6.6), time_mult=1.1, mobile_mult=0.5, tag="webmail", has_app=True),
    ChampionRule("Forums", ("TW", "HK", "PL", "DE", "JP"),
                 (6.0, 6.6), time_mult=1.4, tag="forum"),
    ChampionRule("Chat & Messaging", ("TW", "TH", "JP"),
                 (6.1, 6.6), time_mult=1.1, mobile_mult=0.7, tag="messaging"),
    # Local e-commerce champions for markets without a curated one
    # (Section 4.2.1: e-commerce in the top 10 of 32 countries).
    ChampionRule("Ecommerce",
                 ("IN", "EG", "MA", "DZ", "TN", "KE", "NG", "ZA", "UA", "VN",
                  "KR", "AU", "NZ"),
                 (6.6, 7.3), time_mult=0.55, mobile_mult=1.05,
                 december_mult=1.45, tag="ecommerce", has_app=True),
    # Secondary national portals (Section 5.3.2: 21 countries have a
    # second top-10 search or portal site).
    ChampionRule("Search Engines",
                 ("IN", "VN", "TH", "ID", "PH", "EG", "MA", "NG", "PL", "UA",
                  "TW", "HK", "AR", "MX", "CO"),
                 (6.5, 7.1), time_mult=0.6, mobile_mult=1.0, tag="portal", has_app=True),
)


def champion_countries(tag: str) -> tuple[str, ...]:
    """Countries receiving a champion with the given tag."""
    for rule in CHAMPION_RULES:
        if rule.tag == tag:
            return rule.countries
    raise KeyError(f"no champion rule tagged {tag!r}")
