"""Fundamental enumerations and value types for the browsing dataset.

The paper analyses Chrome telemetry broken down along four dimensions
(Section 3.1): country, platform (operating system), popularity metric,
and month.  This module defines those dimensions as small, hashable value
types used as keys throughout the library.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator


class Platform(enum.Enum):
    """Operating systems for which Chrome reports telemetry.

    The paper restricts its analysis to the two largest platforms, Windows
    (desktop) and Android (mobile); the remaining three are defined for
    completeness and are supported by the synthetic generator but excluded
    by default, mirroring Section 3.1.
    """

    WINDOWS = "windows"
    ANDROID = "android"
    MAC_OS = "mac_os"
    LINUX = "linux"
    IOS = "ios"

    @property
    def is_desktop(self) -> bool:
        return self in (Platform.WINDOWS, Platform.MAC_OS, Platform.LINUX)

    @property
    def is_mobile(self) -> bool:
        return not self.is_desktop

    @classmethod
    def studied(cls) -> tuple["Platform", "Platform"]:
        """The two platforms the paper studies (Windows and Android)."""
        return (cls.WINDOWS, cls.ANDROID)


class Metric(enum.Enum):
    """Popularity metrics tracked by Chrome telemetry.

    ``INITIATED_PAGE_LOADS`` is defined but excluded from analyses by
    default because it is nearly identical to completed page loads
    (Section 3.1).
    """

    PAGE_LOADS = "page_loads"
    TIME_ON_PAGE = "time_on_page"
    INITIATED_PAGE_LOADS = "initiated_page_loads"

    @classmethod
    def studied(cls) -> tuple["Metric", "Metric"]:
        """The two metrics the paper studies."""
        return (cls.PAGE_LOADS, cls.TIME_ON_PAGE)


@dataclass(frozen=True, order=True)
class Month:
    """A calendar month, ordered chronologically.

    The study period is September 2021 through February 2022.
    """

    year: int
    month: int

    def __post_init__(self) -> None:
        if not 1 <= self.month <= 12:
            raise ValueError(f"month must be in 1..12, got {self.month}")
        if self.year < 1990 or self.year > 2100:
            raise ValueError(f"implausible year {self.year}")

    def next(self) -> "Month":
        """The month immediately after this one."""
        if self.month == 12:
            return Month(self.year + 1, 1)
        return Month(self.year, self.month + 1)

    def prev(self) -> "Month":
        """The month immediately before this one."""
        if self.month == 1:
            return Month(self.year - 1, 12)
        return Month(self.year, self.month - 1)

    def index(self) -> int:
        """Months since year 0, for arithmetic and ordering."""
        return self.year * 12 + (self.month - 1)

    def is_adjacent(self, other: "Month") -> bool:
        return abs(self.index() - other.index()) == 1

    @property
    def is_december(self) -> bool:
        return self.month == 12

    @classmethod
    def parse(cls, text: str) -> "Month":
        """Parse ``YYYY-MM`` (the form :meth:`__str__` emits)."""
        try:
            year, _, month = text.partition("-")
            return cls(int(year), int(month))
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"month must look like 2022-02, got {text!r}"
            ) from exc

    @classmethod
    def range(cls, first: "Month", last: "Month") -> Iterator["Month"]:
        """Yield months from ``first`` through ``last`` inclusive."""
        if last < first:
            raise ValueError("last month precedes first month")
        current = first
        while current <= last:
            yield current
            current = current.next()

    def __str__(self) -> str:
        return f"{self.year:04d}-{self.month:02d}"


#: The six months of the paper's study period (Section 3.1).
STUDY_MONTHS: tuple[Month, ...] = tuple(
    Month.range(Month(2021, 9), Month(2022, 2))
)

#: February 2022 — the reference month used for most analyses (Section 3.1).
REFERENCE_MONTH: Month = Month(2022, 2)

#: December 2021 — the anomalous month called out in Section 4.5.
DECEMBER: Month = Month(2021, 12)


@dataclass(frozen=True, order=True)
class Breakdown:
    """A (country, platform, metric, month) key identifying one rank list.

    Section 3.1: "rank order lists of the top million most popular websites
    per month, broken down by country, platform, and popularity metric".
    """

    country: str
    platform: Platform
    metric: Metric
    month: Month

    def __post_init__(self) -> None:
        if len(self.country) != 2 or not self.country.isupper():
            raise ValueError(
                f"country must be a 2-letter upper-case ISO code, got {self.country!r}"
            )

    def with_month(self, month: Month) -> "Breakdown":
        return Breakdown(self.country, self.platform, self.metric, month)

    def with_metric(self, metric: Metric) -> "Breakdown":
        return Breakdown(self.country, self.platform, metric, self.month)

    def with_platform(self, platform: Platform) -> "Breakdown":
        return Breakdown(self.country, platform, self.metric, self.month)

    def with_country(self, country: str) -> "Breakdown":
        return Breakdown(country, self.platform, self.metric, self.month)

    def __str__(self) -> str:
        return (
            f"{self.country}/{self.platform.value}/{self.metric.value}/{self.month}"
        )
