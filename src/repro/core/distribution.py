"""Traffic-distribution curves: what fraction of traffic the top-N sites get.

Section 4.1.1: Chrome provided global traffic-volume distribution data —
the number of websites accounting for varying percentiles of traffic —
separately from the ranked lists.  The paper then re-uses these curves as
*weights* whenever it needs to model traffic per rank position: weighted
category counts (Section 4.2.2), the desktop-vs-mobile volume comparison
(Section 4.3), the loads-vs-time ratio (Section 4.4), and the
traffic-weighted RBO (Section 5.3.1).

:class:`TrafficDistribution` represents one such curve as a monotone
cumulative-share function of rank, constructed from anchor points
``(rank, cumulative share)`` and interpolated monotonically in
log10(rank) space.  The anchors we ship (:mod:`repro.world.profiles`)
are the concentration numbers the paper reports.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
from scipy.interpolate import PchipInterpolator

from .errors import DistributionError


class TrafficDistribution:
    """A monotone cumulative traffic-share curve over site ranks.

    Parameters
    ----------
    anchors:
        ``(rank, cumulative_share)`` pairs with strictly increasing ranks
        and strictly increasing shares in (0, 1].  Rank 1 must be present
        (the share of the single top site).
    total_sites:
        The rank at which the curve is considered to reach its final
        cumulative share; beyond it, the remaining share is spread over an
        unmodelled long tail.
    """

    __slots__ = ("_anchors", "_total_sites", "_interp", "_log_last", "_last_share")

    def __init__(self, anchors: Iterable[tuple[float, float]], total_sites: int = 1_000_000) -> None:
        pts = sorted((float(r), float(s)) for r, s in anchors)
        if len(pts) < 2:
            raise DistributionError("need at least two anchor points")
        ranks = [r for r, _ in pts]
        shares = [s for _, s in pts]
        if ranks[0] != 1.0:
            raise DistributionError("anchors must include rank 1")
        if any(b <= a for a, b in zip(ranks, ranks[1:])):
            raise DistributionError("anchor ranks must be strictly increasing")
        if any(b <= a for a, b in zip(shares, shares[1:])):
            raise DistributionError("anchor shares must be strictly increasing")
        if shares[0] <= 0.0 or shares[-1] > 1.0:
            raise DistributionError("anchor shares must lie in (0, 1]")
        if total_sites < ranks[-1]:
            raise DistributionError("total_sites smaller than the largest anchor rank")
        self._anchors = tuple(pts)
        self._total_sites = int(total_sites)
        log_ranks = np.log10(np.asarray(ranks))
        self._interp = PchipInterpolator(log_ranks, np.asarray(shares), extrapolate=False)
        self._log_last = float(log_ranks[-1])
        self._last_share = shares[-1]

    # -- properties ------------------------------------------------------------------

    @property
    def anchors(self) -> tuple[tuple[float, float], ...]:
        return self._anchors

    @property
    def total_sites(self) -> int:
        return self._total_sites

    # -- evaluation ------------------------------------------------------------------

    def cumulative_share(self, rank: float) -> float:
        """Fraction of all traffic captured by the top ``rank`` sites."""
        return float(self.cumulative_shares(np.asarray([rank]))[0])

    def cumulative_shares(self, ranks: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`cumulative_share`."""
        r = np.asarray(ranks, dtype=float)
        if np.any(r < 1.0):
            raise DistributionError("rank must be >= 1")
        log_r = np.log10(np.minimum(r, float(self._total_sites)))
        out = np.empty_like(log_r)
        inside = log_r <= self._log_last
        out[inside] = self._interp(log_r[inside])
        if np.any(~inside):
            # Beyond the last anchor the remaining share approaches the
            # anchor asymptotically: spread it log-linearly up to the
            # total-site count, capped at 1.
            log_total = np.log10(float(self._total_sites))
            if log_total > self._log_last:
                frac = (log_r[~inside] - self._log_last) / (log_total - self._log_last)
            else:
                frac = np.ones(int(np.count_nonzero(~inside)))
            out[~inside] = self._last_share + (1.0 - self._last_share) * np.minimum(frac, 1.0)
        return np.clip(out, 0.0, 1.0)

    def share_of_rank(self, rank: int) -> float:
        """Traffic share of the individual site at 1-indexed ``rank``."""
        if rank < 1:
            raise DistributionError("rank must be >= 1")
        if rank == 1:
            return self.cumulative_share(1)
        return self.cumulative_share(rank) - self.cumulative_share(rank - 1)

    def weights(self, n: int) -> np.ndarray:
        """Per-rank traffic shares for ranks 1..n, as a length-n array.

        These are the weights used for weighted category counts and for
        the traffic-weighted RBO.  The array is non-negative and its sum
        equals ``cumulative_share(n)``.
        """
        if n < 1:
            raise DistributionError("n must be >= 1")
        n = min(n, self._total_sites)
        cum = self.cumulative_shares(np.arange(1, n + 1, dtype=float))
        w = np.diff(np.concatenate(([0.0], cum)))
        # Monotone interpolation keeps cumulative shares non-decreasing,
        # but guard against tiny negative diffs from floating error.
        return np.maximum(w, 0.0)

    def normalized_weights(self, n: int) -> np.ndarray:
        """:meth:`weights` rescaled to sum to exactly 1 over the top n."""
        w = self.weights(n)
        total = w.sum()
        if total <= 0.0:
            raise DistributionError("degenerate distribution: zero total weight")
        return w / total

    def sites_for_share(self, share: float) -> int:
        """Smallest N such that the top-N sites capture ``share`` of traffic."""
        if not 0.0 < share <= 1.0:
            raise DistributionError("share must be in (0, 1]")
        lo, hi = 1, self._total_sites
        if self.cumulative_share(hi) < share:
            return self._total_sites
        while lo < hi:
            mid = (lo + hi) // 2
            if self.cumulative_share(mid) >= share:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # -- serialisation -----------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "anchors": [list(a) for a in self._anchors],
            "total_sites": self._total_sites,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrafficDistribution":
        return cls(
            [(r, s) for r, s in payload["anchors"]],
            total_sites=int(payload["total_sites"]),
        )

    def __repr__(self) -> str:
        head = self._anchors[0][1]
        return (
            f"TrafficDistribution(top1={head:.3f}, "
            f"anchors={len(self._anchors)}, total_sites={self._total_sites})"
        )


def concentration_table(
    dist: TrafficDistribution, ranks: Sequence[int]
) -> list[tuple[int, float]]:
    """Cumulative shares at the given ranks — the rows of Figure 1."""
    return [(int(r), dist.cumulative_share(r)) for r in ranks]
