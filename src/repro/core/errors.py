"""Exception hierarchy for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class DatasetError(ReproError):
    """A problem with dataset construction or lookup."""


class MissingBreakdownError(DatasetError, KeyError):
    """A requested (country, platform, metric, month) slice does not exist."""

    def __init__(self, breakdown: object) -> None:
        super().__init__(f"no rank list for breakdown {breakdown}")
        self.breakdown = breakdown


class RankListError(ReproError):
    """A malformed ranked list (duplicates, gaps, empty)."""


class DistributionError(ReproError):
    """A malformed traffic distribution (non-monotone, out of range)."""


class TaxonomyError(ReproError):
    """An unknown category or an inconsistent taxonomy definition."""


class GenerationError(ReproError):
    """The synthetic generator was configured inconsistently."""


class AnalysisError(ReproError):
    """An analysis was invoked with inputs it cannot support."""


class PipelineError(ReproError):
    """The reproduction pipeline is mis-wired (unknown task, cycle, ...)."""


class TaskUnavailable(ReproError):
    """A pipeline task cannot run against this dataset.

    Raised by task bodies when the dataset lacks a required slice (a
    single-platform export cannot feed the platform comparison) or the
    run lacks a generator config (no ground-truth labels).  The runner
    records the task — and its dependents — as *skipped*, not failed.
    """
