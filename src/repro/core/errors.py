"""Exception hierarchy for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class DatasetError(ReproError):
    """A problem with dataset construction or lookup."""


class MissingBreakdownError(DatasetError, KeyError):
    """A requested (country, platform, metric, month) slice does not exist."""

    def __init__(self, breakdown: object) -> None:
        super().__init__(f"no rank list for breakdown {breakdown}")
        self.breakdown = breakdown


class RankListError(ReproError):
    """A malformed ranked list (duplicates, gaps, empty)."""


class DistributionError(ReproError):
    """A malformed traffic distribution (non-monotone, out of range)."""


class TaxonomyError(ReproError):
    """An unknown category or an inconsistent taxonomy definition."""


class GenerationError(ReproError):
    """The synthetic generator was configured inconsistently."""


class AnalysisError(ReproError):
    """An analysis was invoked with inputs it cannot support."""
