"""The top-level dataset container mirroring the Chrome data share.

A :class:`BrowsingDataset` bundles everything Section 3.1 describes Chrome
sharing with the authors:

* one :class:`~repro.core.rankedlist.RankedList` per
  (country, platform, metric, month) breakdown, and
* one global :class:`~repro.core.distribution.TrafficDistribution` per
  (platform, metric) pair (Section 4.1.1's traffic-volume curves).

Analyses never see the generator; they consume a dataset, exactly as the
paper's analyses consume the telemetry export.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Iterator, Mapping

from .distribution import TrafficDistribution
from .errors import DatasetError, MissingBreakdownError
from .rankedlist import RankedList
from .types import Breakdown, Metric, Month, Platform
from .vocab import SiteVocabulary


class BrowsingDataset:
    """An immutable collection of ranked lists plus distribution curves."""

    #: How this dataset's lists are held; deferred subclasses override
    #: (``"engine"`` for lazily-generated grids, ``"columnar-mmap"`` for
    #: memory-mapped stores).  Surfaced by ``/v1/healthz``.
    storage = "memory"

    #: The monotonically increasing dataset version.  A freshly
    #: generated dataset is version 1; every ``repro ingest`` that
    #: appends months bumps it by one.  Loaders overwrite the instance
    #: attribute from the saved manifest; the serving layer pins a
    #: version per request (``?as_of=``).
    version: int = 1

    def __init__(
        self,
        lists: Mapping[Breakdown, RankedList],
        distributions: Mapping[tuple[Platform, Metric], TrafficDistribution],
        metadata: Mapping[str, object] | None = None,
    ) -> None:
        if not lists:
            raise DatasetError("dataset must contain at least one rank list")
        self._lists = dict(lists)
        self._distributions = dict(distributions)
        self._metadata = dict(metadata or {})
        self._countries = tuple(sorted({b.country for b in self._lists}))
        self._platforms = tuple(sorted({b.platform for b in self._lists}, key=lambda p: p.value))
        self._metrics = tuple(sorted({b.metric for b in self._lists}, key=lambda m: m.value))
        self._months = tuple(sorted({b.month for b in self._lists}))
        self._vocab: SiteVocabulary | None = None
        self._vocab_lock = threading.Lock()

    # -- indices ------------------------------------------------------------------

    @property
    def countries(self) -> tuple[str, ...]:
        """ISO codes of all countries present, sorted."""
        return self._countries

    @property
    def platforms(self) -> tuple[Platform, ...]:
        return self._platforms

    @property
    def metrics(self) -> tuple[Metric, ...]:
        return self._metrics

    @property
    def months(self) -> tuple[Month, ...]:
        """Months present, in chronological order."""
        return self._months

    @property
    def metadata(self) -> Mapping[str, object]:
        return dict(self._metadata)

    @property
    def fingerprint(self) -> str:
        """The dataset's content address (see ``export.io``).

        Engine-provenanced datasets answer from their recorded metadata,
        columnar datasets from their manifest; only an unprovenanced
        in-memory dataset pays a content hash.  Together with
        :attr:`version` and :attr:`months` this makes a loaded dataset a
        self-describing handle for the ``repro.api`` facade.
        """
        from ..export.io import dataset_fingerprint

        return dataset_fingerprint(self)

    def breakdowns(self) -> Iterator[Breakdown]:
        return iter(self._lists)

    def __len__(self) -> int:
        return len(self._lists)

    def __contains__(self, breakdown: object) -> bool:
        return breakdown in self._lists

    # -- lookups ------------------------------------------------------------------

    def __getitem__(self, breakdown: Breakdown) -> RankedList:
        try:
            return self._lists[breakdown]
        except KeyError:
            raise MissingBreakdownError(breakdown) from None

    def get(
        self,
        country: str,
        platform: Platform,
        metric: Metric,
        month: Month,
    ) -> RankedList:
        """The rank list for one breakdown; raises if absent."""
        return self[Breakdown(country, platform, metric, month)]

    def get_or_none(
        self,
        country: str,
        platform: Platform,
        metric: Metric,
        month: Month,
    ) -> RankedList | None:
        return self._lists.get(Breakdown(country, platform, metric, month))

    def vocabulary(self) -> SiteVocabulary:
        """The dataset-wide site vocabulary, built lazily and shared.

        One vocabulary per dataset keeps every list's cached id array
        (:meth:`RankedList.ids`) valid across analyses — the wRBO
        matrix, the intersection curves and the temporal sweeps all
        index the same id space.  The vocabulary grows on demand as
        lists are interned, so requesting it costs nothing and a run
        that touches three slices interns three slices.
        """
        vocab = self._vocab
        if vocab is None:
            with self._vocab_lock:
                if self._vocab is None:
                    self._vocab = SiteVocabulary()
                vocab = self._vocab
        return vocab

    def distribution(self, platform: Platform, metric: Metric) -> TrafficDistribution:
        """The global traffic-distribution curve for a (platform, metric)."""
        try:
            return self._distributions[(platform, metric)]
        except KeyError:
            raise DatasetError(
                f"no traffic distribution for ({platform.value}, {metric.value})"
            ) from None

    def distributions(self) -> Mapping[tuple[Platform, Metric], TrafficDistribution]:
        return dict(self._distributions)

    # -- slicing ------------------------------------------------------------------

    def select(
        self,
        platform: Platform,
        metric: Metric,
        month: Month,
        countries: Iterable[str] | None = None,
    ) -> dict[str, RankedList]:
        """Per-country rank lists for a fixed (platform, metric, month).

        This is the slice shape most analyses operate on — e.g. "Windows
        page loads from February 2022 ... in the 45 countries we consider".
        Countries with no list for the breakdown are silently omitted
        (small countries fall below the privacy threshold in some months).
        """
        wanted = tuple(countries) if countries is not None else self._countries
        out: dict[str, RankedList] = {}
        for country in wanted:
            ranked = self._lists.get(Breakdown(country, platform, metric, month))
            if ranked is not None:
                out[country] = ranked
        return out

    def filter(
        self,
        predicate: Callable[[Breakdown], bool],
    ) -> "BrowsingDataset":
        """A new dataset keeping only breakdowns matching ``predicate``."""
        kept = {b: rl for b, rl in self._lists.items() if predicate(b)}
        if not kept:
            raise DatasetError("filter removed every breakdown")
        return BrowsingDataset(kept, self._distributions, self._metadata)

    def restrict_countries(self, countries: Iterable[str]) -> "BrowsingDataset":
        wanted = set(countries)
        return self.filter(lambda b: b.country in wanted)

    def map_lists(
        self, transform: Callable[[Breakdown, RankedList], RankedList]
    ) -> "BrowsingDataset":
        """Apply a per-list transformation (e.g. eTLD merging) to all lists."""
        return BrowsingDataset(
            {b: transform(b, rl) for b, rl in self._lists.items()},
            self._distributions,
            self._metadata,
        )

    def __repr__(self) -> str:
        return (
            f"BrowsingDataset(countries={len(self._countries)}, "
            f"platforms={[p.value for p in self._platforms]}, "
            f"metrics={[m.value for m in self._metrics]}, "
            f"months={[str(m) for m in self._months]}, lists={len(self._lists)})"
        )


class DeferredBrowsingDataset(BrowsingDataset):
    """A dataset whose lists materialise on first access.

    The full key set is fixed up front — indices, membership and
    iteration behave exactly like the eager container — but list
    *values* are produced only when a value-reading path touches them.
    Two producers exist today: the generation engine
    (:class:`repro.engine.lazy.LazyBrowsingDataset` runs cache-aware
    slice generation) and the columnar store
    (:class:`repro.store.MappedBrowsingDataset` decodes memory-mapped
    id arrays).  Subclasses implement :meth:`_produce`.
    """

    def __init__(
        self,
        breakdowns: Iterable[Breakdown],
        distributions: Mapping[tuple[Platform, Metric], TrafficDistribution],
        metadata: Mapping[str, object] | None = None,
    ) -> None:
        # Serving reads a deferred dataset from many threads;
        # materialize mutates _pending/_lists, so it runs under a lock.
        self._materialize_lock = threading.Lock()
        keys = tuple(breakdowns)
        self._pending: set[Breakdown] = set(keys)
        # Placeholder values: the base initialiser only reads keys, and
        # every value-reading path below materialises first.
        super().__init__(dict.fromkeys(keys), distributions, metadata)

    # -- production ----------------------------------------------------------------

    def _produce(
        self, breakdowns: set[Breakdown]
    ) -> Mapping[Breakdown, RankedList]:
        """Produce the requested still-pending slices (subclass hook)."""
        raise NotImplementedError

    @property
    def pending(self) -> int:
        """How many slices have not been materialised yet."""
        return len(self._pending)

    def materialize(self, breakdowns: Iterable[Breakdown] | None = None) -> None:
        """Materialise the requested (default: all) still-pending slices.

        Thread-safe: concurrent readers (e.g. server threads) serialize
        here, and a slice is produced at most once.
        """
        wanted_input = None if breakdowns is None else set(breakdowns)
        with self._materialize_lock:
            wanted = self._pending if wanted_input is None else (
                wanted_input & self._pending
            )
            if not wanted:
                return
            produced = self._produce(set(wanted))
            self._lists.update(produced)
            self._pending -= set(produced)

    # -- value-reading paths ------------------------------------------------------

    def __getitem__(self, breakdown: Breakdown) -> RankedList:
        if breakdown in self._pending:
            self.materialize((breakdown,))
        return super().__getitem__(breakdown)

    def get_or_none(
        self, country: str, platform: Platform, metric: Metric, month: Month
    ) -> RankedList | None:
        breakdown = Breakdown(country, platform, metric, month)
        if breakdown not in self._lists:
            return None
        return self[breakdown]

    def select(
        self,
        platform: Platform,
        metric: Metric,
        month: Month,
        countries: Iterable[str] | None = None,
    ) -> dict[str, RankedList]:
        wanted = tuple(countries) if countries is not None else self.countries
        self.materialize(
            Breakdown(country, platform, metric, month) for country in wanted
        )
        return super().select(platform, metric, month, countries)

    def filter(
        self, predicate: Callable[[Breakdown], bool]
    ) -> BrowsingDataset:
        self.materialize(b for b in self._lists if predicate(b))
        return super().filter(predicate)

    def map_lists(
        self, transform: Callable[[Breakdown, RankedList], RankedList]
    ) -> BrowsingDataset:
        self.materialize()
        return super().map_lists(transform)

    def __repr__(self) -> str:
        return super().__repr__().replace(
            "BrowsingDataset(",
            f"{type(self).__name__}(pending={self.pending}, ", 1,
        )
