"""Rank-ordered lists of websites — the dataset's central data structure.

Chrome shared "rank order lists of the top million most popular websites
per month" (Section 3.1).  A :class:`RankedList` is an immutable ordered
sequence of site identifiers, rank 1 being the most popular.  It supports
the primitive operations every analysis in the paper is built from:
truncation to a rank bucket, membership and rank lookup, set intersection
between lists, and rank-pair extraction for correlation measures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

from .errors import RankListError

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from .vocab import SiteVocabulary


class RankedList:
    """An immutable ranked list of unique site identifiers.

    Parameters
    ----------
    sites:
        Site identifiers in rank order (index 0 is rank 1).  Identifiers
        must be unique and non-empty.
    """

    __slots__ = ("_sites", "_rank_cache", "_set_cache", "_ids_cache")

    def __init__(self, sites: Iterable[str]) -> None:
        sites_tuple = tuple(sites)
        seen: set[str] = set()
        for position, site in enumerate(sites_tuple, start=1):
            if not site:
                raise RankListError(f"empty site identifier at rank {position}")
            if site in seen:
                raise RankListError(f"duplicate site {site!r} (second at rank {position})")
            seen.add(site)
        self._sites = sites_tuple
        # The site → rank dict is built on first use: a full dataset holds
        # on the order of a thousand 10K-site lists, and most are only
        # ever iterated, not probed.
        self._rank_cache: dict[str, int] | None = None
        self._set_cache: frozenset[str] | None = None
        self._ids_cache: tuple[object, "np.ndarray"] | None = None

    @classmethod
    def _trusted(cls, sites_tuple: tuple[str, ...]) -> "RankedList":
        """Wrap an already-validated site tuple without re-checking it.

        Internal-only: callers must guarantee uniqueness and
        non-emptiness — true for any contiguous subsequence of an
        existing list's sites, which is what :meth:`top`, :meth:`slice`
        and :meth:`filter` produce.  Keeps truncation O(k) copy.
        """
        obj = cls.__new__(cls)
        obj._sites = sites_tuple
        obj._rank_cache = None
        obj._set_cache = None
        obj._ids_cache = None
        return obj

    @property
    def _ranks(self) -> dict[str, int]:
        if self._rank_cache is None:
            self._rank_cache = {
                site: position for position, site in enumerate(self._sites, start=1)
            }
        return self._rank_cache

    @property
    def site_set(self) -> frozenset[str]:
        """The sites as a set — membership without paying for the rank dict."""
        if self._set_cache is None:
            self._set_cache = frozenset(self._sites)
        return self._set_cache

    def ids(self, vocab: "SiteVocabulary") -> "np.ndarray":
        """This list's sites as dense ``int32`` ids under ``vocab``.

        The array is cached per vocabulary (a new vocabulary replaces
        the cache entry) and returned read-only: every kernel in
        :mod:`repro.stats.kernels` consumes these arrays, so repeated
        pairwise analyses over one dataset intern each list exactly
        once.
        """
        cached = self._ids_cache
        if cached is not None and cached[0] is vocab:
            return cached[1]
        arr = vocab.intern_many(self._sites)
        arr.setflags(write=False)
        self._ids_cache = (vocab, arr)
        return arr

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._sites)

    def __iter__(self) -> Iterator[str]:
        return iter(self._sites)

    def __contains__(self, site: object) -> bool:
        return site in self.site_set

    def __getitem__(self, rank: int) -> str:
        """The site at 1-indexed ``rank``."""
        if not 1 <= rank <= len(self._sites):
            raise IndexError(f"rank {rank} out of range 1..{len(self._sites)}")
        return self._sites[rank - 1]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RankedList):
            return NotImplemented
        return self._sites == other._sites

    def __hash__(self) -> int:
        return hash(self._sites)

    def __repr__(self) -> str:
        preview = ", ".join(self._sites[:3])
        suffix = ", ..." if len(self._sites) > 3 else ""
        return f"RankedList([{preview}{suffix}], n={len(self._sites)})"

    # -- rank queries --------------------------------------------------------------

    @property
    def sites(self) -> tuple[str, ...]:
        """All sites in rank order."""
        return self._sites

    def rank_of(self, site: str) -> int | None:
        """1-indexed rank of ``site``, or ``None`` if absent."""
        return self._ranks.get(site)

    def rank_or(self, site: str, default: int) -> int:
        """1-indexed rank of ``site``, or ``default`` if absent.

        Section 5.1 uses ``len(list) + 1`` (10,001 for a top-10K list) as
        the sentinel rank for sites missing from a country's list.
        """
        return self._ranks.get(site, default)

    def as_rank_map(self) -> Mapping[str, int]:
        """A read-only view of site → rank."""
        return dict(self._ranks)

    # -- derived lists ---------------------------------------------------------------

    def top(self, n: int) -> "RankedList":
        """The top-``n`` prefix (or the whole list if shorter).

        O(k) — a prefix of a validated list needs no re-validation.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if n >= len(self._sites):
            return self
        return RankedList._trusted(self._sites[:n])

    def slice(self, first: int, last: int) -> "RankedList":
        """Sites ranked ``first``..``last`` inclusive (1-indexed)."""
        if first < 1 or last < first:
            raise ValueError(f"invalid rank range {first}..{last}")
        return RankedList._trusted(self._sites[first - 1 : last])

    def filter(self, predicate) -> "RankedList":
        """A new list keeping only sites for which ``predicate`` is true.

        Relative order is preserved; ranks are re-assigned densely.
        """
        return RankedList._trusted(tuple(s for s in self._sites if predicate(s)))

    def rename(self, mapping: Mapping[str, str]) -> "RankedList":
        """Apply a site-identifier mapping, merging collisions.

        Used when collapsing ccTLD variants onto a canonical site
        (Section 3.1): when two entries map to the same canonical name the
        *better* (smaller) rank wins and the later entry is dropped.
        """
        seen: set[str] = set()
        merged: list[str] = []
        for site in self._sites:
            canonical = mapping.get(site, site)
            if canonical in seen:
                continue
            seen.add(canonical)
            merged.append(canonical)
        return RankedList(merged)

    # -- comparisons -----------------------------------------------------------------

    def intersection(self, other: "RankedList") -> set[str]:
        """Sites present in both lists.

        Uses the site *sets*, not the site → rank dicts, so lists that
        are only ever intersected never pay for dict construction.
        """
        if len(self._sites) > len(other._sites):
            self, other = other, self
        return set(self.site_set & other.site_set)

    def percent_intersection(self, other: "RankedList") -> float:
        """|A ∩ B| / min(|A|, |B|), in [0, 1].

        The paper reports "percent intersection" between equally sized
        rank buckets; normalising by the smaller list keeps the statistic
        meaningful when privacy thresholding truncates one list.
        """
        denom = min(len(self), len(other))
        if denom == 0:
            return 0.0
        return len(self.intersection(other)) / denom

    def rank_pairs(self, other: "RankedList") -> tuple[list[int], list[int]]:
        """Paired ranks for sites in the intersection, for correlation.

        Returns two parallel lists ``(ranks_in_self, ranks_in_other)``
        ordered by rank in ``self``.
        """
        xs: list[int] = []
        ys: list[int] = []
        for position, site in enumerate(self._sites, start=1):
            other_rank = other._ranks.get(site)
            if other_rank is not None:
                xs.append(position)
                ys.append(other_rank)
        return xs, ys

    @classmethod
    def from_scores(cls, scores: Mapping[str, float] | Sequence[tuple[str, float]]) -> "RankedList":
        """Build a ranked list from site → score, highest score first.

        Ties are broken lexicographically by site identifier so that the
        result is deterministic.
        """
        items = scores.items() if isinstance(scores, Mapping) else scores
        ordered = sorted(items, key=lambda kv: (-kv[1], kv[0]))
        return cls(site for site, _ in ordered)
