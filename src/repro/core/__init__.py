"""Core data model: breakdown keys, ranked lists, traffic distributions."""

from .dataset import BrowsingDataset
from .distribution import TrafficDistribution, concentration_table
from .errors import (
    AnalysisError,
    DatasetError,
    DistributionError,
    GenerationError,
    MissingBreakdownError,
    PipelineError,
    RankListError,
    ReproError,
    TaskUnavailable,
    TaxonomyError,
)
from .rankedlist import RankedList
from .vocab import SiteVocabulary
from .types import (
    DECEMBER,
    REFERENCE_MONTH,
    STUDY_MONTHS,
    Breakdown,
    Metric,
    Month,
    Platform,
)

__all__ = [
    "AnalysisError",
    "Breakdown",
    "BrowsingDataset",
    "DECEMBER",
    "DatasetError",
    "DistributionError",
    "GenerationError",
    "Metric",
    "MissingBreakdownError",
    "Month",
    "PipelineError",
    "Platform",
    "RankListError",
    "RankedList",
    "REFERENCE_MONTH",
    "ReproError",
    "STUDY_MONTHS",
    "SiteVocabulary",
    "TaskUnavailable",
    "TaxonomyError",
    "TrafficDistribution",
    "concentration_table",
]
