"""Site-name interning: dense integer ids for vectorized rank-list kernels.

Every heavy pairwise analysis (wRBO matrices, bucketed intersections,
temporal overlap, endemicity curves) reduces to set/rank operations over
site identifiers.  Strings are the wrong currency for that work: numpy
cannot scatter/gather them, and Python-level set mutation costs ~100 ns
per element.  A :class:`SiteVocabulary` interns site names to dense
``int32`` ids so a ranked list becomes one contiguous integer array
(:meth:`repro.core.rankedlist.RankedList.ids`) and every kernel in
:mod:`repro.stats.kernels` runs as a handful of numpy passes.

The vocabulary grows on demand — interning a list assigns fresh ids to
sites not seen before — so building one costs nothing up front and a
dataset-wide vocabulary (``BrowsingDataset.vocabulary()``) only ever
pays for the lists an analysis actually touches.  Ids are assigned in
first-seen order; they are *not* stable across vocabularies, which is
why kernels always take id arrays drawn from one shared vocabulary.
"""

from __future__ import annotations

import threading
from itertools import repeat
from typing import Iterable, Sequence

import numpy as np


class SiteVocabulary:
    """A grow-on-demand intern table: site name ↔ dense ``int32`` id.

    Interning is thread-safe (analyses fan pair loops out across
    threads); lookups of already-interned sites are lock-free dict
    reads.
    """

    __slots__ = ("_ids", "_sites", "_lock")

    def __init__(self, sites: Iterable[str] = ()) -> None:
        self._ids: dict[str, int] = {}
        self._sites: list[str] = []
        self._lock = threading.Lock()
        if sites:
            self.intern_many(tuple(sites))

    # -- interning ----------------------------------------------------------------

    def intern(self, site: str) -> int:
        """The id for ``site``, assigning a fresh one if unseen."""
        sid = self._ids.get(site)
        if sid is not None:
            return sid
        with self._lock:
            sid = self._ids.get(site)
            if sid is None:
                sid = len(self._sites)
                self._sites.append(site)
                self._ids[site] = sid
            return sid

    def intern_many(self, sites: Sequence[str]) -> np.ndarray:
        """Ids for ``sites`` as an ``int32`` array, interning as needed.

        Bulk interning runs at C speed: one ``map`` pass resolves the
        already-seen sites, and the unseen remainder is assigned a
        contiguous id block via a single ``dict.update`` — no per-site
        Python bytecode on either path.
        """
        ids = self._ids
        try:
            # Fast path: every site already interned — no lock needed.
            return np.fromiter(
                map(ids.__getitem__, sites), dtype=np.int32, count=len(sites)
            )
        except KeyError:
            pass
        with self._lock:
            got = np.fromiter(
                map(ids.get, sites, repeat(-1)), dtype=np.int32, count=len(sites)
            )
            missing = np.flatnonzero(got < 0)
            if len(missing):
                table = self._sites
                start = len(table)
                new_names = [sites[i] for i in missing.tolist()]
                ids.update(zip(new_names, range(start, start + len(new_names))))
                if len(ids) != start + len(new_names):
                    # ``sites`` repeats an unseen name: the bulk update
                    # left id holes.  Undo it and intern one at a time.
                    for name in new_names:
                        ids.pop(name, None)
                    for i, site in enumerate(sites):
                        sid = ids.get(site)
                        if sid is None:
                            sid = len(table)
                            table.append(site)
                            ids[site] = sid
                        got[i] = sid
                else:
                    table.extend(new_names)
                    got[missing] = np.arange(
                        start, start + len(new_names), dtype=np.int32
                    )
            return got

    # -- lookups ------------------------------------------------------------------

    def id_of(self, site: str) -> int:
        """The id of an already-interned site; raises ``KeyError`` if unseen."""
        return self._ids[site]

    def get(self, site: str, default: int = -1) -> int:
        return self._ids.get(site, default)

    def site_of(self, sid: int) -> str:
        """The site name behind an id."""
        return self._sites[sid]

    def names(self) -> tuple[str, ...]:
        """Every interned site name, in id order (index == id).

        This is the packed string table the columnar store serialises:
        writing ``names()[i]`` at offset *i* round-trips the id space
        exactly, so id arrays written next to it stay valid.
        """
        with self._lock:
            return tuple(self._sites)

    def __len__(self) -> int:
        return len(self._sites)

    def __contains__(self, site: object) -> bool:
        return site in self._ids

    def __repr__(self) -> str:
        return f"SiteVocabulary(sites={len(self._sites)})"
