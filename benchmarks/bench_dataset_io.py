"""Cold-start cost of the two dataset codecs on the paper's full grid.

The workload is the full breakdown grid — 45 countries × 2 platforms ×
2 metrics × 6 months = 1,080 ranked lists — saved once under each codec
and then *cold-loaded* in a fresh subprocess per measurement, so every
run pays the real process-start path: open the directory, parse or map,
and answer one lookup.  Wall time and peak RSS come from the child via
``resource.getrusage``.

What the numbers show:

* **text** reads and splits every ``lists/*.txt`` file eagerly —
  cold start is O(total sites) in both time and resident memory;
* **columnar** reads a few-KB binary manifest and ``numpy.memmap``\\ s
  the id array and vocabulary — cold start is O(open), and pages fault
  in only for the lists a query actually touches.

The ≥10× cold-open assertion at the bottom is the serving-layer
contract: restarting a `repro serve` worker over a converted dataset
must not replay the whole parse.  Results land in
``BENCH_dataset_io.json`` for the CI artifact upload.
"""

import json
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import (
    Breakdown,
    BrowsingDataset,
    Metric,
    Platform,
    RankedList,
    STUDY_MONTHS,
    TrafficDistribution,
)
from repro.export.io import save_dataset
from repro.world import COUNTRY_CODES

from _bench_utils import print_comparison, write_bench_json

LIST_SIZE = 2_000
SITE_POOL = 30_000
MIN_COLD_OPEN_SPEEDUP = 10.0

#: Child process: import everything first, then time only the load and
#: one list materialisation, and report peak RSS (kB).  Peak comes from
#: ``/proc/self/status`` ``VmHWM`` where available — Linux carries the
#: *parent's* high-water mark through ``fork``/``exec`` into
#: ``ru_maxrss``, which would make both codecs report the benchmark
#: driver's footprint.
_CHILD = """\
import json, resource, sys, time
from repro.export.io import load_dataset

start = time.perf_counter()
dataset = load_dataset(sys.argv[1])
open_seconds = time.perf_counter() - start

start = time.perf_counter()
first = min(
    dataset.breakdowns(),
    key=lambda b: (b.country, b.platform.value, b.metric.value, b.month),
)
touched = len(dataset[first])
first_list_seconds = time.perf_counter() - start

max_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
try:
    with open("/proc/self/status") as status:
        for line in status:
            if line.startswith("VmHWM:"):
                max_rss_kb = int(line.split(":")[1].strip().split()[0])
except OSError:
    pass

print(json.dumps({
    "open_seconds": open_seconds,
    "first_list_seconds": first_list_seconds,
    "max_rss_kb": max_rss_kb,
    "lists": len(dataset),
    "touched": touched,
    "storage": dataset.storage,
}))
"""


def _grid_dataset() -> BrowsingDataset:
    """The 45 × 2 × 2 × 6 grid with synthetic-but-realistic lists.

    Lists are drawn directly (seeded) rather than through the
    generator: this benchmark measures I/O, not scoring, and the codecs
    only see site strings either way.
    """
    rng = np.random.default_rng(2022)
    pool = np.array([f"site-{i:06d}.example" for i in range(SITE_POOL)])
    dist = TrafficDistribution([(1, 0.17), (10, 0.4), (10_000, 0.95)])
    lists = {}
    for country in COUNTRY_CODES:
        for platform in Platform.studied():
            for metric in Metric.studied():
                for month in STUDY_MONTHS:
                    picks = rng.choice(SITE_POOL, size=LIST_SIZE,
                                       replace=False)
                    lists[Breakdown(country, platform, metric, month)] = \
                        RankedList(pool[picks].tolist())
    distributions = {
        (platform, metric): dist
        for platform in Platform.studied()
        for metric in Metric.studied()
    }
    return BrowsingDataset(lists, distributions, {"seed": 2022})


def _cold_load(root: Path) -> dict:
    """Load ``root`` in a fresh process; returns the child's measurements."""
    import os
    import repro

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(Path(repro.__file__).parents[1]),
                    env.get("PYTHONPATH")) if p
    )
    result = subprocess.run(
        [sys.executable, "-c", _CHILD, str(root)],
        capture_output=True, text=True, check=True, env=env,
    )
    return json.loads(result.stdout)


def test_columnar_cold_open_speedup(benchmark, tmp_path_factory):
    out = tmp_path_factory.mktemp("dataset_io")
    dataset = _grid_dataset()
    total_sites = sum(len(dataset[b]) for b in dataset.breakdowns())

    start = time.perf_counter()
    save_dataset(dataset, out / "text", format="text")
    text_save_seconds = time.perf_counter() - start
    start = time.perf_counter()
    save_dataset(dataset, out / "columnar", format="columnar")
    columnar_save_seconds = time.perf_counter() - start

    text = _cold_load(out / "text")
    columnar = _cold_load(out / "columnar")
    assert text["storage"] == "memory" and text["lists"] == len(dataset)
    assert columnar["storage"] == "columnar-mmap"
    assert columnar["lists"] == len(dataset)
    assert columnar["touched"] == LIST_SIZE

    def reopen():
        from repro.export.io import load_dataset

        return load_dataset(out / "columnar")

    benchmark.pedantic(reopen, rounds=3, iterations=1)

    speedup = text["open_seconds"] / columnar["open_seconds"]
    rss_ratio = text["max_rss_kb"] / columnar["max_rss_kb"]
    print_comparison(
        [
            ("grid", "45x2x2x6", len(dataset), "ranked lists"),
            ("total sites", "", total_sites, f"{LIST_SIZE} per list"),
            ("text save s", "", round(text_save_seconds, 3), ""),
            ("columnar save s", "", round(columnar_save_seconds, 3), ""),
            ("text cold open s", "", round(text["open_seconds"], 3),
             "parses every list file"),
            ("columnar cold open s", "", round(columnar["open_seconds"], 4),
             "manifest + mmap only"),
            ("cold-open speedup", ">= 10x", round(speedup, 1),
             "asserted below"),
            ("text peak RSS MB", "", round(text["max_rss_kb"] / 1024, 1), ""),
            ("columnar peak RSS MB", "",
             round(columnar["max_rss_kb"] / 1024, 1), "after one list read"),
            ("RSS ratio", "", round(rss_ratio, 1), "text / columnar"),
        ],
        "Dataset cold start — text vs columnar",
    )
    write_bench_json("dataset_io", {
        "workload": "cold_load_full_grid",
        "lists": len(dataset),
        "list_size": LIST_SIZE,
        "total_sites": total_sites,
        "text_save_seconds": text_save_seconds,
        "columnar_save_seconds": columnar_save_seconds,
        "text_cold_open_seconds": text["open_seconds"],
        "columnar_cold_open_seconds": columnar["open_seconds"],
        "columnar_first_list_seconds": columnar["first_list_seconds"],
        "cold_open_speedup": speedup,
        "text_max_rss_kb": text["max_rss_kb"],
        "columnar_max_rss_kb": columnar["max_rss_kb"],
        "rss_ratio": rss_ratio,
    })

    assert speedup >= MIN_COLD_OPEN_SPEEDUP, (
        f"columnar cold open only {speedup:.1f}x faster "
        f"({text['open_seconds']:.3f}s text vs "
        f"{columnar['open_seconds']:.4f}s columnar)"
    )
