"""Tracing overhead on the warm serving path (the ISSUE's <2% budget).

Instrumented code always runs ``with get_tracer().span(...)`` — there
is no "tracing off" branch — so the cost of *disabled* tracing is
exactly the cost of the :class:`~repro.obs.NullTracer` shim: one
``get_tracer()`` lookup plus one no-op context manager per span site.
This benchmark pins that down three ways:

* **shim primitive cost** — nanoseconds per disabled span, measured
  over a tight loop (stable, unlike end-to-end A/B deltas that drown
  in network jitter);
* **budget check** — a warm HTTP rankings request crosses two span
  sites (``http.request`` + ``service.rankings``); twice the shim cost
  must stay under 2% of the measured warm-request latency over
  loopback;
* **enabled-tracer ratio** — the same warm sweep with a real
  :class:`~repro.obs.Tracer` installed, printed for scale (enabled
  tracing buys real spans, so it is allowed to cost more; only the
  disabled path has a hard budget).
"""

from __future__ import annotations

import threading
import time
import urllib.request

import pytest

from repro.obs import NULL_TRACER, Tracer, get_tracer, set_tracer
from repro.service import QueryService, create_server

from _bench_utils import print_comparison

#: Span sites a warm HTTP rankings request crosses (http.request +
#: service.rankings); the budget check charges the shim for each.
SPANS_PER_REQUEST = 2

#: The acceptance bound: disabled tracing must stay under this share
#: of the warm-request latency.
OVERHEAD_BUDGET = 0.02

SHIM_LOOPS = 200_000
HTTP_SWEEPS = 5


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


@pytest.fixture(scope="module")
def service(engine, feb_dataset, tmp_path_factory) -> QueryService:
    store = tmp_path_factory.mktemp("obs") / "artifacts"
    return QueryService(feb_dataset, store=store, config=engine.config)


def test_disabled_tracing_overhead(benchmark, service):
    assert get_tracer() is NULL_TRACER  # the default: tracing off

    server = create_server(service, "127.0.0.1", 0)
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()
    paths = [
        f"/v1/rankings?country={c}&top=50" for c in service.dataset.countries
    ]

    def fetch(path: str) -> None:
        with urllib.request.urlopen(server.url + path, timeout=30) as response:
            assert response.status == 200
            response.read()

    def sweep() -> None:
        for path in paths:
            fetch(path)

    def warm_rounds() -> None:
        for _ in range(HTTP_SWEEPS):
            sweep()

    try:
        sweep()  # warm the payload cache outside the timing
        disabled_t, _ = _timed(
            lambda: benchmark.pedantic(warm_rounds, rounds=1, iterations=1)
        )

        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            enabled_t, _ = _timed(warm_rounds)
        finally:
            set_tracer(previous)
    finally:
        server.shutdown()
        server.server_close()
        server_thread.join(timeout=10)

    requests = HTTP_SWEEPS * len(paths)
    per_request = disabled_t / requests
    # Every traced request yields exactly its two span sites.
    assert len(tracer.collector) == requests * SPANS_PER_REQUEST
    ratio = enabled_t / disabled_t if disabled_t > 0 else float("inf")

    def shim_loop() -> None:
        for _ in range(SHIM_LOOPS):
            with get_tracer().span("bench"):
                pass

    shim_t, _ = _timed(shim_loop)
    per_span = shim_t / SHIM_LOOPS
    share = (per_span * SPANS_PER_REQUEST) / per_request

    print_comparison(
        [
            ("warm HTTP request (us)", "-", f"{per_request * 1e6:.1f}",
             f"{requests} LRU-hit rankings over loopback"),
            ("disabled span (ns)", "-", f"{per_span * 1e9:.0f}",
             f"{SHIM_LOOPS} shim enters/exits"),
            ("disabled overhead/request", f"< {OVERHEAD_BUDGET:.0%}",
             f"{share:.3%}", f"{SPANS_PER_REQUEST} span sites"),
            ("enabled/disabled sweep", "-", f"{ratio:.2f}x",
             f"{len(tracer.collector)} real spans recorded"),
        ],
        "Observability — tracing overhead on the warm serving path",
    )
    assert share < OVERHEAD_BUDGET, (
        f"disabled tracing costs {share:.3%} of a warm request "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )
