"""Fleet serving benchmark: single-process vs pre-forked workers.

Saves a small columnar dataset, serves it twice — one process, then a
``--workers``-style fleet — and replays the same seeded Zipf query mix
against both with :func:`repro.fleet.run_loadtest`.  Reports per-mode
throughput and latency percentiles and writes ``BENCH_service.json``
(the fleet run, with the single-process run attached as its baseline).

Assertions are directional and environment-aware: byte-identical
payloads and zero errors always; the fleet-beats-single throughput
check only applies when the machine actually has cores for the workers
to use (a 1-core container cannot express process parallelism, and
asserting a speedup there would test the scheduler, not the code).
"""

from __future__ import annotations

import os
import threading
import urllib.request

import pytest

import repro
from repro.fleet import SLO, run_loadtest

from _bench_utils import print_comparison, write_bench_json

WORKERS = 2
DURATION_S = 4.0
CONCURRENCY = 8
SEED = 2022


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def columnar_data(tmp_path_factory):
    out = tmp_path_factory.mktemp("fleet-bench") / "data"
    repro.generate(
        small=True, countries=("US", "KR", "JP", "BR"),
        out=str(out), format="columnar",
    )
    return str(out)


@pytest.mark.skipif(not hasattr(os, "fork"), reason="fleet needs fork()")
def test_fleet_vs_single_process_throughput(columnar_data, benchmark):
    # -- single process ----------------------------------------------------------
    server = repro.serve(columnar_data, port=0, small=True, block=False)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        single = run_loadtest(
            server.url, duration=DURATION_S, concurrency=CONCURRENCY,
            seed=SEED, slo=SLO(error_rate=0.0),
        )
        with urllib.request.urlopen(
            server.url + "/v1/rankings?country=US&top=10", timeout=10
        ) as resp:
            single_bytes = resp.read()
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
    assert single.ok, single.violations()

    # -- fleet -------------------------------------------------------------------
    # A single GIL-bound client saturates near one server process; fork the
    # load generator too once there are cores for it.
    client_procs = 2 if _cores() >= WORKERS + 1 else 1
    fleet_sup = repro.serve(
        columnar_data, port=0, workers=WORKERS, small=True, block=False
    )
    try:
        fleet = benchmark.pedantic(
            lambda: run_loadtest(
                fleet_sup.url, duration=DURATION_S, concurrency=CONCURRENCY,
                client_procs=client_procs, seed=SEED, slo=SLO(error_rate=0.0),
                baseline=single.to_payload(),
            ),
            rounds=1, iterations=1,
        )
        with urllib.request.urlopen(
            fleet_sup.url + "/v1/rankings?country=US&top=10", timeout=10
        ) as resp:
            fleet_bytes = resp.read()
    finally:
        fleet_sup.stop()

    assert fleet.errors == 0, f"{fleet.errors} errors under fleet load"
    assert fleet_bytes == single_bytes, "fleet payloads must be byte-identical"
    assert fleet.fleet is not None and fleet.fleet["size"] == WORKERS
    assert fleet.fleet["restarts_total"] == 0

    speedup = fleet.throughput_rps / max(single.throughput_rps, 1e-9)
    rows = [
        ("single rps", f"{single.throughput_rps:.0f}", "-"),
        (f"fleet({WORKERS}) rps", f"{fleet.throughput_rps:.0f}",
         f"{speedup:.2f}x"),
        ("single p99 ms", f"{single._overall()['p99_ms']:.1f}", "-"),
        ("fleet p99 ms", f"{fleet._overall()['p99_ms']:.1f}", "-"),
    ]
    print_comparison(rows, "fleet serving: single process vs pre-forked")

    write_bench_json("service", fleet.to_payload())

    cores = _cores()
    if cores >= WORKERS + 1:
        # Room for the workers *and* the client: the fleet must win.
        assert speedup > 1.0, (
            f"{WORKERS}-worker fleet did not beat one process "
            f"({speedup:.2f}x on {cores} cores)"
        )
    else:
        print(f"\nonly {cores} core(s): speedup direction not asserted")
