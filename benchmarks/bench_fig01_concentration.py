"""Figure 1 + Section 4.1.2 — traffic concentration across sites.

Regenerates all four concentration curves and checks every headline
number the paper quotes: the single top site's share, how many sites
capture 25 % / 50 % of traffic, and the top-100/10K/1M shares.
"""

import pytest

from repro.analysis.concentration import (
    all_concentration_curves,
    headline_concentration,
    per_country_top1,
)
from repro.core import Metric, Platform
from repro.world.countries import COUNTRY_CODES

from _bench_utils import print_comparison


def test_fig1_concentration_curves(benchmark, feb_dataset):
    curves = benchmark.pedantic(
        all_concentration_curves, args=(feb_dataset,), rounds=3, iterations=1
    )
    by_key = {(c.platform, c.metric): c for c in curves}
    w_loads = by_key[(Platform.WINDOWS, Metric.PAGE_LOADS)]
    w_time = by_key[(Platform.WINDOWS, Metric.TIME_ON_PAGE)]
    a_loads = by_key[(Platform.ANDROID, Metric.PAGE_LOADS)]
    a_time = by_key[(Platform.ANDROID, Metric.TIME_ON_PAGE)]

    dist_wl = feb_dataset.distribution(Platform.WINDOWS, Metric.PAGE_LOADS)
    dist_wt = feb_dataset.distribution(Platform.WINDOWS, Metric.TIME_ON_PAGE)
    dist_al = feb_dataset.distribution(Platform.ANDROID, Metric.PAGE_LOADS)
    h_wl = headline_concentration(dist_wl, Platform.WINDOWS, Metric.PAGE_LOADS)
    h_wt = headline_concentration(dist_wt, Platform.WINDOWS, Metric.TIME_ON_PAGE)
    h_al = headline_concentration(dist_al, Platform.ANDROID, Metric.PAGE_LOADS)

    print_comparison(
        [
            ("W loads: top-1 share", 0.17, h_wl.top1, "17% of all Windows loads"),
            ("W loads: sites for 25%", 6, h_wl.sites_for_quarter, "'only six sites'"),
            ("W loads: top-100 share", 0.40, h_wl.top100, "'just under 40%'"),
            ("W loads: top-10K share", 0.70, h_wl.top10k, "'around 70%'"),
            ("W loads: top-1M share", 0.955, h_wl.top1m, "'over 95%'"),
            ("W time: top-1 share", 0.24, h_wt.top1, "'24% of time'"),
            ("W time: sites for 50%", 7, h_wt.sites_for_half, "'just 7 sites'"),
            ("W time: top-10K share", 0.85, h_wt.top10k, "'over 85%'"),
            ("A loads: sites for 25%", 10, h_al.sites_for_quarter, "'ten websites'"),
        ],
        "Figure 1 / Section 4.1.2 — traffic concentration",
    )

    # Shape assertions: who is more concentrated than whom.
    assert h_wl.top1 == pytest.approx(0.17, abs=0.01)
    assert h_wl.sites_for_quarter == 6
    assert h_wt.sites_for_half == 7
    assert h_al.sites_for_quarter == 10
    for rank in (1, 100, 10_000):
        assert w_time.share_at(rank) > w_loads.share_at(rank)
    # Android is less concentrated than Windows at the head (its 10K
    # shares actually cross slightly above Windows', per the paper's own
    # numbers: 72 % vs 70 %).
    for rank in (1, 100):
        assert a_loads.share_at(rank) < w_loads.share_at(rank)
    assert a_time.share_at(10_000) < w_time.share_at(10_000)


def test_fig1_per_country_head(benchmark):
    shares, stats = benchmark.pedantic(
        per_country_top1, args=(COUNTRY_CODES,), rounds=3, iterations=1
    )
    print_comparison(
        [
            ("per-country top-1 min", 0.12, min(shares.values()), "band 12-33%"),
            ("per-country top-1 max", 0.33, max(shares.values()), ""),
            ("per-country top-1 median", 0.20, stats.median, ""),
        ],
        "Section 4.1.2 — per-country head concentration",
    )
    assert 0.12 <= min(shares.values())
    assert max(shares.values()) <= 0.33
    assert 0.16 <= stats.median <= 0.24
