"""Figure 2 / Section 4.2.2 — types of websites receiving most traffic.

Regenerates all panels (platform × metric × {top-100, top-10K} ×
{by domains, traffic-weighted}) and checks the paper's headline
composition claims.
"""

from repro.analysis.composition import composition_panel, dominant_category
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.report import render_shares

from _bench_utils import print_comparison


def _panel(dataset, labels, platform, metric, top_n, perspective):
    return composition_panel(
        dataset, labels, platform, metric, REFERENCE_MONTH, top_n, perspective
    )


def test_fig2_traffic_weighted_panels(benchmark, feb_dataset, labels):
    def compute():
        return {
            (p, m): _panel(feb_dataset, labels, p, m, 10_000, "traffic")
            for p in Platform.studied()
            for m in Metric.studied()
        }

    panels = benchmark.pedantic(compute, rounds=1, iterations=1)
    w_loads = panels[(Platform.WINDOWS, Metric.PAGE_LOADS)]
    w_time = panels[(Platform.WINDOWS, Metric.TIME_ON_PAGE)]
    a_loads = panels[(Platform.ANDROID, Metric.PAGE_LOADS)]
    a_time = panels[(Platform.ANDROID, Metric.TIME_ON_PAGE)]

    print_comparison(
        [
            ("search share of W loads", "0.20-0.25", w_loads.shares["Search Engines"],
             "'20-25% of top-10K page loads'"),
            ("video share of W time", 0.33, w_time.shares["Video Streaming"],
             "'33% of time spent'"),
            ("adult share of A time", 0.18, a_time.shares.get("Pornography", 0.0),
             "'plurality ... 18%'"),
            ("search share of A loads", "0.20-0.25",
             a_loads.shares["Search Engines"], "plurality on mobile too"),
        ],
        "Figure 2 — traffic-weighted category shares (top-10K)",
    )
    print(render_shares(w_time.shares, "Windows time on page, top categories", top=8))
    print(render_shares(a_time.shares, "Android time on page, top categories", top=8))

    # Search engines take the plurality of page loads on both platforms.
    assert dominant_category(w_loads) == "Search Engines"
    assert dominant_category(a_loads) == "Search Engines"
    assert 0.15 <= w_loads.shares["Search Engines"] <= 0.32
    # Users spend the plurality of desktop time streaming video.
    assert dominant_category(w_time) == "Video Streaming"
    assert 0.25 <= w_time.shares["Video Streaming"] <= 0.45
    # Mobile time is dominated by entertainment/adult content, with
    # pornography the top or near-top category.
    top3_mobile_time = [c for c, _ in a_time.top_categories(4)]
    assert "Pornography" in top3_mobile_time
    assert a_time.shares.get("Pornography", 0) > w_time.shares.get("Pornography", 0)


def test_fig2_domain_count_panels(benchmark, feb_dataset, labels):
    def compute():
        return {
            n: _panel(feb_dataset, labels, Platform.WINDOWS, Metric.PAGE_LOADS,
                      n, "domains")
            for n in (100, 10_000)
        }

    panels = benchmark.pedantic(compute, rounds=1, iterations=1)
    top100 = panels[100]
    top10k = panels[10_000]

    print_comparison(
        [
            ("business % of top-10K domains", 0.08, top10k.shares.get("Business", 0),
             "'over 8% of top-10K desktop'"),
            ("news % of top-10K domains", 0.065, top10k.shares.get("News & Media", 0),
             "'6.5-14.3% of domains'"),
            ("tech % of top-10K domains", "0.10-0.12",
             top10k.shares.get("Technology", 0), "'10-12% of desktop'"),
        ],
        "Figure 2 — domain-count category shares",
    )

    # The domain-count perspective skews toward long-tail categories:
    # Business gains weight from top-100 to top-10K, Video Streaming and
    # Search Engines lose it.
    assert top10k.shares.get("Business", 0) > top100.shares.get("Business", 0)
    assert top100.shares.get("Video Streaming", 0) > top10k.shares.get("Video Streaming", 0)
    assert top10k.shares.get("Business", 0) > 0.04
    assert top10k.shares.get("Technology", 0) > 0.05
