"""Figure 7 + Section 5.1 — endemicity scores and the global/national split.

Scores every site ranking top-1K in at least one country, splits
globally from nationally popular sites by outlier detection on the
distance to the maximal-endemicity bound, and checks the paper's
headline: ~54 % of those sites appear in no other country's top-10K.
"""

import numpy as np

from repro.analysis.endemicity import exclusivity_fraction, score_endemicity
from repro.core import Metric, Platform, REFERENCE_MONTH

from _bench_utils import print_comparison


def test_fig7_endemicity_scores(benchmark, feb_dataset, generator):
    lists = feb_dataset.select(Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH)

    result = benchmark.pedantic(
        score_endemicity, args=(lists,), kwargs={"eligible_rank": 1_000},
        rounds=1, iterations=1,
    )
    exclusive, population = exclusivity_fraction(lists, head_rank=1_000)

    print_comparison(
        [
            ("scored population", "23,785", len(result.curves),
             "sites top-1K in >=1 country"),
            ("single-country fraction", 0.539, exclusive,
             "'53.9% do not appear in the top 10K of any other country'"),
            ("globally popular fraction", 0.02, result.global_fraction,
             "Table 2: ~2%"),
            ("score range", "0-180",
             f"0-{result.scores.max():.0f}", ""),
        ],
        "Figure 7 / Section 5.1 — endemicity",
    )

    # Score bounds and the bimodal global/national structure.
    assert result.scores.min() >= -1e-9
    assert result.scores.max() <= 180
    assert 0.40 <= exclusive <= 0.68
    assert 0.005 <= result.global_fraction <= 0.06
    # Known anchors classify correctly.
    uni = generator.universe
    for name in ("google", "facebook", "twitter", "instagram"):
        assert uni.canonical_of(name) in result.global_sites, name
    for name in ("naver", "bbc", "globo"):
        assert uni.canonical_of(name) in result.national_sites, name
    # Globally popular sites sit far below the maximal-endemicity bound
    # *for their best rank* (Figure 7's orange band).  Raw scores are not
    # comparable across best ranks, so compare score/bound ratios.
    ratios = np.array([
        c.endemicity_score() / max(c.upper_bound(), 1e-9)
        for c in result.curves
    ])
    assert np.median(ratios[result.global_mask]) < np.median(
        ratios[~result.global_mask]
    )
    assert np.median(ratios[~result.global_mask]) > 0.90
    # The truly global head sits far from the bound.
    by_site = {c.site: r for c, r in zip(result.curves, ratios)}
    assert by_site[uni.canonical_of("google")] < 0.35
