"""Section 5.3 — geography and language behind country similarity.

Quantifies the paper's qualitative claims: similarity is higher for
same-region and same-language pairs, yet geography + language only
*partially* explain the variance; and the Section 5.3.2 site classes
(universities, gambling, sports) concentrate in the global south.
"""

from repro.analysis.geography import (
    decompose_similarity,
    explained_variance,
    global_south_patterns,
)
from repro.analysis.similarity import rbo_matrix_for
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.report import render_table

from _bench_utils import print_comparison


def test_sec53_similarity_decomposition(benchmark, feb_dataset):
    matrix = rbo_matrix_for(
        feb_dataset, Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH
    )

    def compute():
        return decompose_similarity(matrix), explained_variance(matrix)

    decomposition, r2 = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_comparison(
        [
            ("same region group", "highest", decomposition.same_region_group,
             f"{decomposition.n_pairs['group']} pairs"),
            ("shared language only", "elevated", decomposition.shared_language,
             f"{decomposition.n_pairs['language']} pairs"),
            ("same continent only", "slightly elevated",
             decomposition.same_continent_only,
             f"{decomposition.n_pairs['continent']} pairs"),
            ("unrelated pairs", "baseline", decomposition.unrelated,
             f"{decomposition.n_pairs['unrelated']} pairs"),
            ("R² of geo+language model", "partial («1)", r2,
             "'only partially explain'"),
        ],
        "Section 5.3 — what explains country similarity",
    )
    assert decomposition.same_region_group > decomposition.unrelated
    assert decomposition.shared_language > decomposition.unrelated
    assert decomposition.same_region_group >= decomposition.same_continent_only
    # Partial explanation: meaningful but far from total.
    assert 0.05 <= r2 <= 0.75


def test_sec53_global_south_classes(benchmark, feb_dataset, generator):
    lists = feb_dataset.select(Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH)
    uni = generator.universe
    tags = {uni.canonical[uid]: t for uid, t in uni.tags.items()}

    patterns = benchmark.pedantic(
        global_south_patterns, args=(lists, tags), kwargs={"top_k": 15},
        rounds=1, iterations=1,
    )
    rows = []
    for tag, paper in (("university", "9/10 south"),
                       ("gambling", "11/14 south"),
                       ("sports", "7/9 south")):
        pattern = patterns[tag]
        total = len(pattern.south_countries) + len(pattern.north_countries)
        rows.append((tag, paper,
                     f"{len(pattern.south_countries)}/{total} south"))
    print()
    print(render_table(
        ("class", "paper", "measured"), rows,
        title="Section 5.3.2 — global-south site classes (top-15 presence)",
    ))

    south = sum(len(patterns[t].south_countries)
                for t in ("university", "gambling", "sports"))
    north = sum(len(patterns[t].north_countries)
                for t in ("university", "gambling", "sports"))
    assert south / max(south + north, 1) >= 0.6
    if patterns["university"].south_countries or patterns["university"].north_countries:
        assert patterns["university"].south_fraction >= 0.7
