"""Figure 6 & Table 1 — website popularity curves and their six shapes.

Builds the per-site popularity curves (sorted −log10 rank vectors over
the 45 countries) and classifies them into the six characteristic
shapes, verifying the example sites the paper names for each shape.
"""

from collections import Counter

from repro.analysis.endemicity import (
    ALL_SHAPES,
    classify_shape,
    popularity_curves,
)
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.report import render_table

from _bench_utils import print_comparison


def test_fig6_popularity_curve_shapes(benchmark, feb_dataset, generator):
    lists = feb_dataset.select(Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH)

    curves = benchmark.pedantic(
        popularity_curves, args=(lists,), kwargs={"eligible_rank": 1_000},
        rounds=1, iterations=1,
    )
    by_site = {c.site: c for c in curves}
    shapes = Counter(classify_shape(c) for c in curves)

    print()
    print(render_table(
        ("shape", "count", "share"),
        [(shape, shapes.get(shape, 0), f"{shapes.get(shape, 0) / len(curves):.1%}")
         for shape in ALL_SHAPES],
        title="Table 1 — distribution of the six popularity-curve shapes",
    ))

    uni = generator.universe
    google = by_site[uni.canonical_of("google")]
    facebook = by_site[uni.canonical_of("facebook")]
    naver = by_site[uni.canonical_of("naver")]
    hbomax = by_site.get(uni.canonical_of("hbomax"))

    examples = [
        ("google", classify_shape(google), "shallow slope, all countries"),
        ("facebook", classify_shape(facebook), "shallow slope, all countries"),
        ("naver", classify_shape(naver), "single-country cliff"),
    ]
    if hbomax is not None:
        examples.append(("hbomax", classify_shape(hbomax),
                         "plateau over a few countries"))
    print_comparison(
        [(name, "see Table 1", shape, note) for name, shape, note in examples],
        "Figure 6 — example curve classifications",
    )

    # Every defined shape must actually occur in the population.
    assert set(shapes) == set(ALL_SHAPES)
    # The paper's example sites land in the documented shapes.
    assert classify_shape(google) in ("global-flat", "global-slope")
    assert classify_shape(naver) == "single-country"
    if hbomax is not None:
        assert classify_shape(hbomax) == "multi-regional"
    # The population is dominated by narrow-reach shapes (most sites are
    # national, Section 5.2).
    narrow = shapes["single-country"] + shapes["scattered-tail"] + shapes["multi-regional"]
    assert narrow / len(curves) > 0.7
    # Curves are proper 45-vectors.
    assert all(c.n_countries == 45 for c in curves)
