"""Section 6 — the geo-aware sampling recommendation, tested.

"one could hypothesize that taking the global top 1K together with the
top 1K from each country may lead to more geographically generalizable
conclusions than taking simply the global top 10K."

We build both study sets and measure per-country traffic coverage: the
hybrid design must raise the *minimum* (worst-country) coverage, and
the global-only design's coverage must correlate with market size —
the bias toward "populous, industrialized countries" the paper warns
about.
"""

import numpy as np

from repro.analysis.sampling import compare_strategies
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.world.countries import get_country

from _bench_utils import print_comparison


def test_sec6_sampling_strategies(benchmark, feb_dataset):
    lists = feb_dataset.select(Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH)
    dist = feb_dataset.distribution(Platform.WINDOWS, Metric.PAGE_LOADS)

    global_report, hybrid_report = benchmark.pedantic(
        compare_strategies, args=(lists, dist), rounds=1, iterations=1
    )

    print_comparison(
        [
            ("global-only set size", 10_000, global_report.size, ""),
            ("hybrid set size", "~global+45x1K deduped", hybrid_report.size, ""),
            ("global-only median coverage", "high",
             global_report.stats.median, ""),
            ("global-only minimum coverage", "biased low",
             global_report.minimum,
             f"worst: {', '.join(global_report.worst_countries[:3])}"),
            ("hybrid minimum coverage", "> global-only",
             hybrid_report.minimum, ""),
        ],
        "Section 6 — study-set design comparison",
    )

    # The hybrid design is more geographically equitable: its worst
    # country is covered better, and its coverage spread is narrower.
    assert hybrid_report.minimum > global_report.minimum
    assert hybrid_report.stats.iqr <= global_report.stats.iqr
    # The global-only design favours large markets: coverage correlates
    # positively with install-base size.
    scales = np.array([
        get_country(c).web_scale for c in sorted(global_report.per_country)
    ])
    coverage = np.array([
        global_report.per_country[c] for c in sorted(global_report.per_country)
    ])
    correlation = float(np.corrcoef(np.log(scales), coverage)[0, 1])
    print(f"\n  coverage-vs-market-size correlation (global-only): {correlation:.2f}")
    assert correlation > 0.3
