"""Table 3 — the final category taxonomy.

Regenerates the taxonomy table (22 supercategories / 61 categories) and
validates its structure against the counts and groupings the paper
reports.
"""

from repro.categories.taxonomy import FINAL_TAXONOMY, TABLE3
from repro.report import render_table

from _bench_utils import print_comparison


def test_table3_taxonomy(benchmark):
    def compute():
        return {
            supercategory: TABLE3.in_supercategory(supercategory)
            for supercategory in TABLE3.supercategories
        }

    grouped = benchmark.pedantic(compute, rounds=3, iterations=1)

    print()
    print(render_table(
        ("supercategory", "categories"),
        [(sc, "; ".join(cats)) for sc, cats in grouped.items()],
        title="Table 3 — final category taxonomy",
    ))
    print_comparison(
        [
            ("supercategories", 22, len(grouped), ""),
            ("categories", 61, sum(len(c) for c in grouped.values()), ""),
            ("curated additions", 2, len(FINAL_TAXONOMY.curated),
             "Search Engines, Social Networks"),
        ],
        "Table 3 — counts",
    )

    assert len(grouped) == 22
    assert sum(len(c) for c in grouped.values()) == 61
    # Spot-check the groupings the table shows.
    assert set(grouped["Adult Themes"]) == {"Pornography", "Adult Themes"}
    assert len(grouped["Entertainment"]) == 13
    assert len(grouped["Society & Lifestyle"]) == 15
    assert grouped["Weather"] == ("Weather",)
    assert set(grouped["Internet Communication"]) == {
        "Forums", "Webmail", "Chat & Messaging",
    }
