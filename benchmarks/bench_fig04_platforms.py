"""Figures 4 & 15 / Section 4.3 — desktop vs mobile category skews.

Regenerates the normalised-difference scores (A − W)/max(A, W) with
Fisher tests under Bonferroni correction, for page loads (Figure 4) and
time on page (Figure 15), and checks the direction of every category
skew the paper names.
"""

from repro.analysis.platforms import platform_differences, split_by_leaning
from repro.core import Metric, REFERENCE_MONTH
from repro.report import render_table

from _bench_utils import print_comparison

MOBILE_PAPER = ("Pornography", "Dating & Relationships", "Gambling", "Magazines",
                "Lifestyle", "Astrology")
DESKTOP_PAPER = ("Educational Institutions", "Webmail", "Gaming",
                 "Economy & Finance", "Business", "Technology")


def test_fig4_page_loads(benchmark, feb_dataset, labels):
    differences = benchmark.pedantic(
        platform_differences,
        args=(feb_dataset, labels, Metric.PAGE_LOADS, REFERENCE_MONTH),
        kwargs={"min_significant": 23},
        rounds=1, iterations=1,
    )
    by_cat = {d.category: d for d in differences}
    desktop, mobile = split_by_leaning(differences)

    print()
    print(render_table(
        ("category", "score", "significant countries"),
        [(d.category, f"{d.median_score:+.2f}", f"{d.n_significant}/45")
         for d in differences if d.category in MOBILE_PAPER + DESKTOP_PAPER],
        title="Figure 4 — normalised platform difference (page loads)",
    ))
    print_comparison(
        [
            ("mobile-leaning significant categories", "porn/dating/gambling/...",
             ", ".join(d.category for d in mobile[:4]), ""),
            ("desktop-leaning significant categories", "edu/webmail/gaming/...",
             ", ".join(d.category for d in desktop[:4]), ""),
        ],
        "Figure 4 — direction check",
    )

    for category in MOBILE_PAPER:
        if category in by_cat:
            assert by_cat[category].mobile_leaning, category
    for category in DESKTOP_PAPER:
        if category in by_cat:
            assert not by_cat[category].mobile_leaning, category
    # The flagship categories must be significant in a majority of
    # countries ("These trends are consistent across the majority of
    # countries").
    assert by_cat["Pornography"].n_significant >= 23
    assert by_cat["Educational Institutions"].n_significant >= 23


def test_fig15_time_on_page(benchmark, feb_dataset, labels):
    differences = benchmark.pedantic(
        platform_differences,
        args=(feb_dataset, labels, Metric.TIME_ON_PAGE, REFERENCE_MONTH),
        kwargs={"min_significant": 23},
        rounds=1, iterations=1,
    )
    by_cat = {d.category: d for d in differences}
    print_comparison(
        [
            ("porn still mobile-leaning by time", True,
             by_cat.get("Pornography") is not None
             and by_cat["Pornography"].mobile_leaning, "'roughly hold'"),
            ("video streaming desktop-browser-bound by time", True,
             by_cat.get("Video Streaming") is not None
             and not by_cat["Video Streaming"].mobile_leaning,
             "mobile streams in native apps"),
        ],
        "Figure 15 — time-on-page consistency",
    )
    assert by_cat["Pornography"].mobile_leaning
    for category in ("Video Streaming", "Gaming", "Chat & Messaging"):
        if category in by_cat:
            assert not by_cat[category].mobile_leaning, category
