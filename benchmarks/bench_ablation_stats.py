"""Ablations — statistical choices behind Sections 4.3 and 4.4.

* Bonferroni vs Holm–Bonferroni for the per-category platform tests:
  Holm is uniformly more powerful, so it can only add significant
  categories — and the direction of every skew must be unchanged.
* Spearman vs Kendall for the metric-agreement analysis: the paper's
  conclusion (mobile lists agree more than desktop lists) must not
  depend on the choice of rank-correlation coefficient.
* A single fitted Zipf law vs the anchor-interpolated traffic curve:
  quantifies why the paper's measured distribution is needed (a pure
  power law cannot reproduce the measured head concentration).
"""

import numpy as np

from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.stats.correction import bonferroni, holm
from repro.stats.fisher import proportion_test
from repro.stats.kendall import kendall_from_lists
from repro.stats.spearman import spearman_from_lists
from repro.synth.zipf import ZipfMandelbrot
from repro.analysis.weighting import weighted_volume_by_category

from _bench_utils import print_comparison

COUNTRIES = ("US", "BR", "JP", "FR", "NG", "MX", "IN", "DE")


def test_ablation_bonferroni_vs_holm(benchmark, feb_dataset, labels):
    def compute():
        dist_w = feb_dataset.distribution(Platform.WINDOWS, Metric.PAGE_LOADS)
        dist_a = feb_dataset.distribution(Platform.ANDROID, Metric.PAGE_LOADS)
        bon_total = holm_total = 0
        for country in COUNTRIES:
            w = feb_dataset.get(country, Platform.WINDOWS, Metric.PAGE_LOADS,
                                REFERENCE_MONTH)
            a = feb_dataset.get(country, Platform.ANDROID, Metric.PAGE_LOADS,
                                REFERENCE_MONTH)
            vol_w = weighted_volume_by_category(w, labels, dist_w, 10_000)
            vol_a = weighted_volume_by_category(a, labels, dist_a, 10_000)
            categories = sorted(set(vol_w) | set(vol_a))
            p_values = [
                proportion_test(vol_a.get(c, 0.0), vol_w.get(c, 0.0)).p_value
                for c in categories
            ]
            bon_total += sum(bonferroni(p_values))
            holm_total += sum(holm(p_values))
        return bon_total, holm_total

    bon_total, holm_total = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_comparison(
        [
            ("significant (Bonferroni)", "paper's choice", bon_total,
             f"over {len(COUNTRIES)} countries"),
            ("significant (Holm)", ">= Bonferroni", holm_total, ""),
        ],
        "Ablation — multiple-testing correction",
    )
    assert holm_total >= bon_total
    assert bon_total > 0


def test_ablation_spearman_vs_kendall(benchmark, feb_dataset):
    def compute():
        out = {"spearman": {}, "kendall": {}}
        for platform in Platform.studied():
            rhos, taus = [], []
            for country in COUNTRIES:
                loads = feb_dataset.get(country, platform, Metric.PAGE_LOADS,
                                        REFERENCE_MONTH).top(2_000)
                time = feb_dataset.get(country, platform, Metric.TIME_ON_PAGE,
                                       REFERENCE_MONTH).top(2_000)
                rhos.append(spearman_from_lists(loads, time))
                taus.append(kendall_from_lists(loads, time))
            out["spearman"][platform] = float(np.median(rhos))
            out["kendall"][platform] = float(np.median(taus))
        return out

    stats = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_comparison(
        [
            ("desktop rho / tau", "mobile exceeds desktop under both",
             f"{stats['spearman'][Platform.WINDOWS]:.2f} / "
             f"{stats['kendall'][Platform.WINDOWS]:.2f}", ""),
            ("mobile rho / tau", "",
             f"{stats['spearman'][Platform.ANDROID]:.2f} / "
             f"{stats['kendall'][Platform.ANDROID]:.2f}", ""),
        ],
        "Ablation — rank-correlation coefficient",
    )
    for family in ("spearman", "kendall"):
        assert stats[family][Platform.ANDROID] > stats[family][Platform.WINDOWS]
    # Kendall is systematically smaller in magnitude but same sign.
    assert 0 < stats["kendall"][Platform.WINDOWS] < stats["spearman"][Platform.WINDOWS]


def test_ablation_zipf_vs_anchored_curve(benchmark, feb_dataset):
    dist = feb_dataset.distribution(Platform.WINDOWS, Metric.PAGE_LOADS)

    def fit_best_zipf():
        best = None
        for s in np.linspace(0.6, 1.4, 33):
            z = ZipfMandelbrot(s=float(s), n=1_000_000)
            err = sum(
                (z.cumulative_share(r) - dist.cumulative_share(r)) ** 2
                for r in (1, 6, 100, 10_000, 1_000_000)
            )
            if best is None or err < best[1]:
                best = (z, err)
        return best[0]

    zipf = benchmark.pedantic(fit_best_zipf, rounds=1, iterations=1)
    rows = []
    worst_gap = 0.0
    for rank in (1, 6, 100, 10_000):
        measured = dist.cumulative_share(rank)
        fitted = zipf.cumulative_share(rank)
        worst_gap = max(worst_gap, abs(measured - fitted))
        rows.append((f"top-{rank} share", measured, fitted, ""))
    print_comparison(rows, "Ablation — best single Zipf law vs measured curve")

    # No single power law reproduces the measured head: the best fit is
    # off by several points of share somewhere on the curve — which is
    # why the paper uses the measured distribution itself as weights.
    assert worst_gap > 0.03
