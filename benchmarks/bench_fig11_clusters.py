"""Figures 11 & 21 — affinity-propagation country clusters + silhouettes.

Clusters the 45 countries on the weighted-RBO matrix and validates the
paper's qualitative findings: ~11 weak clusters (average SC ≈ 0.11)
tracking shared language/geography, North Africa among the tightest,
and Japan / South Korea separated from the big clusters.
"""

from repro.analysis.clustering import cluster_countries, clusters_share_language_or_region
from repro.analysis.similarity import rbo_matrix_for
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.report import render_table

from _bench_utils import print_comparison


def test_fig11_country_clusters(benchmark, feb_dataset):
    matrix = rbo_matrix_for(
        feb_dataset, Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH
    )
    report = benchmark.pedantic(
        cluster_countries, args=(matrix,), rounds=1, iterations=1
    )

    print()
    print(render_table(
        ("cluster", "silhouette", "members"),
        [(c.exemplar, f"{c.silhouette:+.2f}", " ".join(c.members))
         for c in report.clusters],
        title="Figure 11 — affinity-propagation clusters (Windows page loads)",
    ))
    print_comparison(
        [
            ("number of clusters", 11, report.n_clusters, "paper: 11"),
            ("average silhouette", 0.11, report.average_silhouette,
             "'clusters are only weakly bound'"),
            ("language/geo coherence", ">0.6",
             clusters_share_language_or_region(report), ""),
        ],
        "Figures 11/21 — cluster quality",
    )

    # Cluster count and weak-but-positive silhouette band.
    assert 6 <= report.n_clusters <= 16
    assert 0.0 <= report.average_silhouette <= 0.45
    # Clusters track shared language / geography.  The paper's clusters
    # are weak (avg SC 0.11) and not perfectly coherent either — e.g.
    # its sub-Saharan-Africa/India cluster (SC -0.01) mixes regions.
    assert clusters_share_language_or_region(report) >= 0.5
    # Spanish-speaking America substantially groups together.
    latam = ["MX", "AR", "CL", "CO", "PE", "EC", "UY", "BO", "GT", "CR",
             "PA", "DO", "VE"]
    biggest_latam = max(
        sum(1 for c in latam if c in cluster.members) for cluster in report.clusters
    )
    assert biggest_latam >= 6
    # North Africa groups.
    north_africa = ["DZ", "EG", "MA", "TN"]
    biggest_na = max(
        sum(1 for c in north_africa if c in cluster.members)
        for cluster in report.clusters
    )
    assert biggest_na >= 3
    # Japan and South Korea have "distinct browsing patterns separating
    # them from all other country clusters": each must either sit in a
    # small cluster or be attached to an incoherent one (silhouette near
    # zero — the paper's own loosest clusters score ~-0.01).
    for code in ("KR", "JP"):
        cluster = report.cluster_of(code)
        assert cluster.size <= 4 or cluster.silhouette <= 0.08, (code, cluster)


def test_fig21_silhouette_details(benchmark, feb_dataset):
    matrix = rbo_matrix_for(
        feb_dataset, Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH
    )
    report = benchmark.pedantic(
        cluster_countries, args=(matrix,), rounds=1, iterations=1
    )
    multi = [c for c in report.clusters if c.size >= 3]
    tightest = max(multi, key=lambda c: c.silhouette) if multi else None
    print_comparison(
        [
            ("tightest multi-country cluster", "North Africa (SC~0.31)",
             f"{tightest.exemplar}: {' '.join(tightest.members)} "
             f"(SC {tightest.silhouette:+.2f})" if tightest else "-", ""),
        ],
        "Figure 21 — silhouette detail",
    )
    # Per-point silhouettes live on [-1, 1] and the per-cluster averages
    # are consistent with the report.
    assert report.silhouettes.values.min() >= -1.0
    assert report.silhouettes.values.max() <= 1.0
    if tightest is not None:
        assert tightest.silhouette >= report.average_silhouette - 1e-9
