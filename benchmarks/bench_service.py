"""Serving-layer benchmark: cold vs warm payload cache, HTTP throughput.

Stands a :class:`QueryService` (and its HTTP server) over the February
full-grid dataset and times three things:

* **cold vs warm query latency** — every country's rankings payload is
  rendered once (miss: dataset lookup + JSON render) and again (hit:
  LRU bytes); the analysis endpoint likewise pays one pipeline run cold
  and serves stored bytes warm.
* **byte identity** — warm responses are asserted equal to the cold
  render, and concurrent identical HTTP requests must agree.
* **threaded HTTP throughput** — a warm server is hammered by client
  threads over the loopback interface; requests/second is printed.

Latency ratios are printed but only direction is asserted (warm must
not lose to cold): absolute numbers are machine-dependent.
"""

from __future__ import annotations

import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import QueryService, create_server

from _bench_utils import print_comparison

CLIENT_THREADS = 8
REQUESTS_PER_THREAD = 50


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


@pytest.fixture(scope="module")
def service(engine, feb_dataset, tmp_path_factory) -> QueryService:
    store = tmp_path_factory.mktemp("service") / "artifacts"
    return QueryService(feb_dataset, store=store, config=engine.config)


def test_service_cold_vs_warm(benchmark, service):
    countries = service.dataset.countries

    def sweep() -> list[bytes]:
        return [service.rankings(country, top=50) for country in countries]

    cold_t, cold = _timed(
        lambda: benchmark.pedantic(sweep, rounds=1, iterations=1)
    )
    warm_t, warm = _timed(sweep)
    assert warm == cold, "warm payloads must be byte-identical to cold"
    assert service.cache.hits >= len(countries)

    analysis_cold_t, analysis_cold = _timed(
        lambda: service.analysis("concentration")
    )
    analysis_warm_t, analysis_warm = _timed(
        lambda: service.analysis("concentration")
    )
    assert analysis_warm == analysis_cold
    assert service.metrics.counter("pipeline_runs") == 1

    per_cold = cold_t / len(countries) * 1000.0
    per_warm = warm_t / len(countries) * 1000.0
    speedup = cold_t / warm_t if warm_t > 0 else float("inf")
    print_comparison(
        [
            ("rankings cold (ms/req)", "-", f"{per_cold:.3f}",
             f"{len(countries)} countries, top 50"),
            ("rankings warm (ms/req)", "-", f"{per_warm:.3f}", "LRU bytes"),
            ("cold -> warm speedup", "> 1.0", f"{speedup:.1f}x", ""),
            ("analysis cold (ms)", "-", f"{analysis_cold_t * 1000.0:.1f}",
             "1 pipeline run"),
            ("analysis warm (ms)", "-", f"{analysis_warm_t * 1000.0:.1f}",
             "0 pipeline runs"),
            ("payloads", "byte-identical", "byte-identical",
             f"{len(cold)} rankings + 1 analysis"),
        ],
        "Serving layer — cold vs warm payload cache",
    )
    assert warm_t <= cold_t, "the payload cache should not lose to a rebuild"


def test_http_threaded_throughput(benchmark, service):
    server = create_server(service, "127.0.0.1", 0)
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()
    countries = service.dataset.countries[:CLIENT_THREADS]
    paths = [f"/v1/rankings?country={c}&top=50" for c in countries]

    def fetch(path: str) -> bytes:
        with urllib.request.urlopen(server.url + path, timeout=30) as response:
            assert response.status == 200
            return response.read()

    try:
        for path in paths:  # warm every payload outside the timing
            fetch(path)

        def storm() -> list[bytes]:
            def client(path: str) -> list[bytes]:
                return [fetch(path) for _ in range(REQUESTS_PER_THREAD)]

            with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
                return [
                    body
                    for future in [pool.submit(client, p) for p in paths]
                    for body in future.result()
                ]

        elapsed, bodies = _timed(
            lambda: benchmark.pedantic(storm, rounds=1, iterations=1)
        )
    finally:
        server.shutdown()
        server.server_close()
        server_thread.join(timeout=10)

    total = CLIENT_THREADS * REQUESTS_PER_THREAD
    assert len(bodies) == total
    # Each path's responses must agree byte-for-byte across threads.
    assert len(set(bodies)) == len(paths)
    throughput = total / elapsed if elapsed > 0 else float("inf")
    print_comparison(
        [
            ("HTTP requests", "-", f"{total}",
             f"{CLIENT_THREADS} threads x {REQUESTS_PER_THREAD}"),
            ("wall clock (s)", "-", f"{elapsed:.2f}", "loopback, warm cache"),
            ("throughput (req/s)", "-", f"{throughput:.0f}", ""),
            ("responses per path", "byte-identical", "byte-identical",
             f"{len(paths)} distinct queries"),
        ],
        "Serving layer — threaded HTTP throughput",
    )
