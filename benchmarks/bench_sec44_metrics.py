"""Section 4.4 — page loads vs time on page: list agreement.

Regenerates the top-10K intersection and within-intersection Spearman
between the two popularity metrics, per platform, against the paper's
medians (65 % / 0.65 desktop, 74 % / 0.69 mobile).
"""

from repro.analysis.metrics_compare import category_overlap, metric_overlap
from repro.core import Metric, Platform, REFERENCE_MONTH

from _bench_utils import print_comparison


def test_sec44_metric_agreement(benchmark, feb_dataset):
    def compute():
        return {
            platform: metric_overlap(feb_dataset, platform, REFERENCE_MONTH)
            for platform in Platform.studied()
        }

    overlaps = benchmark.pedantic(compute, rounds=1, iterations=1)
    desktop = overlaps[Platform.WINDOWS]
    mobile = overlaps[Platform.ANDROID]

    print_comparison(
        [
            ("desktop top-10K intersection", 0.65,
             desktop.intersection_stats.median, "median over 45 countries"),
            ("desktop Spearman (intersection)", 0.65,
             desktop.spearman_stats.median, ""),
            ("mobile top-10K intersection", 0.74,
             mobile.intersection_stats.median, ""),
            ("mobile Spearman (intersection)", 0.69,
             mobile.spearman_stats.median, ""),
        ],
        "Section 4.4 — loads vs time agreement",
    )

    # Shape: mobile agrees more than desktop on both statistics, and the
    # magnitudes sit in the paper's neighbourhood.
    assert mobile.intersection_stats.median > desktop.intersection_stats.median
    assert mobile.spearman_stats.median > desktop.spearman_stats.median
    assert 0.55 <= desktop.intersection_stats.median <= 0.75
    assert 0.65 <= mobile.intersection_stats.median <= 0.85
    assert 0.45 <= desktop.spearman_stats.median <= 0.80
    assert 0.55 <= mobile.spearman_stats.median <= 0.88


def test_sec44_within_category_agreement(benchmark, feb_dataset, labels):
    """"Correlation values remain in the same range within website
    categories, with 57-72% intersection ... for desktop."""

    def compute():
        out = {}
        for country in ("US", "BR", "JP", "FR", "IN"):
            loads = feb_dataset.get(country, Platform.WINDOWS,
                                    Metric.PAGE_LOADS, REFERENCE_MONTH)
            time = feb_dataset.get(country, Platform.WINDOWS,
                                   Metric.TIME_ON_PAGE, REFERENCE_MONTH)
            for category in ("Technology", "News & Media", "Ecommerce"):
                out[(country, category)] = category_overlap(
                    loads, time, labels, category
                )
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    intersections = [i for i, _ in results.values() if i > 0]
    print_comparison(
        [
            ("within-category intersection range", "0.57-0.72",
             f"{min(intersections):.2f}-{max(intersections):.2f}",
             "desktop categories"),
        ],
        "Section 4.4 — per-category agreement",
    )
    # Same broad range as the overall statistic: the bulk of category
    # intersections sits in the paper's 0.5-0.8 neighbourhood, with a
    # noisy tail from small categories (few sites per country).
    import statistics
    assert 0.45 <= statistics.median(intersections) <= 0.90
    in_band = sum(1 for i in intersections if 0.3 <= i <= 0.95)
    assert in_band >= 0.7 * len(intersections)
