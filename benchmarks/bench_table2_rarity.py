"""Table 2 — rarity of globally popular websites.

Per (platform, metric): the fraction of scored sites that are globally
vs nationally popular.  Paper: an average of 98 % national / 2 % global.
"""

from repro.analysis.endemicity import score_endemicity
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.report import render_table

from _bench_utils import print_comparison


def test_table2_global_vs_national(benchmark, feb_dataset):
    def compute():
        out = {}
        for platform in Platform.studied():
            for metric in Metric.studied():
                lists = feb_dataset.select(platform, metric, REFERENCE_MONTH)
                out[(platform, metric)] = score_endemicity(
                    lists, eligible_rank=1_000
                )
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for (platform, metric), result in sorted(
        results.items(), key=lambda kv: (kv[0][0].value, kv[0][1].value)
    ):
        rows.append((
            f"{platform.value}/{metric.value}",
            len(result.curves),
            f"{result.global_fraction:.1%}",
            f"{1 - result.global_fraction:.1%}",
        ))
    print()
    print(render_table(
        ("breakdown", "scored sites", "globally popular", "nationally popular"),
        rows,
        title="Table 2 — global vs national site populations",
    ))

    fractions = [r.global_fraction for r in results.values()]
    average = sum(fractions) / len(fractions)
    print_comparison(
        [("average globally-popular fraction", 0.02, average, "Table 2: ~2%")],
        "Table 2 — headline",
    )

    # Every breakdown: overwhelmingly national, a thin global head.
    for result in results.values():
        assert 0.004 <= result.global_fraction <= 0.06
    assert 0.005 <= average <= 0.05
