"""Generation-engine benchmark: per-slice vs batched, cold vs warm cache.

Times the full study grid — 45 countries × 2 platforms × 3 metrics × 6
months (1620 slices, December included) — through the plan/execute
engine on the *small* universe, so the bench runs anywhere; the
mechanics being measured — one matrix pass per country grid, keyed
component reuse, memoised privacy cutoffs, per-country work-unit
sharding, the content-addressed slice cache — are scale-independent.

Three scoring paths are timed from equally cold generator state (the
process-level generator memo is dropped before each run; the universe
build is paid once up front, outside all timings):

* per-slice serial (``SerialExecutor(batch=False)``) — the reference;
* batched serial (``SerialExecutor()``) — the headline path, asserted
  ≥ 3× the per-slice baseline and byte-identical to it;
* batched parallel — country grids shipped whole to forked workers
  (the ≥ 2× assertion only fires with enough CPUs).

Results land in ``BENCH_engine.json`` next to the other CI artifacts.
"""

from __future__ import annotations

import os
import time

from repro.core import Metric, Platform, STUDY_MONTHS
from repro.engine import (
    GenerationEngine,
    ParallelExecutor,
    SerialExecutor,
    SliceCache,
    SlicePlan,
)
from repro.engine.executor import _GENERATORS
from repro.synth import GeneratorConfig
from repro.synth.universe import build_universe

from _bench_utils import print_comparison, write_bench_json

WORKERS = 4
MIN_BATCH_SPEEDUP = 3.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_engine_full_grid(benchmark, tmp_path):
    config = GeneratorConfig.small()
    plan = SlicePlan.from_grid(
        platforms=Platform.studied(),
        metrics=(
            Metric.PAGE_LOADS,
            Metric.TIME_ON_PAGE,
            Metric.INITIATED_PAGE_LOADS,
        ),
        months=STUDY_MONTHS,
    )
    assert len(plan) == 45 * 2 * 3 * 6
    # Pay the universe build once, outside every timing below; each
    # scoring run then drops the process-level generator memo so all
    # three start from identical cold per-country state.
    build_universe(config.resolved_universe())
    fingerprint = config.fingerprint()

    def cold_engine(executor):
        _GENERATORS.pop(fingerprint, None)
        return GenerationEngine(config, executor=executor)

    # Parallel first, so workers fork from a parent without warmed
    # per-country generator state — the same work the serial runs do.
    parallel_t, parallel_lists = _timed(
        lambda: cold_engine(ParallelExecutor(jobs=WORKERS)).run(plan)
    )

    perslice_t, perslice_lists = _timed(
        lambda: cold_engine(SerialExecutor(batch=False)).run(plan)
    )

    batched_engine = cold_engine(SerialExecutor())
    batched_t, batched_lists = _timed(
        lambda: benchmark.pedantic(
            batched_engine.run, args=(plan,), rounds=1, iterations=1
        )
    )

    assert set(perslice_lists) == set(batched_lists) == set(parallel_lists)
    for breakdown, ranked in perslice_lists.items():
        assert ranked.sites == batched_lists[breakdown].sites, breakdown
        assert ranked.sites == parallel_lists[breakdown].sites, breakdown

    # Cache: cold writes every slice, warm serves all of them back.  Both
    # runs reuse the warmed batched generator state, so the delta isolates
    # "read cached text" vs "re-score + write".
    cache = SliceCache(tmp_path / "slices")
    cold_t, cold_lists = _timed(
        lambda: GenerationEngine(
            config, cache=cache, generator=batched_engine.generator
        ).run(plan)
    )
    assert cache.stats.writes == len(plan)

    warm_engine = GenerationEngine(config, cache=cache)
    warm_t, warm_lists = _timed(lambda: warm_engine.run(plan))
    assert cache.stats.hits == len(plan)
    for breakdown, ranked in perslice_lists.items():
        assert ranked.sites == cold_lists[breakdown].sites
        assert ranked.sites == warm_lists[breakdown].sites

    batch_speedup = perslice_t / batched_t if batched_t > 0 else float("inf")
    parallel_speedup = (
        perslice_t / parallel_t if parallel_t > 0 else float("inf")
    )
    cache_speedup = cold_t / warm_t if warm_t > 0 else float("inf")
    cpus = os.cpu_count() or 1
    parallel_note = (
        "ok" if parallel_speedup >= 2.0
        else f"not asserted: only {cpus} CPU(s)"
    )
    print_comparison(
        [
            ("per-slice serial (s)", "-", f"{perslice_t:.2f}",
             f"{len(plan)} slices, small universe"),
            ("batched serial (s)", "-", f"{batched_t:.2f}",
             "one matrix pass per country grid"),
            ("batched speedup", f">= {MIN_BATCH_SPEEDUP:.1f}",
             f"{batch_speedup:.2f}x", "asserted, byte-identical"),
            ("batched parallel (s)", "-", f"{parallel_t:.2f}",
             f"{WORKERS} workers, {cpus} CPU(s)"),
            ("parallel speedup", ">= 2.0", f"{parallel_speedup:.2f}x",
             parallel_note),
            ("cold cache (s)", "-", f"{cold_t:.2f}", "score + write-back"),
            ("warm cache (s)", "-", f"{warm_t:.2f}",
             "reads only; no universe build"),
            ("cold -> warm speedup", "> 1.0", f"{cache_speedup:.2f}x", ""),
        ],
        "Generation engine — full grid: per-slice vs batched vs parallel",
    )

    write_bench_json("engine", {
        "grid": {
            "countries": 45, "platforms": 2, "metrics": 3, "months": 6,
            "slices": len(plan), "list_size": config.list_size,
        },
        "per_slice_serial_s": round(perslice_t, 4),
        "batched_serial_s": round(batched_t, 4),
        "batched_parallel_s": round(parallel_t, 4),
        "batched_speedup": round(batch_speedup, 2),
        "parallel_speedup": round(parallel_speedup, 2),
        "cold_cache_s": round(cold_t, 4),
        "warm_cache_s": round(warm_t, 4),
        "cache_speedup": round(cache_speedup, 2),
        "min_batched_speedup": MIN_BATCH_SPEEDUP,
        "workers": WORKERS,
        "cpus": cpus,
    })

    assert warm_t < cold_t, "warm cache should beat regeneration"
    assert batch_speedup >= MIN_BATCH_SPEEDUP, (
        f"expected >= {MIN_BATCH_SPEEDUP}x batched speedup on the full "
        f"grid, got {batch_speedup:.2f}x"
    )
    if cpus >= WORKERS:
        assert parallel_speedup >= 2.0, (
            f"expected >= 2x speedup at {WORKERS} workers, "
            f"got {parallel_speedup:.2f}x"
        )
