"""Generation-engine benchmark: serial vs parallel, cold vs warm cache.

Times the full study grid (45 countries × 2 platforms × 2 metrics,
February 2022) through the plan/execute engine on the *small* universe,
so the bench runs anywhere; the mechanics being measured — per-country
work-unit sharding, fork-inherited universe, content-addressed slice
cache — are scale-independent.  The ≥2× parallel-speedup assertion only
fires on machines with at least 4 CPUs (a 1-core container can't
physically exhibit it); the byte-identical and cache assertions always
run.
"""

from __future__ import annotations

import os
import time

from repro.engine import (
    GenerationEngine,
    ParallelExecutor,
    SliceCache,
    SlicePlan,
)
from repro.synth import GeneratorConfig, TelemetryGenerator
from repro.synth.universe import build_universe

from _bench_utils import print_comparison

WORKERS = 4


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_engine_full_grid(benchmark, tmp_path):
    config = GeneratorConfig.small()
    plan = SlicePlan.from_grid()
    # Pay the universe build once, outside every timing below: serial,
    # parallel (workers fork after this point and inherit it) and cold
    # cache all measure scoring, not construction.
    build_universe(config.resolved_universe())

    # Parallel first, so workers fork from a parent without warmed
    # per-country generator state — the same work serial has to do.
    parallel_t, parallel_lists = _timed(
        lambda: GenerationEngine(
            config, executor=ParallelExecutor(jobs=WORKERS)
        ).run(plan)
    )

    serial_engine = GenerationEngine(config, generator=TelemetryGenerator(config))
    serial_t, serial_lists = _timed(
        lambda: benchmark.pedantic(
            serial_engine.run, args=(plan,), rounds=1, iterations=1
        )
    )

    assert set(serial_lists) == set(parallel_lists)
    for breakdown, ranked in serial_lists.items():
        assert ranked.sites == parallel_lists[breakdown].sites, breakdown

    # Cache: cold writes every slice, warm serves all of them back.  Both
    # runs reuse the warmed serial generator state, so the delta isolates
    # "read cached text" vs "re-score + write".
    cache = SliceCache(tmp_path / "slices")
    cold_t, cold_lists = _timed(
        lambda: GenerationEngine(
            config, cache=cache, generator=serial_engine.generator
        ).run(plan)
    )
    assert cache.stats.writes == len(plan)

    warm_engine = GenerationEngine(config, cache=cache)
    warm_t, warm_lists = _timed(lambda: warm_engine.run(plan))
    assert cache.stats.hits == len(plan)
    for breakdown, ranked in serial_lists.items():
        assert ranked.sites == cold_lists[breakdown].sites
        assert ranked.sites == warm_lists[breakdown].sites

    speedup = serial_t / parallel_t if parallel_t > 0 else float("inf")
    cache_speedup = cold_t / warm_t if warm_t > 0 else float("inf")
    cpus = os.cpu_count() or 1
    speedup_note = (
        "ok" if speedup >= 2.0 else f"not asserted: only {cpus} CPU(s)"
    )
    print_comparison(
        [
            ("full grid serial (s)", "-", f"{serial_t:.2f}",
             f"{len(plan)} slices, small universe"),
            ("full grid parallel (s)", "-", f"{parallel_t:.2f}",
             f"{WORKERS} workers, {cpus} CPU(s)"),
            ("parallel speedup", ">= 2.0", f"{speedup:.2f}x", speedup_note),
            ("cold cache (s)", "-", f"{cold_t:.2f}", "score + write-back"),
            ("warm cache (s)", "-", f"{warm_t:.2f}",
             "reads only; no universe build"),
            ("cold -> warm speedup", "> 1.0", f"{cache_speedup:.2f}x", ""),
        ],
        "Generation engine — full grid, serial vs parallel, cold vs warm cache",
    )

    assert warm_t < cold_t, "warm cache should beat regeneration"
    if cpus >= WORKERS:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at {WORKERS} workers, got {speedup:.2f}x"
        )
