"""Helpers shared by the benchmark files."""

import json
from pathlib import Path

from repro.report import render_comparison


def print_comparison(rows, title):
    """Render a paper-vs-measured table to stdout."""
    print()
    print(render_comparison(rows, title))


def write_bench_json(name, payload):
    """Persist a machine-readable benchmark result as ``BENCH_<name>.json``.

    Written to the current working directory (the repo root under CI),
    where the workflow uploads every ``BENCH_*.json`` as an artifact.
    """
    path = Path(f"BENCH_{name}.json")
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {path.resolve()}")
    return path
