"""Helpers shared by the benchmark files."""

from repro.report import render_comparison


def print_comparison(rows, title):
    """Render a paper-vs-measured table to stdout."""
    print()
    print(render_comparison(rows, title))
