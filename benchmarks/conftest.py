"""Shared fixtures for the benchmark harness.

Benchmarks run on the *full-scale* universe (~1.1M sites, 10K-site
lists) — the configuration whose noise model is calibrated against the
paper's numbers.  The universe builds once per session (~25 s) and each
dataset slice is generated lazily by the benchmarks that need it.

Every benchmark prints a ``paper vs measured`` table; run with ``-s`` to
see them, e.g.::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.core import Metric, Platform, REFERENCE_MONTH, STUDY_MONTHS
from repro.synth import GeneratorConfig, TelemetryGenerator

#: Country subset used by the month-sweep benchmarks (generating all 45
#: countries × 6 months × metrics would dominate wall-clock without
#: changing the medians much).
TEMPORAL_COUNTRIES = (
    "US", "BR", "JP", "FR", "NG", "KR", "IN", "MX", "DE", "AU",
    "EG", "TH", "PL", "CL", "ZA", "TW",
)


@pytest.fixture(scope="session")
def generator() -> TelemetryGenerator:
    return TelemetryGenerator(GeneratorConfig())


@pytest.fixture(scope="session")
def labels(generator) -> dict[str, str]:
    return generator.site_categories()


@pytest.fixture(scope="session")
def feb_dataset(generator):
    """Both platforms and metrics, February 2022, all 45 countries."""
    return generator.generate(
        platforms=Platform.studied(),
        metrics=Metric.studied(),
        months=(REFERENCE_MONTH,),
    )


@pytest.fixture(scope="session")
def monthly_dataset(generator):
    """Windows over the six study months, both metrics, country subset."""
    return generator.generate(
        countries=TEMPORAL_COUNTRIES,
        platforms=(Platform.WINDOWS,),
        metrics=Metric.studied(),
        months=STUDY_MONTHS,
    )
