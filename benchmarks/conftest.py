"""Shared fixtures for the benchmark harness.

Benchmarks run on the *full-scale* universe (~1.1M sites, 10K-site
lists) — the configuration whose noise model is calibrated against the
paper's numbers.  Dataset fixtures route through the generation engine
(:mod:`repro.engine`) with a persistent content-addressed slice cache,
so the full-grid fixtures amortize across sessions: the first session
pays the ~25 s universe build plus scoring, later sessions read the
cached slices and skip both.  Delete the cache directory (or point
``REPRO_SLICE_CACHE`` elsewhere) to force regeneration.

Every benchmark prints a ``paper vs measured`` table; run with ``-s`` to
see them, e.g.::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import Metric, Platform, REFERENCE_MONTH, STUDY_MONTHS
from repro.engine import GenerationEngine, SliceCache
from repro.synth import GeneratorConfig, TelemetryGenerator

#: Country subset used by the month-sweep benchmarks (generating all 45
#: countries × 6 months × metrics would dominate wall-clock without
#: changing the medians much).
TEMPORAL_COUNTRIES = (
    "US", "BR", "JP", "FR", "NG", "KR", "IN", "MX", "DE", "AU",
    "EG", "TH", "PL", "CL", "ZA", "TW",
)

#: Slice cache shared by all benchmark sessions (content-addressed by
#: config fingerprint, so editing generator knobs never serves stale
#: slices — it just starts a new cache line).
SLICE_CACHE_DIR = os.environ.get("REPRO_SLICE_CACHE") or str(
    Path(__file__).resolve().parent / ".slice_cache"
)


@pytest.fixture(scope="session")
def engine() -> GenerationEngine:
    return GenerationEngine(GeneratorConfig(), cache=SliceCache(SLICE_CACHE_DIR))


@pytest.fixture(scope="session")
def generator(engine) -> TelemetryGenerator:
    """The engine's generator — requesting it triggers the universe build."""
    return engine.generator


@pytest.fixture(scope="session")
def labels(generator) -> dict[str, str]:
    return generator.site_categories()


@pytest.fixture(scope="session")
def feb_dataset(engine):
    """Both platforms and metrics, February 2022, all 45 countries."""
    return engine.generate(
        platforms=Platform.studied(),
        metrics=Metric.studied(),
        months=(REFERENCE_MONTH,),
    )


@pytest.fixture(scope="session")
def monthly_dataset(engine):
    """Windows over the six study months, both metrics, country subset."""
    return engine.generate(
        countries=TEMPORAL_COUNTRIES,
        platforms=(Platform.WINDOWS,),
        metrics=Metric.studied(),
        months=STUDY_MONTHS,
    )
