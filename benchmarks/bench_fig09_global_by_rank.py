"""Figures 9 & 17 — globally popular sites by rank bucket.

Paper: global sites predominate in the top 10 (median 6-7/10), parity
arrives around rank 20, and 65-73 % of sites at ranks 101-200 are
nationally popular.  Figure 17 repeats the analysis for time on page.
"""

from repro.analysis.endemicity import score_endemicity
from repro.analysis.popularity_mix import global_share_by_rank, national_majority_rank
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.report import render_series

from _bench_utils import print_comparison

BUCKETS = ((1, 10), (11, 20), (21, 50), (51, 100), (101, 200), (201, 500),
           (501, 1_000))


def _shares_for(dataset, metric):
    lists = dataset.select(Platform.WINDOWS, metric, REFERENCE_MONTH)
    endemicity = score_endemicity(lists, eligible_rank=1_000)
    return global_share_by_rank(lists, endemicity, buckets=BUCKETS)


def test_fig9_global_share_by_rank(benchmark, feb_dataset):
    shares = benchmark.pedantic(
        _shares_for, args=(feb_dataset, Metric.PAGE_LOADS), rounds=1, iterations=1
    )
    medians = [row.stats.median for row in shares]
    print(render_series(
        {"globally-popular share": medians},
        x_labels=[f"{a}-{b}" for a, b in BUCKETS],
        title="\nFigure 9 — share of globally popular sites per rank bucket",
    ))
    top10 = shares[0]
    r101_200 = next(r for r in shares if r.bucket == (101, 200))
    parity = national_majority_rank(shares)
    print_comparison(
        [
            ("global sites in top-10 (median)", "6-7 / 10",
             f"{top10.stats.median * 10:.1f} / 10", ""),
            ("national share at ranks 101-200", "0.65-0.73",
             1 - r101_200.stats.median, ""),
            ("parity bucket", "top 20", str(parity), "'starting at top 20'"),
        ],
        "Figure 9 — anchors",
    )

    # Global sites predominate at the very head...
    assert top10.stats.median >= 0.5
    # ...national sites dominate by the 101-200 bucket...
    assert 1 - r101_200.stats.median >= 0.55
    # ...and the share declines strongly overall.
    assert medians[0] - medians[-1] > 0.4
    assert parity is not None and parity[0] <= 101


def test_fig17_time_on_page_variant(benchmark, feb_dataset):
    shares = benchmark.pedantic(
        _shares_for, args=(feb_dataset, Metric.TIME_ON_PAGE), rounds=1, iterations=1
    )
    medians = [row.stats.median for row in shares]
    print_comparison(
        [
            ("top-10 global share (time)", ">=0.5", medians[0],
             "'similar findings ... ranked by time spent'"),
            ("rank 101-200 national share (time)", ">=0.55", 1 - medians[4], ""),
        ],
        "Figure 17 — time-on-page variant",
    )
    assert medians[0] >= 0.5
    assert 1 - medians[4] >= 0.55
    assert medians[0] > medians[-1]
