"""Figures 10 & 18-20 — traffic-weighted RBO country similarity heatmaps.

Computes the full 45×45 weighted-RBO matrix for all four
(platform, metric) combinations and checks the geographic structure the
paper describes: the North-Africa block, the Spanish-America block, the
cross-continental anglosphere, South Korea (and, on Android, Japan) as
outliers, and Android-time similarities being the lowest overall.
"""

import numpy as np

from repro.analysis.similarity import rbo_matrix_for
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.report import render_heatmap

from _bench_utils import print_comparison


def test_fig10_windows_loads_heatmap(benchmark, feb_dataset):
    matrix = benchmark.pedantic(
        rbo_matrix_for,
        args=(feb_dataset, Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH),
        rounds=1, iterations=1,
    )
    subset = ["DZ", "EG", "MA", "TN", "MX", "AR", "CL", "CO", "BR",
              "US", "GB", "CA", "AU", "NZ", "FR", "BE", "NL", "TW", "HK",
              "JP", "KR"]
    idx = [matrix.countries.index(c) for c in subset]
    print()
    print(render_heatmap(
        subset, matrix.values[np.ix_(idx, idx)],
        title="Figure 10 — traffic-weighted RBO (Windows page loads, subset)",
    ))
    print_comparison(
        [
            ("North Africa pair (DZ-MA)", "high", matrix.pair("DZ", "MA"),
             f"vs DZ-JP {matrix.pair('DZ', 'JP'):.3f}"),
            ("Anglosphere pair (US-AU)", "high", matrix.pair("US", "AU"),
             f"vs US-KR {matrix.pair('US', 'KR'):.3f}"),
            ("KR mean similarity", "lowest", matrix.mean_similarity("KR"),
             "Naver-led outlier"),
        ],
        "Figure 10 — structure checks",
    )

    assert matrix.pair("DZ", "MA") > matrix.pair("DZ", "JP")
    assert matrix.pair("MX", "AR") > matrix.pair("MX", "KR")
    assert matrix.pair("US", "AU") > matrix.pair("US", "JP")
    assert matrix.pair("TW", "HK") > matrix.pair("TW", "DE")
    # South Korea is the most dissimilar country on Windows page loads.
    means = {c: matrix.mean_similarity(c) for c in matrix.countries}
    assert means["KR"] == min(means.values())


def test_fig18_20_other_breakdowns(benchmark, feb_dataset):
    def compute():
        return {
            (platform, metric): rbo_matrix_for(
                feb_dataset, platform, metric, REFERENCE_MONTH
            )
            for platform in Platform.studied()
            for metric in Metric.studied()
        }

    matrices = benchmark.pedantic(compute, rounds=1, iterations=1)
    overall = {
        key: float(np.mean(m.values[~np.eye(len(m.countries), dtype=bool)]))
        for key, m in matrices.items()
    }
    print_comparison(
        [
            ("mean similarity, Windows loads", "highest",
             overall[(Platform.WINDOWS, Metric.PAGE_LOADS)], ""),
            ("mean similarity, Android time", "lowest",
             overall[(Platform.ANDROID, Metric.TIME_ON_PAGE)],
             "'much lower than for other pairs'"),
        ],
        "Figures 18-20 — breakdown comparison",
    )
    # Figure 20's caption: Android time similarities are the lowest.
    assert overall[(Platform.ANDROID, Metric.TIME_ON_PAGE)] == min(overall.values())
    # Korea is the page-loads outlier on both platforms (Figures 10/19);
    # on the time metric its lists share the global streaming head, so
    # the paper only requires it stay below the median there.
    for (platform, metric), matrix in matrices.items():
        means = {c: matrix.mean_similarity(c) for c in matrix.countries}
        ranked = sorted(means, key=means.get)
        if metric is Metric.PAGE_LOADS:
            assert "KR" in ranked[:5], (platform, metric)
        else:
            assert ranked.index("KR") < len(ranked) // 2, (platform, metric)
