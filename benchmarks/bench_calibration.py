"""Calibration gate — every cheap paper anchor at full scale.

Runs the world self-check (`repro.synth.calibration`) on the
paper-calibrated full configuration.  If a profile or roster edit
drifts any anchor out of band, this is the benchmark that names it.
"""

from repro.synth.calibration import calibration_report

from _bench_utils import print_comparison


def test_calibration_anchors(benchmark, generator):
    report = benchmark.pedantic(
        calibration_report, args=(generator,), rounds=1, iterations=1
    )
    print_comparison(
        [(c.name, c.paper, c.measured,
          "ok" if c.ok else f"OFF band [{c.lo:.2f}, {c.hi:.2f}]")
         for c in report.checks],
        "Calibration gate — paper anchors at full scale",
    )
    assert report.ok, "\n" + str(report)
