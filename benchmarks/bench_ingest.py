"""Monthly refresh cost: incremental ingest vs full regenerate+report.

The workload models the arrival of one new month of telemetry over a
dataset that already holds five: six countries, both platforms, both
metrics under the small calibrated universe.  Before ``repro ingest``
the refresh procedure was *regenerate everything and re-report*:
rebuild all six months from scratch, save them, and run a cold
``report`` into an empty artifact store.  After it, the refresh is one
``ingest_months`` call — generate only the new month's slices (the
month walk is append-stable) and append them under the dataset's codec.
At that point the new version is live: serving follows the manifest,
old versions stay addressable via ``as_of``, and artifacts refresh
lazily through the delta path.

The ≥5× assertion at the bottom gates ingest against the full
regenerate+report it replaces.  The delta ``report`` that refreshes the
figure artifacts is measured too (reported, not gated — its wall time
is dominated by the all-months readers and their re-run dependents,
chiefly the pure-Python ``platforms`` Fisher sweep that is its own
ROADMAP item): what *is* asserted is that it executes a strict subset
of the cold run's tasks and lands identical results.  Results go to
``BENCH_ingest.json`` for the CI artifact upload.
"""

import time

from repro.core import Metric, Month, Platform
from repro.engine import GenerationEngine
from repro.export.io import load_dataset, save_dataset
from repro.pipeline import run_pipeline
from repro.store import ingest_months
from repro.synth import GeneratorConfig

from _bench_utils import print_comparison, write_bench_json

COUNTRIES = ("US", "DE", "IN", "BR", "JP", "FR")
BASE_MONTHS = tuple(Month(2021, m) for m in range(7, 12))
NEW_MONTH = Month(2021, 12)
PIN = BASE_MONTHS[-1]
CONFIG = GeneratorConfig.small()
MIN_INGEST_SPEEDUP = 5.0


def test_incremental_ingest_speedup(benchmark, tmp_path_factory):
    out = tmp_path_factory.mktemp("ingest_bench")
    grid = dict(
        countries=COUNTRIES,
        platforms=Platform.studied(),
        metrics=Metric.studied(),
    )

    # Last month's state — the starting point both paths share, so its
    # cost (base generation + the cold report that warmed the store) is
    # not part of either measurement.
    base_root = out / "rolling"
    base_store = out / "rolling-store"
    base = GenerationEngine(CONFIG).generate(months=BASE_MONTHS, **grid)
    save_dataset(base, base_root, format="columnar")
    warmup = run_pipeline(
        load_dataset(base_root), store=base_store, config=CONFIG, month=PIN
    )
    assert warmup.ok

    # Incremental: append the new month.  The dataset is servable at
    # version 2 the moment this returns.
    start = time.perf_counter()
    report = ingest_months(base_root, [NEW_MONTH], config=CONFIG)
    ingest_seconds = time.perf_counter() - start
    assert report.changed and report.version == 2

    # Artifact refresh: delta-report on the warm store.
    start = time.perf_counter()
    delta = run_pipeline(
        load_dataset(base_root), store=base_store, config=CONFIG, month=PIN
    )
    delta_report_seconds = time.perf_counter() - start
    assert delta.ok

    # Full: regenerate all six months into a fresh root, cold report.
    full_root = out / "full"
    full_store = out / "full-store"
    start = time.perf_counter()
    full = GenerationEngine(CONFIG).generate(
        months=BASE_MONTHS + (NEW_MONTH,), **grid
    )
    save_dataset(full, full_root, format="columnar")
    regenerate_seconds = time.perf_counter() - start
    start = time.perf_counter()
    cold = run_pipeline(
        load_dataset(full_root), store=full_store, config=CONFIG, month=PIN
    )
    cold_report_seconds = time.perf_counter() - start
    assert cold.ok
    full_seconds = regenerate_seconds + cold_report_seconds

    # Same artifacts, strictly less work: the delta executed a proper
    # subset of the cold run and every skipped task came from the store.
    assert delta.results == cold.results
    assert 0 < delta.executed < cold.executed
    assert delta.executed + delta.cached == cold.executed

    # The steady-state fast path: re-ingesting a present month is a
    # strict no-op (no generation, no version bump), cheap enough to
    # run on every scheduler tick.
    def reingest():
        noop = ingest_months(base_root, [NEW_MONTH], config=CONFIG)
        assert not noop.changed and noop.version == 2
        return noop

    benchmark.pedantic(reingest, rounds=3, iterations=1)

    ingest_speedup = full_seconds / ingest_seconds
    refresh_seconds = ingest_seconds + delta_report_seconds
    refresh_speedup = full_seconds / refresh_seconds
    slices_added = report.slices_added
    slices_full = len(full)
    print_comparison(
        [
            ("grid", "6 cty x 2 x 2", slices_full, "slices at 6 months"),
            ("ingest s", "", round(ingest_seconds, 3),
             f"{slices_added} new slices, servable"),
            ("delta report s", "", round(delta_report_seconds, 3),
             f"{delta.executed} tasks ({delta.cached} cached)"),
            ("regenerate s", "", round(regenerate_seconds, 3),
             f"all {slices_full} slices"),
            ("cold report s", "", round(cold_report_seconds, 3),
             f"{cold.executed} tasks"),
            ("full total s", "", round(full_seconds, 3),
             "the pre-ingest refresh"),
            ("ingest speedup", ">= 5x", round(ingest_speedup, 1),
             "asserted below"),
            ("with delta report", "", round(refresh_speedup, 1),
             "end-to-end incl. artifacts"),
        ],
        "Monthly refresh — incremental ingest vs full regenerate",
    )
    write_bench_json("ingest", {
        "workload": "one_month_refresh",
        "countries": list(COUNTRIES),
        "base_months": [str(m) for m in BASE_MONTHS],
        "new_month": str(NEW_MONTH),
        "slices_added": slices_added,
        "slices_full": slices_full,
        "ingest_seconds": ingest_seconds,
        "delta_report_seconds": delta_report_seconds,
        "delta_executed": delta.executed,
        "delta_cached": delta.cached,
        "regenerate_seconds": regenerate_seconds,
        "cold_report_seconds": cold_report_seconds,
        "cold_executed": cold.executed,
        "full_seconds": full_seconds,
        "ingest_speedup": ingest_speedup,
        "refresh_seconds": refresh_seconds,
        "refresh_speedup": refresh_speedup,
    })

    assert ingest_speedup >= MIN_INGEST_SPEEDUP, (
        f"ingest only {ingest_speedup:.1f}x faster than the full refresh "
        f"({full_seconds:.2f}s regenerate+report vs "
        f"{ingest_seconds:.2f}s ingest)"
    )
