"""Figures 5 & 16 / Section 4.4 — loads-leaning vs time-leaning sites.

Classifies sites by their loads-share / time-share ratio (top and
bottom 20 %) and compares the category composition of the classes, on
desktop (Figure 5) and mobile (Figure 16).
"""

from repro.analysis.metrics_compare import (
    LOADS_LEANING,
    TIME_LEANING,
    leaning_composition,
)
from repro.core import Platform, REFERENCE_MONTH

from _bench_utils import print_comparison

COUNTRIES = ("US", "BR", "JP", "FR", "NG", "KR", "IN", "MX", "DE", "AU",
             "EG", "TH")


def test_fig5_desktop_leaning(benchmark, feb_dataset, labels):
    composition = benchmark.pedantic(
        leaning_composition,
        args=(feb_dataset, labels, Platform.WINDOWS, REFERENCE_MONTH),
        kwargs={"countries": COUNTRIES},
        rounds=1, iterations=1,
    )
    loads_over = composition.overrepresented_in(LOADS_LEANING, min_share=0.01)
    time_over = composition.overrepresented_in(TIME_LEANING, min_share=0.01)

    print_comparison(
        [
            ("loads-leaning overrepresented", "Ecommerce/EduInst/Finance",
             ", ".join(loads_over[:5]), "Figure 5"),
            ("time-leaning overrepresented", "VideoStreaming/Movies/News",
             ", ".join(time_over[:5]), ""),
        ],
        "Figure 5 — category mix of metric-leaning sites (desktop)",
    )

    # Paper: E-commerce, Educational Institutions and Economy & Finance
    # disproportionately loads-leaning.
    assert sum(1 for c in ("Ecommerce", "Educational Institutions",
                           "Economy & Finance") if c in loads_over) >= 2
    # Video Streaming, Movies & Home Video, News & Media time-leaning.
    assert sum(1 for c in ("Video Streaming", "Movies & Home Video",
                           "News & Media", "Television") if c in time_over) >= 2


def test_fig16_mobile_leaning(benchmark, feb_dataset, labels):
    composition = benchmark.pedantic(
        leaning_composition,
        args=(feb_dataset, labels, Platform.ANDROID, REFERENCE_MONTH),
        kwargs={"countries": COUNTRIES},
        rounds=1, iterations=1,
    )
    loads_over = composition.overrepresented_in(LOADS_LEANING, min_share=0.01)
    time_over = composition.overrepresented_in(TIME_LEANING, min_share=0.01)
    print_comparison(
        [
            ("mobile loads-leaning", "commerce-flavoured",
             ", ".join(loads_over[:5]), "Figure 16"),
            ("mobile time-leaning", "streaming-flavoured",
             ", ".join(time_over[:5]), ""),
        ],
        "Figure 16 — category mix of metric-leaning sites (mobile)",
    )
    # "These results are almost all consistent on mobile."
    assert sum(1 for c in ("Ecommerce", "Educational Institutions",
                           "Economy & Finance", "Auctions & Marketplaces")
               if c in loads_over) >= 2
    assert sum(1 for c in ("Video Streaming", "Movies & Home Video",
                           "News & Media", "Television", "Cartoons & Anime")
               if c in time_over) >= 2
