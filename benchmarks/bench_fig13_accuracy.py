"""Figure 13 / Appendix B — category-API accuracy analysis.

Runs the full validation workflow (label top sites with the simulated
API, sample 10 per category, manually review, drop failing categories)
over the union of all February top-10K sites and checks the paper's
observations: the junk categories fail, Search Engines and Social
Networks fail despite being core use cases, and the bulk of the
taxonomy passes.
"""

from repro.categories.api import APIConfig, DomainIntelligenceAPI
from repro.categories.validation import clean_labels, validate_categories
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.report import render_table
from repro.world.categories_data import DROPPED_RAW_CATEGORIES

from _bench_utils import print_comparison


def test_fig13_accuracy_analysis(benchmark, feb_dataset, labels):
    sites: set[str] = set()
    for country in ("US", "BR", "JP", "FR", "NG", "KR", "IN", "MX", "DE",
                    "EG", "TH", "AU", "CL", "PL", "TW"):
        for platform in Platform.studied():
            ranked = feb_dataset.get(country, platform, Metric.PAGE_LOADS,
                                     REFERENCE_MONTH)
            sites.update(ranked.sites)
    api = DomainIntelligenceAPI(labels, APIConfig(seed=31))
    api_labels = api.bulk_lookup(sorted(sites))

    report = benchmark.pedantic(
        validate_categories, args=(api, api_labels), kwargs={"seed": 37},
        rounds=1, iterations=1,
    )

    print()
    print(render_table(
        ("category", "yes", "maybe", "no", "verdict"),
        [(a.category, a.yes, a.maybe, a.no,
          "keep" if a.passes() else "DROP")
         for a in report.accuracies
         if a.category in ("Search Engines", "Social Networks", "Business",
                           "Pornography", "Technology", "Content Servers",
                           "Parked Domains", "News & Media")],
        title="Figure 13 — manual accuracy review (selected rows)",
    ))
    junk_reviewed = [a for a in report.accuracies
                     if a.category in DROPPED_RAW_CATEGORIES]
    print_comparison(
        [
            ("curated categories fail", "Search Engines + Social Networks",
             ", ".join(c for c in ("Search Engines", "Social Networks")
                       if c in report.dropped), "Section 3.2"),
            ("junk raw categories dropped", len(junk_reviewed),
             sum(1 for a in junk_reviewed if not a.passes()),
             "19 excluded categories"),
            ("categories kept", "most of the taxonomy", len(report.kept), ""),
        ],
        "Figure 13 — validation outcome",
    )

    assert "Search Engines" in report.dropped
    assert "Social Networks" in report.dropped
    for acc in junk_reviewed:
        assert not acc.passes(), acc.category
    for category in ("Business", "Pornography", "Technology", "News & Media"):
        assert category in report.kept, category

    # The cleaned labelling folds all failures into Unknown and restores
    # the curated sets from manual verification.
    curated = {
        site: category for site, category in labels.items()
        if category in ("Search Engines", "Social Networks") and site in sites
    }
    cleaned = clean_labels(api_labels, report, curated_truth=curated)
    assert not set(cleaned.values()) & set(DROPPED_RAW_CATEGORIES)
    search_sites = {s for s, c in cleaned.items() if c == "Search Engines"}
    assert search_sites == {s for s, c in curated.items() if c == "Search Engines"}
