"""Section 4.5 — temporal stability of website popularity.

Regenerates the month-to-month similarity table (intersection and
Spearman per rank bucket), the September-anchored decay series, the
December anomaly, and the December category drift.
"""

from repro.analysis.temporal import (
    adjacent_month_series,
    anchored_series,
    category_share_over_months,
    december_anomaly,
)
from repro.core import Metric, Month, Platform
from repro.report import render_series

from _bench_utils import print_comparison

DEC = Month(2021, 12)
JAN = Month(2022, 1)
FEB = Month(2022, 2)


def test_sec45_adjacent_month_similarity(benchmark, monthly_dataset):
    def compute():
        return {
            bucket: adjacent_month_series(
                monthly_dataset, Platform.WINDOWS, Metric.PAGE_LOADS, bucket
            )
            for bucket in (20, 100, 10_000)
        }

    series = benchmark.pedantic(compute, rounds=1, iterations=1)
    non_december = {
        bucket: [s for s in rows
                 if not (s.month_a.is_december or s.month_b.is_december)]
        for bucket, rows in series.items()
    }
    top20 = non_december[20]
    top10k = non_december[10_000]

    print_comparison(
        [
            ("top-20 adjacent intersection", "0.85-0.95",
             f"{min(s.intersection.median for s in top20):.2f}-"
             f"{max(s.intersection.median for s in top20):.2f}",
             "excluding December"),
            ("top-10K adjacent intersection", "0.80-0.90",
             f"{min(s.intersection.median for s in top10k):.2f}-"
             f"{max(s.intersection.median for s in top10k):.2f}", ""),
            ("top-10K adjacent Spearman", "0.85-0.95",
             f"{min(s.spearman.median for s in top10k):.2f}-"
             f"{max(s.spearman.median for s in top10k):.2f}", ""),
        ],
        "Section 4.5 — adjacent-month similarity",
    )

    for s in top20:
        assert 0.80 <= s.intersection.median <= 1.0
    for s in top10k:
        assert 0.78 <= s.intersection.median <= 0.95
        assert s.spearman.median >= 0.80
    # January and February are the most similar adjacent pair.
    all_pairs = series[10_000]
    jan_feb = next(s for s in all_pairs if s.month_a == JAN and s.month_b == FEB)
    assert jan_feb.intersection.median == max(
        s.intersection.median for s in all_pairs
    )


def test_sec45_december_anomaly(benchmark, monthly_dataset):
    anomaly = benchmark.pedantic(
        december_anomaly,
        args=(monthly_dataset, Platform.WINDOWS, Metric.PAGE_LOADS),
        rounds=1, iterations=1,
    )
    print_comparison(
        [
            ("December-adjacent intersection", "0.35-0.85",
             anomaly.december_intersection, "top-10K"),
            ("other adjacent intersection", "0.80-0.90",
             anomaly.other_intersection, ""),
        ],
        "Section 4.5 — the December anomaly",
    )
    assert anomaly.is_anomalous
    assert 0.35 <= anomaly.december_intersection <= 0.88
    assert anomaly.gap > 0.02


def test_sec45_september_anchored_decay(benchmark, monthly_dataset):
    series = benchmark.pedantic(
        anchored_series,
        args=(monthly_dataset, Platform.WINDOWS, Metric.PAGE_LOADS, 10_000),
        rounds=1, iterations=1,
    )
    values = [s.intersection.median for s in series]
    print(render_series(
        {"sept vs later months": values},
        x_labels=[str(s.month_b) for s in series],
        title="\nSection 4.5 — similarity to September 2021 (top-10K)",
    ))
    # Similarity decays with distance (ignoring the December transient).
    non_dec = [s.intersection.median for s in series if not s.month_b.is_december]
    assert non_dec[0] > non_dec[-1]


def test_sec45_category_drift(benchmark, monthly_dataset, labels):
    def compute():
        return {
            category: category_share_over_months(
                monthly_dataset, labels, Platform.WINDOWS,
                Metric.TIME_ON_PAGE, category,
            )
            for category in ("Ecommerce", "Educational Institutions", "Technology")
        }

    shares = benchmark.pedantic(compute, rounds=1, iterations=1)
    ecommerce = shares["Ecommerce"]
    education = shares["Educational Institutions"]
    print_comparison(
        [
            ("Ecommerce Nov -> Dec", "5.0% -> 6.1%",
             f"{ecommerce[Month(2021, 11)] * 100:.1f}% -> {ecommerce[DEC] * 100:.1f}%",
             "desktop top-10K time"),
            ("Education Nov -> Dec", "8.4% -> 6.8%",
             f"{education[Month(2021, 11)] * 100:.1f}% -> {education[DEC] * 100:.1f}%",
             ""),
        ],
        "Section 4.5 — December category drift",
    )
    assert ecommerce[DEC] > ecommerce[Month(2021, 11)]
    assert ecommerce[DEC] > ecommerce[JAN]
    assert education[DEC] < education[Month(2021, 11)]
    assert education[DEC] < education[JAN]
