"""Ablation — traffic-weighted RBO vs classic geometric RBO (Section 5.3.1).

The paper replaces RBO's geometric weights with the measured traffic
distribution.  This ablation quantifies what that buys: with traffic
weights, the #1 slot dominates (Naver makes South Korea an extreme
outlier); with geometric weights at standard persistence, the head
matters far less.
"""

import numpy as np

from repro.analysis.similarity import weighted_rbo_matrix, SimilarityMatrix
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.stats.rbo import rbo

from _bench_utils import print_comparison

SUBSET = ("US", "GB", "CA", "AU", "FR", "BE", "DZ", "MA", "MX", "AR",
          "JP", "KR", "TW", "HK", "BR", "DE")
DEPTH = 2_000


def _geometric_matrix(lists, p=0.999):
    countries = tuple(sorted(lists))
    n = len(countries)
    values = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            score = rbo(lists[countries[i]], lists[countries[j]], p=p, depth=DEPTH)
            values[i, j] = values[j, i] = score
    return SimilarityMatrix(countries, values)


def test_ablation_rbo_weighting(benchmark, feb_dataset):
    lists = {
        c: feb_dataset.get(c, Platform.WINDOWS, Metric.PAGE_LOADS,
                           REFERENCE_MONTH).top(DEPTH)
        for c in SUBSET
    }
    dist = feb_dataset.distribution(Platform.WINDOWS, Metric.PAGE_LOADS)

    def compute():
        return (
            weighted_rbo_matrix(lists, dist, depth=DEPTH),
            _geometric_matrix(lists),
        )

    weighted, geometric = benchmark.pedantic(compute, rounds=1, iterations=1)

    def outlier_rank(matrix, country):
        means = {c: matrix.mean_similarity(c) for c in matrix.countries}
        ordered = sorted(means, key=means.get)
        return ordered.index(country) + 1

    kr_weighted = outlier_rank(weighted, "KR")
    kr_geometric = outlier_rank(geometric, "KR")
    off_w = weighted.values[~np.eye(len(SUBSET), dtype=bool)]
    off_g = geometric.values[~np.eye(len(SUBSET), dtype=bool)]
    corr = float(np.corrcoef(off_w, off_g)[0, 1])

    print_comparison(
        [
            ("KR outlier rank (traffic-weighted)", 1, kr_weighted,
             "1 = most dissimilar country"),
            ("KR outlier rank (geometric p=0.999)", ">1", kr_geometric, ""),
            ("matrix correlation", "positive but imperfect", corr, ""),
            ("mean similarity (weighted)", "", float(off_w.mean()), ""),
            ("mean similarity (geometric)", "", float(off_g.mean()), ""),
        ],
        "Ablation — RBO weighting scheme",
    )

    # The traffic weighting is what makes the #1 site decisive: KR must
    # be the top outlier under it, and strictly more extreme than under
    # geometric weights relative to the field.
    assert kr_weighted == 1
    kr_gap_weighted = np.median(off_w) - weighted.mean_similarity("KR")
    kr_gap_geometric = np.median(off_g) - geometric.mean_similarity("KR")
    assert kr_gap_weighted > kr_gap_geometric
    # The two schemes agree in direction (both are RBO) ...
    assert corr > 0.2
    # ... but not perfectly — the weighting genuinely changes the metric.
    assert corr < 0.999
