"""Section 4.2.1 / 5.3.2 / Table 4 — composition of the top-10 sites.

Regenerates the per-country top-10 composition analysis: which use
cases appear in how many countries' top 10, which classes are national
(top-10 in exactly one country), and the Windows-top-10-but-not-Android
app analysis.
"""

from repro.analysis.top10 import (
    category_presence,
    single_country_sites,
    tag_presence,
    union_of_top_sites,
    windows_only_top_sites,
)
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.report import render_table

from _bench_utils import print_comparison


def test_top10_use_cases(benchmark, feb_dataset, labels):
    lists = feb_dataset.select(Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH)
    presence = benchmark.pedantic(
        category_presence, args=(lists, labels), kwargs={"top_k": 10},
        rounds=1, iterations=1,
    )

    rows = [
        ("Search Engines", 45, presence["Search Engines"].n_countries),
        ("Video Streaming (incl. sharing)", 45,
         presence["Video Streaming"].n_countries),
        ("Social Networks", 44, presence.get("Social Networks").n_countries
         if "Social Networks" in presence else 0),
        ("Pornography", 43, presence["Pornography"].n_countries
         if "Pornography" in presence else 0),
        ("Ecommerce", 32, presence["Ecommerce"].n_countries
         if "Ecommerce" in presence else 0),
        ("Chat & Messaging", 30, presence["Chat & Messaging"].n_countries
         if "Chat & Messaging" in presence else 0),
    ]
    print()
    print(render_table(
        ("use case", "paper countries", "measured countries"), rows,
        title="Section 4.2.1 — top-10 use cases across 45 countries",
    ))

    assert presence["Search Engines"].n_countries == 45
    assert presence["Video Streaming"].n_countries == 45
    assert presence["Social Networks"].n_countries >= 40
    assert presence["Pornography"].n_countries >= 30
    assert presence["Ecommerce"].n_countries >= 22
    assert presence["Chat & Messaging"].n_countries >= 25
    # Censoring countries keep the big adult sites out (Section 5.3.2);
    # Vietnam still has its local site, so at most a few of KR/TR/RU
    # can show adult content in the top 10.
    adult_countries = set(presence["Pornography"].countries)
    assert len({"KR", "TR", "RU"} & adult_countries) <= 1


def test_top10_national_classes(benchmark, feb_dataset, generator):
    lists = feb_dataset.select(Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH)
    uni = generator.universe
    tags_map = {uni.canonical[uid]: tags for uid, tags in uni.tags.items()}
    tags = benchmark.pedantic(
        tag_presence, args=(lists, tags_map), kwargs={"top_k": 10},
        rounds=1, iterations=1,
    )

    rows = []
    for tag, paper in (("news", "20 countries, national"),
                       ("government", "26 countries, national"),
                       ("bank", "17 countries, national"),
                       ("classifieds", "15/17 single-country")):
        if tag in tags:
            exclusive = single_country_sites(tags[tag], lists, top_k=10)
            rows.append((tag, paper, tags[tag].n_countries,
                         f"{len(exclusive)}/{tags[tag].n_sites} single-country"))
    print()
    print(render_table(
        ("class", "paper", "countries", "exclusivity"), rows,
        title="Section 5.3.2 — national top-10 classes",
    ))

    # Government/news/bank sites are "only ever top-10 in one country".
    for tag in ("government", "bank"):
        if tag in tags:
            exclusive = single_country_sites(tags[tag], lists, top_k=10)
            assert len(exclusive) >= 0.8 * tags[tag].n_sites, tag
    assert "news" in tags and tags["news"].n_countries >= 15


def test_top10_android_app_analysis(benchmark, feb_dataset, generator):
    uni = generator.universe
    has_app = {
        uni.canonical[uid]: bool(uni.has_android_app[uid])
        for uid in range(uni.n_sites)
    }
    exclusives = benchmark.pedantic(
        windows_only_top_sites,
        args=(feb_dataset, REFERENCE_MONTH, has_app),
        rounds=1, iterations=1,
    )
    union = union_of_top_sites(feb_dataset, REFERENCE_MONTH, top_k=10)
    print_comparison(
        [
            ("union of top-10 sites", "469 unique domains", len(union), ""),
            ("Windows-only top-10 sites", 114, len(exclusives.sites), ""),
            ("...with an Android app", "82%", exclusives.app_fraction,
             "named sites carry the apps"),
        ],
        "Section 4.1.2/4.2.1 — platform-exclusive top sites",
    )
    assert len(exclusives.sites) > 20
    # Named Windows-exclusives are dominated by app-equipped sites; the
    # procedural champions dilute the overall fraction, so compare just
    # the named ones.
    named = {uni.canonical[uid] for uid in uni.named_uid.values()}
    named_exclusives = [s for s in exclusives.sites if s in named]
    if named_exclusives:
        with_app = sum(1 for s in named_exclusives if has_app.get(s))
        assert with_app / len(named_exclusives) >= 0.6
