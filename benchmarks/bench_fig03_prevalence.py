"""Figures 3 & 14 / Section 4.2.3 — category prevalence by rank.

Regenerates the prevalence-vs-rank curves (median + IQR over the 45
countries) for the categories the paper highlights, split by metric as
in Figure 14, and checks the head/middle/tail patterns.
"""

from repro.analysis.prevalence import head_tail_ratio, prevalence_by_rank
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.report import render_series

from _bench_utils import print_comparison

THRESHOLDS = (10, 30, 50, 100, 300, 1_000, 3_000, 10_000)
CATEGORIES = ("Video Streaming", "News & Media", "Business", "Technology",
              "Pornography", "Ecommerce")


def test_fig3_prevalence_by_rank(benchmark, feb_dataset, labels):
    def compute():
        out = {}
        for metric in Metric.studied():
            curves = prevalence_by_rank(
                feb_dataset, labels, Platform.WINDOWS, metric,
                REFERENCE_MONTH, categories=CATEGORIES, thresholds=THRESHOLDS,
            )
            out[metric] = {c.category: c for c in curves}
        return out

    by_metric = benchmark.pedantic(compute, rounds=1, iterations=1)
    loads = by_metric[Metric.PAGE_LOADS]
    time = by_metric[Metric.TIME_ON_PAGE]

    print(render_series(
        {
            f"{cat} (loads)": [p.stats.median for p in loads[cat].points]
            for cat in CATEGORIES
        },
        x_labels=THRESHOLDS,
        title="\nFigure 3 — category share of top-N domains (Windows loads)",
    ))
    print_comparison(
        [
            ("video % of top-10 by time", "~0.4+",
             time["Video Streaming"].median_at(10), "'upwards of 40% of top-10'"),
            ("video % of top-10K by time", "<0.10",
             time["Video Streaming"].median_at(10_000), "'less than 10%'"),
            ("news peak near top-50", ">= tail",
             max(loads["News & Media"].median_at(t) for t in (30, 50, 100)),
             "'peaks above 15% of top-50'"),
            ("business top-30 (loads)", 0.03, loads["Business"].median_at(30),
             "'just above 3% of top-30'"),
            ("business top-10K (loads)", 0.08, loads["Business"].median_at(10_000),
             "'over 8% of top-10K'"),
        ],
        "Figures 3/14 — prevalence anchors",
    )

    # Video streaming is head-heavy on the time metric.
    assert head_tail_ratio(time["Video Streaming"], head=10, tail=10_000) > 2.0
    assert time["Video Streaming"].median_at(10) >= 0.2
    assert time["Video Streaming"].median_at(10_000) < 0.10
    # Business is disproportionately long-tail.
    assert loads["Business"].median_at(10_000) > loads["Business"].median_at(50)
    # News & Media peaks in the middle of the range.
    news = loads["News & Media"]
    middle_peak = max(news.median_at(t) for t in (30, 50, 100))
    assert middle_peak > news.median_at(10_000)
    assert middle_peak >= news.median_at(10)
    # Technology is comparatively stable across rank.
    tech = loads["Technology"]
    tech_values = [tech.median_at(t) for t in (100, 1_000, 10_000)]
    assert max(tech_values) - min(tech_values) < 0.08


def test_fig3_mobile_adult_head(benchmark, feb_dataset, labels):
    def compute():
        return {
            platform: {
                c.category: c
                for c in prevalence_by_rank(
                    feb_dataset, labels, platform, Metric.PAGE_LOADS,
                    REFERENCE_MONTH, categories=("Pornography",),
                    thresholds=THRESHOLDS,
                )
            }
            for platform in Platform.studied()
        }

    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    mobile = result[Platform.ANDROID]["Pornography"]
    desktop = result[Platform.WINDOWS]["Pornography"]
    print_comparison(
        [
            ("adult % of mobile top-50", ">desktop", mobile.median_at(50),
             f"desktop={desktop.median_at(50):.3f}"),
        ],
        "Figure 3 — adult content at the mobile head",
    )
    # "adult content is disproportionately represented among top-50
    # sites on only mobile devices."
    assert mobile.median_at(50) > desktop.median_at(50)
