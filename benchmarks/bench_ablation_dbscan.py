"""Ablation — DBSCAN vs affinity propagation (Section 5.3.1's claim).

"Affinity propagation ... accommodates an arbitrary similarity score
matrix with clusters of potentially varying density (DBSCAN struggles
with varying-density clusters)."  This benchmark runs DBSCAN over an
eps sweep on the same country-distance matrix and shows the failure
mode: no eps yields a clustering that is simultaneously plural,
low-noise, and geographically coherent.
"""

import numpy as np

from repro.analysis.clustering import cluster_countries
from repro.analysis.similarity import rbo_matrix_for
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.report import render_table
from repro.stats.dbscan import dbscan, eps_sweep
from repro.stats.silhouette import similarity_to_distance

from _bench_utils import print_comparison


def test_ablation_dbscan_vs_affinity(benchmark, feb_dataset):
    matrix = rbo_matrix_for(
        feb_dataset, Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH
    )
    distances = similarity_to_distance(matrix.values)
    eps_grid = np.quantile(
        distances[~np.eye(len(matrix.countries), dtype=bool)],
        [0.02, 0.05, 0.10, 0.20, 0.35, 0.5],
    )

    def compute():
        return eps_sweep(distances, eps_grid, min_samples=3)

    sweep = benchmark.pedantic(compute, rounds=1, iterations=1)
    ap_report = cluster_countries(matrix)

    print()
    print(render_table(
        ("eps", "clusters", "noise countries"),
        [(f"{eps:.3f}", clusters, noise) for eps, clusters, noise in sweep],
        title="Ablation — DBSCAN eps sweep on country distances",
    ))
    print_comparison(
        [
            ("AP clusters / unclustered", f"{ap_report.n_clusters} / 0",
             f"{ap_report.n_clusters} / 0", "AP assigns every country"),
            ("best DBSCAN plural clustering", "high noise or near-monolith",
             max((c for _, c, _ in sweep), default=0), ""),
        ],
        "Ablation — DBSCAN vs affinity propagation",
    )

    # Affinity propagation produces a plural, total clustering.
    assert ap_report.n_clusters >= 6
    # DBSCAN's dilemma on varying-density data: every eps either leaves
    # a large noise fraction, or collapses the countries into very few
    # clusters.  "Good" = at least half of AP's cluster count with under
    # 20% noise; no eps on the grid achieves it.
    n = len(matrix.countries)
    good = [
        (eps, clusters, noise)
        for eps, clusters, noise in sweep
        if clusters >= max(2, ap_report.n_clusters // 2) and noise <= 0.2 * n
    ]
    assert not good, f"DBSCAN unexpectedly matched AP: {good}"
    # Sanity: the implementation itself is sound (it does cluster).
    mid = dbscan(distances, float(eps_grid[2]), min_samples=3)
    assert mid.n_clusters >= 1
