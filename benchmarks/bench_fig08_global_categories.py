"""Figure 8 — categories of globally vs nationally popular websites.

Paper: global sites relate to technology, pornography, gaming, hobbies,
messaging and photography; national sites to educational institutions,
politics, and economy & finance.  On Android, adult content is a much
larger share of global sites than on Windows (20-25 % vs 3-6 %).
"""

from repro.analysis.endemicity import category_split, score_endemicity
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.report import render_shares

from _bench_utils import print_comparison

GLOBAL_CATEGORIES = ("Technology", "Pornography", "Gaming", "Chat & Messaging",
                     "Photography", "Hobbies & Interests", "Search Engines",
                     "Social Networks")
NATIONAL_CATEGORIES = ("Educational Institutions", "Government & Politics",
                       "Politics, Advocacy, and Government-Related",
                       "Economy & Finance", "News & Media")


def _mass(shares, categories):
    return sum(shares.get(c, 0.0) for c in categories)


def test_fig8_category_split(benchmark, feb_dataset, labels):
    def compute():
        out = {}
        for platform in Platform.studied():
            lists = feb_dataset.select(platform, Metric.PAGE_LOADS, REFERENCE_MONTH)
            result = score_endemicity(lists, eligible_rank=1_000)
            out[platform] = category_split(result, labels)
        return out

    splits = benchmark.pedantic(compute, rounds=1, iterations=1)
    w_global, w_national = splits[Platform.WINDOWS]
    a_global, a_national = splits[Platform.ANDROID]

    print()
    print(render_shares(w_global, "Windows: globally popular site categories", top=8))
    print(render_shares(w_national, "Windows: nationally popular site categories", top=8))
    print_comparison(
        [
            ("global-category mass among global sites", "high",
             _mass(w_global, GLOBAL_CATEGORIES), "tech/porn/gaming/..."),
            ("global-category mass among national sites", "low",
             _mass(w_national, GLOBAL_CATEGORIES), ""),
            ("adult share of global sites (Android)", "0.20-0.25",
             a_global.get("Pornography", 0.0), ""),
            ("adult share of global sites (Windows)", "0.03-0.06",
             w_global.get("Pornography", 0.0), ""),
        ],
        "Figure 8 — global vs national category mix",
    )

    # Directional claims.
    assert _mass(w_global, GLOBAL_CATEGORIES) > _mass(w_national, GLOBAL_CATEGORIES)
    assert _mass(w_national, NATIONAL_CATEGORIES) > _mass(w_global, NATIONAL_CATEGORIES)
    assert _mass(a_global, GLOBAL_CATEGORIES) > _mass(a_national, GLOBAL_CATEGORIES)
    # Adult content is a larger share of the global population on
    # Android than on Windows.
    assert a_global.get("Pornography", 0.0) > w_global.get("Pornography", 0.0)
