"""Vectorized kernels vs the scalar reference on the paper's workload.

The headline measurement: the full Figure 10 matrix — traffic-weighted
RBO over all C(45, 2) = 990 country pairs at depth 10,000 — through the
batched kernel (:func:`repro.stats.kernels.pairwise_wrbo`) against the
per-pair scalar loop (:func:`repro.stats.rbo.weighted_rbo`).

Two kernel timings are reported:

* **cold** — a fresh :class:`SiteVocabulary`, so every list pays string
  interning.  That cost is paid once per dataset in production (the
  shared ``dataset.vocabulary()`` caches id arrays on the lists).
* **steady-state** — id arrays already interned, as every analysis
  after the first sees.  This is the kernel's real throughput and the
  number the ≥10× assertion runs against.

Both must be *bit-identical* to the scalar loop, pair for pair.
Results land in ``BENCH_kernels.json`` for the CI artifact upload.
"""

import time
from itertools import combinations

import numpy as np

from repro.analysis.similarity import weighted_rbo_matrix
from repro.core import Metric, Platform, REFERENCE_MONTH, SiteVocabulary
from repro.stats.rbo import weighted_rbo

from _bench_utils import print_comparison, write_bench_json

DEPTH = 10_000
MIN_SPEEDUP = 10.0


def _scalar_matrix(lists, weights, depth):
    """The pre-kernel pair loop, verbatim from the old matrix builder."""
    countries = tuple(sorted(lists))
    scores = [
        weighted_rbo(lists[a], lists[b], weights, depth=depth)
        for a, b in combinations(countries, 2)
    ]
    return np.asarray(scores)


def test_kernel_wrbo_matrix_speedup(benchmark, feb_dataset):
    lists = feb_dataset.select(
        Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH
    )
    countries = tuple(sorted(lists))
    n = len(countries)
    depth = min(DEPTH, min(len(lists[c]) for c in countries))
    dist = feb_dataset.distribution(Platform.WINDOWS, Metric.PAGE_LOADS)
    weights = dist.weights(depth)

    start = time.perf_counter()
    scalar_scores = _scalar_matrix(lists, weights, depth)
    scalar_seconds = time.perf_counter() - start

    # Cold: a fresh vocabulary forces every list to re-intern (the
    # id-array cache is keyed by vocabulary identity).
    start = time.perf_counter()
    weighted_rbo_matrix(lists, dist, depth=depth, vocab=SiteVocabulary())
    cold_seconds = time.perf_counter() - start

    # Steady-state: one shared vocabulary, id arrays cached on the
    # lists — what the pipeline's dataset.vocabulary() delivers to
    # every analysis after the first.
    vocab = SiteVocabulary()
    weighted_rbo_matrix(lists, dist, depth=depth, vocab=vocab)  # warm the cache

    def kernel_compute():
        return weighted_rbo_matrix(lists, dist, depth=depth, vocab=vocab)

    start = time.perf_counter()
    matrix = kernel_compute()
    kernel_seconds = time.perf_counter() - start
    benchmark.pedantic(kernel_compute, rounds=1, iterations=1)

    kernel_scores = np.asarray([
        matrix.values[i, j] for i, j in combinations(range(n), 2)
    ])
    speedup = scalar_seconds / kernel_seconds
    cold_speedup = scalar_seconds / cold_seconds

    print_comparison(
        [
            ("countries", 45, n, "all of the paper's markets"),
            ("depth", 10_000, depth, "top-10K lists"),
            ("pairs", 990, n * (n - 1) // 2, "C(45, 2)"),
            ("scalar seconds", "", round(scalar_seconds, 3), "per-pair loop"),
            ("kernel seconds (cold)", "", round(cold_seconds, 3),
             "includes one-off interning"),
            ("kernel seconds (steady)", "", round(kernel_seconds, 3),
             "id arrays cached"),
            ("speedup (steady)", ">= 10x", round(speedup, 1), "asserted below"),
            ("speedup (cold)", "", round(cold_speedup, 1), ""),
        ],
        "Kernel vs scalar — weighted RBO matrix",
    )
    write_bench_json("kernels", {
        "workload": "weighted_rbo_matrix",
        "countries": n,
        "depth": depth,
        "pairs": n * (n - 1) // 2,
        "scalar_seconds": scalar_seconds,
        "kernel_seconds_cold": cold_seconds,
        "kernel_seconds_steady": kernel_seconds,
        "speedup_cold": cold_speedup,
        "speedup_steady": speedup,
        "bit_identical": bool(np.array_equal(scalar_scores, kernel_scores)),
    })

    # Exactness first: a fast wrong answer is worthless.
    assert np.array_equal(scalar_scores, kernel_scores)
    assert speedup >= MIN_SPEEDUP, (
        f"kernel path only {speedup:.1f}x faster "
        f"({scalar_seconds:.2f}s scalar vs {kernel_seconds:.2f}s kernel)"
    )
