"""Ablation — the privacy pipeline's knobs (Section 3.1).

* Client threshold vs list depth: how high the unique-client threshold
  must rise before study countries lose their top-10K (the paper chose
  countries so that it never does).
* Time-on-page sampling rate vs metric agreement: crank the 0.35 %
  event sampling down and watch the loads/time intersection degrade —
  the safeguard has a measurable analytical cost.
"""

from repro.core import Metric, Platform
from repro.report import render_table
from repro.synth import GeneratorConfig, TelemetryGenerator
from repro.synth.privacy import PrivacyConfig, threshold_rank
from repro.synth.traffic import global_distribution

from _bench_utils import print_comparison


def test_ablation_client_threshold(benchmark):
    dist = global_distribution(Platform.WINDOWS, Metric.PAGE_LOADS)

    def compute():
        out = []
        for web_scale, label in ((0.3, "smallest study country"),
                                 (1.0, "median country"),
                                 (10.0, "largest country")):
            base = web_scale * 5_000_000
            for threshold in (50, 1_000, 10_000, 100_000):
                cutoff = threshold_rank(base, dist, threshold, max_rank=10_000)
                out.append((label, threshold, cutoff))
        return out

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print()
    print(render_table(
        ("install base", "client threshold", "surviving list depth"), rows,
        title="Ablation — privacy threshold vs list depth",
    ))

    by_key = {(label, threshold): cutoff for label, threshold, cutoff in rows}
    # At the study threshold every study country keeps its full 10K.
    assert by_key[("smallest study country", 50)] == 10_000
    # Harsher thresholds truncate the smallest countries first.
    assert by_key[("smallest study country", 100_000)] < 10_000
    assert (by_key[("largest country", 100_000)]
            >= by_key[("smallest study country", 100_000)])
    # Depth is monotone in the threshold.
    for label in ("smallest study country", "median country", "largest country"):
        depths = [by_key[(label, t)] for t in (50, 1_000, 10_000, 100_000)]
        assert depths == sorted(depths, reverse=True)


def test_ablation_sampling_rate(benchmark):
    def compute():
        out = []
        for rate in (1.0, 0.0035, 0.00002):
            config = GeneratorConfig.small(
                privacy=PrivacyConfig(time_sampling_rate=rate)
            )
            gen = TelemetryGenerator(config)
            intersections = []
            for country in ("US", "BR", "JP", "FR"):
                loads = gen.rank_list(country, Platform.WINDOWS, Metric.PAGE_LOADS)
                time = gen.rank_list(country, Platform.WINDOWS, Metric.TIME_ON_PAGE)
                intersections.append(loads.percent_intersection(time))
            out.append((rate, sum(intersections) / len(intersections)))
        return out

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_comparison(
        [(f"sampling rate {rate:g}", "monotone degradation", overlap, "")
         for rate, overlap in rows],
        "Ablation — time-on-page sampling vs metric agreement",
    )
    overlaps = [overlap for _, overlap in rows]
    # Chrome's 0.35% sampling costs little; two further orders of
    # magnitude down, the time ranking visibly degrades.
    assert overlaps[0] >= overlaps[1] >= overlaps[2]
    assert overlaps[0] - overlaps[2] > 0.01
    assert overlaps[0] - overlaps[1] < 0.02
