"""Reproduction-pipeline benchmark: serial vs threaded DAG, cold vs warm
artifact cache.

Runs the full task registry over the February full-grid dataset (served
by the session engine's persistent slice cache, so dataset generation is
amortized across benchmark sessions).  Three runs are timed:

* **serial, cold store** — the reference: every task body executes.
* **threaded, cold store** — same DAG on 4 worker threads; must emit
  byte-identical artifacts (asserted file-by-file).
* **threaded, warm store** — second run against the threaded store;
  must execute zero task bodies (asserted via the run report).

Thread-level speedup is printed but not asserted: unlike the
process-pool generation engine, pipeline tasks are a mix of
GIL-releasing numpy and pure-Python analysis, so the ratio is
machine- and workload-dependent.
"""

from __future__ import annotations

import os
import time

from repro.pipeline import (
    ArtifactStore,
    PipelineRunner,
    TaskContext,
    ThreadedTaskExecutor,
    default_registry,
)

from _bench_utils import print_comparison

WORKERS = 4


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _artifact_bytes_by_name(store: ArtifactStore) -> dict[str, bytes]:
    return {
        path.name: path.read_bytes()
        for path in store.root.rglob("*.json")
    }


def test_pipeline_dag(benchmark, engine, feb_dataset, tmp_path):
    registry = default_registry()
    # Pay the universe build outside every timing: ground-truth tasks
    # share the engine's memoised generator, so serial, threaded and
    # warm runs all measure analysis, not construction.
    engine.generator

    ctx = TaskContext(feb_dataset, config=engine.config)
    serial_store = ArtifactStore(tmp_path / "serial")
    serial_t, serial_report = _timed(
        lambda: benchmark.pedantic(
            PipelineRunner(registry, store=serial_store).run,
            args=(ctx,), rounds=1, iterations=1,
        )
    )
    assert serial_report.failed == 0

    threaded_store = ArtifactStore(tmp_path / "threads")
    threaded_runner = PipelineRunner(
        registry, executor=ThreadedTaskExecutor(WORKERS), store=threaded_store
    )
    cold_t, cold_report = _timed(lambda: threaded_runner.run(ctx))
    assert cold_report.failed == 0
    assert cold_report.executed == serial_report.executed

    serial_bytes = _artifact_bytes_by_name(serial_store)
    threaded_bytes = _artifact_bytes_by_name(threaded_store)
    assert serial_bytes == threaded_bytes, "scheduling changed the artifacts"

    warm_t, warm_report = _timed(lambda: threaded_runner.run(ctx))
    assert warm_report.executed == 0, "warm artifact store must serve every task"
    assert warm_report.cached == cold_report.executed + cold_report.cached
    assert warm_report.results == cold_report.results

    speedup = serial_t / cold_t if cold_t > 0 else float("inf")
    cache_speedup = cold_t / warm_t if warm_t > 0 else float("inf")
    cpus = os.cpu_count() or 1
    print_comparison(
        [
            ("DAG serial (s)", "-", f"{serial_t:.2f}",
             f"{serial_report.executed} tasks executed"),
            ("DAG threaded (s)", "-", f"{cold_t:.2f}",
             f"{WORKERS} threads, {cpus} CPU(s)"),
            ("threaded speedup", "-", f"{speedup:.2f}x",
             "informational; GIL-dependent"),
            ("artifacts", "byte-identical", "byte-identical",
             f"{len(serial_bytes)} files"),
            ("warm store (s)", "-", f"{warm_t:.2f}",
             "0 task executions"),
            ("cold -> warm speedup", "> 1.0", f"{cache_speedup:.2f}x", ""),
        ],
        "Reproduction pipeline — DAG over the full grid, cold vs warm artifacts",
    )
    assert warm_t < serial_t, "warm artifact store should beat recomputation"
