"""Batched/vectorized stats kernels vs their scalar references.

The headline measurement: the full Figure 4 Fisher grid — every
category×country cell over all 45 shared countries at the paper's
``effective_n`` = 100,000 — through :func:`proportion_test_batch`
(one log-factorial table, full pmf support as a numpy vector, repeated
count pairs memoized) against the per-cell :func:`proportion_test`
loop the analysis used before.  Two batch timings are reported:

* **cold** — the shared log-factorial table is rebuilt from scratch, a
  cost paid once per process.
* **steady-state** — the table is warm, as every call after the first
  sees.  The ≥10× assertion runs against this number.

Batched p-values may differ from the scalar reference in the last ulp
(``np.exp`` vs ``math.exp``); the per-country Bonferroni decisions must
be *identical*, which is what keeps the ``platforms`` artifact bytes
unchanged.  The silhouette and DBSCAN kernels are also timed against
their scalar references on a larger synthetic workload and must be
bit/label-identical.  Results land in ``BENCH_stats.json``.
"""

import time

import numpy as np

import repro.stats.fisher as fisher_mod
from repro.analysis.weighting import weighted_volume_by_category
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.stats.correction import bonferroni
from repro.stats.dbscan import dbscan, dbscan_reference
from repro.stats.fisher import proportion_test, proportion_test_batch
from repro.stats.silhouette import (
    silhouette_samples,
    silhouette_samples_reference,
)

from _bench_utils import print_comparison, write_bench_json

MIN_FISHER_SPEEDUP = 10.0
EFFECTIVE_N = 100_000
TOP_N = 10_000
ALPHA = 0.05


def _merge_bench_json(section, payload):
    """Both benchmarks land in one BENCH_stats.json, keyed by section."""
    import json
    from pathlib import Path

    path = Path("BENCH_stats.json")
    merged = json.loads(path.read_text()) if path.exists() else {}
    merged[section] = payload
    write_bench_json("stats", merged)


def _figure4_cells(dataset, labels, metric):
    """Every (android share, windows share) cell of the Figure 4 grid,
    flattened, with per-country slice bounds for Bonferroni."""
    windows_lists = dataset.select(Platform.WINDOWS, metric, REFERENCE_MONTH)
    android_lists = dataset.select(Platform.ANDROID, metric, REFERENCE_MONTH)
    shared = sorted(set(windows_lists) & set(android_lists))
    dist_w = dataset.distribution(Platform.WINDOWS, metric)
    dist_a = dataset.distribution(Platform.ANDROID, metric)
    shares_a, shares_w, slices = [], [], []
    for country in shared:
        vol_w = weighted_volume_by_category(
            windows_lists[country], labels, dist_w, TOP_N
        )
        vol_a = weighted_volume_by_category(
            android_lists[country], labels, dist_a, TOP_N
        )
        categories = sorted(set(vol_w) | set(vol_a))
        start = len(shares_a)
        for category in categories:
            shares_a.append(vol_a.get(category, 0.0))
            shares_w.append(vol_w.get(category, 0.0))
        slices.append((start, len(shares_a)))
    return shares_a, shares_w, slices, len(shared)


def test_fisher_grid_speedup(benchmark, feb_dataset, labels):
    shares_a, shares_w, slices, n_countries = _figure4_cells(
        feb_dataset, labels, Metric.PAGE_LOADS
    )
    n_cells = len(shares_a)

    start = time.perf_counter()
    scalar = [
        proportion_test(a, w, EFFECTIVE_N).p_value
        for a, w in zip(shares_a, shares_w)
    ]
    scalar_seconds = time.perf_counter() - start

    # Cold: rebuild the shared log-factorial table from scratch.
    fisher_mod._LOG_FACTORIALS = np.zeros(1)
    start = time.perf_counter()
    proportion_test_batch(shares_a, shares_w, EFFECTIVE_N)
    cold_seconds = time.perf_counter() - start

    def batch_compute():
        return proportion_test_batch(shares_a, shares_w, EFFECTIVE_N)

    start = time.perf_counter()
    batch_results = batch_compute()
    batch_seconds = time.perf_counter() - start
    benchmark.pedantic(batch_compute, rounds=1, iterations=1)

    batch = [r.p_value for r in batch_results]
    speedup = scalar_seconds / batch_seconds
    cold_speedup = scalar_seconds / cold_seconds

    # Per-country Bonferroni decisions — the thing the artifact
    # serialization actually depends on — must be identical.
    decisions_identical = all(
        bonferroni(scalar[s:e], ALPHA) == bonferroni(batch[s:e], ALPHA)
        for s, e in slices
    )
    p_close = bool(np.allclose(batch, scalar, rtol=1e-12, atol=0.0))

    print_comparison(
        [
            ("countries", 45, n_countries, "all of the paper's markets"),
            ("grid cells", "", n_cells, "category × country"),
            ("effective n", 100_000, EFFECTIVE_N, "per proportion test"),
            ("scalar seconds", "", round(scalar_seconds, 3), "per-cell loop"),
            ("batch seconds (cold)", "", round(cold_seconds, 3),
             "includes table build"),
            ("batch seconds (steady)", "", round(batch_seconds, 3),
             "log-factorial table warm"),
            ("speedup (steady)", ">= 10x", round(speedup, 1), "asserted below"),
            ("speedup (cold)", "", round(cold_speedup, 1), ""),
        ],
        "Batched vs scalar — Figure 4 Fisher grid",
    )
    _merge_bench_json("fisher", {
        "workload": "figure4_fisher_grid",
        "countries": n_countries,
        "cells": n_cells,
        "effective_n": EFFECTIVE_N,
        "scalar_seconds": scalar_seconds,
        "batch_seconds_cold": cold_seconds,
        "batch_seconds_steady": batch_seconds,
        "speedup_cold": cold_speedup,
        "speedup_steady": speedup,
        "p_values_close": p_close,
        "bonferroni_decisions_identical": decisions_identical,
    })

    # Exactness first: a fast wrong answer is worthless.
    assert p_close
    assert decisions_identical
    assert speedup >= MIN_FISHER_SPEEDUP, (
        f"batch path only {speedup:.1f}x faster "
        f"({scalar_seconds:.2f}s scalar vs {batch_seconds:.2f}s batch)"
    )


def test_silhouette_dbscan_parity_at_scale(benchmark):
    """Vectorized silhouette/DBSCAN vs their scalar references on a
    planted-blob workload ~30× the country matrix.  Speedups are
    reported in BENCH_stats.json; only exactness is asserted (the ≥10×
    gate is the Fisher grid's)."""
    rng = np.random.default_rng(0)
    n_clusters, per_cluster = 12, 120
    centers = rng.uniform(0, 100, size=(n_clusters, 2))
    points = np.concatenate([
        center + rng.normal(scale=1.5, size=(per_cluster, 2))
        for center in centers
    ])
    labels_true = np.repeat(np.arange(n_clusters), per_cluster)
    d = np.sqrt(((points[:, None, :] - points[None, :, :]) ** 2).sum(-1))
    eps, min_samples = 1.5, 4

    start = time.perf_counter()
    sil_ref = silhouette_samples_reference(d, labels_true)
    sil_scalar_seconds = time.perf_counter() - start
    start = time.perf_counter()
    sil_fast = silhouette_samples(d, labels_true)
    sil_seconds = time.perf_counter() - start

    start = time.perf_counter()
    db_ref = dbscan_reference(d, eps, min_samples)
    db_scalar_seconds = time.perf_counter() - start

    def vector_compute():
        return dbscan(d, eps, min_samples)

    start = time.perf_counter()
    db_fast = vector_compute()
    db_seconds = time.perf_counter() - start
    benchmark.pedantic(vector_compute, rounds=1, iterations=1)

    sil_speedup = sil_scalar_seconds / sil_seconds
    db_speedup = db_scalar_seconds / db_seconds
    print_comparison(
        [
            ("points", "", len(points), f"{n_clusters} planted blobs"),
            ("silhouette scalar s", "", round(sil_scalar_seconds, 3), ""),
            ("silhouette kernel s", "", round(sil_seconds, 3), "bit-identical"),
            ("silhouette speedup", "", round(sil_speedup, 1), ""),
            ("dbscan scalar s", "", round(db_scalar_seconds, 3), ""),
            ("dbscan kernel s", "", round(db_seconds, 3), "label-identical"),
            ("dbscan speedup", "", round(db_speedup, 1), ""),
        ],
        "Vectorized vs scalar — silhouette and DBSCAN",
    )
    _merge_bench_json("clustering", {
        "workload": "planted_blobs",
        "points": len(points),
        "silhouette_scalar_seconds": sil_scalar_seconds,
        "silhouette_kernel_seconds": sil_seconds,
        "silhouette_speedup": sil_speedup,
        "silhouette_bit_identical": bool(
            np.array_equal(sil_fast.values, sil_ref.values)
        ),
        "dbscan_scalar_seconds": db_scalar_seconds,
        "dbscan_kernel_seconds": db_seconds,
        "dbscan_speedup": db_speedup,
        "dbscan_label_identical": bool(
            np.array_equal(db_fast.labels, db_ref.labels)
        ),
    })

    assert np.array_equal(sil_fast.values, sil_ref.values)
    assert np.array_equal(db_fast.labels, db_ref.labels)
    assert np.array_equal(db_fast.core_mask, db_ref.core_mask)
