"""Figure 12 — cumulative pairwise intersections across rank buckets.

For each rank bucket, the 990 country-pair percent intersections are
sorted descending and cumulatively summed.  Paper: heads are more
similar than tails, and the effect bottoms out (or slightly reverses)
as the bucket approaches 10K.
"""

from repro.analysis.similarity import intersection_curves
from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.report import render_series

from _bench_utils import print_comparison

BUCKETS = (10, 100, 1_000, 10_000)


def test_fig12_cumulative_intersections(benchmark, feb_dataset):
    curves = benchmark.pedantic(
        intersection_curves,
        args=(feb_dataset, Platform.WINDOWS, Metric.PAGE_LOADS, REFERENCE_MONTH),
        kwargs={"buckets": BUCKETS},
        rounds=1, iterations=1,
    )
    by_bucket = {c.bucket: c for c in curves}

    print(render_series(
        {
            f"top-{bucket}": by_bucket[bucket].cumulative[:: max(1, 990 // 40)]
            for bucket in BUCKETS
        },
        title="\nFigure 12 — cumulative sorted pairwise intersections",
        value_format="{:.0f}",
    ))
    print_comparison(
        [
            ("pairs per bucket", 990, by_bucket[10].n_pairs, "45 choose 2"),
            ("mean intersection top-10", "highest",
             by_bucket[10].mean_intersection, ""),
            ("mean intersection top-1K", "lower",
             by_bucket[1_000].mean_intersection, ""),
            ("mean intersection top-10K", "bottoms out",
             by_bucket[10_000].mean_intersection, "'seems to bottom out'"),
        ],
        "Figure 12 — anchors",
    )

    assert by_bucket[10].n_pairs == 45 * 44 // 2 == 990
    # Heads more similar than the mid-range.
    assert by_bucket[10].mean_intersection > by_bucket[1_000].mean_intersection
    assert by_bucket[100].mean_intersection > by_bucket[1_000].mean_intersection
    # Saturation: the drop from 1K to 10K is small or reversed.
    drop_mid = by_bucket[100].mean_intersection - by_bucket[1_000].mean_intersection
    drop_tail = by_bucket[1_000].mean_intersection - by_bucket[10_000].mean_intersection
    assert drop_tail < drop_mid
