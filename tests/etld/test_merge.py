"""Tests for cross-country domain merging (Section 3.1)."""

from repro.core import RankedList
from repro.etld.merge import DEFAULT_DENYLIST, DomainMerger, merge_rank_lists


class TestMerging:
    def test_multinational_merges_to_label(self):
        merger = DomainMerger(["google.com", "google.co.uk", "google.com.br"])
        assert merger.canonical("google.com") == "google"
        assert merger.canonical("google.co.uk") == "google"
        assert "google" in merger.mergeable_labels

    def test_single_suffix_site_keeps_registrable_domain(self):
        merger = DomainMerger(["naver.com", "google.com", "google.co.uk"])
        assert merger.canonical("naver.com") == "naver.com"

    def test_denylist_blocks_paper_example(self):
        # top.com (crypto exchange) and top.gg (Discord ranking) must not
        # merge (Section 3.1 names exactly this false-merge).
        merger = DomainMerger(["top.com", "top.gg"])
        assert merger.canonical("top.com") == "top.com"
        assert merger.canonical("top.gg") == "top.gg"
        assert "top" in DEFAULT_DENYLIST

    def test_subdomains_collapse_to_registrable(self):
        merger = DomainMerger(["www.bbc.co.uk"])
        assert merger.canonical("www.bbc.co.uk") == "bbc.co.uk"

    def test_unseen_domain_resolved_with_corpus_rules(self):
        merger = DomainMerger(["google.com", "google.co.uk"])
        # google.de was not in the corpus but the label is mergeable.
        assert merger.canonical("google.de") == "google"
        assert merger.canonical("brandnew.com") == "brandnew.com"

    def test_false_merge_candidates_lists_two_suffix_labels(self):
        merger = DomainMerger(
            ["ambig.com", "ambig.gg", "google.com", "google.co.uk",
             "google.de", "google.fr"],
            denylist=frozenset(),
        )
        assert "ambig" in merger.false_merge_candidates(max_suffixes=2)
        assert "google" not in merger.false_merge_candidates(max_suffixes=2)

    def test_mapping_for(self):
        merger = DomainMerger(["shopee.com.vn", "shopee.co.th"])
        mapping = merger.mapping_for(["shopee.com.vn", "shopee.co.th"])
        assert set(mapping.values()) == {"shopee"}


class TestMergeRankLists:
    def test_collisions_keep_best_rank(self):
        corpus = ["google.com", "google.com.mx", "other.com"]
        merger = DomainMerger(corpus)
        lists = {"MX": RankedList(["google.com.mx", "other.com", "google.com"])}
        merged = merge_rank_lists(lists, merger)
        assert merged["MX"].sites == ("google", "other.com")

    def test_merge_is_idempotent(self):
        corpus = ["google.com", "google.co.uk", "naver.com"]
        merger = DomainMerger(corpus)
        lists = {"A": RankedList(["google.com", "naver.com"])}
        once = merge_rank_lists(lists, merger)
        # Canonical names survive a second pass unchanged ("google" has
        # no dots, naver.com maps to itself).
        twice = merge_rank_lists(once, DomainMerger([s for rl in once.values() for s in rl.sites]))
        assert twice["A"].sites == once["A"].sites
