"""Tests for the embedded public-suffix list and eTLD+1 algorithm."""

import pytest

from repro.etld.psl import DEFAULT_PSL, PublicSuffixList
from repro.synth.domains import COUNTRY_SUFFIX


class TestMatching:
    @pytest.mark.parametrize("hostname,suffix,registrable", [
        ("google.com", "com", "google.com"),
        ("google.co.uk", "co.uk", "google.co.uk"),
        ("www.google.co.uk", "co.uk", "google.co.uk"),
        ("a.b.globo.com.br", "com.br", "globo.com.br"),
        ("arca.live", "live", "arca.live"),
        ("namu.wiki", "wiki", "namu.wiki"),
        ("top.gg", "gg", "top.gg"),
        ("naver.com", "com", "naver.com"),
    ])
    def test_registrable_domain(self, hostname, suffix, registrable):
        match = DEFAULT_PSL.match(hostname)
        assert match.public_suffix == suffix
        assert match.registrable_domain == registrable

    def test_bare_suffix_has_no_registrable(self):
        assert DEFAULT_PSL.registrable_domain("co.uk") is None
        assert DEFAULT_PSL.registrable_domain("com") is None

    def test_unknown_tld_uses_implicit_star_rule(self):
        match = DEFAULT_PSL.match("example.zz")
        assert match.public_suffix == "zz"
        assert match.registrable_domain == "example.zz"

    def test_wildcard_rule(self):
        # *.ck: one extra label is part of the suffix.
        match = DEFAULT_PSL.match("foo.bar.ck")
        assert match.public_suffix == "bar.ck"
        assert match.registrable_domain == "foo.bar.ck"

    def test_exception_rule(self):
        # !www.ck overrides the wildcard.
        match = DEFAULT_PSL.match("www.ck")
        assert match.public_suffix == "ck"
        assert match.registrable_domain == "www.ck"

    def test_label_extraction(self):
        assert DEFAULT_PSL.match("google.co.uk").label == "google"
        assert DEFAULT_PSL.match("foo.com").label == "foo"
        assert DEFAULT_PSL.match("com").label is None

    def test_case_and_trailing_dot_normalised(self):
        assert DEFAULT_PSL.registrable_domain("WWW.Google.COM.") == "google.com"

    def test_malformed_hostnames_rejected(self):
        for bad in ("", "a..b", "."):
            with pytest.raises(ValueError):
                DEFAULT_PSL.match(bad)


class TestCoverage:
    def test_every_country_suffix_is_a_known_rule(self):
        """All suffixes the generator emits must parse as public suffixes,
        otherwise the merge step would mis-split the generated domains."""
        for country, suffix in COUNTRY_SUFFIX.items():
            host = f"example.{suffix}"
            match = DEFAULT_PSL.match(host)
            assert match.public_suffix == suffix, (country, suffix)
            assert match.label == "example"

    def test_custom_rule_set(self):
        psl = PublicSuffixList({"com", "weird.zone"})
        assert psl.match("shop.weird.zone").public_suffix == "weird.zone"
        assert psl.match("shop.weird.zone").label == "shop"
