"""Tests for category profiles and traffic anchors."""

import pytest

from repro.core import Metric, Platform, TrafficDistribution
from repro.world.categories_data import ALL_CATEGORIES
from repro.world.profiles import (
    PER_COUNTRY_TOP1_MEDIAN,
    PER_COUNTRY_TOP1_RANGE,
    TRAFFIC_ANCHORS,
    CategoryProfile,
    all_profiles,
    profile_for,
    scaled_profile,
)


class TestProfiles:
    def test_every_category_has_a_profile(self):
        profiles = all_profiles()
        assert set(profiles) == {s.name for s in ALL_CATEGORIES}

    def test_unknown_category_rejected(self):
        with pytest.raises(KeyError):
            profile_for("Not A Category")

    def test_mobile_leaning_categories(self):
        # Figure 4's most mobile-leaning categories must have mobile_mult > 1.
        for category in ("Pornography", "Dating & Relationships", "Gambling",
                         "Magazines", "Lifestyle"):
            assert profile_for(category).mobile_mult > 1.0, category

    def test_desktop_leaning_categories(self):
        for category in ("Educational Institutions", "Webmail", "Gaming",
                         "Economy & Finance", "Business", "Technology"):
            assert profile_for(category).mobile_mult < 1.0, category

    def test_time_leaning_categories(self):
        for category in ("Video Streaming", "Movies & Home Video", "News & Media"):
            assert profile_for(category).time_mult > 1.0, category

    def test_loads_leaning_categories(self):
        for category in ("Ecommerce", "Educational Institutions",
                         "Economy & Finance", "Search Engines"):
            assert profile_for(category).time_mult < 1.0, category

    def test_december_shifts(self):
        assert profile_for("Ecommerce").december_mult > 1.0
        assert profile_for("Educational Institutions").december_mult < 1.0

    def test_global_vs_national_tendency(self):
        # Section 5.2: technology/porn/gaming global; education/politics/finance national.
        global_side = min(
            profile_for(c).global_fraction
            for c in ("Technology", "Pornography", "Gaming")
        )
        national_side = max(
            profile_for(c).global_fraction
            for c in ("Educational Institutions", "Government & Politics",
                      "Economy & Finance")
        )
        assert global_side > national_side

    def test_scaled_profile(self):
        base = profile_for("Business")
        doubled = scaled_profile("Business", 2.0)
        assert doubled.prevalence == pytest.approx(2 * base.prevalence)
        assert doubled.mu == base.mu

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            CategoryProfile(prevalence=-1)
        with pytest.raises(ValueError):
            CategoryProfile(sigma=0)
        with pytest.raises(ValueError):
            CategoryProfile(mobile_mult=0)
        with pytest.raises(ValueError):
            CategoryProfile(global_fraction=1.5)


class TestTrafficAnchors:
    def test_four_curves_defined(self):
        assert set(TRAFFIC_ANCHORS) == {
            (Platform.WINDOWS, Metric.PAGE_LOADS),
            (Platform.WINDOWS, Metric.TIME_ON_PAGE),
            (Platform.ANDROID, Metric.PAGE_LOADS),
            (Platform.ANDROID, Metric.TIME_ON_PAGE),
        }

    def test_anchors_build_valid_distributions(self):
        for anchors in TRAFFIC_ANCHORS.values():
            TrafficDistribution(anchors)  # must not raise

    def test_paper_headline_numbers(self):
        w_loads = dict(TRAFFIC_ANCHORS[(Platform.WINDOWS, Metric.PAGE_LOADS)])
        assert w_loads[1] == pytest.approx(0.17)
        assert w_loads[6] == pytest.approx(0.25)
        w_time = dict(TRAFFIC_ANCHORS[(Platform.WINDOWS, Metric.TIME_ON_PAGE)])
        assert w_time[1] == pytest.approx(0.24)
        assert w_time[7] == pytest.approx(0.50)

    def test_time_more_concentrated_than_loads_on_windows(self):
        loads = TrafficDistribution(TRAFFIC_ANCHORS[(Platform.WINDOWS, Metric.PAGE_LOADS)])
        time = TrafficDistribution(TRAFFIC_ANCHORS[(Platform.WINDOWS, Metric.TIME_ON_PAGE)])
        for rank in (1, 10, 100, 10_000):
            assert time.cumulative_share(rank) > loads.cumulative_share(rank)

    def test_android_less_concentrated_than_windows_at_head(self):
        w = TrafficDistribution(TRAFFIC_ANCHORS[(Platform.WINDOWS, Metric.PAGE_LOADS)])
        a = TrafficDistribution(TRAFFIC_ANCHORS[(Platform.ANDROID, Metric.PAGE_LOADS)])
        assert a.cumulative_share(1) < w.cumulative_share(1)
        assert a.cumulative_share(6) < w.cumulative_share(6)

    def test_per_country_band(self):
        lo, hi = PER_COUNTRY_TOP1_RANGE
        assert lo < PER_COUNTRY_TOP1_MEDIAN < hi
