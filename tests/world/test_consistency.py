"""Cross-table consistency checks over the whole world definition.

The world data lives in four hand-maintained tables (countries,
taxonomy, profiles, sites); these tests catch the referential mistakes
a manual edit can introduce.
"""

from repro.categories.taxonomy import FINAL_TAXONOMY
from repro.synth.domains import COUNTRY_SUFFIX
from repro.synth.universe import NAMED_DOMAIN_OVERRIDES
from repro.etld.psl import DEFAULT_PSL
from repro.world.categories_data import ALL_CATEGORIES
from repro.world.countries import COUNTRIES, COUNTRY_CODES, by_region_group
from repro.world.profiles import all_profiles
from repro.world.sites import CHAMPION_RULES, NAMED_SITES, resolve_scope


class TestCrossReferences:
    def test_named_site_categories_in_taxonomy(self):
        for site in NAMED_SITES:
            assert site.category in FINAL_TAXONOMY, site.name

    def test_champion_categories_in_taxonomy(self):
        for rule in CHAMPION_RULES:
            assert rule.category in FINAL_TAXONOMY, rule.tag

    def test_country_boost_codes_are_study_countries(self):
        for site in NAMED_SITES:
            for code in site.country_boosts:
                assert code in COUNTRY_CODES, (site.name, code)

    def test_domain_overrides_reference_named_sites(self):
        names = {s.name for s in NAMED_SITES}
        for name in NAMED_DOMAIN_OVERRIDES:
            assert name in names, name

    def test_domain_overrides_parse_with_embedded_psl(self):
        for name, domain in NAMED_DOMAIN_OVERRIDES.items():
            match = DEFAULT_PSL.match(domain)
            assert match.registrable_domain is not None, (name, domain)

    def test_every_country_has_a_domain_suffix(self):
        assert set(COUNTRY_CODES) <= set(COUNTRY_SUFFIX)

    def test_profiles_cover_taxonomy_exactly(self):
        assert set(all_profiles()) == {s.name for s in ALL_CATEGORIES}

    def test_every_region_group_nonempty(self):
        for group, members in by_region_group().items():
            assert members, group

    def test_every_country_reachable_by_some_named_site(self):
        covered: set[str] = set()
        for site in NAMED_SITES:
            covered.update(resolve_scope(site.scope))
        assert covered == set(COUNTRY_CODES)


class TestRosterSanity:
    def test_strength_ladder_tiers(self):
        """Anchors sit above champions sit above the procedural cap."""
        from repro.synth.universe import PROCEDURAL_STRENGTH_CAP
        min_named = min(s.log_strength for s in NAMED_SITES)
        assert min_named > PROCEDURAL_STRENGTH_CAP - 1.0
        for rule in CHAMPION_RULES:
            assert rule.log_strength_range[0] > PROCEDURAL_STRENGTH_CAP

    def test_noise_scales_bounded(self):
        for site in NAMED_SITES:
            assert 0.0 < site.noise_scale <= 0.5, site.name

    def test_mega_anchors_have_smallest_noise(self):
        by_name = {s.name: s for s in NAMED_SITES}
        for mega in ("google", "youtube", "naver"):
            assert by_name[mega].noise_scale <= 0.2, mega

    def test_multinationals_marked_multi_cctld(self):
        by_name = {s.name: s for s in NAMED_SITES}
        for name in ("google", "amazon", "shopee", "mercadolibre", "ebay"):
            assert by_name[name].multi_cctld, name

    def test_champion_rule_tags_unique(self):
        tags = [rule.tag for rule in CHAMPION_RULES]
        assert len(tags) == len(set(tags))

    def test_scales_are_plausible(self):
        scales = sorted(c.web_scale for c in COUNTRIES)
        assert scales[0] >= 0.25          # every market big enough for 10K sites
        assert scales[-1] <= 12           # no runaway weight in global curves
