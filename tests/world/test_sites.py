"""Tests for the named-site roster and champion rules."""

import pytest

from repro.world.categories_data import ALL_CATEGORIES
from repro.world.countries import COUNTRY_CODES
from repro.world.sites import (
    CHAMPION_RULES,
    NAMED_SITES,
    Archetype,
    NamedSite,
    champion_countries,
    resolve_scope,
)

_BY_NAME = {s.name: s for s in NAMED_SITES}
_VALID_CATEGORIES = {s.name for s in ALL_CATEGORIES}


class TestRoster:
    def test_names_unique(self):
        assert len(_BY_NAME) == len(NAMED_SITES)

    def test_all_categories_valid(self):
        for site in NAMED_SITES:
            assert site.category in _VALID_CATEGORIES, site.name

    def test_all_scopes_resolve(self):
        for site in NAMED_SITES:
            codes = resolve_scope(site.scope)
            assert codes, site.name
            assert set(codes) <= set(COUNTRY_CODES)

    def test_google_is_strongest_global_site(self):
        google = _BY_NAME["google"]
        assert google.archetype is Archetype.GLOBAL
        for site in NAMED_SITES:
            if site.name not in ("google", "naver"):
                assert site.log_strength < google.log_strength, site.name

    def test_naver_endemic_to_korea_and_beats_google_there(self):
        naver = _BY_NAME["naver"]
        assert naver.archetype is Archetype.ENDEMIC
        assert resolve_scope(naver.scope) == ("KR",)
        assert naver.log_strength > _BY_NAME["google"].log_strength

    def test_youtube_time_leaning_google_loads_leaning(self):
        assert _BY_NAME["youtube"].time_mult > 1.0
        assert _BY_NAME["google"].time_mult < 1.0

    def test_streaming_sites_lose_mobile_traffic_to_apps(self):
        for name in ("youtube", "netflix", "roblox", "twitch", "whatsapp"):
            assert _BY_NAME[name].mobile_mult < 0.5, name
            assert _BY_NAME[name].has_android_app, name

    def test_adult_sites_are_mobile_leaning(self):
        for name in ("xnxx", "xvideos", "pornhub"):
            assert _BY_NAME[name].mobile_mult > 1.2, name

    def test_censoring_countries_suppress_major_adult_sites(self):
        # Section 5.3.2: KR, TR, VN, RU keep pornhub/xnxx/xvideos out of
        # their top 10.
        for name in ("pornhub", "xnxx", "xvideos"):
            boosts = _BY_NAME[name].country_boosts
            for country in ("KR", "TR", "VN", "RU"):
                assert boosts.get(country, 0) <= -3.0, (name, country)

    def test_netflix_absent_in_japan_vietnam_russia(self):
        netflix_scope = set(resolve_scope(_BY_NAME["netflix"].scope))
        assert not {"JP", "VN", "RU"} & netflix_scope

    def test_korea_has_its_own_platform_roster(self):
        korean = [s.name for s in NAMED_SITES if resolve_scope(s.scope) == ("KR",)]
        # Naver, Daum, four forums, namu.wiki, Nexon, and three streaming sites.
        assert len(korean) >= 10

    def test_december_shift_for_commerce_anchors(self):
        assert _BY_NAME["amazon"].december_mult > 1.3
        assert _BY_NAME["kuleuven"].december_mult < 0.7

    def test_amp_is_mobile_only_in_practice(self):
        amp = _BY_NAME["ampproject"]
        assert amp.mobile_mult > 10


class TestScopeResolution:
    def test_global_scope(self):
        assert resolve_scope(("global",)) == COUNTRY_CODES

    def test_region_scope(self):
        assert set(resolve_scope(("region:east_asia_zh",))) == {"TW", "HK"}

    def test_language_scope(self):
        assert set(resolve_scope(("lang:ru",))) == {"RU", "UA"}

    def test_mixed_scope(self):
        codes = set(resolve_scope(("region:southeast_asia", "TW")))
        assert "TW" in codes and "VN" in codes

    def test_unknown_selectors_raise(self):
        with pytest.raises(ValueError):
            resolve_scope(("region:narnia",))
        with pytest.raises(ValueError):
            resolve_scope(("lang:xx",))
        with pytest.raises(KeyError):
            resolve_scope(("XX",))


class TestChampions:
    def test_rule_countries_are_valid(self):
        for rule in CHAMPION_RULES:
            assert set(rule.countries) <= set(COUNTRY_CODES), rule.tag

    def test_rule_strength_ranges_ordered(self):
        for rule in CHAMPION_RULES:
            lo, hi = rule.log_strength_range
            assert lo < hi

    def test_government_champions_in_26_countries(self):
        assert len(champion_countries("government")) == 26

    def test_bank_champions_in_17_countries(self):
        assert len(champion_countries("bank")) == 17

    def test_universities_mostly_global_south(self):
        # Section 5.3.2: 9 of 10 university countries are in the global
        # south (8 in South/Central America), plus Belgium.
        unis = champion_countries("university")
        assert "BE" in unis
        americas = {"AR", "BO", "BR", "CL", "CO", "EC", "PE", "UY", "MX"}
        assert len(set(unis) & americas) >= 8

    def test_unknown_tag_raises(self):
        with pytest.raises(KeyError):
            champion_countries("nonexistent")


class TestValidation:
    def test_bad_multiplier_rejected(self):
        with pytest.raises(ValueError):
            NamedSite("x", "Business", ("global",), 5.0, mobile_mult=0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            NamedSite("", "Business", ("global",), 5.0)
