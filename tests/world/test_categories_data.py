"""Tests for the Table 3 taxonomy data."""

from repro.world.categories_data import (
    ALL_CATEGORIES,
    CURATED_CATEGORIES,
    DROPPED_RAW_CATEGORIES,
    MERGED_RAW_CATEGORIES,
    TABLE3_TAXONOMY,
    category_names,
    supercategory_names,
)


class TestTable3:
    def test_61_categories_22_supercategories(self):
        assert len(category_names()) == 61
        assert len(supercategory_names()) == 22

    def test_category_names_unique(self):
        names = category_names()
        assert len(set(names)) == len(names)

    def test_entertainment_is_largest_supercategory(self):
        entertainment = [
            s for s in TABLE3_TAXONOMY if s.supercategory == "Entertainment"
        ]
        assert len(entertainment) == 13

    def test_society_lifestyle_has_15_categories(self):
        lifestyle = [
            s for s in TABLE3_TAXONOMY if s.supercategory == "Society & Lifestyle"
        ]
        assert len(lifestyle) == 15

    def test_key_categories_present(self):
        names = set(category_names())
        for expected in (
            "Pornography", "Video Streaming", "News & Media", "Business",
            "Ecommerce", "Educational Institutions", "Webmail", "Gaming",
            "Economy & Finance", "Chat & Messaging", "Unknown",
        ):
            assert expected in names

    def test_table3_has_no_curated_categories(self):
        assert all(not s.curated for s in TABLE3_TAXONOMY)


class TestCuratedAndRaw:
    def test_curated_are_search_and_social(self):
        assert {s.name for s in CURATED_CATEGORIES} == {
            "Search Engines", "Social Networks",
        }
        assert all(s.curated for s in CURATED_CATEGORIES)

    def test_all_categories_is_union(self):
        assert len(ALL_CATEGORIES) == 63

    def test_19_dropped_raw_categories(self):
        # Appendix B: 19 categories were excluded for low accuracy.
        assert len(DROPPED_RAW_CATEGORIES) == 19
        assert len(set(DROPPED_RAW_CATEGORIES)) == 19

    def test_dropped_raw_disjoint_from_final(self):
        assert not set(DROPPED_RAW_CATEGORIES) & set(category_names())

    def test_merge_targets_exist_in_final_taxonomy(self):
        names = set(category_names())
        for target in MERGED_RAW_CATEGORIES.values():
            assert target in names
