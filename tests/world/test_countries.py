"""Tests for the Appendix A country roster."""

import pytest

from repro.world.countries import (
    COUNTRIES,
    COUNTRY_CODES,
    Country,
    by_continent,
    by_region_group,
    get_country,
    language_neighbors,
)


class TestRoster:
    def test_exactly_45_countries(self):
        assert len(COUNTRIES) == 45
        assert len(COUNTRY_CODES) == 45

    def test_continent_counts_match_appendix_a(self):
        counts = {continent: len(cs) for continent, cs in by_continent().items()}
        assert counts == {
            "Africa": 7,
            "Asia": 10,
            "Europe": 10,
            "North America": 7,
            "Oceania": 2,
            "South America": 9,
        }

    def test_codes_unique_and_iso_shaped(self):
        assert len(set(COUNTRY_CODES)) == 45
        assert all(len(code) == 2 and code.isupper() for code in COUNTRY_CODES)

    def test_every_country_has_language_and_positive_scale(self):
        for country in COUNTRIES:
            assert country.languages
            assert country.web_scale > 0
            assert country.list_size >= 10_000


class TestLookups:
    def test_get_country(self):
        assert get_country("KR").name == "South Korea"
        with pytest.raises(KeyError):
            get_country("XX")

    def test_korea_and_japan_are_singleton_groups(self):
        groups = by_region_group()
        assert [c.code for c in groups["korea"]] == ["KR"]
        assert [c.code for c in groups["japan"]] == ["JP"]

    def test_latam_spanish_cluster_is_large(self):
        groups = by_region_group()
        latam = {c.code for c in groups["latam_es"]}
        assert {"AR", "MX", "CL", "CO", "PE"} <= latam
        assert "BR" not in latam

    def test_anglosphere_spans_continents(self):
        groups = by_region_group()
        anglo = {c.code for c in groups["anglosphere"]}
        assert anglo == {"AU", "CA", "GB", "NZ", "US"}

    def test_language_neighbors_spanish(self):
        neighbors = set(language_neighbors("MX"))
        assert "AR" in neighbors and "ES" in neighbors
        assert "BR" not in neighbors

    def test_shares_language(self):
        assert get_country("BE").shares_language(get_country("FR"))
        assert get_country("BE").shares_language(get_country("NL"))
        assert not get_country("JP").shares_language(get_country("KR"))


class TestValidation:
    def test_bad_code_rejected(self):
        with pytest.raises(ValueError):
            Country("usa", "X", "Europe", ("en",), "g")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            Country("XX", "X", "Europe", ("en",), "g", web_scale=0)
