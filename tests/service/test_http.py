"""Tests for the HTTP layer: routing, errors, caching acceptance criteria."""

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import ENDPOINTS, create_server


@pytest.fixture()
def server(service):
    srv = create_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


def fetch(server, path: str) -> tuple[int, bytes]:
    """GET ``path``; returns (status, body) for 2xx and 4xx/5xx alike."""
    try:
        with urllib.request.urlopen(server.url + path, timeout=10) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def fetch_json(server, path: str) -> tuple[int, dict]:
    status, raw = fetch(server, path)
    return status, json.loads(raw)


class TestRouting:
    def test_index_lists_endpoints(self, server):
        status, payload = fetch_json(server, "/")
        assert status == 200
        assert payload["endpoints"] == list(ENDPOINTS)

    def test_healthz(self, server):
        status, payload = fetch_json(server, "/v1/healthz")
        assert status == 200
        assert payload["status"] == "ok"

    def test_rankings(self, server):
        status, payload = fetch_json(server, "/v1/rankings?country=KR&top=3")
        assert status == 200
        assert payload["country"] == "KR"
        assert len(payload["sites"]) == 3

    def test_rankings_full_params(self, server):
        status, payload = fetch_json(
            server,
            "/v1/rankings?country=us&platform=android"
            "&metric=time_on_page&month=2022-02&top=2",
        )
        assert status == 200
        assert payload["platform"] == "android"
        assert payload["metric"] == "time_on_page"

    def test_sites(self, server, service):
        top = json.loads(service.rankings("US", top=1))["sites"][0]
        status, payload = fetch_json(server, f"/v1/sites/{top}")
        assert status == 200
        assert payload["ranks"]["US"] == 1

    def test_distributions(self, server):
        status, payload = fetch_json(server, "/v1/distributions")
        assert status == 200
        assert payload["total_sites"] > 0

    def test_analyses_catalogue(self, server):
        status, payload = fetch_json(server, "/v1/analyses")
        assert status == 200
        assert any(t["name"] == "concentration" for t in payload["tasks"])

    def test_trailing_slash_is_tolerated(self, server):
        assert fetch(server, "/v1/healthz/")[0] == 200


class TestServerUrl:
    def test_loopback_bind_round_trips(self, server):
        host, port = server.server_address[:2]
        assert server.url == f"http://{host}:{port}"

    def test_wildcard_bind_substitutes_loopback(self, service):
        srv = create_server(service, "0.0.0.0", 0)
        try:
            port = srv.server_address[1]
            assert srv.url == f"http://127.0.0.1:{port}"
        finally:
            srv.server_close()

    def test_wildcard_url_is_connectable(self, service):
        srv = create_server(service, "0.0.0.0", 0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            status, payload = fetch_json(srv, "/v1/healthz")
            assert status == 200
            assert payload["status"] == "ok"
        finally:
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=5)


class TestSegmentDecoding:
    def test_encoded_slash_stays_one_site_segment(self, server):
        # %2F must not shatter the route: this is a site lookup that
        # finds nothing, not an unknown-endpoint 404.
        status, payload = fetch_json(server, "/v1/sites/foo%2Fbar")
        assert status == 404
        assert "foo/bar" in payload["message"]
        assert "not ranked" in payload["message"]

    def test_encoded_site_routes_and_decodes(self, server, service):
        top = json.loads(service.rankings("US", top=1))["sites"][0]
        encoded = f"%{ord(top[0]):02X}{top[1:]}"  # first char percent-encoded
        assert encoded != top
        status, payload = fetch_json(server, f"/v1/sites/{encoded}")
        assert status == 200
        assert payload["site"] == top

    def test_encoded_slash_in_task_name_is_one_segment(self, server):
        status, payload = fetch_json(server, "/v1/analyses/a%2Fb")
        assert status == 404
        assert "concentration" in payload["choices"]  # task 404, not route

    def test_literal_extra_segment_is_still_unknown_route(self, server):
        status, payload = fetch_json(server, "/v1/sites/a/b")
        assert status == 404
        assert payload["choices"] == list(ENDPOINTS)


class TestErrors:
    def test_unknown_country_is_404_with_choices(self, server):
        status, payload = fetch_json(server, "/v1/rankings?country=ZZ")
        assert status == 404
        assert payload["error"] == "not_found"
        assert payload["choices"] == ["KR", "US"]
        assert "Traceback" not in payload["message"]

    def test_missing_country_param_is_404(self, server):
        status, payload = fetch_json(server, "/v1/rankings")
        assert status == 404
        assert payload["choices"] == ["KR", "US"]

    def test_bad_platform_is_400(self, server):
        status, payload = fetch_json(server, "/v1/rankings?country=US&platform=amiga")
        assert status == 400
        assert payload["error"] == "bad_request"

    def test_unknown_task_is_404_with_registry(self, server):
        status, payload = fetch_json(server, "/v1/analyses/nope")
        assert status == 404
        assert "concentration" in payload["choices"]

    def test_unknown_route_is_404_with_endpoints(self, server, service):
        status, payload = fetch_json(server, "/v2/everything")
        assert status == 404
        assert payload["choices"] == list(ENDPOINTS)
        assert service.metrics.snapshot()["endpoints"]["unknown"]["errors"] == 1

    def test_write_methods_are_405(self, server):
        request = urllib.request.Request(
            server.url + "/v1/healthz", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=10)
        assert exc.value.code == 405
        assert json.loads(exc.value.read())["error"] == "method_not_allowed"


class TestAcceptance:
    """The ISSUE's acceptance criteria, asserted over the wire."""

    def test_second_request_served_from_lru_without_pipeline(self, server):
        first = fetch(server, "/v1/analyses/concentration")
        second = fetch(server, "/v1/analyses/concentration")
        assert first == second  # status and bytes
        _, metrics = fetch_json(server, "/v1/metrics")
        assert metrics["counters"]["pipeline_runs"] == 1
        assert metrics["cache"]["hits"] == 1
        assert metrics["endpoints"]["analysis"]["requests"] == 2

    def test_concurrent_identical_requests_byte_identical(self, server):
        barrier = threading.Barrier(8)

        def hit() -> tuple[int, bytes]:
            barrier.wait()
            return fetch(server, "/v1/rankings?country=US&top=20")

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = [f.result() for f in [pool.submit(hit) for _ in range(8)]]
        statuses = {status for status, _ in results}
        bodies = {raw for _, raw in results}
        assert statuses == {200}
        assert len(bodies) == 1

    def test_metrics_track_latency_histograms(self, server):
        fetch(server, "/v1/rankings?country=US")
        _, metrics = fetch_json(server, "/v1/metrics")
        latency = metrics["endpoints"]["rankings"]["latency"]
        assert latency["count"] == 1
        assert sum(latency["buckets"].values()) == 1
        assert metrics["endpoints"]["rankings"]["requests"] == 1


class TestExactlyOnceMetrics:
    """Every response is observed exactly once, whatever path produced it."""

    def test_counters_equal_responses_sent(self, server, service):
        responses = 0
        for path in (
            "/",                                  # index (handler-observed)
            "/v1/healthz",                        # 200 via the service
            "/v1/rankings?country=US",            # 200 via the service
            "/v1/rankings",                       # 404 raised in routing
            "/v1/rankings?country=ZZ",            # 404 raised in the service
            "/v1/rankings?country=US&platform=x", # 400 raised in the service
            "/v2/everything",                     # 404 unknown route
            "/v1/sites/a/b",                      # 404 unknown route shape
        ):
            fetch(server, path)
            responses += 1
        request = urllib.request.Request(
            server.url + "/v1/healthz", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(request, timeout=10)  # 405
        responses += 1

        assert service.metrics.total_requests() == responses
        status, metrics = fetch_json(server, "/v1/metrics")
        responses += 1
        assert status == 200
        # The snapshot was taken before its own response went out.
        assert metrics["requests_total"] == responses - 1
        assert service.metrics.total_requests() == responses

    def test_route_level_404_reaches_metrics(self, server, service):
        fetch(server, "/v1/rankings")  # missing ?country — raised in _route
        stats = service.metrics.snapshot()["endpoints"]["rankings"]
        assert stats == {**stats, "requests": 1, "errors": 1}

    def test_405_reaches_metrics(self, server, service):
        request = urllib.request.Request(
            server.url + "/v1/metrics", data=b"{}", method="PUT"
        )
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(request, timeout=10)
        snapshot = service.metrics.snapshot()
        stats = snapshot["endpoints"]["method_not_allowed"]
        assert stats == {**stats, "requests": 1, "errors": 1}


class TestTraceWiring:
    def test_metrics_trace_block_disabled_by_default(self, server):
        _, metrics = fetch_json(server, "/v1/metrics")
        assert metrics["trace"] == {"enabled": False}

    def test_requests_traced_when_tracer_installed(self, server):
        from repro.obs import Tracer, set_tracer

        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            fetch(server, "/v1/rankings?country=US&top=3")
            fetch(server, "/v2/everything")
            _, metrics = fetch_json(server, "/v1/metrics")
        finally:
            set_tracer(previous)

        assert metrics["trace"]["enabled"] is True
        assert metrics["trace"]["trace_id"] == tracer.trace_id
        # The handler thread closes its span just after the client has
        # read the body, so give the last span a moment to land.
        deadline = time.time() + 5
        while time.time() < deadline:
            spans = tracer.collector.snapshot()
            requests = [s for s in spans if s["name"] == "http.request"]
            if len(requests) == 3:
                break
            time.sleep(0.01)
        assert sorted(
            (s["attrs"]["endpoint"], s["attrs"]["status_code"])
            for s in requests
        ) == [("metrics", 200), ("rankings", 200), ("unknown", 404)]
        # Service spans nest under their request span.
        ranking_request = requests[0]
        service_span = next(
            s for s in spans if s["name"] == "service.rankings"
        )
        assert service_span["parent"] == ranking_request["span"]
