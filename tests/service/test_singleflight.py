"""Concurrent single-flight under LRU eviction churn.

``QueryService._cached`` promises: N concurrent identical requests
build once and all get byte-identical payloads, the per-key flight
locks never leak, and none of that degrades when the cache is so small
(by capacity or byte budget) that entries are evicted between the
build and the next lookup.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.service import PayloadCache, QueryService


@pytest.fixture(scope="module")
def dataset(generator):
    return generator.generate(
        countries=("US", "KR"),
        platforms=(Platform.WINDOWS,),
        metrics=(Metric.PAGE_LOADS,),
        months=(REFERENCE_MONTH,),
    )


class _BuildCounter:
    """Counts builds per key and detects concurrent same-key builds."""

    def __init__(self):
        self._lock = threading.Lock()
        self.builds: dict[str, int] = {}
        self.in_flight: set[str] = set()
        self.overlapped = False

    def build(self, key: str, barrier: threading.Barrier | None = None):
        with self._lock:
            if key in self.in_flight:
                self.overlapped = True
            self.in_flight.add(key)
            self.builds[key] = self.builds.get(key, 0) + 1
        if barrier is not None:
            # Park until every thread has *entered* _cached, so the
            # single-flight lock is what serialises them, not timing.
            barrier.wait(timeout=10)
        with self._lock:
            self.in_flight.discard(key)
        # Deterministic payload: rebuilds after eviction must produce
        # the same bytes, like every real endpoint.
        return {"key": key}


class TestSingleFlightExactlyOnce:
    def test_many_threads_one_build(self, dataset, generator):
        """With room in the cache, 16 concurrent identical requests
        produce exactly one build and byte-identical payloads."""
        service = QueryService(
            dataset, config=generator.config, cache=PayloadCache(64)
        )
        counter = _BuildCounter()
        key = ("probe", "hot")

        with ThreadPoolExecutor(16) as pool:
            results = list(pool.map(
                lambda _: service._cached(key, lambda: counter.build("hot")),
                range(16),
            ))
        assert counter.builds == {"hot": 1}
        assert not counter.overlapped
        assert len(set(results)) == 1
        assert service._flights == {}

    def test_every_key_builds_once_across_keys(self, dataset, generator):
        service = QueryService(
            dataset, config=generator.config, cache=PayloadCache(64)
        )
        counter = _BuildCounter()

        def query(i: int):
            name = f"k{i % 8}"
            return service._cached(
                ("probe", name), lambda: counter.build(name)
            )

        with ThreadPoolExecutor(16) as pool:
            list(pool.map(query, range(200)))
        assert counter.builds == {f"k{i}": 1 for i in range(8)}
        assert not counter.overlapped
        assert service._flights == {}


class TestSingleFlightUnderEviction:
    def test_eviction_churn_never_overlaps_builds(self, dataset, generator):
        """A 2-entry cache under a 12-key workload evicts constantly;
        keys rebuild after eviction, but same-key builds still never
        run concurrently, payloads stay byte-identical per key, and no
        flight lock leaks."""
        service = QueryService(
            dataset, config=generator.config, cache=PayloadCache(2)
        )
        counter = _BuildCounter()
        seen: dict[str, set[bytes]] = {f"k{i}": set() for i in range(12)}
        seen_lock = threading.Lock()

        def query(i: int):
            name = f"k{i % 12}"
            body = service._cached(
                ("probe", name), lambda: counter.build(name)
            )
            with seen_lock:
                seen[name].add(body)

        with ThreadPoolExecutor(16) as pool:
            list(pool.map(query, range(400)))

        assert not counter.overlapped, "two builds of one key overlapped"
        assert service._flights == {}, "a flight lock leaked"
        assert service.cache.evictions > 0, "workload never evicted"
        for name, bodies in seen.items():
            assert len(bodies) == 1, f"{name} produced {len(bodies)} bodies"
            assert counter.builds[name] >= 1

    def test_byte_budget_eviction_with_real_endpoint(self, dataset, generator):
        """Hammer a real endpoint through a byte-budgeted cache: every
        response stays byte-identical and the budget holds throughout."""
        service = QueryService(
            dataset,
            config=generator.config,
            cache=PayloadCache(64, max_bytes=600),
        )
        reference = {
            top: service.rankings("US", top=top) for top in range(1, 9)
        }
        errors: list[str] = []

        def query(i: int):
            top = 1 + i % 8
            body = service.rankings("US", top=top)
            if body != reference[top]:
                errors.append(f"top={top} diverged")
            if service.cache.cache_bytes > 600:
                errors.append(f"budget exceeded: {service.cache.cache_bytes}")

        with ThreadPoolExecutor(12) as pool:
            list(pool.map(query, range(300)))
        assert errors == []
        assert service._flights == {}
        assert service.cache.evictions > 0

    def test_simultaneous_entry_single_build(self, dataset, generator):
        """8 threads that provably entered _cached before any build
        finished (barrier) still produce exactly one build."""
        service = QueryService(
            dataset, config=generator.config, cache=PayloadCache(2)
        )
        counter = _BuildCounter()
        barrier = threading.Barrier(8, timeout=10)
        entered = threading.Barrier(8, timeout=10)

        def query(_):
            entered.wait()
            return service._cached(
                ("probe", "sync"),
                lambda: counter.build("sync", barrier=None),
            )

        # The barrier-in-build variant would deadlock (only one build
        # runs at a time — that is the point); instead sync the *entry*
        # and assert one build resulted.
        with ThreadPoolExecutor(8) as pool:
            results = list(pool.map(query, range(8)))
        assert counter.builds == {"sync": 1}
        assert len(set(results)) == 1
        assert service._flights == {}
