"""Tests for the serving-layer metrics primitives."""

import threading

from repro.service.metrics import (
    LATENCY_BUCKETS_MS,
    LatencyHistogram,
    ServiceMetrics,
)


class TestLatencyHistogram:
    def test_observations_land_in_correct_buckets(self):
        hist = LatencyHistogram()
        hist.observe(0.0004)          # 0.4 ms -> first bucket
        hist.observe(0.030)           # 30 ms  -> le_50ms
        hist.observe(5.0)             # 5 s    -> overflow bucket
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["buckets"]["le_1ms"] == 1
        assert snap["buckets"]["le_50ms"] == 1
        assert snap["buckets"]["gt_1000ms"] == 1

    def test_sum_and_max_track_milliseconds(self):
        hist = LatencyHistogram()
        hist.observe(0.002)
        hist.observe(0.010)
        snap = hist.snapshot()
        assert snap["sum_ms"] == 12.0
        assert snap["max_ms"] == 10.0

    def test_bucket_count_covers_bounds_plus_overflow(self):
        hist = LatencyHistogram()
        assert len(hist.counts) == len(LATENCY_BUCKETS_MS) + 1
        assert len(hist.snapshot()["buckets"]) == len(LATENCY_BUCKETS_MS) + 1


class TestServiceMetrics:
    def test_observe_counts_requests_and_errors(self):
        metrics = ServiceMetrics()
        metrics.observe("rankings", 0.001)
        metrics.observe("rankings", 0.002, error=True)
        snap = metrics.snapshot()["endpoints"]["rankings"]
        assert snap["requests"] == 2
        assert snap["errors"] == 1
        assert snap["latency"]["count"] == 2

    def test_named_counters_accumulate(self):
        metrics = ServiceMetrics()
        metrics.add("pipeline_runs")
        metrics.add("pipeline_runs", 2)
        assert metrics.counter("pipeline_runs") == 3
        assert metrics.counter("never_touched") == 0

    def test_snapshot_is_json_shaped_and_sorted(self):
        import json

        metrics = ServiceMetrics()
        metrics.observe("b", 0.001)
        metrics.observe("a", 0.001)
        snap = metrics.snapshot(cache={"hits": 1})
        json.dumps(snap)  # must not raise
        assert list(snap["endpoints"]) == ["a", "b"]
        assert snap["cache"] == {"hits": 1}

    def test_concurrent_observations_are_not_lost(self):
        metrics = ServiceMetrics()

        def hammer():
            for _ in range(500):
                metrics.observe("x", 0.0001)
                metrics.add("n")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.snapshot()["endpoints"]["x"]["requests"] == 4000
        assert metrics.counter("n") == 4000
