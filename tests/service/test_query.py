"""Tests for QueryService: coercion, caching, pipeline integration."""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import Metric, Platform
from repro.pipeline import canonical_json
from repro.service import (
    BadRequest,
    NotFound,
    QueryService,
    render_payload,
)


def body(payload_bytes: bytes) -> dict:
    return json.loads(payload_bytes)


class TestRenderPayload:
    def test_canonical_json_plus_newline(self):
        payload = {"b": 1, "a": [1, 2]}
        rendered = render_payload(payload)
        assert rendered == canonical_json(payload).encode() + b"\n"
        assert rendered == b'{"a":[1,2],"b":1}\n'


class TestRankings:
    def test_head_of_one_list(self, service):
        payload = body(service.rankings("US", top=5))
        assert payload["country"] == "US"
        assert payload["platform"] == "windows"
        assert payload["metric"] == "page_loads"
        assert payload["month"] == "2022-02"
        assert payload["top"] == 5
        assert len(payload["sites"]) == 5
        assert payload["total_sites"] >= 5

    def test_country_is_case_insensitive(self, service):
        assert service.rankings("us") == service.rankings("US")

    def test_top_clamps_to_list_length(self, service):
        payload = body(service.rankings("US", top=10_000_000))
        assert payload["top"] == payload["total_sites"]

    def test_unknown_country_404_with_choices(self, service):
        with pytest.raises(NotFound) as exc:
            service.rankings("ZZ")
        assert exc.value.status == 404
        assert exc.value.payload()["choices"] == list(service.dataset.countries)

    def test_bad_platform_400_with_choices(self, service):
        with pytest.raises(BadRequest) as exc:
            service.rankings("US", platform="amiga")
        assert exc.value.status == 400
        assert "windows" in exc.value.payload()["choices"]

    def test_absent_platform_404(self, service):
        with pytest.raises(NotFound):
            service.rankings("US", platform=Platform.LINUX)

    def test_bad_month_and_bad_top_are_400(self, service):
        with pytest.raises(BadRequest, match="month"):
            service.rankings("US", month="february")
        with pytest.raises(BadRequest, match="top"):
            service.rankings("US", top="lots")
        with pytest.raises(BadRequest, match="top"):
            service.rankings("US", top=0)

    def test_string_params_coerce(self, service):
        via_strings = service.rankings(
            "US", platform="android", metric="time_on_page", month="2022-02"
        )
        via_enums = service.rankings(
            "US", platform=Platform.ANDROID, metric=Metric.TIME_ON_PAGE
        )
        assert via_strings == via_enums


class TestSite:
    def test_rank_across_countries(self, service):
        top_site = body(service.rankings("US", top=1))["sites"][0]
        payload = body(service.site(top_site))
        assert payload["site"] == top_site
        assert set(payload["ranks"]) == set(service.dataset.countries)
        assert payload["ranks"]["US"] == 1
        assert payload["best"]["rank"] == 1
        assert 1 <= payload["countries_ranked"] <= 2

    def test_unranked_site_is_404(self, service):
        with pytest.raises(NotFound):
            service.site("no-such-site.invalid")

    def test_empty_site_is_400(self, service):
        with pytest.raises(BadRequest):
            service.site("")


class TestDistribution:
    def test_curve_shape(self, service):
        payload = body(service.distribution())
        assert payload["platform"] == "windows"
        assert payload["total_sites"] > 0
        assert payload["anchors"]
        shares = payload["cumulative_share"]
        assert shares["1"] <= shares["10"] <= 1.0


class TestAnalysis:
    def test_artifact_payload(self, service):
        payload = body(service.analysis("concentration"))
        assert payload["task"] == "concentration"
        assert payload["section"].startswith("§4.1")
        assert payload["result"]

    def test_unknown_task_404_lists_registry(self, service):
        with pytest.raises(NotFound) as exc:
            service.analysis("nope")
        assert "concentration" in exc.value.payload()["choices"]

    def test_second_call_skips_the_pipeline(self, service):
        service.analysis("concentration")
        assert service.metrics.counter("pipeline_runs") == 1
        service.analysis("concentration")
        assert service.metrics.counter("pipeline_runs") == 1
        assert service.cache.hits == 1

    def test_warm_artifact_store_serves_cached(self, service_dataset, generator, tmp_path):
        store = tmp_path / "warm"
        first = QueryService(service_dataset, store=store, config=generator.config)
        cold = first.analysis("concentration")
        second = QueryService(service_dataset, store=store, config=generator.config)
        warm = second.analysis("concentration")
        assert warm == cold  # byte-identical across cold and warm runs
        assert second.metrics.counter("pipeline_cached") == 1
        assert second.metrics.counter("pipeline_executed") == 0

    def test_catalogue(self, service):
        payload = body(service.analyses())
        names = [task["name"] for task in payload["tasks"]]
        assert names == sorted(names)
        assert "concentration" in names


class TestHealthAndMetrics:
    def test_healthz(self, service):
        payload = body(service.healthz())
        assert payload["status"] == "ok"
        assert payload["countries"] == 2
        assert payload["months"] == ["2022-02"]
        assert payload["lists"] == len(service.dataset)

    def test_metrics_accumulate(self, service):
        service.rankings("US")
        service.rankings("US")
        with pytest.raises(NotFound):
            service.rankings("ZZ")
        payload = body(service.metrics_payload())
        rankings = payload["endpoints"]["rankings"]
        assert rankings["requests"] == 3
        assert rankings["errors"] == 1
        assert payload["cache"]["hits"] == 1
        assert payload["cache"]["misses"] == 1  # ZZ fails before the cache probe
        assert payload["artifact_store"]["writes"] == 0

    def test_errors_do_not_poison_the_cache(self, service):
        with pytest.raises(NotFound):
            service.rankings("ZZ")
        assert len(service.cache) == 0


class TestCachingSemantics:
    def test_identical_queries_are_byte_identical(self, service):
        first = service.rankings("KR", top=10)
        second = service.rankings("KR", top=10)
        assert first == second
        assert service.cache.hits == 1
        assert service.cache.misses == 1

    def test_distinct_params_get_distinct_entries(self, service):
        service.rankings("US", top=5)
        service.rankings("US", top=6)
        assert len(service.cache) == 2

    def test_concurrent_identical_requests_byte_identical(self, service):
        barrier = threading.Barrier(8)

        def fetch() -> bytes:
            barrier.wait()
            return service.rankings("US", top=25)

        with ThreadPoolExecutor(max_workers=8) as pool:
            bodies = [f.result() for f in [pool.submit(fetch) for _ in range(8)]]
        assert len(set(bodies)) == 1
        snap = service.cache.snapshot()
        assert snap["hits"] + snap["misses"] == 8

    def test_concurrent_analysis_runs_pipeline_once(self, service):
        barrier = threading.Barrier(6)

        def fetch() -> bytes:
            barrier.wait()
            return service.analysis("concentration")

        with ThreadPoolExecutor(max_workers=6) as pool:
            bodies = [f.result() for f in [pool.submit(fetch) for _ in range(6)]]
        assert len(set(bodies)) == 1
        assert service.metrics.counter("pipeline_runs") == 1

    def test_cache_disabled_still_byte_identical(self, service_dataset, generator):
        service = QueryService(service_dataset, config=generator.config, cache=0)
        assert service.rankings("US") == service.rankings("US")
        assert len(service.cache) == 0


class TestSingleFlightLifecycle:
    """Flight locks are per-build scaffolding and must never accumulate."""

    def test_flights_empty_after_success(self, service):
        service.rankings("US")
        service.site(json.loads(service.rankings("US", top=1))["sites"][0])
        assert service._flights == {}

    def test_flights_empty_after_error(self, service):
        # The 404 is raised inside build(), i.e. while the flight lock
        # for this key is held — it must still be discarded.
        with pytest.raises(NotFound):
            service.site("no-such-site.invalid")
        assert service._flights == {}

    def test_flights_empty_after_mixed_sequence(self, service):
        service.rankings("US")
        with pytest.raises(NotFound):
            service.site("no-such-site.invalid")
        service.rankings("KR")
        with pytest.raises(NotFound):
            service.rankings("US", month="2021-12")
        assert service._flights == {}

    def test_hammering_an_erroring_key_stays_bounded(self, service):
        barrier = threading.Barrier(8)

        def hammer(i: int) -> None:
            barrier.wait()
            for _ in range(20):
                with pytest.raises(NotFound):
                    service.site(f"missing-{i % 2}.invalid")

        with ThreadPoolExecutor(max_workers=8) as pool:
            for f in [pool.submit(hammer, i) for i in range(8)]:
                f.result()
        assert service._flights == {}
        assert len(service.cache) == 0  # errors never cached either

    def test_erroring_key_can_still_single_flight_later(self, service):
        with pytest.raises(NotFound):
            service.site("no-such-site.invalid")
        # A later success on the same shape of call works normally.
        top = json.loads(service.rankings("US", top=1))["sites"][0]
        assert json.loads(service.site(top))["site"] == top
        assert service._flights == {}


class TestFromEngine:
    def test_lazy_grid_materialises_on_query(self, generator):
        from repro.engine import GenerationEngine

        engine = GenerationEngine(generator.config)
        service = QueryService.from_engine(
            engine,
            countries=("US", "FR"),
            platforms=(Platform.WINDOWS,),
            metrics=(Metric.PAGE_LOADS,),
        )
        assert service.dataset.pending == 2
        payload = body(service.rankings("FR", top=3))
        assert payload["country"] == "FR"
        assert service.dataset.pending == 1
        health = body(service.healthz())
        assert health["pending_slices"] == 1


class TestStorageBackends:
    def test_healthz_reports_storage(self, service):
        assert body(service.healthz())["storage"] == "memory"

    def test_serves_a_mapped_columnar_dataset(
        self, service_dataset, generator, tmp_path
    ):
        from repro.export.io import save_dataset
        from repro.api import load

        save_dataset(service_dataset, tmp_path / "col", format="columnar")
        mapped = load(tmp_path / "col")
        service = QueryService(
            mapped, store=tmp_path / "artifacts", config=generator.config
        )
        health = body(service.healthz())
        assert health["storage"] == "columnar-mmap"
        assert health["pending_slices"] == len(service_dataset)
        payload = body(service.rankings("US", top=5))
        expected = service_dataset.get(
            "US", Platform.WINDOWS, Metric.PAGE_LOADS,
            service_dataset.months[-1],
        )
        assert tuple(payload["sites"]) == expected.top(5).sites
