"""Serving-layer fixtures: one small two-country dataset + service."""

from __future__ import annotations

import pytest

from repro.core import Metric, Platform, REFERENCE_MONTH
from repro.service import QueryService


@pytest.fixture(scope="module")
def service_dataset(generator):
    """US + KR, both platforms and metrics, the reference month."""
    return generator.generate(
        countries=("US", "KR"),
        platforms=Platform.studied(),
        metrics=Metric.studied(),
        months=(REFERENCE_MONTH,),
    )


@pytest.fixture()
def service(service_dataset, generator, tmp_path) -> QueryService:
    """A fresh service per test: clean cache, metrics and artifact store."""
    return QueryService(
        service_dataset,
        store=tmp_path / "artifacts",
        config=generator.config,
    )
