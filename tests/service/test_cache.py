"""Tests for the rendered-payload LRU cache."""

import threading

import pytest

from repro.service.cache import PayloadCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = PayloadCache(capacity=4)
        assert cache.get(("a",)) is None
        cache.put(("a",), b"payload")
        assert cache.get(("a",)) == b"payload"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_record_miss_false_suppresses_the_counter(self):
        cache = PayloadCache(capacity=4)
        assert cache.get(("a",), record_miss=False) is None
        assert cache.misses == 0

    def test_first_writer_wins(self):
        cache = PayloadCache(capacity=4)
        assert cache.put(("k",), b"first") == b"first"
        assert cache.put(("k",), b"second") == b"first"
        assert cache.get(("k",)) == b"first"

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            PayloadCache(capacity=-1)


class TestEviction:
    def test_lru_evicts_least_recently_used(self):
        cache = PayloadCache(capacity=2)
        cache.put(("a",), b"1")
        cache.put(("b",), b"2")
        cache.get(("a",))          # refresh "a" -> "b" is now LRU
        cache.put(("c",), b"3")
        assert ("a",) in cache
        assert ("b",) not in cache
        assert ("c",) in cache
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_zero_capacity_disables_storage(self):
        cache = PayloadCache(capacity=0)
        assert cache.put(("a",), b"1") == b"1"
        assert cache.get(("a",)) is None
        assert len(cache) == 0


class TestByteBudget:
    def test_evicts_until_under_budget(self):
        cache = PayloadCache(capacity=100, max_bytes=10)
        cache.put(("a",), b"xxxx")       # 4 bytes
        cache.put(("b",), b"yyyy")       # 8 bytes
        assert cache.cache_bytes == 8
        cache.put(("c",), b"zzzzzz")     # 14 -> evict LRU ("a",) -> 10
        assert ("a",) not in cache
        assert ("b",) in cache and ("c",) in cache
        assert cache.cache_bytes == 10
        assert cache.evictions == 1

    def test_recency_protects_entries_from_byte_eviction(self):
        cache = PayloadCache(capacity=100, max_bytes=8)
        cache.put(("a",), b"aaaa")
        cache.put(("b",), b"bbbb")
        cache.get(("a",))                # "b" is now LRU
        cache.put(("c",), b"cc")
        assert ("a",) in cache
        assert ("b",) not in cache

    def test_oversized_payload_served_but_never_stored(self):
        cache = PayloadCache(capacity=100, max_bytes=4)
        cache.put(("small",), b"ok")
        assert cache.put(("big",), b"x" * 64) == b"x" * 64
        assert ("big",) not in cache
        # The small entry survives: the oversized payload evicted nothing.
        assert ("small",) in cache
        assert cache.oversized == 1
        assert cache.evictions == 0

    def test_bytes_tracked_through_eviction_churn(self):
        cache = PayloadCache(capacity=3, max_bytes=1000)
        for i in range(50):
            cache.put((f"k{i}",), bytes(10 + i % 7))
        assert len(cache) == 3
        assert cache.cache_bytes == sum(
            len(v) for v in [cache.get((f"k{i}",)) for i in (47, 48, 49)]
        )

    def test_negative_max_bytes_rejected(self):
        with pytest.raises(ValueError, match="max_bytes"):
            PayloadCache(capacity=4, max_bytes=-1)


class TestSnapshot:
    def test_snapshot_shape(self):
        cache = PayloadCache(capacity=8)
        cache.put(("a",), b"1")
        cache.get(("a",))
        cache.get(("b",))
        assert cache.snapshot() == {
            "capacity": 8,
            "size": 1,
            "cache_bytes": 1,
            "max_bytes": None,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "oversized": 0,
        }


class TestConcurrency:
    def test_racing_writers_all_observe_one_value(self):
        cache = PayloadCache(capacity=16)
        barrier = threading.Barrier(8)
        seen: list[bytes] = []
        lock = threading.Lock()

        def writer(i: int) -> None:
            barrier.wait()
            value = cache.put(("race",), f"writer-{i}".encode())
            with lock:
                seen.append(value)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen)) == 1
        assert cache.get(("race",)) == seen[0]
