"""Versioned serving: ``as_of`` pinning, live-ingest refresh, torn reads.

A service rooted at a saved dataset follows the live manifest — an
ingest into the same directory is picked up on the next request without
a restart — while ``as_of=<version>`` keeps every superseded version
addressable, byte-identically, forever.  Cache keys carry the version,
so pre-ingest payloads and post-ingest payloads never collide.
"""

from __future__ import annotations

import json

import pytest

from repro.core import Metric, Month, Platform
from repro.export.io import load_dataset, save_dataset
from repro.service import QueryService
from repro.service.errors import BadRequest, NotFound
from repro.store import ingest_months
from repro.synth import GeneratorConfig

COUNTRIES = ("US", "KR")
BASE_MONTHS = (Month(2021, 9), Month(2021, 10))
NEW_MONTH = Month(2021, 11)
CONFIG = GeneratorConfig.small()


@pytest.fixture(scope="module")
def versioned_root(generator, tmp_path_factory):
    """A saved dataset, a service over it, and payloads captured pre-ingest.

    The ingest happens *while the service is live* — module scope keeps
    the expensive generate/ingest pair to one execution, and each test
    reads a different already-captured consequence.
    """
    tmp = tmp_path_factory.mktemp("as-of")
    root = tmp / "data"
    dataset = generator.generate(
        countries=COUNTRIES, platforms=(Platform.WINDOWS,),
        metrics=(Metric.PAGE_LOADS,), months=BASE_MONTHS,
    )
    save_dataset(dataset, root, format="columnar")
    service = QueryService(load_dataset(root), config=CONFIG, root=root)

    before = {
        "healthz": service.healthz(),
        "rankings_v1": service.rankings(
            "US", month=str(BASE_MONTHS[-1]), as_of=1
        ),
        "rankings_default": service.rankings("US"),
    }
    ingest_months(root, [NEW_MONTH], config=CONFIG)
    return root, service, before


class TestAsOfServing:
    def test_healthz_reports_the_live_version(self, versioned_root):
        _, service, before = versioned_root
        assert json.loads(before["healthz"])["dataset_version"] == 1
        after = json.loads(service.healthz())
        assert after["dataset_version"] == 2
        assert after["months"] == [str(m) for m in BASE_MONTHS + (NEW_MONTH,)]
        # Mapped slices materialise on demand: pending counts the
        # not-yet-decoded windows, so it only has to be a sane count.
        assert 0 <= after["pending_slices"] <= 2 * 3

    def test_pinned_version_is_byte_identical_across_ingest(
        self, versioned_root
    ):
        root, service, before = versioned_root
        assert service.rankings(
            "US", month=str(BASE_MONTHS[-1]), as_of=1
        ) == before["rankings_v1"]
        # A service created fresh *after* the ingest renders the same
        # bytes for as_of=1 — no state carried over, same payload.
        fresh = QueryService(load_dataset(root), config=CONFIG, root=root)
        assert fresh.rankings(
            "US", month=str(BASE_MONTHS[-1]), as_of=1
        ) == before["rankings_v1"]

    def test_default_follows_latest_after_ingest(self, versioned_root):
        _, service, before = versioned_root
        payload = json.loads(service.rankings("US"))
        # The default month is the dataset's last, which moved.
        assert payload["month"] == str(NEW_MONTH)
        assert payload != json.loads(before["rankings_default"])
        # The old default is still addressable under its version.
        assert json.loads(service.rankings("US", as_of=1)) == json.loads(
            before["rankings_default"]
        )

    def test_healthz_can_pin_a_version(self, versioned_root):
        _, service, _ = versioned_root
        pinned = json.loads(service.healthz(as_of=1))
        assert pinned["dataset_version"] == 1
        assert pinned["months"] == [str(m) for m in BASE_MONTHS]

    def test_unknown_version_is_a_404_with_choices(self, versioned_root):
        _, service, _ = versioned_root
        with pytest.raises(NotFound) as excinfo:
            service.rankings("US", as_of=9)
        payload = excinfo.value.payload()
        assert payload["choices"] == ["1", "2"]

    def test_non_integer_version_is_a_400(self, versioned_root):
        _, service, _ = versioned_root
        with pytest.raises(BadRequest, match="integer"):
            service.rankings("US", as_of="latest")

    def test_metrics_snapshot_carries_the_dataset_block(self, versioned_root):
        _, service, _ = versioned_root
        block = service.metrics_snapshot()["dataset"]
        assert block["version"] == 2
        assert block["months"] == [
            str(m) for m in BASE_MONTHS + (NEW_MONTH,)
        ]
        assert 0 <= block["pending_slices"] <= 2 * 3
        assert service.metrics.snapshot()["counters"].get(
            "dataset_reloads", 0
        ) >= 1

    def test_version_pinned_service_ignores_ingests(self, versioned_root):
        root, _, before = versioned_root
        pinned = QueryService(
            load_dataset(root, as_of=1), config=CONFIG, root=root, version=1
        )
        assert json.loads(pinned.healthz())["dataset_version"] == 1
        assert pinned.rankings(
            "US", month=str(BASE_MONTHS[-1])
        ) == before["rankings_v1"]
